//! Differential property tests for the graph plane.
//!
//! Two contracts are pinned here because the whole campaign rests on
//! them: (1) a channel with no injected faults is a plain bounded FIFO —
//! its delivery sequence is byte-identical to a `VecDeque` reference for
//! arbitrary send/recv interleavings; (2) a single-node graph degenerates
//! byte-for-byte into the existing single-app open-loop traffic engine,
//! so the graph layer adds exactly nothing when there is no graph.

use std::collections::VecDeque;

use faultstudy_env::Environment;
use faultstudy_graph::{
    degenerate_config, graph_plans, run_graph, web_mix, Channel, ChannelFaultKind, GraphFaultPlan,
    NodeId, Persistence, PlaneKind, SendError, ServiceGraph, CHANNEL_CAPACITY,
};
use faultstudy_recovery::RestartRetry;
use faultstudy_sim::time::{Duration, SimTime};
use faultstudy_traffic::{run_open_loop, ArrivalKind, TrafficParams};
use proptest::prelude::*;

proptest! {
    /// Fault-free channel vs a sequential `VecDeque` reference: for any
    /// interleaving of sends and recvs, deliveries come back in exactly
    /// the reference order with exactly the reference payloads, and the
    /// bounded queue refuses exactly when the reference is at capacity.
    #[test]
    fn fault_free_channel_matches_the_sequential_reference(
        ops in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        let mut ch = Channel::new("dut");
        let mut reference: VecDeque<(u64, String)> = VecDeque::new();
        let mut next_seq = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if op % 3 != 0 {
                let body = format!("m{i}");
                if reference.len() >= CHANNEL_CAPACITY {
                    prop_assert_eq!(ch.send(&body), Err(SendError::Full));
                } else {
                    let seq = ch.send(&body).expect("reference has room");
                    prop_assert_eq!(seq, next_seq);
                    reference.push_back((next_seq, body));
                    next_seq += 1;
                }
            } else {
                match (ch.recv(), reference.pop_front()) {
                    (Some(got), Some((seq, body))) => {
                        prop_assert_eq!(got.seq, seq);
                        prop_assert_eq!(got.body, body);
                    }
                    (None, None) => {}
                    (got, want) => {
                        prop_assert!(false, "delivery diverged: got {:?}, want {:?}", got, want);
                    }
                }
            }
        }
        // Drain both to the end: the tails must agree too.
        while let Some((seq, body)) = reference.pop_front() {
            let got = ch.recv().expect("reference still has messages");
            prop_assert_eq!(got.seq, seq);
            prop_assert_eq!(got.body, body);
        }
        prop_assert!(ch.recv().is_none());
    }

    /// A single-node graph run degenerates byte-for-byte into the
    /// existing open-loop traffic engine driven with the same seeds,
    /// params, mix, and supervisor config.
    #[test]
    fn single_node_graph_degenerates_into_run_open_loop(
        seed in any::<u64>(),
        requests in 1u64..200,
        budget in 0u32..4,
    ) {
        let params = TrafficParams::standard(ArrivalKind::Poisson, requests);
        let plans = graph_plans(seed);

        let mut env_g = Environment::builder().seed(seed).build();
        let mut graph = ServiceGraph::single_node(&mut env_g);
        let graph_stats = run_graph(
            &mut env_g, &mut graph, &plans[0], PlaneKind::Channel, budget,
            &params, seed ^ 1, seed ^ 2, seed ^ 3,
        );

        let mut env_r = Environment::builder().seed(seed).build();
        let mut reference = ServiceGraph::single_node(&mut env_r);
        let mut strategy = RestartRetry::new(budget);
        let config = degenerate_config();
        let mix = web_mix();
        let reference_stats = run_open_loop(
            reference.node(NodeId::Web), &mut env_r, &mut strategy, &config, None,
            &mix, &params, seed ^ 1, seed ^ 2,
        );

        prop_assert_eq!(&graph_stats.base, &reference_stats);
        prop_assert_eq!(env_g.now(), env_r.now(), "the clocks marched in lockstep");
        prop_assert_eq!(graph_stats.db_seen, 0, "no db tier in a single node");
        prop_assert_eq!(graph_stats.probes, 0, "no console edge in a single node");
    }

    /// Graph fault plans are a pure function of the seed, with the
    /// arming-count shape the taxonomy dictates.
    #[test]
    fn graph_plans_are_pure_and_shaped_by_persistence(seed in any::<u64>()) {
        let plans = graph_plans(seed);
        prop_assert_eq!(&plans, &graph_plans(seed));
        prop_assert_eq!(plans.len(), 12);
        for plan in &plans {
            let want = match plan.kind.persistence() {
                Persistence::OneShot => 3,
                Persistence::Sticky => 2,
                Persistence::Defect => 1,
            };
            prop_assert_eq!(plan.events.len(), want, "{}", &plan.name);
            prop_assert!(plan.events.windows(2).all(|w| w[0].at < w[1].at));
        }
    }

    /// A whole graph unit replays byte-identically from its seeds for
    /// any fault kind, plane, and budget.
    #[test]
    fn graph_units_replay_byte_identically(
        seed in any::<u64>(),
        kind_index in 0usize..12,
        plane_index in 0usize..2,
        budget in 0u32..4,
    ) {
        let kind = ChannelFaultKind::ALL[kind_index];
        let plane = PlaneKind::ALL[plane_index];
        let drive = || {
            let mut env = Environment::builder().seed(seed).build();
            let mut graph = ServiceGraph::new(&mut env);
            let plans = graph_plans(seed);
            let plan: &GraphFaultPlan =
                plans.iter().find(|p| p.kind == kind).expect("every kind has a plan");
            let stats = run_graph(
                &mut env, &mut graph, plan, plane, budget,
                &TrafficParams::standard(ArrivalKind::Poisson, 40),
                seed ^ 5, seed ^ 6, seed ^ 7,
            );
            (stats, env.now())
        };
        prop_assert_eq!(drive(), drive());
    }
}

/// Not a proptest but the same differential idea: the control plan (no
/// events) must leave the graph's ledgers exactly as healthy traffic
/// leaves them — no faults, no recoveries, nothing lost on any edge.
#[test]
fn eventless_plan_is_a_true_control() {
    let control = GraphFaultPlan {
        name: "control".to_owned(),
        class: faultstudy_core::taxonomy::FaultClass::EnvDependentTransient,
        kind: ChannelFaultKind::S1SenderPageFault,
        events: Vec::new(),
    };
    assert_eq!(control.horizon(), SimTime::ZERO);
    let mut env = Environment::builder().seed(19).build();
    let mut graph = ServiceGraph::new(&mut env);
    let stats = run_graph(
        &mut env,
        &mut graph,
        &control,
        PlaneKind::Process,
        3,
        &TrafficParams::standard(ArrivalKind::Poisson, 100),
        1,
        2,
        3,
    );
    assert_eq!(stats.base.failures, 0);
    assert_eq!(stats.base.recoveries, 0);
    assert_eq!(stats.base.dropped, 0);
    assert_eq!(stats.edges.client_web.lost, 0);
    assert_eq!(stats.edges.web_db.lost, 0);
    assert_eq!(stats.edges.client_web.resets + stats.edges.web_db.resets, 0);
    assert_eq!(stats.cascade_depth.count(), 0);
    assert_eq!(stats.ttr.count(), 0);
    assert!(env.now() > SimTime::ZERO + Duration::ZERO);
}
