//! The service topology: three applications wired into a tiered graph.
//!
//! The graph is the paper's missing distributed dimension made concrete:
//! clients enter at miniweb ([`NodeId::Web`]), miniweb's data-plane
//! sub-calls cross to minidb ([`NodeId::Db`]), and minide
//! ([`NodeId::Ide`]) sits to the side as an operator console probing the
//! web tier over its own channel. Every inter-tier exchange crosses a
//! bounded [`Channel`], which is where the IPC fault corpus bites.
//!
//! For process-level supervision the nodes double as components of a
//! [`RestartTree`] topology ([`GRAPH_COMPONENTS`]): a `service` root with
//! the three nodes as volatile children, so escalation can take out one
//! node, and ultimately the whole service, exactly as the microreboot
//! ladder does for intra-process components.

use crate::channel::Channel;
use crate::fault::{EdgeId, GraphFaultEvent, GraphFaultPlan};
use faultstudy_apps::{spawn_app, AppState, Application};
use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::Environment;
use faultstudy_micro::{ComponentDesc, StateKind};
use faultstudy_sim::time::{Duration, SimTime};

/// The service tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeId {
    /// The front tier (miniweb): every client request enters here.
    Web,
    /// The data tier (minidb): serves the web tier's sub-calls.
    Db,
    /// The operator console (minide): probes the web tier.
    Ide,
}

impl NodeId {
    /// Every node, in index order.
    pub const ALL: [NodeId; 3] = [NodeId::Web, NodeId::Db, NodeId::Ide];

    /// Stable short name (metrics label, restart-tree component name).
    pub fn name(self) -> &'static str {
        match self {
            NodeId::Web => "node-web",
            NodeId::Db => "node-db",
            NodeId::Ide => "node-ide",
        }
    }

    /// The node's index in [`GRAPH_COMPONENTS`] (root is 0).
    pub fn component(self) -> usize {
        match self {
            NodeId::Web => 1,
            NodeId::Db => 2,
            NodeId::Ide => 3,
        }
    }
}

/// The restart-tree view of the service for process-level supervision:
/// a `service` root with the three nodes as volatile children. Node boot
/// costs dominate channel resets by design — that gap is the mechanism
/// the recovery-plane race measures.
pub const GRAPH_COMPONENTS: [ComponentDesc; 4] = [
    ComponentDesc {
        name: "service",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(2_000),
        parent: None,
    },
    ComponentDesc {
        name: "node-web",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(800),
        parent: Some(0),
    },
    ComponentDesc {
        name: "node-db",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(800),
        parent: Some(0),
    },
    ComponentDesc {
        name: "node-ide",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(800),
        parent: Some(0),
    },
];

/// The wired service graph: three applications, three channels, and the
/// unit-start checkpoints recovery restores endpoints from.
pub struct ServiceGraph {
    web: Box<dyn Application>,
    db: Box<dyn Application>,
    ide: Box<dyn Application>,
    web_snapshot: AppState,
    db_snapshot: AppState,
    ide_snapshot: AppState,
    client_web: Channel,
    web_db: Channel,
    ide_web: Channel,
    /// Index of the next unapplied event in the active plan.
    cursor: usize,
    single_node: bool,
}

impl ServiceGraph {
    /// Spawns the three applications against `env` and wires the edges.
    /// Checkpoints are taken at construction — they are the clean states
    /// per-channel recovery microreboots endpoints back to.
    pub fn new(env: &mut Environment) -> ServiceGraph {
        let web = spawn_app(AppKind::Apache, env);
        let db = spawn_app(AppKind::Mysql, env);
        let ide = spawn_app(AppKind::Gnome, env);
        let web_snapshot = web.snapshot();
        let db_snapshot = db.snapshot();
        let ide_snapshot = ide.snapshot();
        ServiceGraph {
            web,
            db,
            ide,
            web_snapshot,
            db_snapshot,
            ide_snapshot,
            client_web: Channel::new("client-web"),
            web_db: Channel::new("web-db"),
            ide_web: Channel::new("ide-web"),
            cursor: 0,
            single_node: false,
        }
    }

    /// A degenerate one-node graph: only the web tier, no channels in the
    /// request path. The engine short-circuits this shape straight into
    /// the single-app open-loop engine — the degeneration property test
    /// pins that equivalence byte-for-byte.
    pub fn single_node(env: &mut Environment) -> ServiceGraph {
        let mut graph = ServiceGraph::new(env);
        graph.single_node = true;
        graph
    }

    /// Whether this is the degenerate one-node shape.
    pub fn is_single_node(&self) -> bool {
        self.single_node
    }

    /// The channel behind `edge`.
    pub fn channel(&mut self, edge: EdgeId) -> &mut Channel {
        match edge {
            EdgeId::ClientWeb => &mut self.client_web,
            EdgeId::WebDb => &mut self.web_db,
            EdgeId::IdeWeb => &mut self.ide_web,
        }
    }

    /// The application at `node`.
    pub fn node(&mut self, node: NodeId) -> &mut dyn Application {
        match node {
            NodeId::Web => self.web.as_mut(),
            NodeId::Db => self.db.as_mut(),
            NodeId::Ide => self.ide.as_mut(),
        }
    }

    /// Arms every plan event due at or before `now`, in schedule order.
    /// Returns how many armed. The cursor never rewinds, so each event
    /// arms exactly once per unit.
    pub fn apply_due(&mut self, plan: &GraphFaultPlan, now: SimTime) -> u64 {
        let mut armed = 0;
        while let Some(&GraphFaultEvent { at, kind }) = plan.events.get(self.cursor) {
            if at > now {
                break;
            }
            self.cursor += 1;
            self.channel(kind.site().edge).arm(kind);
            armed += 1;
        }
        armed
    }

    /// Restores `node` to its unit-start checkpoint — the state half of
    /// an endpoint microreboot or a process restart.
    pub fn restore_node(&mut self, node: NodeId) {
        match node {
            NodeId::Web => self.web.restore(&self.web_snapshot),
            NodeId::Db => self.db.restore(&self.db_snapshot),
            NodeId::Ide => self.ide.restore(&self.ide_snapshot),
        }
    }

    /// Resets every channel incident to `node`, returning messages lost
    /// to the drains. Process-level restarts call this: rebooting an
    /// endpoint necessarily tears down its channels too.
    pub fn reset_channels_of(&mut self, node: NodeId) -> u64 {
        let mut lost = 0;
        for edge in EdgeId::ALL {
            let touches = match edge {
                EdgeId::ClientWeb => node == NodeId::Web,
                EdgeId::WebDb => node == NodeId::Web || node == NodeId::Db,
                EdgeId::IdeWeb => node == NodeId::Ide || node == NodeId::Web,
            };
            if touches {
                lost += self.channel(edge).reset();
            }
        }
        lost
    }

    /// The node at the faulted end of `edge`/`leg` — the endpoint a
    /// channel-plane recovery microreboots.
    pub fn endpoint_of(edge: EdgeId, sender_side: bool) -> NodeId {
        match (edge, sender_side) {
            // On the reply leg of web→db the sender is the db tier; the
            // request leg's receiver is also below the edge.
            (EdgeId::ClientWeb, true) => NodeId::Web,
            (EdgeId::ClientWeb, false) => NodeId::Web,
            (EdgeId::WebDb, _) => NodeId::Db,
            (EdgeId::IdeWeb, _) => NodeId::Web,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{graph_plans, ChannelFaultKind};
    use faultstudy_micro::validate_topology;

    fn env() -> Environment {
        Environment::builder().seed(7).build()
    }

    #[test]
    fn component_topology_is_valid_and_indices_line_up() {
        validate_topology(&GRAPH_COMPONENTS).unwrap();
        for node in NodeId::ALL {
            assert_eq!(GRAPH_COMPONENTS[node.component()].name, node.name());
        }
    }

    #[test]
    fn apply_due_arms_each_event_exactly_once_in_order() {
        let mut e = env();
        let mut graph = ServiceGraph::new(&mut e);
        let plans = graph_plans(5);
        let plan = plans.iter().find(|p| p.kind == ChannelFaultKind::R4NullRecvBuffer).unwrap();
        assert_eq!(graph.apply_due(plan, SimTime::ZERO), 0, "nothing due at t=0");
        let armed = graph.apply_due(plan, plan.horizon());
        assert_eq!(armed, plan.events.len() as u64);
        assert_eq!(graph.apply_due(plan, plan.horizon()), 0, "cursor never rewinds");
    }

    #[test]
    fn process_restart_of_web_drains_its_incident_channels() {
        let mut e = env();
        let mut graph = ServiceGraph::new(&mut e);
        graph.channel(EdgeId::ClientWeb).send("a").unwrap();
        graph.channel(EdgeId::WebDb).send("b").unwrap();
        graph.channel(EdgeId::IdeWeb).send("c").unwrap();
        assert_eq!(graph.reset_channels_of(NodeId::Web), 3);
        assert_eq!(graph.reset_channels_of(NodeId::Db), 0, "already drained");
    }
}
