//! The graph engine: open-loop traffic driven across the service graph,
//! one chain (client → miniweb → minidb) per request, with the IPC fault
//! plan armed on the wire and one of two recovery planes answering.
//!
//! The engine mirrors the single-app open-loop engine event for event —
//! sessions arrive on the timing wheel, think, and issue requests — but
//! each request is served by [`serve_chain`]: a client-level retry loop
//! around a web-tier call that may itself run a web-level retry loop
//! around the db sub-call. Both loops share ONE [`ChainDeadline`], so a
//! storm of nested retries can never charge the user more than the outer
//! budget — the end-to-end-timeout contract the supervisor satellite
//! pins at unit level.
//!
//! The two recovery planes differ only in what a detected channel fault
//! costs and tears down:
//!
//! - **process** — the [`RestartTree`] plans a reboot scope for the
//!   faulted endpoint's component; every member restarts from its
//!   unit-start checkpoint, its incident channels are torn down with it,
//!   and the boot costs (hundreds of milliseconds) are charged.
//! - **channel** — the faulted channel alone is drained and reset, only
//!   the endpoint microreboots from its checkpoint, and a typed
//!   [`ChannelReset`] propagates upstream so the caller retries
//!   idempotently; total charge ~22 ms.
//!
//! Cascade accounting: a chain that met a fault records how far the
//! damage travelled — depth 1, absorbed by the tier adjacent to the
//! fault (an inner retry or an in-place recovery); depth 2, propagated
//! one tier up (the client had to retry); depth 3, user-visible loss.

use crate::fault::{EdgeId, FaultBehavior, GraphFaultPlan, Leg};
use crate::topology::{NodeId, ServiceGraph, GRAPH_COMPONENTS};
use faultstudy_apps::Request;
use faultstudy_env::Environment;
use faultstudy_obs::Histogram;
use faultstudy_recovery::{
    BackoffPolicy, ChainDeadline, RebootScope, RestartRetry, RestartTree, SupervisorConfig,
};
use faultstudy_sim::rng::SplitSeedStream;
use faultstudy_sim::time::{Duration, SimTime};
use faultstudy_sim::wheel::TimingWheel;
use faultstudy_traffic::{run_open_loop, ArrivalProcess, Session, TrafficParams, UnitStats};
use serde::{Deserialize, Serialize};

/// Service time the web tier charges per request it handles.
pub const WEB_SERVICE: Duration = Duration::from_micros(300);
/// Service time the db tier charges per sub-call.
pub const DB_SERVICE: Duration = Duration::from_micros(200);
/// Wire time per transfer leg on any channel.
pub const TRANSFER: Duration = Duration::from_micros(50);
/// How long a waiting tier takes to declare a wedged transfer hung.
pub const HANG_DETECT: Duration = Duration::from_millis(500);
/// How long a waiting tier takes to time out a silently lost message.
pub const LOST_TIMEOUT: Duration = Duration::from_millis(250);
/// Cost of draining and resetting one channel's state.
pub const CHANNEL_RESET: Duration = Duration::from_millis(2);
/// Cost of microrebooting one endpoint from its checkpoint.
pub const ENDPOINT_REBOOT: Duration = Duration::from_millis(20);
/// Cost of the whole-service rung of the process plane's ladder.
pub const PROCESS_REBOOT: Duration = Duration::from_millis(2_000);
/// End-to-end budget of one client chain, charged once across all hops.
pub const CHAIN_BUDGET: Duration = Duration::from_secs(4);
/// Operator-console probe cadence on the ide → web edge.
pub const PROBE_EVERY: Duration = Duration::from_millis(50);

/// Which recovery plane answers detected channel faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlaneKind {
    /// Process-level supervision: the restart tree reboots components.
    Process,
    /// Per-channel recovery: drain + reset the channel, microreboot only
    /// the endpoint, propagate [`ChannelReset`] upstream.
    Channel,
}

impl PlaneKind {
    /// Both planes, process first.
    pub const ALL: [PlaneKind; 2] = [PlaneKind::Process, PlaneKind::Channel];

    /// Stable short name (metrics label, report column).
    pub fn name(self) -> &'static str {
        match self {
            PlaneKind::Process => "process",
            PlaneKind::Channel => "channel",
        }
    }
}

/// The typed error a per-channel recovery propagates upstream: the named
/// channel was drained and reset, the exchange in flight is gone, and
/// the caller may retry idempotently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelReset {
    /// The edge whose channel was reset.
    pub edge: EdgeId,
}

/// Per-edge wire ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EdgeStats {
    /// Messages offered to the channel (requests, replies, retransmits).
    pub sends: u64,
    /// Messages that reached the far side.
    pub delivered: u64,
    /// Messages lost on the wire (faults and recovery drains).
    pub lost: u64,
    /// Duplicate deliveries (sender-state-not-updated re-offers).
    pub duplicated: u64,
    /// Retransmits after a failed exchange.
    pub retried: u64,
    /// Fault firings on this edge.
    pub faults: u64,
    /// Channel resets performed on this edge.
    pub resets: u64,
}

impl EdgeStats {
    /// Folds `other` into `self`.
    pub fn absorb(&mut self, other: &EdgeStats) {
        self.sends += other.sends;
        self.delivered += other.delivered;
        self.lost += other.lost;
        self.duplicated += other.duplicated;
        self.retried += other.retried;
        self.faults += other.faults;
        self.resets += other.resets;
    }
}

/// The three edges' ledgers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GraphEdges {
    /// Clients → miniweb.
    pub client_web: EdgeStats,
    /// Miniweb → minidb.
    pub web_db: EdgeStats,
    /// Minide → miniweb (operator probes).
    pub ide_web: EdgeStats,
}

impl GraphEdges {
    /// The ledger behind `edge`.
    pub fn edge_mut(&mut self, edge: EdgeId) -> &mut EdgeStats {
        match edge {
            EdgeId::ClientWeb => &mut self.client_web,
            EdgeId::WebDb => &mut self.web_db,
            EdgeId::IdeWeb => &mut self.ide_web,
        }
    }

    /// Folds `other` into `self`.
    pub fn absorb(&mut self, other: &GraphEdges) {
        self.client_web.absorb(&other.client_web);
        self.web_db.absorb(&other.web_db);
        self.ide_web.absorb(&other.ide_web);
    }
}

/// Per-unit graph outcome: the base request ledger plus the cascade,
/// amplification, and recovery-plane accounting the campaign folds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphUnitStats {
    /// The single-app ledger fields (offered/ok/dropped/latency/...).
    pub base: UnitStats,
    /// Per-edge wire ledgers.
    pub edges: GraphEdges,
    /// How far each faulted chain's damage travelled (1 = absorbed
    /// adjacent to the fault, 2 = propagated one tier, 3 = user-visible).
    pub cascade_depth: Histogram,
    /// Time from a chain's first fault to its eventual success, in
    /// nanoseconds of simulated time (recovered chains only).
    pub ttr: Histogram,
    /// Client chains that invoked the db tier at least once.
    pub db_first: u64,
    /// Db-tier invocations including retry-driven re-executions.
    pub db_seen: u64,
    /// Channel-plane recoveries (reset + endpoint microreboot).
    pub channel_recoveries: u64,
    /// Process-plane component/subtree/process restarts.
    pub node_restarts: u64,
    /// Operator-console probes completed on the ide → web edge.
    pub probes: u64,
}

impl Default for GraphUnitStats {
    fn default() -> GraphUnitStats {
        GraphUnitStats::new()
    }
}

impl GraphUnitStats {
    /// An empty ledger.
    pub fn new() -> GraphUnitStats {
        GraphUnitStats {
            base: UnitStats::new(),
            edges: GraphEdges::default(),
            cascade_depth: Histogram::new(),
            ttr: Histogram::new(),
            db_first: 0,
            db_seen: 0,
            channel_recoveries: 0,
            node_restarts: 0,
            probes: 0,
        }
    }

    /// Requests the db tier saw per client chain that needed it — the
    /// downstream-amplification ratio. 1.0 means no retry ever re-drove
    /// the db; above 1.0 is retry amplification.
    pub fn amplification(&self) -> f64 {
        if self.db_first == 0 {
            return 1.0;
        }
        self.db_seen as f64 / self.db_first as f64
    }

    /// Folds `other` into `self`.
    pub fn absorb(&mut self, other: &GraphUnitStats) {
        self.base.absorb(&other.base);
        self.edges.absorb(&other.edges);
        self.cascade_depth.merge_from(&other.cascade_depth);
        self.ttr.merge_from(&other.ttr);
        self.db_first += other.db_first;
        self.db_seen += other.db_seen;
        self.channel_recoveries += other.channel_recoveries;
        self.node_restarts += other.node_restarts;
        self.probes += other.probes;
    }
}

/// One entry of the graph request mix: the client-visible web request
/// and, for data-plane entries, the db sub-call the web tier fans out.
#[derive(Debug, Clone)]
pub struct GraphRequest {
    /// The request the client sends the web tier.
    pub web: Request,
    /// The sub-call the web tier makes to the db tier, if any.
    pub db: Option<Request>,
}

/// The standard graph mix: half static web requests, half db-backed.
pub fn graph_mix() -> Vec<GraphRequest> {
    vec![
        GraphRequest { web: Request::new("GET /index.html"), db: None },
        GraphRequest { web: Request::new("AUTH admin"), db: None },
        GraphRequest { web: Request::new("KEEPALIVE 4"), db: None },
        GraphRequest { web: Request::new("GET /index.html"), db: Some(Request::new("PING")) },
        GraphRequest {
            web: Request::new("GET /index.html"),
            db: Some(Request::new("FLUSH TABLES")),
        },
        GraphRequest { web: Request::new("AUTH admin"), db: Some(Request::new("PING")) },
    ]
}

/// The single-node web mix the degenerate path feeds `run_open_loop`.
pub fn web_mix() -> Vec<Request> {
    vec![Request::new("GET /index.html"), Request::new("AUTH admin")]
}

/// The supervisor configuration of the degenerate single-node path —
/// requests charge the web service time, no other policy. The
/// degeneration proptest drives `run_open_loop` with exactly this config
/// and pins byte-identity against [`run_graph`] on a single-node graph.
pub fn degenerate_config() -> SupervisorConfig {
    SupervisorConfig {
        watchdog: Some(CHAIN_BUDGET),
        backoff: BackoffPolicy::none(),
        breaker_threshold: 0,
        scrub_every: 0,
        request_takes: WEB_SERVICE,
    }
}

/// Wheel payload of the graph engine.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A new user session arrives.
    SessionStart,
    /// An existing session issues its next request after think time.
    Next(u32),
    /// The operator console probes the web tier.
    Probe,
}

/// How one chain ended.
enum ChainEnd {
    Served { denied: bool },
    Dropped,
}

/// The per-chain bookkeeping shared by both retry levels.
struct ChainCtx {
    chain: ChainDeadline,
    first_fault: Option<SimTime>,
    client_retries: u32,
    /// Component the process plane last restarted; settled on success.
    restarted: Option<usize>,
    counted_db: bool,
}

/// Drives one unit of open-loop traffic across the graph under `plan`,
/// with `plane` answering channel faults and `retry_budget` retries
/// available at each level of the chain.
///
/// A single-node graph short-circuits into the single-app open-loop
/// engine with [`degenerate_config`] and [`web_mix`] — no channels, no
/// plan, byte-identical to the existing traffic engine by construction.
#[allow(clippy::too_many_arguments)]
pub fn run_graph(
    env: &mut Environment,
    graph: &mut ServiceGraph,
    plan: &GraphFaultPlan,
    plane: PlaneKind,
    retry_budget: u32,
    params: &TrafficParams,
    arrival_seed: u64,
    session_master: u64,
    recovery_seed: u64,
) -> GraphUnitStats {
    if graph.is_single_node() {
        let mut strategy = RestartRetry::new(retry_budget);
        let config = degenerate_config();
        let mix = web_mix();
        let mut stats = GraphUnitStats::new();
        stats.base = run_open_loop(
            graph.node(NodeId::Web),
            env,
            &mut strategy,
            &config,
            None,
            &mix,
            params,
            arrival_seed,
            session_master,
        );
        return stats;
    }

    let mut stats = GraphUnitStats::new();
    let mut tree = RestartTree::new(
        &GRAPH_COMPONENTS,
        2,
        Duration::from_millis(50),
        Duration::from_secs(2),
        recovery_seed,
    );
    let mix = graph_mix();
    if params.requests == 0 {
        stats.base.sim_nanos = env.now().as_nanos();
        return stats;
    }
    let per_session = params.requests_per_session.max(1);
    let mut arrivals = ArrivalProcess::new(
        params.arrival,
        params.rate_per_sec / f64::from(per_session),
        arrival_seed,
    );
    let mut session_seeds = SplitSeedStream::new(session_master, 0);
    let mut wheel: TimingWheel<Event> = TimingWheel::new();
    let mut sessions: Vec<Session> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    let mut allotted: u64 = 0;

    let start = env.now();
    let gap = arrivals.next_gap(start);
    wheel.schedule(start.saturating_add(gap), Event::SessionStart);
    wheel.schedule(start.saturating_add(PROBE_EVERY), Event::Probe);
    while let Some((at, event)) = wheel.pop() {
        let sid = match event {
            Event::SessionStart => {
                let size = (params.requests - allotted).min(u64::from(per_session)) as u32;
                allotted += u64::from(size);
                if allotted < params.requests {
                    let gap = arrivals.next_gap(at);
                    wheel.schedule(at.saturating_add(gap), Event::SessionStart);
                }
                let session = Session::new(size, session_seeds.next_seed());
                match free.pop() {
                    Some(slot) => {
                        sessions[slot as usize] = session;
                        slot
                    }
                    None => {
                        sessions.push(session);
                        (sessions.len() - 1) as u32
                    }
                }
            }
            Event::Next(sid) => sid,
            Event::Probe => {
                if env.now() < at {
                    env.advance(at.saturating_since(env.now()));
                }
                graph.apply_due(plan, env.now());
                probe(graph, env, &mut stats);
                if stats.base.offered < params.requests {
                    wheel.schedule(at.saturating_add(PROBE_EVERY), Event::Probe);
                }
                continue;
            }
        };
        if env.now() < at {
            env.advance(at.saturating_since(env.now()));
        }
        graph.apply_due(plan, env.now());
        let session = &mut sessions[sid as usize];
        session.remaining -= 1;
        let pick = session.pick(mix.len());
        let end = serve_chain(graph, env, &mut tree, plane, retry_budget, &mix[pick], &mut stats);
        stats.base.offered += 1;
        match end {
            ChainEnd::Served { denied } => {
                let latency = env.now().saturating_since(at);
                stats.base.latency.record(latency.as_nanos());
                if denied {
                    stats.base.denied += 1;
                } else {
                    stats.base.ok += 1;
                }
                if latency > params.slo {
                    stats.base.slo_violations += 1;
                }
            }
            ChainEnd::Dropped => stats.base.dropped += 1,
        }
        let session = &mut sessions[sid as usize];
        if session.remaining > 0 {
            let think = session.think(params.think_mean);
            wheel.schedule(env.now().saturating_add(think), Event::Next(sid));
        } else {
            free.push(sid);
        }
    }
    stats.base.sim_nanos = env.now().as_nanos();
    debug_assert_eq!(stats.base.offered, params.requests);
    stats
}

/// One operator-console probe: minide sends a probe over its edge, the
/// web tier answers. No fault kind targets this edge; the probe keeps
/// the console channel live and measures that the graph stays responsive
/// to operators while the data plane is under fault.
fn probe(graph: &mut ServiceGraph, env: &mut Environment, stats: &mut GraphUnitStats) {
    let edge = stats.edges.edge_mut(EdgeId::IdeWeb);
    edge.sends += 1;
    env.advance(TRANSFER);
    let _ = graph.channel(EdgeId::IdeWeb).send("PROBE console");
    let _ = graph.channel(EdgeId::IdeWeb).recv();
    let ok = graph
        .node(NodeId::Web)
        .handle(&Request::new("PROBE console"), env)
        .map(|r| r.is_ok())
        .unwrap_or(false);
    env.advance(TRANSFER);
    let edge = stats.edges.edge_mut(EdgeId::IdeWeb);
    edge.sends += 1;
    edge.delivered += 2;
    if ok {
        stats.probes += 1;
    }
}

/// Serves one client chain end to end: a client-level retry loop around
/// the web call, which may run a web-level retry loop around the db
/// sub-call. One [`ChainDeadline`] bounds everything.
fn serve_chain(
    graph: &mut ServiceGraph,
    env: &mut Environment,
    tree: &mut RestartTree,
    plane: PlaneKind,
    retry_budget: u32,
    req: &GraphRequest,
    stats: &mut GraphUnitStats,
) -> ChainEnd {
    let mut ctx = ChainCtx {
        chain: ChainDeadline::new(env.now(), CHAIN_BUDGET),
        first_fault: None,
        client_retries: 0,
        restarted: None,
        counted_db: false,
    };
    loop {
        if ctx.chain.expired(env.now()) {
            return finish_dropped(&mut ctx, stats);
        }
        // Request leg: client → web over the client-web channel.
        match transfer(
            graph,
            env,
            EdgeId::ClientWeb,
            Leg::Request,
            &req.web.body,
            plane,
            tree,
            &mut ctx,
            stats,
        ) {
            Ok(()) => {}
            Err(ChannelReset { .. }) => {
                if retry_client(&mut ctx, retry_budget, env, stats) {
                    continue;
                }
                return finish_dropped(&mut ctx, stats);
            }
        }
        // Web service.
        advance_clamped(env, &ctx.chain, WEB_SERVICE);
        let web_result = graph.node(NodeId::Web).handle(&req.web, env);
        let web_denied = match web_result {
            Ok(resp) => !resp.is_ok(),
            Err(_) => {
                // An endpoint failure outside the wire corpus: treat it
                // as a crash of the web tier and recover per plane.
                stats.base.failures += 1;
                note_fault(&mut ctx, env);
                recover(graph, env, tree, plane, EdgeId::ClientWeb, NodeId::Web, &mut ctx, stats);
                if retry_client(&mut ctx, retry_budget, env, stats) {
                    continue;
                }
                return finish_dropped(&mut ctx, stats);
            }
        };
        // Db sub-call, with its own web-level retry loop.
        let mut db_denied = false;
        if let Some(db_req) = &req.db {
            if !ctx.counted_db {
                ctx.counted_db = true;
                stats.db_first += 1;
            }
            match serve_db(graph, env, tree, plane, retry_budget, db_req, &mut ctx, stats) {
                Ok(denied) => db_denied = denied,
                Err(ChannelReset { .. }) => {
                    // The sub-call is gone past the web tier's budget:
                    // propagate the typed reset upstream — the client is
                    // the next level that may retry idempotently.
                    if retry_client(&mut ctx, retry_budget, env, stats) {
                        continue;
                    }
                    return finish_dropped(&mut ctx, stats);
                }
            }
        }
        // Reply leg: web → client. No corpus kind targets this leg, but
        // the consult keeps the wire honest under future corpora.
        match transfer(
            graph,
            env,
            EdgeId::ClientWeb,
            Leg::Reply,
            "reply",
            plane,
            tree,
            &mut ctx,
            stats,
        ) {
            Ok(()) => {}
            Err(ChannelReset { .. }) => {
                if retry_client(&mut ctx, retry_budget, env, stats) {
                    continue;
                }
                return finish_dropped(&mut ctx, stats);
            }
        }
        return finish_served(&mut ctx, tree, env, stats, web_denied || db_denied);
    }
}

/// The web tier's db sub-call: request leg, db service, reply leg, with
/// up to `retry_budget` web-level retries before the failure propagates
/// upstream as a [`ChannelReset`].
#[allow(clippy::too_many_arguments)]
fn serve_db(
    graph: &mut ServiceGraph,
    env: &mut Environment,
    tree: &mut RestartTree,
    plane: PlaneKind,
    retry_budget: u32,
    db_req: &Request,
    ctx: &mut ChainCtx,
    stats: &mut GraphUnitStats,
) -> Result<bool, ChannelReset> {
    let mut web_retries = 0u32;
    loop {
        if ctx.chain.expired(env.now()) {
            return Err(ChannelReset { edge: EdgeId::WebDb });
        }
        // Request leg: web → db.
        if transfer(graph, env, EdgeId::WebDb, Leg::Request, &db_req.body, plane, tree, ctx, stats)
            .is_err()
        {
            if web_retries < retry_budget && !ctx.chain.expired(env.now()) {
                web_retries += 1;
                stats.edges.edge_mut(EdgeId::WebDb).retried += 1;
                continue;
            }
            return Err(ChannelReset { edge: EdgeId::WebDb });
        }
        // Db service: the sub-call executes — this is the work retries
        // re-drive, the amplification the campaign prices.
        advance_clamped(env, &ctx.chain, DB_SERVICE);
        stats.db_seen += 1;
        let denied = match graph.node(NodeId::Db).handle(db_req, env) {
            Ok(resp) => !resp.is_ok(),
            Err(_) => {
                stats.base.failures += 1;
                note_fault(ctx, env);
                recover(graph, env, tree, plane, EdgeId::WebDb, NodeId::Db, ctx, stats);
                if web_retries < retry_budget && !ctx.chain.expired(env.now()) {
                    web_retries += 1;
                    stats.edges.edge_mut(EdgeId::WebDb).retried += 1;
                    continue;
                }
                return Err(ChannelReset { edge: EdgeId::WebDb });
            }
        };
        // Reply leg: db → web. This is where the send-side corpus bites.
        match reply_transfer(graph, env, plane, tree, ctx, stats) {
            ReplyOutcome::Delivered => return Ok(denied),
            ReplyOutcome::Lost => {
                if web_retries < retry_budget && !ctx.chain.expired(env.now()) {
                    web_retries += 1;
                    stats.edges.edge_mut(EdgeId::WebDb).retried += 1;
                    continue;
                }
                return Err(ChannelReset { edge: EdgeId::WebDb });
            }
        }
    }
}

/// What became of the db's reply.
enum ReplyOutcome {
    Delivered,
    Lost,
}

/// Moves the db's reply across the web-db channel, consulting the fault
/// state on the reply leg — the site of every send-side corpus kind.
fn reply_transfer(
    graph: &mut ServiceGraph,
    env: &mut Environment,
    plane: PlaneKind,
    tree: &mut RestartTree,
    ctx: &mut ChainCtx,
    stats: &mut GraphUnitStats,
) -> ReplyOutcome {
    let edge = EdgeId::WebDb;
    stats.edges.edge_mut(edge).sends += 1;
    advance_clamped(env, &ctx.chain, TRANSFER);
    let Some(kind) = graph.channel(edge).fault_for(Leg::Reply) else {
        stats.edges.edge_mut(edge).delivered += 1;
        return ReplyOutcome::Delivered;
    };
    stats.edges.edge_mut(edge).faults += 1;
    stats.base.failures += 1;
    note_fault(ctx, env);
    match kind.behavior() {
        FaultBehavior::CrashSender => {
            // The db died after doing the work; the reply is gone.
            stats.edges.edge_mut(edge).lost += 1;
            recover(graph, env, tree, plane, edge, NodeId::Db, ctx, stats);
            ReplyOutcome::Lost
        }
        FaultBehavior::CrashReceiver => {
            stats.edges.edge_mut(edge).lost += 1;
            recover(graph, env, tree, plane, edge, NodeId::Web, ctx, stats);
            ReplyOutcome::Lost
        }
        FaultBehavior::LoseMessage => {
            // Silent loss: the web tier only learns from its timeout.
            stats.edges.edge_mut(edge).lost += 1;
            advance_clamped(env, &ctx.chain, LOST_TIMEOUT);
            stats.base.watchdog_fires += 1;
            ReplyOutcome::Lost
        }
        FaultBehavior::Hang => {
            // The channel wedges; hang detection converts the silence
            // into a failure, then the plane repairs the channel.
            advance_clamped(env, &ctx.chain, HANG_DETECT);
            stats.base.watchdog_fires += 1;
            stats.edges.edge_mut(edge).lost += 1;
            recover(graph, env, tree, plane, edge, NodeId::Db, ctx, stats);
            ReplyOutcome::Lost
        }
        FaultBehavior::HangAfterDeliver => {
            // The reply WAS delivered; the sender's bookkeeping hangs and
            // re-offers it once recovered — a duplicate, then success.
            advance_clamped(env, &ctx.chain, HANG_DETECT);
            stats.base.watchdog_fires += 1;
            let e = stats.edges.edge_mut(edge);
            e.delivered += 1;
            e.duplicated += 1;
            recover(graph, env, tree, plane, edge, NodeId::Db, ctx, stats);
            ReplyOutcome::Delivered
        }
    }
}

/// Moves one message across `edge` on `leg`, consulting fault state.
/// Returns the typed reset if the exchange was torn down.
#[allow(clippy::too_many_arguments)]
fn transfer(
    graph: &mut ServiceGraph,
    env: &mut Environment,
    edge: EdgeId,
    leg: Leg,
    body: &str,
    plane: PlaneKind,
    tree: &mut RestartTree,
    ctx: &mut ChainCtx,
    stats: &mut GraphUnitStats,
) -> Result<(), ChannelReset> {
    stats.edges.edge_mut(edge).sends += 1;
    advance_clamped(env, &ctx.chain, TRANSFER);
    // Chains are synchronous in simulated time, so the queue is
    // transit-only: the message goes on the wire and comes off it within
    // the same exchange (the bounded-FIFO contract is pinned separately).
    let _ = graph.channel(edge).send(body);
    let fault = graph.channel(edge).fault_for(leg);
    let _ = graph.channel(edge).recv();
    let Some(kind) = fault else {
        stats.edges.edge_mut(edge).delivered += 1;
        return Ok(());
    };
    stats.edges.edge_mut(edge).faults += 1;
    stats.base.failures += 1;
    note_fault(ctx, env);
    match kind.behavior() {
        FaultBehavior::CrashReceiver | FaultBehavior::CrashSender => {
            stats.edges.edge_mut(edge).lost += 1;
            let endpoint = match edge {
                EdgeId::ClientWeb | EdgeId::IdeWeb => NodeId::Web,
                EdgeId::WebDb => NodeId::Db,
            };
            recover(graph, env, tree, plane, edge, endpoint, ctx, stats);
            Err(ChannelReset { edge })
        }
        FaultBehavior::LoseMessage => {
            stats.edges.edge_mut(edge).lost += 1;
            advance_clamped(env, &ctx.chain, LOST_TIMEOUT);
            stats.base.watchdog_fires += 1;
            Err(ChannelReset { edge })
        }
        FaultBehavior::Hang | FaultBehavior::HangAfterDeliver => {
            advance_clamped(env, &ctx.chain, HANG_DETECT);
            stats.base.watchdog_fires += 1;
            stats.edges.edge_mut(edge).lost += 1;
            let endpoint = match edge {
                EdgeId::ClientWeb | EdgeId::IdeWeb => NodeId::Web,
                EdgeId::WebDb => NodeId::Db,
            };
            recover(graph, env, tree, plane, edge, endpoint, ctx, stats);
            Err(ChannelReset { edge })
        }
    }
}

/// Runs the selected recovery plane for a fault on `edge` whose damaged
/// endpoint is `node`.
#[allow(clippy::too_many_arguments)]
fn recover(
    graph: &mut ServiceGraph,
    env: &mut Environment,
    tree: &mut RestartTree,
    plane: PlaneKind,
    edge: EdgeId,
    node: NodeId,
    ctx: &mut ChainCtx,
    stats: &mut GraphUnitStats,
) {
    stats.base.recoveries += 1;
    match plane {
        PlaneKind::Channel => {
            // Drain + reset only the faulted channel, microreboot only
            // the endpoint, charge the (small) fixed costs.
            let drained = graph.channel(edge).reset();
            let e = stats.edges.edge_mut(edge);
            e.resets += 1;
            e.lost += drained;
            graph.restore_node(node);
            advance_clamped(env, &ctx.chain, CHANNEL_RESET + ENDPOINT_REBOOT);
            stats.channel_recoveries += 1;
        }
        PlaneKind::Process => {
            let component = node.component();
            ctx.restarted = Some(component);
            let scope = tree.plan(component);
            let cost = tree.charge(scope);
            match scope {
                RebootScope::Component(i) => {
                    restart_component(graph, i, stats);
                    advance_clamped(env, &ctx.chain, cost);
                }
                RebootScope::Subtree(p) => {
                    for m in tree.members(p) {
                        restart_component(graph, m, stats);
                    }
                    advance_clamped(env, &ctx.chain, cost);
                }
                RebootScope::Process => {
                    for n in NodeId::ALL {
                        graph.restore_node(n);
                        count_resets(graph.reset_channels_of(n), n, stats);
                    }
                    advance_clamped(env, &ctx.chain, PROCESS_REBOOT);
                }
            }
            stats.node_restarts += 1;
        }
    }
}

/// Restarts one restart-tree component: restores its node's checkpoint
/// and tears down the node's incident channels (index 0 is the service
/// root, whose own restart is the members' job).
fn restart_component(graph: &mut ServiceGraph, component: usize, stats: &mut GraphUnitStats) {
    let node = match component {
        1 => NodeId::Web,
        2 => NodeId::Db,
        3 => NodeId::Ide,
        _ => return,
    };
    graph.restore_node(node);
    count_resets(graph.reset_channels_of(node), node, stats);
}

/// Books the resets and drain losses a node restart inflicted on its
/// incident channels.
fn count_resets(drained: u64, node: NodeId, stats: &mut GraphUnitStats) {
    for edge in EdgeId::ALL {
        let touches = match edge {
            EdgeId::ClientWeb => node == NodeId::Web,
            EdgeId::WebDb => node == NodeId::Web || node == NodeId::Db,
            EdgeId::IdeWeb => node == NodeId::Ide || node == NodeId::Web,
        };
        if touches {
            stats.edges.edge_mut(edge).resets += 1;
        }
    }
    // Drained messages were in flight on some incident edge; the graph
    // reports only the total, which the ledger books against the node's
    // primary edge.
    let primary = match node {
        NodeId::Web => EdgeId::ClientWeb,
        NodeId::Db => EdgeId::WebDb,
        NodeId::Ide => EdgeId::IdeWeb,
    };
    stats.edges.edge_mut(primary).lost += drained;
}

/// Notes the chain's first fault instant for the TTR span.
fn note_fault(ctx: &mut ChainCtx, env: &Environment) {
    ctx.first_fault.get_or_insert(env.now());
}

/// Books a client-level retry if budget and chain deadline allow.
fn retry_client(
    ctx: &mut ChainCtx,
    retry_budget: u32,
    env: &Environment,
    stats: &mut GraphUnitStats,
) -> bool {
    if ctx.client_retries < retry_budget && !ctx.chain.expired(env.now()) {
        ctx.client_retries += 1;
        stats.edges.edge_mut(EdgeId::ClientWeb).retried += 1;
        true
    } else {
        false
    }
}

/// Closes a successful chain: cascade depth, TTR, restart-tree settle.
fn finish_served(
    ctx: &mut ChainCtx,
    tree: &mut RestartTree,
    env: &Environment,
    stats: &mut GraphUnitStats,
    denied: bool,
) -> ChainEnd {
    if let Some(t0) = ctx.first_fault {
        let depth = if ctx.client_retries > 0 { 2 } else { 1 };
        stats.cascade_depth.record(depth);
        stats.ttr.record(env.now().saturating_since(t0).as_nanos());
        if let Some(component) = ctx.restarted.take() {
            tree.settle(component);
        }
    }
    ChainEnd::Served { denied }
}

/// Closes a defeated chain: user-visible loss is cascade depth 3.
fn finish_dropped(ctx: &mut ChainCtx, stats: &mut GraphUnitStats) -> ChainEnd {
    if ctx.first_fault.is_some() {
        stats.cascade_depth.record(3);
    }
    ChainEnd::Dropped
}

/// Charges `want` to the clock, clamped to the chain budget remaining —
/// a hop may detect, back off, and reboot only within what is left of
/// the whole chain's deadline.
fn advance_clamped(env: &mut Environment, chain: &ChainDeadline, want: Duration) {
    let charge = chain.clamp(env.now(), want);
    if charge > Duration::ZERO {
        env.advance(charge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{graph_plans, ChannelFaultKind};
    use crate::topology::ServiceGraph;
    use faultstudy_core::taxonomy::FaultClass;
    use faultstudy_sim::rng::split_seed;
    use faultstudy_traffic::arrival::ArrivalKind;

    fn params(requests: u64) -> TrafficParams {
        TrafficParams::standard(ArrivalKind::Poisson, requests)
    }

    fn unit(kind: ChannelFaultKind, plane: PlaneKind, budget: u32, seed: u64) -> GraphUnitStats {
        let mut env = Environment::builder().seed(split_seed(seed, 0)).build();
        let mut graph = ServiceGraph::new(&mut env);
        let plans = graph_plans(seed);
        let plan = plans.iter().find(|p| p.kind == kind).unwrap();
        run_graph(
            &mut env,
            &mut graph,
            plan,
            plane,
            budget,
            &params(60),
            split_seed(seed, 1),
            split_seed(seed, 2),
            split_seed(seed, 3),
        )
    }

    fn control_plan() -> GraphFaultPlan {
        GraphFaultPlan {
            name: "control".to_owned(),
            class: FaultClass::EnvDependentTransient,
            kind: ChannelFaultKind::S1SenderPageFault,
            events: Vec::new(),
        }
    }

    #[test]
    fn healthy_graph_answers_every_request() {
        let mut env = Environment::builder().seed(3).build();
        let mut graph = ServiceGraph::new(&mut env);
        let plan = control_plan();
        let stats =
            run_graph(&mut env, &mut graph, &plan, PlaneKind::Channel, 3, &params(80), 11, 12, 13);
        assert_eq!(stats.base.offered, 80);
        assert_eq!(stats.base.ok + stats.base.denied, 80);
        assert_eq!(stats.base.dropped, 0);
        assert_eq!(stats.base.failures, 0);
        assert!(stats.db_first > 0, "the mix reaches the db tier");
        assert!((stats.amplification() - 1.0).abs() < f64::EPSILON, "no retries, no amplification");
        assert!(stats.probes > 0, "the operator console stayed live");
        assert!(stats.cascade_depth.count() == 0);
    }

    #[test]
    fn graph_units_replay_byte_identically() {
        let a = unit(ChannelFaultKind::S6StateNotResetSend, PlaneKind::Process, 3, 21);
        let b = unit(ChannelFaultKind::S6StateNotResetSend, PlaneKind::Process, 3, 21);
        assert_eq!(a, b);
    }

    #[test]
    fn reply_loss_amplifies_db_load_under_retries() {
        let s = unit(ChannelFaultKind::S1SenderPageFault, PlaneKind::Channel, 3, 9);
        assert!(s.base.failures > 0, "the plan fired");
        assert!(s.db_seen > s.db_first, "retries re-drove the db tier");
        assert!(s.amplification() > 1.0);
        assert_eq!(s.base.dropped, 0, "budget 3 salvages every one-shot loss");
    }

    #[test]
    fn zero_retry_budget_turns_faults_into_user_visible_drops() {
        let s = unit(ChannelFaultKind::S1SenderPageFault, PlaneKind::Channel, 0, 9);
        assert!(s.base.dropped > 0, "no budget, no salvage");
        assert!(s.cascade_depth.max() == Some(3));
    }

    #[test]
    fn channel_plane_beats_process_plane_on_ttr_for_sticky_faults() {
        let ch = unit(ChannelFaultKind::R2StateNotResetRecv, PlaneKind::Channel, 3, 17);
        let pr = unit(ChannelFaultKind::R2StateNotResetRecv, PlaneKind::Process, 3, 17);
        assert!(ch.ttr.count() > 0 && pr.ttr.count() > 0, "both planes recovered chains");
        let (ch_p50, pr_p50) = (ch.ttr.p50().unwrap(), pr.ttr.p50().unwrap());
        assert!(
            ch_p50 < pr_p50,
            "channel reset + endpoint microreboot must undercut a node restart: {ch_p50} vs {pr_p50}"
        );
        assert_eq!(ch.base.dropped, 0, "per-channel recovery lost nothing");
        assert!(ch.channel_recoveries > 0);
        assert!(pr.node_restarts > 0);
    }

    #[test]
    fn defects_defeat_both_planes() {
        for plane in PlaneKind::ALL {
            let s = unit(ChannelFaultKind::R1UnmappedReceiverSlot, plane, 3, 5);
            assert!(s.base.dropped > 0, "{}: an EI defect survives every repair", plane.name());
            assert!(s.base.availability() < 1.0);
        }
    }

    #[test]
    fn single_node_graph_degenerates_into_the_open_loop_engine() {
        let drive = |degenerate: bool| {
            let mut env = Environment::builder().seed(41).build();
            let mut graph = ServiceGraph::single_node(&mut env);
            let stats = if degenerate {
                let plan = control_plan();
                run_graph(&mut env, &mut graph, &plan, PlaneKind::Channel, 2, &params(120), 7, 8, 9)
                    .base
            } else {
                let mut strategy = RestartRetry::new(2);
                let config = degenerate_config();
                let mix = web_mix();
                run_open_loop(
                    graph.node(NodeId::Web),
                    &mut env,
                    &mut strategy,
                    &config,
                    None,
                    &mix,
                    &params(120),
                    7,
                    8,
                )
            };
            (stats, env.now())
        };
        assert_eq!(drive(true), drive(false));
    }
}
