//! Bounded FIFO channels with injectable fault state.
//!
//! A [`Channel`] is the unit of inter-tier communication in the service
//! graph: a bounded message queue plus the three layers of fault state
//! the IPC corpus distinguishes — a *pending* one-shot fault consumed by
//! the next matching transfer (the paper's transient class), a *wedged*
//! sticky fault that persists until somebody resets the channel (the
//! nontransient class), and a *defect* that survives every reset (the
//! environment-independent control). [`Channel::reset`] is the
//! per-channel recovery action: it drains in-flight messages and clears
//! pending and wedged state, but — by construction — cannot clear a
//! defect, exactly as the paper's §2 argument demands of any generic
//! repair.
//!
//! Fault-free, a channel is a plain bounded FIFO: the differential
//! property test pins its delivery order byte-for-byte against a
//! `VecDeque` reference for arbitrary send/recv interleavings.

use crate::fault::{ChannelFaultKind, Leg, Persistence};
use serde::{Deserialize, Serialize};

/// One message in flight on a channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Monotone per-channel sequence number, assigned at send.
    pub seq: u64,
    /// Application payload (a request or reply body).
    pub body: String,
}

/// Why a send was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SendError {
    /// The bounded queue is at capacity; the sender must back off.
    Full,
}

/// A bounded FIFO channel between two graph tiers.
#[derive(Debug)]
pub struct Channel {
    name: &'static str,
    capacity: usize,
    queue: std::collections::VecDeque<Message>,
    next_seq: u64,
    /// One-shot fault consumed by the next transfer on its leg.
    pending: Option<ChannelFaultKind>,
    /// Sticky fault that persists until [`Channel::reset`].
    wedged: Option<ChannelFaultKind>,
    /// Defect that survives every reset — the EI control.
    defect: Option<ChannelFaultKind>,
    resets: u64,
}

/// Default bound of every graph channel; chains are synchronous in
/// simulated time, so depth never exceeds one in the engine — the bound
/// exists so the FIFO contract is honest under arbitrary drivers.
pub const CHANNEL_CAPACITY: usize = 8;

impl Channel {
    /// An empty, healthy channel.
    pub fn new(name: &'static str) -> Channel {
        Channel {
            name,
            capacity: CHANNEL_CAPACITY,
            queue: std::collections::VecDeque::new(),
            next_seq: 0,
            pending: None,
            wedged: None,
            defect: None,
            resets: 0,
        }
    }

    /// The channel's stable name (metrics label).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a message, assigning it the next sequence number.
    ///
    /// # Errors
    ///
    /// [`SendError::Full`] when the bounded queue is at capacity.
    pub fn send(&mut self, body: impl Into<String>) -> Result<u64, SendError> {
        if self.queue.len() >= self.capacity {
            return Err(SendError::Full);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push_back(Message { seq, body: body.into() });
        Ok(seq)
    }

    /// Dequeues the oldest message, if any.
    pub fn recv(&mut self) -> Option<Message> {
        self.queue.pop_front()
    }

    /// Arms `kind` on this channel according to its persistence layer:
    /// one-shot faults load [`pending`](Channel::send), sticky faults
    /// wedge the channel, defects install permanently. Re-arming an
    /// already-armed kind is idempotent.
    pub fn arm(&mut self, kind: ChannelFaultKind) {
        match kind.persistence() {
            Persistence::OneShot => self.pending = Some(kind),
            Persistence::Sticky => self.wedged = Some(kind),
            Persistence::Defect => self.defect = Some(kind),
        }
    }

    /// The fault, if any, that fires on a transfer over `leg` right now.
    ///
    /// Consult order is defect, then wedged, then pending — the most
    /// persistent layer wins, and only a consumed one-shot is cleared by
    /// the consult itself.
    pub fn fault_for(&mut self, leg: Leg) -> Option<ChannelFaultKind> {
        if let Some(k) = self.defect {
            if k.site().leg == leg {
                return Some(k);
            }
        }
        if let Some(k) = self.wedged {
            if k.site().leg == leg {
                return Some(k);
            }
        }
        if let Some(k) = self.pending {
            if k.site().leg == leg {
                self.pending = None;
                return Some(k);
            }
        }
        None
    }

    /// Per-channel recovery: drains in-flight messages and clears pending
    /// and wedged fault state. Returns the number of messages the drain
    /// lost. A defect survives — resetting channel state cannot fix code.
    pub fn reset(&mut self) -> u64 {
        let lost = self.queue.len() as u64;
        self.queue.clear();
        self.pending = None;
        self.wedged = None;
        self.resets += 1;
        lost
    }

    /// Resets performed on this channel so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Whether a sticky fault currently wedges the channel.
    pub fn is_wedged(&self) -> bool {
        self.wedged.is_some()
    }

    /// Whether a permanent defect is installed.
    pub fn has_defect(&self) -> bool {
        self.defect.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_delivery_in_send_order() {
        let mut ch = Channel::new("t");
        for i in 0..5 {
            ch.send(format!("m{i}")).unwrap();
        }
        for i in 0..5 {
            let m = ch.recv().unwrap();
            assert_eq!(m.seq, i);
            assert_eq!(m.body, format!("m{i}"));
        }
        assert!(ch.recv().is_none());
    }

    #[test]
    fn bounded_queue_refuses_past_capacity() {
        let mut ch = Channel::new("t");
        for _ in 0..CHANNEL_CAPACITY {
            ch.send("x").unwrap();
        }
        assert_eq!(ch.send("overflow"), Err(SendError::Full));
        ch.recv().unwrap();
        assert!(ch.send("now fits").is_ok());
    }

    #[test]
    fn one_shot_fault_is_consumed_by_the_matching_leg() {
        let mut ch = Channel::new("t");
        ch.arm(ChannelFaultKind::R4NullRecvBuffer); // one-shot, request leg
        assert_eq!(ch.fault_for(Leg::Reply), None, "wrong leg does not consume");
        assert_eq!(ch.fault_for(Leg::Request), Some(ChannelFaultKind::R4NullRecvBuffer));
        assert_eq!(ch.fault_for(Leg::Request), None, "consumed");
    }

    #[test]
    fn sticky_fault_persists_until_reset_and_defect_survives_it() {
        let mut ch = Channel::new("t");
        ch.arm(ChannelFaultKind::S6StateNotResetSend); // sticky, reply leg
        assert!(ch.fault_for(Leg::Reply).is_some());
        assert!(ch.fault_for(Leg::Reply).is_some(), "sticky repeats");
        ch.send("in flight").unwrap();
        assert_eq!(ch.reset(), 1, "the drain lost the queued message");
        assert_eq!(ch.fault_for(Leg::Reply), None, "reset cleared the wedge");

        ch.arm(ChannelFaultKind::S3UnmappedMsgSend); // defect, reply leg
        ch.reset();
        assert_eq!(
            ch.fault_for(Leg::Reply),
            Some(ChannelFaultKind::S3UnmappedMsgSend),
            "a defect survives every reset"
        );
        assert_eq!(ch.resets(), 2);
    }
}
