//! Distributed IPC fault plane: a deterministic service graph with
//! channel-level fault injection, cascade accounting, and per-channel
//! recovery raced against process supervision.
//!
//! The paper's study is entirely intra-process; this crate adds the
//! distributed dimension its method could not reach. The three simulated
//! applications are wired into a tiered service — clients → miniweb →
//! minidb, with minide as an operator console — and every request
//! crosses bounded [`channel`]s in simulated time, scheduled on the
//! timing wheel. On the wire rides the Theseus/MINIX3 IPC fault corpus
//! ([`fault`]: the twelve s1–s7/r1–r5 kinds), each classified under the
//! paper's transient / nontransient / environment-independent taxonomy
//! and replayed byte-identically from `split_seed` plans. The [`engine`]
//! races two recovery planes over the same traffic: process-level
//! supervision (a restart tree rebooting graph nodes) versus per-channel
//! recovery (drain + reset the channel, microreboot only the endpoint,
//! propagate a typed [`ChannelReset`] upstream for idempotent retry) —
//! with cascade-depth and downstream-amplification accounting that the
//! `faultstudy graph` campaign folds deterministically.
//!
//! - [`channel`] — bounded FIFO channels with three layers of injectable
//!   fault state (one-shot / sticky / defect).
//! - [`fault`] — the twelve-kind IPC corpus and its scheduled plans.
//! - [`topology`] — the service graph and its restart-tree component view.
//! - [`engine`] — the open-loop chain engine, the two recovery planes,
//!   and the per-unit cascade/amplification ledger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod engine;
pub mod fault;
pub mod topology;

pub use channel::{Channel, Message, SendError, CHANNEL_CAPACITY};
pub use engine::{
    degenerate_config, graph_mix, run_graph, web_mix, ChannelReset, EdgeStats, GraphEdges,
    GraphRequest, GraphUnitStats, PlaneKind, CHAIN_BUDGET,
};
pub use fault::{
    graph_plans, ChannelFaultKind, EdgeId, FaultBehavior, FaultSite, GraphFaultEvent,
    GraphFaultPlan, Leg, Persistence,
};
pub use topology::{NodeId, ServiceGraph, GRAPH_COMPONENTS};
