//! The IPC fault corpus: the twelve Theseus/MINIX3 channel fault kinds,
//! classified under the paper's taxonomy and scheduled as deterministic
//! per-channel injection plans.
//!
//! The kinds port the send-side (s1–s7) and receive-side (r1–r5) faults
//! of the Theseus/MINIX3 IPC comparison: corrupt or unmapped message
//! pointers, unmapped sender/receiver slots, wait-queue corruption,
//! channel-state-not-reset, and sender-state-not-updated hangs. Each kind
//! carries three orthogonal facts:
//!
//! - its **class** under the paper's taxonomy — does the condition go
//!   away by itself ([transient](FaultClass::EnvDependentTransient)),
//!   only under an explicit repair
//!   ([nontransient](FaultClass::EnvDependentNonTransient)), or never
//!   ([environment-independent](FaultClass::EnvironmentIndependent));
//! - its **persistence** layer on the channel ([`Persistence`]), which is
//!   how the class is *mechanised*: one-shot faults self-clear, sticky
//!   faults clear on a channel reset, defects survive everything;
//! - its **site** ([`FaultSite`]) — which edge and transfer leg of the
//!   client → miniweb → minidb chain it corrupts — and its **behavior**
//!   ([`FaultBehavior`]) when a transfer trips over it.
//!
//! A [`GraphFaultPlan`] is data, like PR 4's `InjectionPlan`: a named
//! schedule of `(simulated time, kind)` events, a pure function of the
//! generating seed, replayed byte-identically by the engine.

use faultstudy_core::taxonomy::FaultClass;
use faultstudy_sim::rng::{split_seed, DetRng, Xoshiro256StarStar};
use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The two transfer legs of one request/reply exchange over a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Leg {
    /// Caller → callee: the request travels down the chain.
    Request,
    /// Callee → caller: the reply travels back up.
    Reply,
}

/// The directed edges of the service topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeId {
    /// Clients → miniweb: every user request enters here.
    ClientWeb,
    /// Miniweb → minidb: the data-plane sub-call.
    WebDb,
    /// Minide → miniweb: the operator console's probe channel.
    IdeWeb,
}

impl EdgeId {
    /// Every edge, in index order.
    pub const ALL: [EdgeId; 3] = [EdgeId::ClientWeb, EdgeId::WebDb, EdgeId::IdeWeb];

    /// Stable short name (metrics label).
    pub fn name(self) -> &'static str {
        match self {
            EdgeId::ClientWeb => "client-web",
            EdgeId::WebDb => "web-db",
            EdgeId::IdeWeb => "ide-web",
        }
    }
}

/// Where on the chain a fault kind lives: which edge, which leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSite {
    /// The corrupted channel.
    pub edge: EdgeId,
    /// The transfer leg the corruption fires on.
    pub leg: Leg,
}

/// How long a fault stays armed on its channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Persistence {
    /// Consumed by the next matching transfer — the transient mechanism.
    OneShot,
    /// Persists until the channel is reset — the nontransient mechanism.
    Sticky,
    /// Survives every reset — the environment-independent control.
    Defect,
}

/// What happens to the transfer that trips over the fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultBehavior {
    /// The sending endpoint dies mid-exchange; the message is lost and
    /// the sender needs recovery before the exchange can be retried.
    CrashSender,
    /// The receiving endpoint dies on delivery; the message is lost and
    /// the receiver needs recovery.
    CrashReceiver,
    /// The message vanishes silently; the waiting side only learns from
    /// its lost-message timeout. Work already done below the loss is
    /// redone on retry — the amplification mechanism.
    LoseMessage,
    /// The channel wedges: the transfer never completes and the waiting
    /// side's hang detector converts the silence into a failure.
    Hang,
    /// The message IS delivered, but the sender's bookkeeping says it was
    /// not: the sender hangs awaiting an ack it already got and re-offers
    /// the payload — a duplicate — once recovered.
    HangAfterDeliver,
}

/// The twelve IPC fault kinds of the Theseus/MINIX3 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChannelFaultKind {
    /// s1 — page fault in the sender mid-transmit: the db-side endpoint
    /// crashes after doing the work, the reply is lost.
    S1SenderPageFault,
    /// s2 — null message pointer at send: the reply vanishes silently;
    /// the db already committed the work, so every retry redoes it.
    S2NullMsgSend,
    /// s3 — unmapped message pointer at send: a code defect; the sender
    /// crashes on every transmit, no reset helps.
    S3UnmappedMsgSend,
    /// s4 — unmapped sender slot: a code defect in the sender's channel
    /// bookkeeping; crashes the sender on every transmit.
    S4UnmappedSenderSlot,
    /// s5 — unmapped wait-queue entry at send: corrupted channel state
    /// crashes the sender until the channel is reset.
    S5UnmappedWaitQueueSend,
    /// s6 — channel state not reset before send: the transfer wedges; the
    /// waiting side hangs until its detector fires, and every later
    /// transfer wedges too until the channel is reset.
    S6StateNotResetSend,
    /// s7 — sender state not updated after a successful transmit: the
    /// reply is delivered *and* the sender hangs re-offering it — a
    /// duplicate — until recovered; sticky until the channel is reset.
    S7SenderStateNotUpdated,
    /// r1 — unmapped receiver slot: a code defect; the receiver crashes
    /// on every delivery, no reset helps.
    R1UnmappedReceiverSlot,
    /// r2 — channel state not reset at receive: corrupted receive state
    /// crashes the receiver until the channel is reset.
    R2StateNotResetRecv,
    /// r3 — page fault in the receiver on delivery: the receiver crashes
    /// once; the next delivery is clean.
    R3ReceiverPageFault,
    /// r4 — null receive buffer: the request vanishes silently; the
    /// client's lost-message timeout is the only signal.
    R4NullRecvBuffer,
    /// r5 — unmapped wait-queue entry at receive: corrupted wait-queue
    /// state crashes the receiver until the channel is reset.
    R5UnmappedWaitQueueRecv,
}

impl ChannelFaultKind {
    /// Every kind, send-side faults first — 12 in all.
    pub const ALL: [ChannelFaultKind; 12] = [
        ChannelFaultKind::S1SenderPageFault,
        ChannelFaultKind::S2NullMsgSend,
        ChannelFaultKind::S3UnmappedMsgSend,
        ChannelFaultKind::S4UnmappedSenderSlot,
        ChannelFaultKind::S5UnmappedWaitQueueSend,
        ChannelFaultKind::S6StateNotResetSend,
        ChannelFaultKind::S7SenderStateNotUpdated,
        ChannelFaultKind::R1UnmappedReceiverSlot,
        ChannelFaultKind::R2StateNotResetRecv,
        ChannelFaultKind::R3ReceiverPageFault,
        ChannelFaultKind::R4NullRecvBuffer,
        ChannelFaultKind::R5UnmappedWaitQueueRecv,
    ];

    /// Stable short name (plan name, metrics label).
    pub fn name(self) -> &'static str {
        match self {
            ChannelFaultKind::S1SenderPageFault => "s1-sender-page-fault",
            ChannelFaultKind::S2NullMsgSend => "s2-null-msg-send",
            ChannelFaultKind::S3UnmappedMsgSend => "s3-unmapped-msg-send",
            ChannelFaultKind::S4UnmappedSenderSlot => "s4-unmapped-sender-slot",
            ChannelFaultKind::S5UnmappedWaitQueueSend => "s5-wait-queue-send",
            ChannelFaultKind::S6StateNotResetSend => "s6-state-not-reset-send",
            ChannelFaultKind::S7SenderStateNotUpdated => "s7-sender-not-updated",
            ChannelFaultKind::R1UnmappedReceiverSlot => "r1-unmapped-recv-slot",
            ChannelFaultKind::R2StateNotResetRecv => "r2-state-not-reset-recv",
            ChannelFaultKind::R3ReceiverPageFault => "r3-receiver-page-fault",
            ChannelFaultKind::R4NullRecvBuffer => "r4-null-recv-buffer",
            ChannelFaultKind::R5UnmappedWaitQueueRecv => "r5-wait-queue-recv",
        }
    }

    /// The paper class of the condition the kind creates.
    ///
    /// One-shot corruptions (a stray page fault, a single scribbled
    /// pointer) are transient; corrupted channel state that an explicit
    /// reset repairs is nontransient; wrong code is environment-
    /// independent. The split is 4 transient + 5 nontransient + 3 EI.
    pub fn class(self) -> FaultClass {
        match self.persistence() {
            Persistence::OneShot => FaultClass::EnvDependentTransient,
            Persistence::Sticky => FaultClass::EnvDependentNonTransient,
            Persistence::Defect => FaultClass::EnvironmentIndependent,
        }
    }

    /// How long the fault stays armed on its channel.
    pub fn persistence(self) -> Persistence {
        match self {
            ChannelFaultKind::S1SenderPageFault
            | ChannelFaultKind::S2NullMsgSend
            | ChannelFaultKind::R3ReceiverPageFault
            | ChannelFaultKind::R4NullRecvBuffer => Persistence::OneShot,
            ChannelFaultKind::S5UnmappedWaitQueueSend
            | ChannelFaultKind::S6StateNotResetSend
            | ChannelFaultKind::S7SenderStateNotUpdated
            | ChannelFaultKind::R2StateNotResetRecv
            | ChannelFaultKind::R5UnmappedWaitQueueRecv => Persistence::Sticky,
            ChannelFaultKind::S3UnmappedMsgSend
            | ChannelFaultKind::S4UnmappedSenderSlot
            | ChannelFaultKind::R1UnmappedReceiverSlot => Persistence::Defect,
        }
    }

    /// Where the fault lives. Send-side kinds corrupt the reply leg of
    /// the web → db edge (the sender there is minidb, so their crashes
    /// land two tiers deep); receive-side kinds corrupt the request leg
    /// of the client → web edge (the receiver is miniweb, one tier deep).
    pub fn site(self) -> FaultSite {
        match self {
            ChannelFaultKind::S1SenderPageFault
            | ChannelFaultKind::S2NullMsgSend
            | ChannelFaultKind::S3UnmappedMsgSend
            | ChannelFaultKind::S4UnmappedSenderSlot
            | ChannelFaultKind::S5UnmappedWaitQueueSend
            | ChannelFaultKind::S6StateNotResetSend
            | ChannelFaultKind::S7SenderStateNotUpdated => {
                FaultSite { edge: EdgeId::WebDb, leg: Leg::Reply }
            }
            ChannelFaultKind::R1UnmappedReceiverSlot
            | ChannelFaultKind::R2StateNotResetRecv
            | ChannelFaultKind::R3ReceiverPageFault
            | ChannelFaultKind::R4NullRecvBuffer
            | ChannelFaultKind::R5UnmappedWaitQueueRecv => {
                FaultSite { edge: EdgeId::ClientWeb, leg: Leg::Request }
            }
        }
    }

    /// What a transfer that trips over the fault experiences.
    pub fn behavior(self) -> FaultBehavior {
        match self {
            ChannelFaultKind::S1SenderPageFault
            | ChannelFaultKind::S3UnmappedMsgSend
            | ChannelFaultKind::S4UnmappedSenderSlot
            | ChannelFaultKind::S5UnmappedWaitQueueSend => FaultBehavior::CrashSender,
            ChannelFaultKind::S2NullMsgSend | ChannelFaultKind::R4NullRecvBuffer => {
                FaultBehavior::LoseMessage
            }
            ChannelFaultKind::S6StateNotResetSend => FaultBehavior::Hang,
            ChannelFaultKind::S7SenderStateNotUpdated => FaultBehavior::HangAfterDeliver,
            ChannelFaultKind::R1UnmappedReceiverSlot
            | ChannelFaultKind::R2StateNotResetRecv
            | ChannelFaultKind::R3ReceiverPageFault
            | ChannelFaultKind::R5UnmappedWaitQueueRecv => FaultBehavior::CrashReceiver,
        }
    }
}

impl fmt::Display for ChannelFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled channel-fault arming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphFaultEvent {
    /// Simulated instant at which the fault arms on its site's channel.
    pub at: SimTime,
    /// The kind that arms.
    pub kind: ChannelFaultKind,
}

/// A named, classed channel-fault plan: one kind, scheduled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphFaultPlan {
    /// Stable plan name (the kind's name).
    pub name: String,
    /// The paper class of the injected fault.
    pub class: FaultClass,
    /// The fault kind every event of this plan arms.
    pub kind: ChannelFaultKind,
    /// Events in schedule order.
    pub events: Vec<GraphFaultEvent>,
}

impl GraphFaultPlan {
    /// The last scheduled event time, or zero for an eventless plan.
    pub fn horizon(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, |e| e.at)
    }
}

/// Jittered event time for slot `i`: deterministic, strictly increasing
/// in `i`, early in the unit (5–60 ms) so even the small per-unit request
/// shares of a campaign meet every armed fault while sessions are still
/// arriving.
fn slot(rng: &mut Xoshiro256StarStar, i: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(5 + 18 * i + rng.below(4))
}

/// The twelve-plan IPC suite, a pure function of `seed`: one plan per
/// [`ChannelFaultKind`], in [`ChannelFaultKind::ALL`] order.
///
/// One-shot kinds get three armings (each consumed by one transfer, so a
/// single event would be one data point); sticky kinds get two (the first
/// wedge is cleared by a recovery reset, the second re-wedges to exercise
/// the plane again); defects get one (it never clears). Each plan's
/// schedule derives from `split_seed(seed, index)`, so plans replay
/// byte-identically and stay independent of each other.
pub fn graph_plans(seed: u64) -> Vec<GraphFaultPlan> {
    ChannelFaultKind::ALL
        .iter()
        .enumerate()
        .map(|(index, &kind)| {
            let mut rng = Xoshiro256StarStar::seed_from(split_seed(seed, index as u64));
            let armings = match kind.persistence() {
                Persistence::OneShot => 3,
                Persistence::Sticky => 2,
                Persistence::Defect => 1,
            };
            GraphFaultPlan {
                name: kind.name().to_owned(),
                class: kind.class(),
                kind,
                events: (0..armings)
                    .map(|i| GraphFaultEvent { at: slot(&mut rng, i), kind })
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_shape_matches_the_taxonomy_split() {
        let plans = graph_plans(1);
        assert_eq!(plans.len(), 12);
        let count = |class| plans.iter().filter(|p| p.class == class).count();
        assert_eq!(count(FaultClass::EnvDependentTransient), 4);
        assert_eq!(count(FaultClass::EnvDependentNonTransient), 5);
        assert_eq!(count(FaultClass::EnvironmentIndependent), 3);
        let mut names: Vec<_> = plans.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "plan names are unique");
    }

    #[test]
    fn plans_are_a_pure_function_of_the_seed() {
        assert_eq!(graph_plans(9), graph_plans(9));
        assert_ne!(graph_plans(9), graph_plans(10), "seed reaches the schedules");
    }

    #[test]
    fn schedules_are_ordered_and_early() {
        for plan in graph_plans(3) {
            let mut prev = SimTime::ZERO;
            for ev in &plan.events {
                assert!(ev.at > prev, "{}: schedule out of order", plan.name);
                assert!(
                    ev.at <= SimTime::ZERO + Duration::from_millis(60),
                    "{}: event past the arrival ramp",
                    plan.name
                );
                prev = ev.at;
            }
        }
    }

    #[test]
    fn send_faults_live_on_the_db_reply_leg_and_recv_faults_on_the_client_request_leg() {
        for kind in ChannelFaultKind::ALL {
            let site = kind.site();
            if kind.name().starts_with('s') {
                assert_eq!(site.edge, EdgeId::WebDb);
                assert_eq!(site.leg, Leg::Reply);
            } else {
                assert_eq!(site.edge, EdgeId::ClientWeb);
                assert_eq!(site.leg, Leg::Request);
            }
        }
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plans = graph_plans(11);
        let json = serde_json::to_string(&plans).unwrap();
        let back: Vec<GraphFaultPlan> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plans);
    }
}
