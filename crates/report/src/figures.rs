//! Text rendering of Figures 1–3 as stacked horizontal bars.
//!
//! Each bar is a release (Figures 1 and 3) or a month (Figure 2); the
//! segments are `#` for environment-independent, `N` for nontransient,
//! and `T` for transient faults, so the figure's two headline properties —
//! stable environment-independent proportion, growing totals — are visible
//! directly in the output.

use faultstudy_core::study::ClassCounts;
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_core::timeline::{ReleaseSeries, TimeSeries};

fn bar(counts: &ClassCounts) -> String {
    let mut s = String::new();
    s.push_str(&"#".repeat(counts.get(FaultClass::EnvironmentIndependent) as usize));
    s.push_str(&"N".repeat(counts.get(FaultClass::EnvDependentNonTransient) as usize));
    s.push_str(&"T".repeat(counts.get(FaultClass::EnvDependentTransient) as usize));
    s
}

/// Renders a per-release distribution (Figures 1 and 3).
///
/// # Example
///
/// ```
/// use faultstudy_core::taxonomy::AppKind;
/// use faultstudy_core::timeline::by_release;
/// use faultstudy_corpus::paper_study;
/// use faultstudy_report::render_release_figure;
///
/// let series = by_release(&paper_study(), AppKind::Mysql);
/// let text = render_release_figure(&series);
/// assert!(text.contains("3.23.0"));
/// ```
pub fn render_release_figure(series: &ReleaseSeries) -> String {
    let mut out = format!(
        "Figure {}: Distribution of faults for {} over software releases\n\
         (# environment-independent, N env-dep-nontransient, T env-dep-transient)\n",
        series.app.figure_number(),
        series.app.name()
    );
    let width = series.buckets.iter().map(|b| b.release.len()).max().unwrap_or(0);
    for b in &series.buckets {
        out.push_str(&format!(
            "{:>width$} | {:<24} ({})\n",
            b.release,
            bar(&b.counts),
            b.counts.total(),
        ));
    }
    out
}

/// Renders a per-month distribution (Figure 2).
pub fn render_time_figure(series: &TimeSeries) -> String {
    let mut out = format!(
        "Figure {}: Distribution of faults for {} over time\n\
         (# environment-independent, N env-dep-nontransient, T env-dep-transient)\n",
        series.app.figure_number(),
        series.app.name()
    );
    for (ym, counts) in &series.buckets {
        out.push_str(&format!("{ym} | {:<12} ({})\n", bar(counts), counts.total()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::AppKind;
    use faultstudy_core::timeline::{by_month, by_release};
    use faultstudy_corpus::paper_study;

    #[test]
    fn apache_figure_shows_growing_bars() {
        let study = paper_study();
        let text = render_release_figure(&by_release(&study, AppKind::Apache));
        assert!(text.contains("Figure 1"));
        for release in ["1.2.4", "1.3.0", "1.3.4", "1.3.9"] {
            assert!(text.contains(release), "{release}");
        }
        assert!(text.contains("(6)"));
        assert!(text.contains("(19)"));
    }

    #[test]
    fn gnome_figure_is_monthly() {
        let study = paper_study();
        let text = render_time_figure(&by_month(&study, AppKind::Gnome));
        assert!(text.contains("Figure 2"));
        assert!(text.contains("1998-09"));
        assert!(text.contains("1999-07"));
        // The dip month has a single fault.
        assert!(text.contains("(1)"));
    }

    #[test]
    fn mysql_figure_marks_classes() {
        let study = paper_study();
        let text = render_release_figure(&by_release(&study, AppKind::Mysql));
        assert!(text.contains("Figure 3"));
        assert!(text.contains('N'), "nontransient segment rendered");
        assert!(text.contains('T'), "transient segment rendered");
        assert!(text.contains('#'));
    }

    #[test]
    fn bar_orders_segments() {
        let mut c = ClassCounts::default();
        c.bump(FaultClass::EnvDependentTransient);
        c.bump(FaultClass::EnvironmentIndependent);
        c.bump(FaultClass::EnvironmentIndependent);
        c.bump(FaultClass::EnvDependentNonTransient);
        assert_eq!(bar(&c), "##NT");
    }
}
