//! The §7 reconciliation with Lee & Iyer's Tandem GUARDIAN study \[Lee93\].
//!
//! Lee & Iyer report that 82% of Tandem software faults were recovered by
//! the process-pair mechanism — far above this paper's 5–14% transient
//! fraction. §7 reconciles the two by removing, from the 82%, the
//! recoveries that a *purely generic* pair could not have produced:
//!
//! 1. recoveries because the backup did **not** start from the same state
//!    as the failed primary (Lee & Iyer's "memory state" and "error
//!    latency" categories);
//! 2. recoveries because the backup did **not** re-execute the requested
//!    task;
//! 3. "recoveries" of faults that only ever affected the backup process
//!    (bugs introduced by the pair mechanism itself).
//!
//! What remains — 29% — is the transient fraction of genuine operating-
//! system faults, still above the paper's application numbers because
//! Tandem software is tested harder and an OS interacts more with the
//! hardware environment.
//!
//! The paper states the endpoints (82% and 29%) and the category *kinds*
//! but not the exact per-category percentages; the defaults here are a
//! documented reconstruction that sums to the published endpoints, and
//! the arithmetic is exposed so other splits can be explored.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The reconciliation inputs, in percentage points of all Tandem software
/// faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TandemReconciliation {
    /// Faults recovered by the deployed process-pair mechanism (82).
    pub raw_recovered: f64,
    /// Points attributable to the backup starting from different state
    /// (memory state + error latency).
    pub backup_state_divergence: f64,
    /// Points attributable to the backup not re-executing the task.
    pub task_not_reexecuted: f64,
    /// Points attributable to faults affecting only the backup process.
    pub backup_only_faults: f64,
}

impl Default for TandemReconciliation {
    fn default() -> Self {
        // Reconstructed split: 82 - 30 - 13 - 10 = 29, the §7 endpoints.
        TandemReconciliation {
            raw_recovered: 82.0,
            backup_state_divergence: 30.0,
            task_not_reexecuted: 13.0,
            backup_only_faults: 10.0,
        }
    }
}

impl TandemReconciliation {
    /// The transient fraction left after removing the non-generic
    /// recovery categories (§7's 29%).
    pub fn pure_generic_transient(&self) -> f64 {
        (self.raw_recovered
            - self.backup_state_divergence
            - self.task_not_reexecuted
            - self.backup_only_faults)
            .max(0.0)
    }

    /// Ratio between the raw field number and the pure-generic number —
    /// how much the deployed mechanism's application-specific help
    /// inflated apparent generic coverage.
    pub fn inflation_factor(&self) -> f64 {
        let pure = self.pure_generic_transient();
        if pure == 0.0 {
            f64::INFINITY
        } else {
            self.raw_recovered / pure
        }
    }

    /// Validates that the split is internally consistent: all categories
    /// non-negative and not exceeding the raw total.
    pub fn is_consistent(&self) -> bool {
        let parts =
            [self.backup_state_divergence, self.task_not_reexecuted, self.backup_only_faults];
        self.raw_recovered >= 0.0
            && parts.iter().all(|p| *p >= 0.0)
            && parts.iter().sum::<f64>() <= self.raw_recovered
    }
}

impl fmt::Display for TandemReconciliation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Lee & Iyer [Lee93] reconciliation (percentage points):")?;
        writeln!(f, "  recovered by deployed process pairs:   {:>5.1}", self.raw_recovered)?;
        writeln!(
            f,
            "  - backup started from different state: {:>5.1}",
            self.backup_state_divergence
        )?;
        writeln!(f, "  - task not re-executed by backup:      {:>5.1}", self.task_not_reexecuted)?;
        writeln!(f, "  - faults affecting only the backup:    {:>5.1}", self.backup_only_faults)?;
        writeln!(
            f,
            "  = transient under purely generic pairs: {:>4.1}",
            self.pure_generic_transient()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_the_section_7_endpoints() {
        let r = TandemReconciliation::default();
        assert_eq!(r.raw_recovered, 82.0);
        assert_eq!(r.pure_generic_transient(), 29.0);
        assert!(r.is_consistent());
    }

    #[test]
    fn inflation_factor_is_nearly_3x() {
        let f = TandemReconciliation::default().inflation_factor();
        assert!((f - 82.0 / 29.0).abs() < 1e-12);
        assert!(f > 2.8 && f < 2.9);
    }

    #[test]
    fn custom_split_arithmetic() {
        let r = TandemReconciliation {
            raw_recovered: 100.0,
            backup_state_divergence: 50.0,
            task_not_reexecuted: 25.0,
            backup_only_faults: 25.0,
        };
        assert_eq!(r.pure_generic_transient(), 0.0);
        assert_eq!(r.inflation_factor(), f64::INFINITY);
        assert!(r.is_consistent());
    }

    #[test]
    fn inconsistent_split_detected() {
        let r = TandemReconciliation {
            raw_recovered: 50.0,
            backup_state_divergence: 40.0,
            task_not_reexecuted: 20.0,
            backup_only_faults: 0.0,
        };
        assert!(!r.is_consistent());
        assert_eq!(r.pure_generic_transient(), 0.0, "clamped at zero");
        let neg = TandemReconciliation { backup_only_faults: -1.0, ..Default::default() };
        assert!(!neg.is_consistent());
    }

    #[test]
    fn display_shows_the_chain() {
        let text = TandemReconciliation::default().to_string();
        assert!(text.contains("82.0"));
        assert!(text.contains("29.0"));
        assert!(text.contains("different state"));
    }
}
