//! The §7 related-work comparison: timing/synchronization fault fractions
//! across field studies.
//!
//! The paper argues its transient fraction is consistent with prior work:
//! Sullivan & Chillarege found 5–13% timing/synchronization faults in MVS,
//! DB2, and IMS [Sullivan91, Sullivan92]; Lee & Iyer found 14% in Tandem
//! GUARDIAN \[Lee93\]; this study finds 9% across its three applications
//! (12 of 139). This module renders that comparison and checks the
//! consistency claim.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One study's timing/synchronization (≈ transient) fault fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyPoint {
    /// Citation label.
    pub study: String,
    /// Software examined.
    pub subject: String,
    /// Low end of the reported fraction, percent.
    pub low_pct: f64,
    /// High end of the reported fraction, percent.
    pub high_pct: f64,
}

impl StudyPoint {
    fn new(study: &str, subject: &str, low_pct: f64, high_pct: f64) -> StudyPoint {
        StudyPoint { study: study.to_owned(), subject: subject.to_owned(), low_pct, high_pct }
    }

    /// Whether `pct` is within (or overlaps) the study's reported range,
    /// with a one-point tolerance for rounding.
    pub fn consistent_with(&self, pct: f64) -> bool {
        pct >= self.low_pct - 1.0 && pct <= self.high_pct + 1.0
    }
}

/// The comparison table of §7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelatedWork {
    /// Prior studies' points.
    pub prior: Vec<StudyPoint>,
    /// This paper's measured transient percentage.
    pub this_study_pct: f64,
}

impl RelatedWork {
    /// The published numbers: Sullivan & Chillarege 5–13%, Lee & Iyer 14%,
    /// and this study's transient percentage (pass the measured value,
    /// normally 12/139 ≈ 8.6%).
    pub fn paper(this_study_pct: f64) -> RelatedWork {
        RelatedWork {
            prior: vec![
                StudyPoint::new("[Sullivan91/92]", "MVS, DB2, IMS", 5.0, 13.0),
                StudyPoint::new("[Lee93]", "Tandem GUARDIAN", 14.0, 14.0),
            ],
            this_study_pct,
        }
    }

    /// §7's claim: every prior study's range is within a factor of ~1.6 of
    /// this study's number, i.e. "most faults in released software are
    /// non-transient" holds everywhere.
    pub fn all_agree_faults_are_mostly_nontransient(&self) -> bool {
        self.this_study_pct < 20.0 && self.prior.iter().all(|p| p.high_pct < 20.0)
    }
}

impl fmt::Display for RelatedWork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Timing/synchronization (transient) fault fractions across studies:")?;
        for p in &self.prior {
            if (p.low_pct - p.high_pct).abs() < f64::EPSILON {
                writeln!(f, "  {:<16} {:<18} {:>5.1}%", p.study, p.subject, p.low_pct)?;
            } else {
                writeln!(
                    f,
                    "  {:<16} {:<18} {:>4.1}%-{:.1}%",
                    p.study, p.subject, p.low_pct, p.high_pct
                )?;
            }
        }
        writeln!(
            f,
            "  {:<16} {:<18} {:>5.1}%",
            "this study", "Apache/GNOME/MySQL", self.this_study_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_comparison_is_internally_consistent() {
        let rw = RelatedWork::paper(12.0 / 139.0 * 100.0);
        assert!(rw.all_agree_faults_are_mostly_nontransient());
        // This study's number sits inside Sullivan & Chillarege's range.
        assert!(rw.prior[0].consistent_with(rw.this_study_pct));
    }

    #[test]
    fn consistency_tolerance() {
        let p = StudyPoint::new("x", "y", 5.0, 13.0);
        assert!(p.consistent_with(5.0));
        assert!(p.consistent_with(13.9), "one point of rounding slack");
        assert!(!p.consistent_with(20.0));
        assert!(!p.consistent_with(2.0));
    }

    #[test]
    fn a_hypothetical_heisenbug_majority_would_break_the_claim() {
        // If most faults were transient (the [Gray86] hypothesis), the
        // cross-study agreement check fails — the paper's refutation.
        let rw = RelatedWork { this_study_pct: 60.0, ..RelatedWork::paper(9.0) };
        assert!(!rw.all_agree_faults_are_mostly_nontransient());
    }

    #[test]
    fn display_lists_all_rows() {
        let text = RelatedWork::paper(8.6).to_string();
        assert!(text.contains("Sullivan"));
        assert!(text.contains("Lee93"));
        assert!(text.contains("this study"));
        assert!(text.contains("Tandem"));
    }
}
