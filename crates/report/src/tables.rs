//! Text rendering of Tables 1–3 and the §5.4 discussion.

use faultstudy_core::study::{Discussion, Study};
use faultstudy_core::taxonomy::{AppKind, FaultClass};

/// Renders one application's classification table in the paper's layout.
///
/// # Example
///
/// ```
/// use faultstudy_core::taxonomy::AppKind;
/// use faultstudy_corpus::paper_study;
/// use faultstudy_report::render_table;
///
/// let text = render_table(&paper_study(), AppKind::Apache);
/// assert!(text.contains("environment-independent"));
/// assert!(text.contains("36"));
/// ```
pub fn render_table(study: &Study, app: AppKind) -> String {
    let counts = study.table(app);
    let mut out = String::new();
    out.push_str(&format!(
        "Table {}: Classification of faults for {}\n",
        app.table_number(),
        app.name()
    ));
    out.push_str(&format!("{:-<54}\n", ""));
    out.push_str(&format!("{:<40} {:>8}\n", "Class", "# Faults"));
    out.push_str(&format!("{:-<54}\n", ""));
    for class in FaultClass::ALL {
        out.push_str(&format!("{:<40} {:>8}\n", class.label(), counts.get(class)));
    }
    out.push_str(&format!("{:-<54}\n", ""));
    out.push_str(&format!("{:<40} {:>8}\n", "total", counts.total()));
    out
}

/// Renders the §5.4 discussion numbers.
pub fn render_discussion(d: &Discussion) -> String {
    format!(
        "Across all applications: {} faults.\n\
         environment-dependent-nontransient: {} ({:.0}%)\n\
         environment-dependent-transient:    {} ({:.0}%)\n\
         environment-independent share per application: {:.0}%-{:.0}%\n",
        d.total,
        d.nontransient.0,
        d.nontransient.1,
        d.transient.0,
        d.transient.1,
        d.independent_range.0,
        d.independent_range.1.ceil(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_corpus::paper_study;

    #[test]
    fn apache_table_rows_match_paper() {
        let text = render_table(&paper_study(), AppKind::Apache);
        assert!(text.contains("Table 1"));
        assert!(text.contains("Apache"));
        for (label, n) in [
            ("environment-independent", 36),
            ("environment-dependent-nontransient", 7),
            ("environment-dependent-transient", 7),
        ] {
            let row = text.lines().find(|l| l.starts_with(label)).expect(label);
            assert!(row.trim_end().ends_with(&n.to_string()), "{row}");
        }
        assert!(text.lines().any(|l| l.starts_with("total") && l.contains("50")));
    }

    #[test]
    fn all_three_tables_render() {
        let study = paper_study();
        for app in AppKind::ALL {
            let text = render_table(&study, app);
            assert!(text.contains(&format!("Table {}", app.table_number())));
        }
    }

    #[test]
    fn discussion_mentions_headline_numbers() {
        let text = render_discussion(&paper_study().discussion());
        assert!(text.contains("139 faults"));
        assert!(text.contains("14 (10%)"));
        assert!(text.contains("12 (9%)"));
        assert!(text.contains("72%-87%"));
    }
}
