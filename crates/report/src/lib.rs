//! Rendering of the paper's tables and figures, plus the §7 Lee–Iyer
//! reconciliation arithmetic.
//!
//! Everything renders to plain text so the `faultstudy` CLI can print the
//! same rows and series the paper reports, and everything also serializes
//! to JSON (`--json`) for downstream analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod figures;
pub mod lee_iyer;
pub mod tables;

pub use compare::RelatedWork;
pub use figures::{render_release_figure, render_time_figure};
pub use lee_iyer::TandemReconciliation;
pub use tables::{render_discussion, render_table};
