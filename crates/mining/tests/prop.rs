//! Property tests for the mining pipeline.

use faultstudy_core::report::BugReport;
use faultstudy_core::taxonomy::{AppKind, Severity};
use faultstudy_mining::dedup::{dedup_reports, normalize_title};
use faultstudy_mining::{Archive, KeywordQuery, SelectionPipeline};
use proptest::prelude::*;

fn severity_strategy() -> impl Strategy<Value = Severity> {
    prop::sample::select(vec![
        Severity::Trivial,
        Severity::Minor,
        Severity::Major,
        Severity::Severe,
        Severity::Critical,
    ])
}

fn report_strategy() -> impl Strategy<Value = BugReport> {
    (1u64..10_000, "[a-z ]{0,30}", severity_strategy(), any::<bool>(), prop::option::of(1u64..100))
        .prop_map(|(id, title, severity, production, duplicate_of)| {
            let mut b = BugReport::builder(AppKind::Apache, id)
                .title(title)
                .severity(severity)
                .version("1.0", production);
            if let Some(d) = duplicate_of {
                b = b.duplicate_of(d);
            }
            b.build()
        })
}

proptest! {
    /// The funnel output is a subset of the archive and every survivor
    /// passes the §4 selection predicate.
    #[test]
    fn funnel_output_is_a_valid_subset(
        reports in prop::collection::vec(report_strategy(), 0..60)
    ) {
        let archive = Archive::new(AppKind::Apache, reports.clone());
        let out = SelectionPipeline::for_app(AppKind::Apache).run(&archive);
        prop_assert!(out.selected.len() <= reports.len());
        for r in &out.selected {
            prop_assert!(r.severity.is_high_impact());
            prop_assert!(r.on_production_version);
        }
        // Funnel counts never increase.
        let counts: Vec<usize> = out.funnel.iter().map(|s| s.survivors).collect();
        prop_assert!(counts.windows(2).all(|w| w[1] <= w[0]));
        prop_assert_eq!(counts[0], reports.len());
    }

    /// The pipeline is idempotent: running the funnel over its own output
    /// changes nothing.
    #[test]
    fn funnel_is_idempotent(reports in prop::collection::vec(report_strategy(), 0..60)) {
        let pipeline = SelectionPipeline::for_app(AppKind::Apache);
        let once = pipeline.run(&Archive::new(AppKind::Apache, reports));
        let twice = pipeline.run(&Archive::new(AppKind::Apache, once.selected.clone()));
        prop_assert_eq!(once.selected, twice.selected);
    }

    /// Keyword matching is stable under case changes of the text.
    #[test]
    fn keyword_match_is_case_stable(text in ".{0,80}") {
        let q = KeywordQuery::mysql();
        prop_assert_eq!(q.matches_text(&text), q.matches_text(&text.to_uppercase()));
        prop_assert_eq!(q.matches_text(&text), q.matches_text(&text.to_lowercase()));
    }

    /// Title normalization is idempotent.
    #[test]
    fn normalize_title_is_idempotent(title in ".{0,60}") {
        let once = normalize_title(&title);
        prop_assert_eq!(normalize_title(&once), once);
    }

    /// Dedup keeps at least one representative per distinct normalized
    /// title (for non-empty titles) and never more than the input count.
    #[test]
    fn dedup_keeps_one_per_distinct_title(
        titles in prop::collection::vec("[a-c]{1,4}", 1..40)
    ) {
        use std::collections::BTreeSet;
        let reports: Vec<BugReport> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| {
                BugReport::builder(AppKind::Apache, i as u64)
                    .title(t.clone())
                    .severity(Severity::Severe)
                    .build()
            })
            .collect();
        let distinct: BTreeSet<String> =
            titles.iter().map(|t| normalize_title(t)).collect();
        let kept = dedup_reports(reports);
        prop_assert_eq!(kept.len(), distinct.len());
    }
}

/// Text woven from keyword fragments, near-misses, and filler.
fn keyword_text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "crash".to_owned(),
            "CRASHED".to_owned(),
            "cras".to_owned(),
            "segmentation".to_owned(),
            "segment".to_owned(),
            "race".to_owned(),
            "embrace".to_owned(),
            "died".to_owned(),
            "die".to_owned(),
            "the server stopped".to_owned(),
            " ".to_owned(),
            "\n".to_owned(),
            "ordinary words".to_owned(),
        ]),
        0..8,
    )
    .prop_map(|fragments| fragments.concat())
}

proptest! {
    /// The automaton-backed keyword match is bit-identical to the naive
    /// lowercase-and-`contains` implementation, for both the paper's
    /// MySQL query (shared-automaton path) and a custom query (the
    /// `contains_ci` path), on woven and fully arbitrary text.
    #[test]
    fn keyword_match_agrees_with_naive(
        woven in keyword_text_strategy(),
        arbitrary in ".{0,100}",
    ) {
        let mysql = KeywordQuery::mysql();
        let custom = KeywordQuery::new(["hang", "deadlock", "crash"]);
        for text in [woven.as_str(), arbitrary.as_str()] {
            prop_assert_eq!(
                mysql.matches_text(text),
                mysql.matches_text_naive(text),
                "mysql query on {:?}", text
            );
            prop_assert_eq!(
                custom.matches_text(text),
                custom.matches_text_naive(text),
                "custom query on {:?}", text
            );
        }
    }

    /// Report-level matching (field-by-field scan) agrees with the naive
    /// `full_text` concatenation scan.
    #[test]
    fn report_match_agrees_with_naive(
        title in keyword_text_strategy(),
        body in ".{0,60}",
        notes in keyword_text_strategy(),
    ) {
        let r = BugReport::builder(AppKind::Mysql, 1)
            .title(title)
            .body(body)
            .developer_notes(notes)
            .build();
        let mysql = KeywordQuery::mysql();
        prop_assert_eq!(mysql.matches(&r), mysql.matches_naive(&r));
    }

    /// The index-based dedup used by the zero-copy funnel selects exactly
    /// the reports the owned dedup selects.
    #[test]
    fn index_dedup_agrees_with_owned_dedup(
        titles in prop::collection::vec("[a-c]{0,4}", 0..30),
    ) {
        use faultstudy_mining::dedup::dedup_indices_with_norms;
        let reports: Vec<BugReport> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| {
                BugReport::builder(AppKind::Apache, (titles.len() - i) as u64)
                    .title(t.clone())
                    .severity(Severity::Severe)
                    .build()
            })
            .collect();
        let norms: Vec<String> = reports.iter().map(|r| normalize_title(&r.title)).collect();
        let kept = dedup_indices_with_norms(
            &reports,
            (0..reports.len()).collect(),
            norms.clone(),
        );
        let owned = dedup_reports(reports.clone());
        let via_indices: Vec<BugReport> =
            kept.into_iter().map(|i| reports[i].clone()).collect();
        prop_assert_eq!(via_indices, owned);
    }
}
