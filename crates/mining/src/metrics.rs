//! Selection-quality metrics against synthetic ground truth.

use faultstudy_core::report::BugReport;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// Precision and recall of a selection, measured at the *fault* level: a
/// curated fault counts as recalled if any report describing it (primary or
/// duplicate) was selected, and a selected report counts as precise if it
/// describes some curated fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// Selected reports describing a real fault.
    pub true_positives: usize,
    /// Selected reports describing no real fault.
    pub false_positives: usize,
    /// Distinct real faults with at least one selected report.
    pub faults_recalled: usize,
    /// Distinct real faults in the ground truth.
    pub faults_total: usize,
}

impl PrecisionRecall {
    /// Measures `selected` against `ground_truth` (report id → fault slug).
    pub fn measure(
        selected: &[BugReport],
        ground_truth: &BTreeMap<u64, String>,
    ) -> PrecisionRecall {
        let mut true_positives = 0;
        let mut false_positives = 0;
        let mut recalled: BTreeSet<&str> = BTreeSet::new();
        for r in selected {
            match ground_truth.get(&r.id) {
                Some(slug) => {
                    true_positives += 1;
                    recalled.insert(slug);
                }
                None => false_positives += 1,
            }
        }
        let faults_total = ground_truth.values().collect::<BTreeSet<_>>().len();
        PrecisionRecall {
            true_positives,
            false_positives,
            faults_recalled: recalled.len(),
            faults_total,
        }
    }

    /// Fraction of selected reports that describe a real fault (1.0 when
    /// nothing was selected).
    pub fn precision(&self) -> f64 {
        let selected = self.true_positives + self.false_positives;
        if selected == 0 {
            1.0
        } else {
            self.true_positives as f64 / selected as f64
        }
    }

    /// Fraction of real faults recalled (1.0 when there were none).
    pub fn recall(&self) -> f64 {
        if self.faults_total == 0 {
            1.0
        } else {
            self.faults_recalled as f64 / self.faults_total as f64
        }
    }
}

impl fmt::Display for PrecisionRecall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "precision {:.3} ({} tp, {} fp), recall {:.3} ({}/{} faults)",
            self.precision(),
            self.true_positives,
            self.false_positives,
            self.recall(),
            self.faults_recalled,
            self.faults_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::{AppKind, Severity};

    fn report(id: u64) -> BugReport {
        BugReport::builder(AppKind::Mysql, id).severity(Severity::Severe).build()
    }

    fn truth() -> BTreeMap<u64, String> {
        [(1, "f-a"), (2, "f-a"), (3, "f-b")].into_iter().map(|(id, s)| (id, s.to_owned())).collect()
    }

    #[test]
    fn perfect_selection() {
        let pr = PrecisionRecall::measure(&[report(1), report(3)], &truth());
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
        assert_eq!(pr.faults_total, 2);
    }

    #[test]
    fn partial_recall_and_precision() {
        let pr = PrecisionRecall::measure(&[report(1), report(99)], &truth());
        assert_eq!(pr.true_positives, 1);
        assert_eq!(pr.false_positives, 1);
        assert_eq!(pr.precision(), 0.5);
        assert_eq!(pr.recall(), 0.5, "f-b missed");
    }

    #[test]
    fn duplicate_selection_counts_fault_once() {
        let pr = PrecisionRecall::measure(&[report(1), report(2)], &truth());
        assert_eq!(pr.faults_recalled, 1);
        assert_eq!(pr.true_positives, 2);
    }

    #[test]
    fn empty_cases() {
        let pr = PrecisionRecall::measure(&[], &truth());
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 0.0);
        let pr = PrecisionRecall::measure(&[], &BTreeMap::new());
        assert_eq!(pr.recall(), 1.0);
    }

    #[test]
    fn display_includes_counts() {
        let pr = PrecisionRecall::measure(&[report(1)], &truth());
        let s = pr.to_string();
        assert!(s.contains("1 tp"));
        assert!(s.contains("/2 faults"));
    }
}
