//! The §4 selection pipeline and its funnel accounting.
//!
//! Stages, in order:
//!
//! 1. **Keyword search** (mailing-list archives only): keep entries
//!    matching the paper's serious-bug keywords.
//! 2. **High-impact filter**: keep severe/critical reports — those that
//!    "crash, return an error condition, cause security problems, or stop
//!    responding".
//! 3. **Production-version filter**: the paper assumes users test new
//!    versions before production, so pre-release reports are out of scope.
//! 4. **Dedup**: reduce to unique bugs.
//!
//! [`PipelineOutcome`] records the surviving count after each stage, which
//! is exactly the funnel the paper reports (5220 → 50, ~500 → 45,
//! 44,000 → 44).

use crate::archive::Archive;
use crate::dedup::{dedup_indices_keyed, normalize_title};
use crate::keywords::KeywordQuery;
use faultstudy_core::report::BugReport;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_exec::{retain_by_mask, run_indexed, ParallelSpec};
use faultstudy_obs::{Metrics, MetricsRegistry};
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One stage of the funnel with its surviving count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunnelStage {
    /// Stage name.
    pub name: String,
    /// Reports surviving the stage.
    pub survivors: usize,
}

/// The result of running a pipeline over an archive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// The application mined.
    pub app: AppKind,
    /// Stage-by-stage survivor counts, starting with the raw archive size.
    pub funnel: Vec<FunnelStage>,
    /// The selected unique reports.
    pub selected: Vec<BugReport>,
}

impl PipelineOutcome {
    /// The raw archive size (first funnel entry).
    pub fn raw_size(&self) -> usize {
        self.funnel.first().map_or(0, |s| s.survivors)
    }

    /// The final unique-bug count (last funnel entry).
    pub fn unique_bugs(&self) -> usize {
        self.selected.len()
    }
}

impl fmt::Display for PipelineOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.app)?;
        let counts: Vec<String> =
            self.funnel.iter().map(|s| format!("{} ({})", s.survivors, s.name)).collect();
        f.write_str(&counts.join(" -> "))
    }
}

/// The §4 selection pipeline.
///
/// # Example
///
/// ```
/// use faultstudy_core::taxonomy::AppKind;
/// use faultstudy_mining::SelectionPipeline;
///
/// let p = SelectionPipeline::for_app(AppKind::Mysql);
/// assert!(p.uses_keyword_search());
/// let p = SelectionPipeline::for_app(AppKind::Apache);
/// assert!(!p.uses_keyword_search());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectionPipeline {
    keyword_query: Option<KeywordQuery>,
}

impl SelectionPipeline {
    /// The pipeline the paper used for `app`: mailing-list keyword search
    /// for MySQL, straight severity/production/dedup for the trackers.
    pub fn for_app(app: AppKind) -> SelectionPipeline {
        SelectionPipeline {
            keyword_query: match app {
                AppKind::Mysql => Some(KeywordQuery::mysql()),
                AppKind::Apache | AppKind::Gnome => None,
            },
        }
    }

    /// A pipeline with a custom (or no) keyword stage.
    pub fn with_keywords(keyword_query: Option<KeywordQuery>) -> SelectionPipeline {
        SelectionPipeline { keyword_query }
    }

    /// Whether the pipeline begins with a keyword search.
    pub fn uses_keyword_search(&self) -> bool {
        self.keyword_query.is_some()
    }

    /// Runs the funnel over `archive` with the host's available parallelism.
    pub fn run(&self, archive: &Archive) -> PipelineOutcome {
        self.run_with(archive, ParallelSpec::default())
    }

    /// Runs the funnel over `archive` on `parallel` worker threads.
    ///
    /// Every filter stage evaluates its predicate as a parallel keep-mask
    /// over report indices and then applies the mask sequentially, so stage
    /// order — and therefore the outcome — is identical for any thread
    /// count. Dedup stays a sequential reduce, but over titles normalized
    /// in parallel.
    ///
    /// The funnel is zero-copy until the end: stages filter a `Vec<usize>`
    /// of indices into the borrowed archive, and only the final survivors
    /// (44 of 44,000 for the paper's MySQL archive) are cloned out —
    /// instead of cloning the whole archive up front and discarding 99.9%
    /// of the copies.
    pub fn run_with(&self, archive: &Archive, parallel: ParallelSpec) -> PipelineOutcome {
        self.run_recording(archive, parallel, &mut Metrics::disabled())
    }

    /// Like [`SelectionPipeline::run_with`], but records per-stage timings
    /// into a registry returned alongside the (unchanged) outcome.
    ///
    /// Stage time follows a simulated cost model — fixed nanoseconds per
    /// report entering the stage — not the wall clock, so the registry is a
    /// pure function of the archive and identical at any thread count. Per
    /// `{app}/{stage}` it carries `mining.stage.reports` and
    /// `mining.stage.nanos` counters, a `mining.stage.time` histogram, and
    /// a `mining.stage.rps` throughput gauge.
    pub fn run_instrumented(
        &self,
        archive: &Archive,
        parallel: ParallelSpec,
    ) -> (PipelineOutcome, MetricsRegistry) {
        let mut metrics = Metrics::enabled();
        let outcome = self.run_recording(archive, parallel, &mut metrics);
        (outcome, metrics.take().expect("metrics were enabled"))
    }

    fn run_recording(
        &self,
        archive: &Archive,
        parallel: ParallelSpec,
        metrics: &mut Metrics,
    ) -> PipelineOutcome {
        let app = archive.app();
        let columns = archive.columns();
        let mut funnel =
            vec![FunnelStage { name: "raw archive".to_owned(), survivors: columns.len() }];
        let mut selected: Vec<usize> = (0..columns.len()).collect();

        if let Some(q) = &self.keyword_query {
            record_stage(metrics, app, "keyword match", selected.len());
            let keep = run_indexed(selected.len(), parallel, |i| {
                q.matches_segments(&columns.text_segments(selected[i]))
            });
            selected = retain_by_mask(selected, &keep);
            funnel
                .push(FunnelStage { name: "keyword match".to_owned(), survivors: selected.len() });
        }

        record_stage(metrics, app, "high impact", selected.len());
        let keep = run_indexed(selected.len(), parallel, |i| {
            columns.severity(selected[i]).is_high_impact()
        });
        selected = retain_by_mask(selected, &keep);
        funnel.push(FunnelStage { name: "high impact".to_owned(), survivors: selected.len() });

        record_stage(metrics, app, "production version", selected.len());
        let keep = run_indexed(selected.len(), parallel, |i| columns.production(selected[i]));
        selected = retain_by_mask(selected, &keep);
        funnel
            .push(FunnelStage { name: "production version".to_owned(), survivors: selected.len() });

        record_stage(metrics, app, "unique bugs", selected.len());
        let norms =
            run_indexed(selected.len(), parallel, |i| normalize_title(columns.title(selected[i])));
        let selected =
            dedup_indices_keyed(|i| (columns.id(i), columns.duplicate_of(i)), selected, norms);
        funnel.push(FunnelStage { name: "unique bugs".to_owned(), survivors: selected.len() });

        let selected: Vec<BugReport> = selected.iter().map(|&i| columns.materialize(i)).collect();
        PipelineOutcome { app, funnel, selected }
    }
}

/// Simulated per-report processing cost of each stage, in nanoseconds.
///
/// Text-heavy stages (keyword scan, title normalization for dedup) cost
/// more than the flag checks. The constants are arbitrary but fixed: stage
/// timings derive from them and the entering report count alone, keeping
/// the registry deterministic.
fn stage_cost_nanos(stage: &str) -> u64 {
    match stage {
        "keyword match" => 2_400,
        "high impact" => 60,
        "production version" => 40,
        "unique bugs" => 1_100,
        _ => 0,
    }
}

fn record_stage(metrics: &mut Metrics, app: AppKind, stage: &'static str, entering: usize) {
    if !metrics.is_enabled() {
        return;
    }
    let label = format!("{}/{}", app.name(), stage);
    let reports = entering as u64;
    let nanos = stage_cost_nanos(stage).saturating_mul(reports);
    metrics.incr("mining.stage.reports", &label, reports);
    metrics.incr("mining.stage.nanos", &label, nanos);
    metrics.record_duration("mining.stage.time", &label, Duration::from_nanos(nanos));
    if nanos > 0 {
        let rps = (reports as u128 * 1_000_000_000 / nanos as u128) as i64;
        metrics.set_gauge("mining.stage.rps", &label, rps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::report::BugReport;
    use faultstudy_core::taxonomy::Severity;
    use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};

    fn outcome_for(app: AppKind, size: usize, seed: u64) -> (PipelineOutcome, SyntheticPopulation) {
        let spec = PopulationSpec { app, archive_size: size, max_duplicates_per_fault: 2, seed };
        let pop = SyntheticPopulation::generate(&spec);
        let archive = Archive::new(app, pop.reports.clone());
        (SelectionPipeline::for_app(app).run(&archive), pop)
    }

    #[test]
    fn apache_funnel_recovers_exactly_50_unique_bugs() {
        let (out, pop) = outcome_for(AppKind::Apache, 1000, 11);
        assert_eq!(out.raw_size(), 1000);
        assert_eq!(out.unique_bugs(), 50, "{out}");
        let pr = crate::metrics::PrecisionRecall::measure(&out.selected, &pop.ground_truth);
        assert_eq!(pr.precision(), 1.0);
        assert_eq!(pr.recall(), 1.0);
    }

    #[test]
    fn gnome_funnel_recovers_exactly_45() {
        let (out, _) = outcome_for(AppKind::Gnome, 500, 12);
        assert_eq!(out.unique_bugs(), 45);
    }

    #[test]
    fn mysql_funnel_includes_keyword_stage_and_recovers_44() {
        let (out, _) = outcome_for(AppKind::Mysql, 2000, 13);
        assert_eq!(out.unique_bugs(), 44);
        assert_eq!(out.funnel.len(), 5, "raw, keyword, impact, production, unique");
        assert_eq!(out.funnel[1].name, "keyword match");
        // The keyword stage must actually narrow a mailing-list archive.
        assert!(out.funnel[1].survivors < out.raw_size());
    }

    #[test]
    fn tracker_pipelines_skip_keyword_stage() {
        let (out, _) = outcome_for(AppKind::Apache, 200, 14);
        assert_eq!(out.funnel.len(), 4);
        assert_eq!(out.funnel[1].name, "high impact");
    }

    #[test]
    fn funnel_counts_are_monotonically_nonincreasing() {
        let (out, _) = outcome_for(AppKind::Mysql, 1500, 15);
        let counts: Vec<usize> = out.funnel.iter().map(|s| s.survivors).collect();
        assert!(counts.windows(2).all(|w| w[1] <= w[0]), "{counts:?}");
    }

    #[test]
    fn display_prints_the_funnel() {
        let (out, _) = outcome_for(AppKind::Gnome, 100, 16);
        let s = out.to_string();
        assert!(s.starts_with("GNOME: 100 (raw archive)"));
        assert!(s.contains("unique bugs"));
    }

    #[test]
    fn outcome_is_independent_of_thread_count() {
        let spec = PopulationSpec {
            app: AppKind::Mysql,
            archive_size: 800,
            max_duplicates_per_fault: 2,
            seed: 21,
        };
        let pop = SyntheticPopulation::generate(&spec);
        let archive = Archive::new(AppKind::Mysql, pop.reports);
        let pipeline = SelectionPipeline::for_app(AppKind::Mysql);
        let sequential = pipeline.run_with(&archive, faultstudy_exec::ParallelSpec::SEQUENTIAL);
        for threads in [2, 8] {
            let parallel =
                pipeline.run_with(&archive, faultstudy_exec::ParallelSpec::threads(threads));
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn instrumented_run_matches_plain_and_times_stages() {
        let spec = PopulationSpec {
            app: AppKind::Mysql,
            archive_size: 600,
            max_duplicates_per_fault: 2,
            seed: 22,
        };
        let pop = SyntheticPopulation::generate(&spec);
        let archive = Archive::new(AppKind::Mysql, pop.reports);
        let pipeline = SelectionPipeline::for_app(AppKind::Mysql);
        let plain = pipeline.run(&archive);
        let (out, reg) = pipeline.run_instrumented(&archive, ParallelSpec::default());
        assert_eq!(out, plain, "metrics must not perturb the funnel");
        assert_eq!(reg.counter("mining.stage.reports", "MySQL/keyword match"), 600);
        assert_eq!(
            reg.counter("mining.stage.nanos", "MySQL/keyword match"),
            600 * 2_400,
            "stage time follows the cost model"
        );
        assert!(reg.gauge("mining.stage.rps", "MySQL/unique bugs").unwrap() > 0);
        // The registry is as thread-count-invariant as the outcome.
        let (_, reg1) = pipeline.run_instrumented(&archive, ParallelSpec::SEQUENTIAL);
        let (_, reg8) = pipeline.run_instrumented(&archive, ParallelSpec::threads(8));
        assert_eq!(reg1, reg);
        assert_eq!(reg8, reg);
    }

    #[test]
    fn custom_pipeline_on_handmade_reports() {
        let reports = vec![
            BugReport::builder(AppKind::Mysql, 1)
                .title("server crashed on join")
                .severity(Severity::Critical)
                .build(),
            BugReport::builder(AppKind::Mysql, 2)
                .title("question about configuration")
                .severity(Severity::Minor)
                .build(),
            BugReport::builder(AppKind::Mysql, 3)
                .title("beta died in testing")
                .severity(Severity::Critical)
                .version("beta", false)
                .build(),
        ];
        let archive = Archive::new(AppKind::Mysql, reports);
        let out = SelectionPipeline::for_app(AppKind::Mysql).run(&archive);
        assert_eq!(out.unique_bugs(), 1);
        assert_eq!(out.selected[0].id, 1);
    }
}
