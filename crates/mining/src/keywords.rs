//! Keyword search over report text.
//!
//! §4: *"we use all the messages from the archives that matched one of the
//! following keywords: 'crash', 'segmentation', 'race', and 'died' (we
//! looked at a few hundred messages and found that these keywords were the
//! ones commonly used to describe serious bugs)"*.

use faultstudy_core::report::BugReport;
use serde::{Deserialize, Serialize};

/// The paper's MySQL mailing-list keywords.
pub const MYSQL_KEYWORDS: [&str; 4] = ["crash", "segmentation", "race", "died"];

/// A disjunctive, case-insensitive keyword query.
///
/// # Example
///
/// ```
/// use faultstudy_mining::keywords::KeywordQuery;
///
/// let q = KeywordQuery::new(["crash", "died"]);
/// assert!(q.matches_text("the server CRASHED at noon"));
/// assert!(!q.matches_text("feature request: nicer prompt"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordQuery {
    keywords: Vec<String>,
}

impl KeywordQuery {
    /// Builds a query from keywords (stored lowercased).
    pub fn new<I, S>(keywords: I) -> KeywordQuery
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        KeywordQuery { keywords: keywords.into_iter().map(|k| k.as_ref().to_lowercase()).collect() }
    }

    /// The paper's MySQL query.
    pub fn mysql() -> KeywordQuery {
        KeywordQuery::new(MYSQL_KEYWORDS)
    }

    /// The keywords, lowercased.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Whether any keyword occurs in `text` (case-insensitive substring).
    pub fn matches_text(&self, text: &str) -> bool {
        let lower = text.to_lowercase();
        self.keywords.iter().any(|k| lower.contains(k))
    }

    /// Whether any keyword occurs anywhere in the report.
    pub fn matches(&self, report: &BugReport) -> bool {
        self.matches_text(&report.full_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::AppKind;

    #[test]
    fn mysql_query_has_the_four_paper_keywords() {
        let q = KeywordQuery::mysql();
        assert_eq!(q.keywords(), ["crash", "segmentation", "race", "died"]);
    }

    #[test]
    fn substring_and_case_behaviour() {
        let q = KeywordQuery::mysql();
        assert!(q.matches_text("it Crashes every day"), "'crash' is a prefix of 'crashes'");
        assert!(q.matches_text("SEGMENTATION fault"));
        assert!(q.matches_text("the daemon died"));
        assert!(q.matches_text("looks like a race"));
        assert!(!q.matches_text("the server stopped responding")); // none of the four
        assert!(!q.matches_text(""));
    }

    #[test]
    fn matches_searches_all_report_fields() {
        let r = BugReport::builder(AppKind::Mysql, 1)
            .title("problem under load")
            .developer_notes("turned out to be a race in the lock manager")
            .build();
        assert!(KeywordQuery::mysql().matches(&r));
    }

    #[test]
    fn empty_query_matches_nothing() {
        let q = KeywordQuery::new(Vec::<String>::new());
        assert!(!q.matches_text("anything at all"));
    }
}
