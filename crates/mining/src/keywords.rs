//! Keyword search over report text.
//!
//! §4: *"we use all the messages from the archives that matched one of the
//! following keywords: 'crash', 'segmentation', 'race', and 'died' (we
//! looked at a few hundred messages and found that these keywords were the
//! ones commonly used to describe serious bugs)"*.

use faultstudy_core::report::BugReport;
use faultstudy_core::scanset;
use faultstudy_textscan::contains_ci;
use serde::{Deserialize, Serialize};

/// The paper's MySQL mailing-list keywords. The canonical list lives in
/// [`faultstudy_core::scanset`] so the shared automaton can compile it;
/// this re-export keeps the historical path working.
pub use faultstudy_core::scanset::MYSQL_KEYWORDS;

/// A disjunctive, case-insensitive keyword query.
///
/// The paper's own query (see [`KeywordQuery::mysql`]) is answered from a
/// single pass of the shared Aho–Corasick automaton with zero per-report
/// allocations; custom keyword sets fall back to an allocation-free
/// per-keyword scan ([`contains_ci`]). Either way no `full_text`
/// concatenation or `to_lowercase` copy is made.
///
/// # Example
///
/// ```
/// use faultstudy_mining::keywords::KeywordQuery;
///
/// let q = KeywordQuery::new(["crash", "died"]);
/// assert!(q.matches_text("the server CRASHED at noon"));
/// assert!(!q.matches_text("feature request: nicer prompt"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeywordQuery {
    keywords: Vec<String>,
}

impl KeywordQuery {
    /// Builds a query from keywords (stored lowercased).
    pub fn new<I, S>(keywords: I) -> KeywordQuery
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        KeywordQuery { keywords: keywords.into_iter().map(|k| k.as_ref().to_lowercase()).collect() }
    }

    /// The paper's MySQL query.
    pub fn mysql() -> KeywordQuery {
        KeywordQuery::new(MYSQL_KEYWORDS)
    }

    /// The keywords, lowercased.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Whether this query is exactly the §4 MySQL keyword list and can be
    /// answered from the shared automaton's hit bitset.
    fn uses_shared_automaton(&self) -> bool {
        scanset::shared().is_mysql_keywords(&self.keywords)
    }

    /// Whether any keyword occurs in `text` (case-insensitive substring).
    pub fn matches_text(&self, text: &str) -> bool {
        if self.uses_shared_automaton() {
            let set = scanset::shared();
            return set.matches_mysql_keywords(&set.hits_text(text));
        }
        self.keywords.iter().any(|k| contains_ci(text, k))
    }

    /// Whether any keyword occurs anywhere in the report. Each field is
    /// scanned in place; the [`BugReport::full_text`] concatenation is
    /// never materialized.
    pub fn matches(&self, report: &BugReport) -> bool {
        self.matches_segments(&[
            &report.title,
            &report.body,
            &report.how_to_repeat,
            &report.developer_notes,
        ])
    }

    /// Whether any keyword occurs in any of the borrowed `segments` — the
    /// zero-copy form the arena-backed archive feeds straight from its
    /// span columns.
    pub fn matches_segments(&self, segments: &[&str]) -> bool {
        if self.uses_shared_automaton() {
            let set = scanset::shared();
            return set.matches_mysql_keywords(&set.hits_segments(segments));
        }
        segments.iter().any(|field| self.keywords.iter().any(|k| contains_ci(field, k)))
    }

    /// The pre-automaton reference implementation of
    /// [`Self::matches_text`]: one `to_lowercase` allocation plus one
    /// `contains` traversal per keyword. Ground truth for the
    /// differential tests and the naive side of the `textscan` benches.
    pub fn matches_text_naive(&self, text: &str) -> bool {
        let lower = text.to_lowercase();
        self.keywords.iter().any(|k| lower.contains(k))
    }

    /// The pre-automaton reference implementation of [`Self::matches`]:
    /// allocates the `full_text` concatenation, then lowercases it.
    pub fn matches_naive(&self, report: &BugReport) -> bool {
        self.matches_text_naive(&report.full_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::AppKind;

    #[test]
    fn mysql_query_has_the_four_paper_keywords() {
        let q = KeywordQuery::mysql();
        assert_eq!(q.keywords(), ["crash", "segmentation", "race", "died"]);
        assert!(q.uses_shared_automaton());
    }

    #[test]
    fn substring_and_case_behaviour() {
        let q = KeywordQuery::mysql();
        assert!(q.matches_text("it Crashes every day"), "'crash' is a prefix of 'crashes'");
        assert!(q.matches_text("SEGMENTATION fault"));
        assert!(q.matches_text("the daemon died"));
        assert!(q.matches_text("looks like a race"));
        assert!(!q.matches_text("the server stopped responding")); // none of the four
        assert!(!q.matches_text(""));
    }

    #[test]
    fn matches_searches_all_report_fields() {
        let r = BugReport::builder(AppKind::Mysql, 1)
            .title("problem under load")
            .developer_notes("turned out to be a race in the lock manager")
            .build();
        assert!(KeywordQuery::mysql().matches(&r));
    }

    #[test]
    fn empty_query_matches_nothing() {
        let q = KeywordQuery::new(Vec::<String>::new());
        assert!(!q.matches_text("anything at all"));
    }

    #[test]
    fn custom_queries_take_the_generic_path() {
        let q = KeywordQuery::new(["hang", "deadlock"]);
        assert!(!q.uses_shared_automaton());
        assert!(q.matches_text("the UI DEADLOCKED"));
        assert!(!q.matches_text("all good"));
        let r = BugReport::builder(AppKind::Gnome, 2).body("panel hangs on startup").build();
        assert!(q.matches(&r));
    }

    #[test]
    fn fast_paths_agree_with_naive_reference() {
        let mysql = KeywordQuery::mysql();
        let custom = KeywordQuery::new(["hang", "crash"]);
        for text in [
            "it Crashes every day",
            "SEGMENTATION fault",
            "the server stopped responding",
            "",
            "networ\u{212A} died", // non-ASCII: fallback path
        ] {
            assert_eq!(mysql.matches_text(text), mysql.matches_text_naive(text), "{text:?}");
            assert_eq!(custom.matches_text(text), custom.matches_text_naive(text), "{text:?}");
        }
        let r = BugReport::builder(AppKind::Mysql, 3)
            .title("problem under load")
            .how_to_repeat("run the stress suite until it died")
            .build();
        assert_eq!(mysql.matches(&r), mysql.matches_naive(&r));
        assert_eq!(custom.matches(&r), custom.matches_naive(&r));
    }
}
