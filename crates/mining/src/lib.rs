//! Bug-archive models and the §4 selection pipeline.
//!
//! The paper narrows raw archives to studied fault sets: 5220 Apache
//! tracker reports → 50 unique severe/critical production bugs, ~500 GNOME
//! reports → 45, and ~44,000 MySQL mailing-list messages → 44, the last via
//! a keyword search for "crash", "segmentation", "race", and "died" (§4).
//! This crate implements that funnel as a composable pipeline over
//! [`Archive`]s and measures its precision/recall against the ground truth
//! that `faultstudy-corpus`'s synthetic populations carry.
//!
//! # Example
//!
//! ```
//! use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
//! use faultstudy_core::taxonomy::AppKind;
//! use faultstudy_mining::{Archive, SelectionPipeline};
//!
//! let spec = PopulationSpec { app: AppKind::Gnome, archive_size: 300,
//!                             max_duplicates_per_fault: 2, seed: 7 };
//! let population = SyntheticPopulation::generate(&spec);
//! let archive = Archive::new(AppKind::Gnome, population.reports.clone());
//! let outcome = SelectionPipeline::for_app(AppKind::Gnome).run(&archive);
//! assert_eq!(outcome.selected.len(), 45); // Table 2's fault count
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod dedup;
pub mod keywords;
pub mod metrics;
pub mod pipeline;

pub use archive::Archive;
pub use keywords::{KeywordQuery, MYSQL_KEYWORDS};
pub use metrics::PrecisionRecall;
pub use pipeline::{FunnelStage, PipelineOutcome, SelectionPipeline};
