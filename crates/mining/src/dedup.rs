//! Duplicate-report detection: the "unique bugs" step of the §4 funnel.
//!
//! Two mechanisms are combined, mirroring how a human curator works:
//! explicit duplicate links (trackers record `duplicate_of`), and a
//! normalized-title comparison that catches re-reports which were never
//! formally linked (mailing lists have no link field). Normalization
//! lowercases, strips punctuation and the "(again)" style re-post markers,
//! and collapses whitespace, so `"(again) Server crashed!"` and
//! `"server crashed"` coincide.

use faultstudy_core::report::BugReport;
use std::collections::HashSet;

/// Normalizes a title for duplicate comparison.
///
/// Single pass, single allocation: characters are lowercased one at a
/// time (`char::to_lowercase` yields the same stream `str::to_lowercase`
/// would, without materializing the intermediate copy) and appended
/// straight into the output buffer, splitting on non-alphanumerics as we
/// go. Leading re-post markers are dropped by truncating the buffer when
/// a just-finished first word turns out to be a marker.
pub fn normalize_title(title: &str) -> String {
    let mut out = String::with_capacity(title.len());
    // Whether we are still before the first non-marker word; while true,
    // `out` holds at most the current (candidate marker) word.
    let mut skipping_markers = true;
    let mut in_word = false;
    let mut finish_word = |out: &mut String, in_word: &mut bool| {
        if *in_word {
            *in_word = false;
            if skipping_markers {
                if matches!(out.as_str(), "again" | "re" | "fwd") {
                    out.clear();
                } else {
                    skipping_markers = false;
                }
            }
        }
    };
    for ch in title.chars().flat_map(char::to_lowercase) {
        if ch.is_alphanumeric() {
            if !in_word {
                if !out.is_empty() {
                    out.push(' ');
                }
                in_word = true;
            }
            out.push(ch);
        } else {
            finish_word(&mut out, &mut in_word);
        }
    }
    finish_word(&mut out, &mut in_word);
    out
}

/// Retains the first report of each distinct fault, dropping explicit
/// duplicates and title-level re-posts. Order is preserved; among
/// duplicates the earliest archive id survives.
pub fn dedup_reports(reports: Vec<BugReport>) -> Vec<BugReport> {
    let norms = reports.iter().map(|r| normalize_title(&r.title)).collect();
    dedup_reports_with_norms(reports, norms)
}

/// [`dedup_reports`] over titles normalized ahead of time.
///
/// `norms[i]` must be `normalize_title(&reports[i].title)`; callers compute
/// the norms in parallel (normalization is the per-report cost; the reduce
/// below is inherently sequential because each keep decision depends on
/// every earlier one) and this function performs the order-dependent scan.
/// Output is identical to [`dedup_reports`] on the same input.
///
/// # Panics
///
/// Panics if `norms.len() != reports.len()`.
pub fn dedup_reports_with_norms(reports: Vec<BugReport>, norms: Vec<String>) -> Vec<BugReport> {
    assert_eq!(reports.len(), norms.len(), "one normalized title per report");
    let kept = dedup_indices_with_norms(&reports, (0..reports.len()).collect(), norms);
    let mut slots: Vec<Option<BugReport>> = reports.into_iter().map(Some).collect();
    kept.into_iter()
        .map(|i| slots[i].take().expect("dedup keeps each index at most once"))
        .collect()
}

/// The zero-copy core of [`dedup_reports_with_norms`]: operates on indices
/// into a borrowed report slice, so the §4 pipeline can run the whole
/// funnel without cloning a single report until the survivors are known.
///
/// `selected` are the indices still in the funnel (any order) and
/// `norms[i]` must be `normalize_title(&reports[selected[i]].title)`.
/// Returns the kept indices, ordered by report id — the same survivor set
/// and order [`dedup_reports`] produces.
///
/// # Panics
///
/// Panics if `norms.len() != selected.len()` or an index is out of bounds.
pub fn dedup_indices_with_norms(
    reports: &[BugReport],
    selected: Vec<usize>,
    norms: Vec<String>,
) -> Vec<usize> {
    dedup_indices_keyed(|i| (reports[i].id, reports[i].duplicate_of), selected, norms)
}

/// The storage-agnostic core of [`dedup_indices_with_norms`]: all it needs
/// from a report is its archive id and duplicate link, supplied by `key`
/// per index. Arena-backed archives pass their id/duplicate columns
/// directly instead of materializing reports.
///
/// # Panics
///
/// Panics if `norms.len() != selected.len()`.
pub fn dedup_indices_keyed<K>(key: K, selected: Vec<usize>, norms: Vec<String>) -> Vec<usize>
where
    K: Fn(usize) -> (u64, Option<u64>),
{
    assert_eq!(selected.len(), norms.len(), "one normalized title per report");
    let mut paired: Vec<(usize, String)> = selected.into_iter().zip(norms).collect();
    // Earliest report first so the primary survives (stable, so equal ids
    // keep their incoming order, exactly as the owned variant did).
    paired.sort_by_key(|&(i, _)| key(i).0);
    let mut seen_titles: HashSet<String> = HashSet::new();
    let mut kept_ids: HashSet<u64> = HashSet::new();
    let mut out = Vec::with_capacity(paired.len());
    for (i, norm) in paired {
        let (id, duplicate_of) = key(i);
        if let Some(primary) = duplicate_of {
            if kept_ids.contains(&primary) {
                continue; // formally linked duplicate of a kept report
            }
        }
        if !norm.is_empty() && !seen_titles.insert(norm) {
            continue; // same fault re-reported under an equivalent title
        }
        kept_ids.insert(id);
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::{AppKind, Severity};

    fn report(id: u64, title: &str) -> BugReport {
        BugReport::builder(AppKind::Apache, id).title(title).severity(Severity::Severe).build()
    }

    #[test]
    fn normalization_strips_markers_and_punctuation() {
        assert_eq!(normalize_title("(again) Server crashed!"), "server crashed");
        assert_eq!(normalize_title("RE: re: server crashed"), "server crashed");
        assert_eq!(normalize_title("Server   CRASHED..."), "server crashed");
        assert_eq!(normalize_title(""), "");
    }

    #[test]
    fn explicit_duplicates_removed() {
        let mut dup = report(5, "totally different words");
        dup.duplicate_of = Some(1);
        let out = dedup_reports(vec![report(1, "server crashed"), dup]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn title_level_duplicates_removed_keeping_earliest() {
        let out = dedup_reports(vec![
            report(9, "(again) server crashed"),
            report(2, "Server crashed!"),
            report(4, "unrelated other bug"),
        ]);
        let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
        assert_eq!(ids, [2, 4]);
    }

    #[test]
    fn unlinked_duplicate_with_distinct_title_survives() {
        // A formally-linked duplicate whose primary was itself dropped (not
        // in the input) is kept: the link alone is not enough to discard
        // the only report of a fault.
        let mut dup = report(3, "the only report of this fault");
        dup.duplicate_of = Some(999);
        let out = dedup_reports(vec![dup]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn dedup_is_idempotent() {
        let input = vec![report(1, "a crash"), report(2, "(again) a crash"), report(3, "b crash")];
        let once = dedup_reports(input);
        let twice = dedup_reports(once.clone());
        assert_eq!(once, twice);
        assert_eq!(once.len(), 2);
    }

    #[test]
    fn empty_titles_do_not_collide() {
        let out = dedup_reports(vec![report(1, ""), report(2, "")]);
        assert_eq!(out.len(), 2, "empty titles carry no duplicate signal");
    }

    #[test]
    fn normalization_handles_marker_edge_cases() {
        // Markers only strip from the front; interior ones are content.
        assert_eq!(normalize_title("crash again"), "crash again");
        assert_eq!(normalize_title("re fwd again re crash"), "crash");
        assert_eq!(normalize_title("re: re: re:"), "");
        assert_eq!(normalize_title("  RE:   (again)  Fwd: boom  "), "boom");
        // Idempotent.
        let once = normalize_title("(again) Server CRASHED!!");
        assert_eq!(normalize_title(&once), once);
    }

    #[test]
    fn precomputed_norms_match_inline_normalization() {
        let reports = vec![
            report(9, "(again) server crashed"),
            report(2, "Server crashed!"),
            report(4, "unrelated other bug"),
            report(7, "RE: unrelated other bug"),
        ];
        let norms = reports.iter().map(|r| normalize_title(&r.title)).collect();
        let expected = dedup_reports(reports.clone());
        assert_eq!(dedup_reports_with_norms(reports, norms), expected);
    }
}
