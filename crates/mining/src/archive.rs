//! The in-memory bug archive.

use faultstudy_core::flat::{ReportColumns, ReportRow};
use faultstudy_core::report::BugReport;
use faultstudy_core::taxonomy::AppKind;
use serde::{Deserialize, Serialize};

/// A bug archive: the raw input to the §4 funnel.
///
/// Apache's tracker, GNOME's debbugs, and MySQL's mailing list differ in
/// how their entries were produced, but by the time the funnel sees them
/// each entry is one row of a [`ReportColumns`]; the per-app differences
/// live in the pipeline configuration instead (MySQL's pipeline starts
/// with the keyword search, the trackers' do not).
///
/// Storage is struct-of-arrays: every text field lives in one contiguous
/// arena addressed by `(offset, len)` spans, and fixed-width metadata
/// (severity, production flag, …) sits in dense parallel columns. The
/// funnel's flag filters therefore stream over plain arrays, and the
/// keyword scan walks the arena without per-report pointer chasing —
/// paper-scale archives (44,000 MySQL messages) fit in a handful of
/// allocations instead of five per report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Archive {
    app: AppKind,
    columns: ReportColumns,
}

impl Archive {
    /// Flattens `reports` into the archive of `app`.
    pub fn new(app: AppKind, reports: Vec<BugReport>) -> Archive {
        Archive { app, columns: ReportColumns::from_reports(&reports) }
    }

    /// Wraps already-flattened columns as the archive of `app`.
    pub fn from_columns(app: AppKind, columns: ReportColumns) -> Archive {
        Archive { app, columns }
    }

    /// The application this archive covers.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// Number of raw entries.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Iterates over the raw entries in archive order.
    pub fn iter(&self) -> impl Iterator<Item = ReportRow<'_>> {
        self.columns.iter()
    }

    /// The underlying column storage.
    pub fn columns(&self) -> &ReportColumns {
        &self.columns
    }

    /// Looks up an entry by archive id.
    pub fn get(&self, id: u64) -> Option<ReportRow<'_>> {
        self.columns.iter().find(|r| r.id() == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_core::taxonomy::Severity;

    fn report(id: u64) -> BugReport {
        BugReport::builder(AppKind::Apache, id)
            .title(format!("bug {id}"))
            .severity(Severity::Severe)
            .build()
    }

    #[test]
    fn construction_and_access() {
        let a = Archive::new(AppKind::Apache, vec![report(1), report(2)]);
        assert_eq!(a.app(), AppKind::Apache);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.get(2).unwrap().title(), "bug 2");
        assert!(a.get(99).is_none());
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn empty_archive() {
        let a = Archive::new(AppKind::Mysql, Vec::new());
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn flattening_preserves_every_report() {
        let reports = vec![report(1), report(2), report(3)];
        let a = Archive::new(AppKind::Apache, reports.clone());
        let back: Vec<BugReport> = a.iter().map(|r| r.materialize()).collect();
        assert_eq!(back, reports);
    }
}
