//! The crash-only component model \[Candea03\].
//!
//! The paper's whole-process recovery is too blunt for most faults: a
//! restart discards *every* piece of session state and pays the full
//! process boot latency to clear a condition that usually lives in one
//! subsystem. Microreboot asks the follow-up question — what if the
//! application is partitioned into components that are individually safe
//! to crash? This crate holds the model that question needs, and nothing
//! else:
//!
//! - [`StateKind`] — the state taxonomy that decides whether a component
//!   may be crashed at all: state that is free to discard
//!   ([`StateKind::Volatile`]), state that can be reconstructed from
//!   durable ground truth at boot ([`StateKind::DurableSoft`]), and state
//!   whose loss is unrecoverable ([`StateKind::DurableHard`]).
//! - [`ComponentDesc`] — one node of the component tree: name, state
//!   kind, boot cost in simulated time, and parent edge.
//! - [`CrashOnly`] — the contract an application exposes to a
//!   microrebooting supervisor: route a request to the component that
//!   serves it, crash a component (discarding only its volatile state),
//!   and boot it back from whatever durable state survived.
//!
//! The recovery side — the per-component restart tree with backoff,
//! breakers and escalation — lives in `faultstudy-recovery`; this crate
//! deliberately knows nothing about strategies so applications can
//! implement [`CrashOnly`] without depending on the recovery stack.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use faultstudy_env::Environment;
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a component's state relates to a crash of that component.
///
/// The taxonomy is the crash-only design rule made explicit: a component
/// is safe to microreboot exactly when everything it would lose is either
/// disposable or reconstructible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateKind {
    /// All state is disposable (request scratch, caches of caches, leaked
    /// allocations). Crashing loses nothing a fresh boot cannot live
    /// without — the ideal microreboot target.
    Volatile,
    /// State is backed by durable ground truth (a disk cache, an index
    /// over files): the crash discards the in-memory copy and boot
    /// rebuilds it lazily. Slightly costlier to reboot, still safe.
    DurableSoft,
    /// State that cannot be reconstructed by any generic mechanism
    /// (committed tables, the write-ahead log, session identity). A
    /// crash-only supervisor must never discard it: faults here escalate
    /// straight to a whole-process reboot, which restores a checkpoint
    /// instead of discarding.
    DurableHard,
}

impl StateKind {
    /// Whether a microreboot may crash a component of this kind.
    pub fn crashable(self) -> bool {
        !matches!(self, StateKind::DurableHard)
    }

    /// Short label used in reports.
    pub fn short(self) -> &'static str {
        match self {
            StateKind::Volatile => "volatile",
            StateKind::DurableSoft => "durable-soft",
            StateKind::DurableHard => "durable-hard",
        }
    }
}

/// One node of an application's component tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComponentDesc {
    /// Stable component name, unique across all applications (used as a
    /// metrics label).
    pub name: &'static str,
    /// The component's state taxonomy entry.
    pub state_kind: StateKind,
    /// Simulated time a reboot of this component costs. Orders of
    /// magnitude below a whole-process restart — that gap is the entire
    /// economic argument for microreboot.
    pub boot_cost: Duration,
    /// Index of the parent component; `None` for the single root. Parents
    /// always precede children (`parent < index`), which makes subtree
    /// traversal a forward scan.
    pub parent: Option<usize>,
}

/// A topology rule the component slice violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError(String);

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid component topology: {}", self.0)
    }
}

impl std::error::Error for TopologyError {}

/// Checks the component-tree invariants: non-empty, exactly one root at
/// index 0, every parent precedes its child, and names are unique.
///
/// # Errors
///
/// [`TopologyError`] describing the first violated rule.
pub fn validate_topology(components: &[ComponentDesc]) -> Result<(), TopologyError> {
    if components.is_empty() {
        return Err(TopologyError("no components".into()));
    }
    for (index, c) in components.iter().enumerate() {
        match c.parent {
            None if index != 0 => {
                return Err(TopologyError(format!("second root at index {index} ({})", c.name)));
            }
            Some(p) if p >= index => {
                return Err(TopologyError(format!(
                    "parent {p} does not precede child {index} ({})",
                    c.name
                )));
            }
            _ => {}
        }
        if components[..index].iter().any(|other| other.name == c.name) {
            return Err(TopologyError(format!("duplicate component name {}", c.name)));
        }
    }
    Ok(())
}

/// Whether `ancestor` is on the parent chain of `index` (a component is
/// its own ancestor).
pub fn is_ancestor(components: &[ComponentDesc], ancestor: usize, index: usize) -> bool {
    let mut cursor = Some(index);
    while let Some(i) = cursor {
        if i == ancestor {
            return true;
        }
        cursor = components[i].parent;
    }
    false
}

/// The indices of `root`'s subtree (including `root`), in index order —
/// which, because parents precede children, is also a valid boot order.
pub fn subtree(components: &[ComponentDesc], root: usize) -> Vec<usize> {
    (root..components.len()).filter(|&i| is_ancestor(components, root, i)).collect()
}

/// The crash-only contract an application exposes to a microrebooting
/// supervisor.
///
/// The supervisor owns *when* to crash and *how far* to escalate; the
/// application owns *what* each crash discards. The one inviolable rule —
/// what makes the design crash-only — is that [`CrashOnly::crash_component`]
/// touches nothing durable: committed data, the write-ahead log, and
/// session identity survive every combination of component crashes. A
/// crash may (and should) release the operating-system resources the
/// component's work was holding: its descriptors die with it, its child
/// processes are reaped, its leaked allocations vanish with its address
/// range. That is precisely the state a checkpoint-restoring generic
/// recovery is *required* to preserve (§2 of the paper), which is where
/// the two mechanisms part ways.
pub trait CrashOnly {
    /// The application's component tree; must satisfy
    /// [`validate_topology`]. Static because the partition is a property
    /// of the program, not of any instance.
    fn components(&self) -> &'static [ComponentDesc];

    /// The component that serves a request with this body. Total: every
    /// body maps to some component, so a failure is always attributable.
    fn route(&self, body: &str) -> usize;

    /// Crashes component `index`: discards its volatile state and
    /// releases the resources it held. Must not touch durable state.
    fn crash_component(&mut self, index: usize, env: &mut Environment);

    /// Boots component `index` back up, reconstructing soft state from
    /// durable ground truth. The simulated boot latency is charged by the
    /// caller from [`ComponentDesc::boot_cost`]; this hook performs the
    /// state reconstruction only.
    fn boot_component(&mut self, index: usize, env: &mut Environment);
}

#[cfg(test)]
mod tests {
    use super::*;

    const fn comp(
        name: &'static str,
        state_kind: StateKind,
        parent: Option<usize>,
    ) -> ComponentDesc {
        ComponentDesc { name, state_kind, boot_cost: Duration::from_millis(10), parent }
    }

    const TREE: [ComponentDesc; 4] = [
        comp("root", StateKind::Volatile, None),
        comp("left", StateKind::Volatile, Some(0)),
        comp("leaf", StateKind::DurableSoft, Some(1)),
        comp("right", StateKind::DurableHard, Some(0)),
    ];

    #[test]
    fn valid_tree_passes() {
        validate_topology(&TREE).unwrap();
    }

    #[test]
    fn empty_tree_is_rejected() {
        assert!(validate_topology(&[]).is_err());
    }

    #[test]
    fn second_root_is_rejected() {
        let bad = [comp("a", StateKind::Volatile, None), comp("b", StateKind::Volatile, None)];
        let err = validate_topology(&bad).unwrap_err();
        assert!(err.to_string().contains("second root"));
    }

    #[test]
    fn forward_parent_edge_is_rejected() {
        let bad = [comp("a", StateKind::Volatile, None), comp("b", StateKind::Volatile, Some(1))];
        assert!(validate_topology(&bad).is_err());
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let bad = [comp("a", StateKind::Volatile, None), comp("a", StateKind::Volatile, Some(0))];
        let err = validate_topology(&bad).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn ancestry_follows_parent_edges() {
        assert!(is_ancestor(&TREE, 0, 2), "root is everyone's ancestor");
        assert!(is_ancestor(&TREE, 1, 2));
        assert!(is_ancestor(&TREE, 2, 2), "a component is its own ancestor");
        assert!(!is_ancestor(&TREE, 1, 3));
        assert!(!is_ancestor(&TREE, 2, 1), "ancestry is directional");
    }

    #[test]
    fn subtrees_are_in_boot_order() {
        assert_eq!(subtree(&TREE, 0), vec![0, 1, 2, 3]);
        assert_eq!(subtree(&TREE, 1), vec![1, 2]);
        assert_eq!(subtree(&TREE, 3), vec![3]);
    }

    #[test]
    fn state_kinds_know_crashability() {
        assert!(StateKind::Volatile.crashable());
        assert!(StateKind::DurableSoft.crashable());
        assert!(!StateKind::DurableHard.crashable());
        assert_eq!(StateKind::DurableHard.short(), "durable-hard");
    }
}
