//! Differential properties of the crash-only component model.
//!
//! Three families: the restart tree's escalation ladder is a pure
//! function of the `plan`/`settle` call sequence (backoff jitter affects
//! charged cost, never scope); crashing a component discards only its
//! volatile state, so durable answers survive any crash/boot round-trip;
//! and a microrebooting supervisor over an application with no crashable
//! partition degenerates byte-for-byte into plain restart-retry — the
//! whole-process rung *is* the generic strategy, not an approximation of
//! it.

use faultstudy_apps::{Application, MiniDb, MiniDe, MiniWeb, Request};
use faultstudy_env::Environment;
use faultstudy_micro::{ComponentDesc, CrashOnly, StateKind};
use faultstudy_recovery::{run_workload, MicroReboot, RebootScope, RestartRetry, RestartTree};
use faultstudy_sim::time::Duration;
use proptest::prelude::*;

fn env(seed: u64) -> Environment {
    Environment::builder().seed(seed).build()
}

/// MiniWeb's component slice (the deepest of the three partitions).
fn web_components() -> &'static [ComponentDesc] {
    let mut e = env(1);
    let mut web = MiniWeb::new(&mut e);
    web.as_crash_only().expect("partitioned").components()
}

/// Index of a component by name in an application's partition.
fn component_index(app: &mut dyn Application, name: &str) -> usize {
    let co = app.as_crash_only().expect("partitioned");
    co.components().iter().position(|c| c.name == name).expect("component exists")
}

/// Crash and immediately reboot one component, as the strategy would.
fn crash_boot(app: &mut dyn Application, index: usize, e: &mut Environment) {
    let co = app.as_crash_only().expect("partitioned");
    co.crash_component(index, e);
    co.boot_component(index, e);
}

proptest! {
    /// Replaying the same `plan`/`settle` sequence yields the same scope
    /// sequence, and the backoff seed influences only the charged
    /// durations — never which rung of the ladder a failure lands on.
    #[test]
    fn escalation_is_a_pure_function_of_the_failure_sequence(
        ops in prop::collection::vec((any::<bool>(), 0usize..4), 0..60),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let descs = web_components();
        let drive = |seed: u64| {
            let mut tree = RestartTree::new(
                descs,
                2,
                Duration::from_millis(50),
                Duration::from_secs(2),
                seed,
            );
            let mut scopes = Vec::new();
            let mut charges = Vec::new();
            for &(fail, component) in &ops {
                if fail {
                    let scope = tree.plan(component);
                    charges.push(tree.charge(scope));
                    scopes.push(scope);
                } else {
                    tree.settle(component);
                }
            }
            (scopes, charges)
        };
        let (scopes_a, charges_a) = drive(seed_a);
        let (scopes_b, charges_b) = drive(seed_b);
        prop_assert_eq!(&scopes_a, &scopes_b, "scope depends only on the call sequence");
        let (replay_scopes, replay_charges) = drive(seed_a);
        prop_assert_eq!(scopes_a, replay_scopes);
        prop_assert_eq!(charges_a, replay_charges, "charges replay exactly under one seed");
        if seed_a == seed_b {
            prop_assert_eq!(charges_b, replay_charges);
        }
    }

    /// Escalation never skips the ladder: a durable-hard component goes
    /// straight to the process rung, everything else starts at its own
    /// component and only widens.
    #[test]
    fn first_failure_of_a_settled_component_never_escalates(
        component in 0usize..4,
        seed in any::<u64>(),
    ) {
        let descs = web_components();
        let mut tree = RestartTree::new(
            descs,
            2,
            Duration::from_millis(50),
            Duration::from_secs(2),
            seed,
        );
        let scope = tree.plan(component);
        if descs[component].state_kind.crashable() {
            prop_assert_eq!(scope, RebootScope::Component(component));
        } else {
            prop_assert_eq!(scope, RebootScope::Process);
        }
    }

    /// MiniDb: rows inserted through the durable path answer identically
    /// after any crashable component is crashed and rebooted — the crash
    /// discards parser/executor/buffer-pool scratch, never the tables.
    #[test]
    fn db_crash_boot_round_trip_preserves_durable_rows(
        rows in 1u32..12,
        victim in prop::sample::select(vec!["db-executor", "db-parser", "db-buffer-pool"]),
        seed in any::<u64>(),
    ) {
        let mut e = env(seed);
        let mut db = MiniDb::new(&mut e);
        db.handle(&Request::new("CREATE TABLE t (k, v)"), &mut e).expect("create");
        for i in 0..rows {
            db.handle(&Request::new(format!("INSERT INTO t VALUES ({i}, {})", i * 10)), &mut e)
                .expect("insert");
        }
        let count = Request::new("SELECT COUNT(*) FROM t");
        let before = db.handle(&count, &mut e).expect("count before");
        let index = component_index(&mut db, victim);
        crash_boot(&mut db, index, &mut e);
        let after = db.handle(&count, &mut e).expect("count after");
        prop_assert_eq!(before, after, "durable rows must survive a {} reboot", victim);
    }

    /// MiniWeb: the durable-hard session store answers identically across
    /// crashes of every crashable component.
    #[test]
    fn web_crash_boot_round_trip_preserves_sessions(
        victim in prop::sample::select(vec!["web-listener", "web-worker-pool", "web-cache"]),
        seed in any::<u64>(),
    ) {
        let mut e = env(seed);
        let mut web = MiniWeb::new(&mut e);
        let auth = Request::new("AUTH admin");
        let before = web.handle(&auth, &mut e).expect("auth before");
        web.handle(&Request::new("GET /index.html"), &mut e).expect("benign");
        let index = component_index(&mut web, victim);
        crash_boot(&mut web, index, &mut e);
        let after = web.handle(&auth, &mut e).expect("auth after");
        prop_assert_eq!(before, after, "session auth must survive a {} reboot", victim);
    }

    /// MiniDe: the boot identity lives in the durable-hard editor buffer;
    /// plugin-host and index crashes must not disturb it.
    #[test]
    fn de_crash_boot_round_trip_preserves_boot_identity(
        victim in prop::sample::select(vec!["de-plugin-host", "de-index"]),
        seed in any::<u64>(),
    ) {
        let mut e = env(seed);
        let mut de = MiniDe::new(&mut e);
        let display = Request::new("OPEN-DISPLAY");
        let before = de.handle(&display, &mut e).expect("display before");
        let index = component_index(&mut de, victim);
        crash_boot(&mut de, index, &mut e);
        let after = de.handle(&display, &mut e).expect("display after");
        prop_assert_eq!(before, after, "boot identity must survive a {} reboot", victim);
    }

    /// Crashing a component is idempotent: once its volatile state is
    /// discarded, further crash/boot round-trips change nothing.
    #[test]
    fn repeated_crash_boot_is_idempotent(
        extra in 1usize..4,
        victim in prop::sample::select(vec!["web-listener", "web-worker-pool", "web-cache"]),
        seed in any::<u64>(),
    ) {
        let mut e = env(seed);
        let mut web = MiniWeb::new(&mut e);
        for req in ["GET /index.html", "AUTH admin", "GET /cached", "KEEPALIVE 4"] {
            web.handle(&Request::new(req), &mut e).expect("benign traffic");
        }
        let index = component_index(&mut web, victim);
        crash_boot(&mut web, index, &mut e);
        let once = web.snapshot();
        for _ in 0..extra {
            crash_boot(&mut web, index, &mut e);
        }
        prop_assert_eq!(web.snapshot(), once, "{} crash is idempotent", victim);
    }
}

// --- degeneration: microreboot without a crashable partition is restart ---

/// Implements [`Application`] by delegation to an inner MiniWeb. The
/// `crash_only` variant additionally exposes the wrapper's own partition.
macro_rules! delegate_app {
    ($ty:ty) => {
        delegate_app!(@impl $ty, {});
    };
    ($ty:ty, crash_only) => {
        delegate_app!(@impl $ty, {
            fn as_crash_only(&mut self) -> Option<&mut dyn CrashOnly> {
                Some(self)
            }
        });
    };
    (@impl $ty:ty, { $($extra:item)* }) => {
        impl Application for $ty {
            $($extra)*
            fn kind(&self) -> faultstudy_core::taxonomy::AppKind {
                self.0.kind()
            }
            fn owner(&self) -> faultstudy_env::OwnerId {
                self.0.owner()
            }
            fn handle(
                &mut self,
                req: &Request,
                env: &mut Environment,
            ) -> Result<faultstudy_apps::Response, faultstudy_apps::AppFailure> {
                self.0.handle(req, env)
            }
            fn snapshot(&self) -> faultstudy_apps::AppState {
                self.0.snapshot()
            }
            fn restore(&mut self, state: &faultstudy_apps::AppState) {
                self.0.restore(state)
            }
            fn inject(
                &mut self,
                slug: &str,
                env: &mut Environment,
            ) -> Result<(), faultstudy_apps::InjectError> {
                self.0.inject(slug, env)
            }
            fn arm_defect(&mut self, slug: &str) -> Result<(), faultstudy_apps::InjectError> {
                self.0.arm_defect(slug)
            }
            fn trigger_request(&self, slug: &str) -> Option<Request> {
                self.0.trigger_request(slug)
            }
            fn benign_request(&self) -> Request {
                self.0.benign_request()
            }
        }
    };
}

/// A MiniWeb stripped of its partition: `as_crash_only` stays `None`.
struct Opaque(MiniWeb);
delegate_app!(Opaque);

/// A MiniWeb behind a single durable-hard root: partitioned, but nothing
/// is crashable, so every failure takes the process rung.
struct Monolith(MiniWeb);
delegate_app!(Monolith, crash_only);

static MONOLITH: [ComponentDesc; 1] = [ComponentDesc {
    name: "monolith",
    state_kind: StateKind::DurableHard,
    boot_cost: Duration::ZERO,
    parent: None,
}];

impl CrashOnly for Monolith {
    fn components(&self) -> &'static [ComponentDesc] {
        &MONOLITH
    }
    fn route(&self, _body: &str) -> usize {
        0
    }
    fn crash_component(&mut self, _index: usize, _env: &mut Environment) {
        unreachable!("a durable-hard root is never crashed");
    }
    fn boot_component(&mut self, _index: usize, _env: &mut Environment) {}
}

/// Request pool the degeneration workloads draw from: benign traffic, a
/// deterministic crash (`apache-ei-03` armed), and the checkpointed leak
/// (`apache-edn-01` armed) whose restore-crash loop exercises the retry
/// budget of both strategies identically.
const POOL: [&str; 5] =
    ["GET /index.html", "GET /file", "AUTH admin", "GET /nonexistent", "GET /burst"];

fn degeneration_workload(picks: &[usize]) -> Vec<Request> {
    picks.iter().map(|&i| Request::new(POOL[i])).collect()
}

fn run_restart(
    seed: u64,
    workload: &[Request],
) -> (faultstudy_apps::AppState, faultstudy_sim::time::SimTime, faultstudy_recovery::WorkloadRun) {
    let mut e = env(seed);
    let mut web = MiniWeb::new(&mut e);
    web.inject("apache-ei-03", &mut e).expect("injectable");
    web.inject("apache-edn-01", &mut e).expect("injectable");
    let mut strategy = RestartRetry::new(3);
    let run = run_workload(&mut web, &mut e, workload, &mut strategy);
    (web.snapshot(), e.now(), run)
}

proptest! {
    /// An application with no crash-only partition under [`MicroReboot`]
    /// behaves byte-for-byte like [`RestartRetry`]: same run outcome,
    /// same final checkpoint, same simulated clock.
    #[test]
    fn unpartitioned_microreboot_degenerates_into_restart_retry(
        picks in prop::collection::vec(0usize..POOL.len(), 1..24),
        seed in any::<u64>(),
    ) {
        let workload = degeneration_workload(&picks);
        let reference = run_restart(seed, &workload);

        let mut e = env(seed);
        let mut app = Opaque(MiniWeb::new(&mut e));
        app.inject("apache-ei-03", &mut e).expect("injectable");
        app.inject("apache-edn-01", &mut e).expect("injectable");
        let mut strategy = MicroReboot::new(3, seed);
        let run = run_workload(&mut app, &mut e, &workload, &mut strategy);
        prop_assert_eq!((app.snapshot(), e.now(), run), reference);
    }

    /// A single-component durable-hard tree is the same degeneration:
    /// the ladder has exactly one rung and it is the whole-process
    /// restart.
    #[test]
    fn single_durable_component_tree_degenerates_into_restart_retry(
        picks in prop::collection::vec(0usize..POOL.len(), 1..24),
        seed in any::<u64>(),
    ) {
        let workload = degeneration_workload(&picks);
        let reference = run_restart(seed, &workload);

        let mut e = env(seed);
        let mut app = Monolith(MiniWeb::new(&mut e));
        app.inject("apache-ei-03", &mut e).expect("injectable");
        app.inject("apache-edn-01", &mut e).expect("injectable");
        let mut strategy = MicroReboot::new(3, seed);
        let run = run_workload(&mut app, &mut e, &workload, &mut strategy);
        prop_assert_eq!((app.snapshot(), e.now(), run), reference);
    }
}
