//! User sessions: a burst of requests with think time between them.
//!
//! A session is the closed-loop half of the traffic model: sessions
//! *arrive* open-loop (the arrival process never waits for the server),
//! but within a session the next request is issued only after the
//! previous one completes plus an exponential think time — a user
//! reading the page before the next click. Each session owns a
//! `SplitMix64` seeded from the campaign's `split_seed` chain, so its
//! think times and request-mix picks replay exactly.

use faultstudy_sim::rng::{DetRng, SplitMix64};
use faultstudy_sim::time::Duration;

/// Live state of one user session, slab-allocated by the engine.
#[derive(Debug)]
pub struct Session {
    /// Requests this session has yet to issue.
    pub remaining: u32,
    rng: SplitMix64,
}

impl Session {
    /// A session that will issue `remaining` requests, with all of its
    /// randomness derived from `seed`.
    pub fn new(remaining: u32, seed: u64) -> Session {
        Session { remaining, rng: SplitMix64::new(seed) }
    }

    /// Picks the next request from a mix of `len` prepared requests.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn pick(&mut self, len: usize) -> usize {
        self.rng.below(len as u64) as usize
    }

    /// An exponential think time with the given mean; at least 1 ns so
    /// a session always moves forward in time.
    pub fn think(&mut self, mean: Duration) -> Duration {
        let u = self.rng.unit();
        let ns = -(1.0 - u).ln() * mean.as_nanos() as f64;
        Duration::from_nanos((ns as u64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_replay_from_their_seed() {
        let mut a = Session::new(4, 99);
        let mut b = Session::new(4, 99);
        for _ in 0..4 {
            assert_eq!(a.pick(16), b.pick(16));
            assert_eq!(a.think(Duration::from_millis(200)), b.think(Duration::from_millis(200)));
        }
    }

    #[test]
    fn think_time_is_positive_with_roughly_the_requested_mean() {
        let mut s = Session::new(1, 5);
        let mean = Duration::from_millis(10);
        let total: u64 = (0..10_000).map(|_| s.think(mean).as_nanos()).sum();
        let avg = total as f64 / 10_000.0;
        assert!((avg - 1e7).abs() < 0.1 * 1e7, "mean think {avg}");
    }
}
