//! Tunable shape of one unit of offered traffic.

use crate::arrival::ArrivalKind;
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};

/// Shape of the offered load for one traffic unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficParams {
    /// Arrival-process family for session starts.
    pub arrival: ArrivalKind,
    /// Nominal offered rate in requests per simulated second (session
    /// starts arrive at `rate_per_sec / requests_per_session`).
    pub rate_per_sec: f64,
    /// Total requests the unit offers; the schedule stops exactly here.
    pub requests: u64,
    /// Requests a session issues before it ends (the last session is
    /// truncated to hit `requests` exactly).
    pub requests_per_session: u32,
    /// Mean exponential think time between a session's requests.
    pub think_mean: Duration,
    /// Latency above which an answered request counts as an SLO violation.
    pub slo: Duration,
}

impl TrafficParams {
    /// The campaign's standard shape: 1000 req/s offered through sessions
    /// of 8 with 200 ms mean think time, against a 250 ms latency SLO.
    pub fn standard(arrival: ArrivalKind, requests: u64) -> TrafficParams {
        TrafficParams {
            arrival,
            rate_per_sec: 1000.0,
            requests,
            requests_per_session: 8,
            think_mean: Duration::from_millis(200),
            slo: Duration::from_millis(250),
        }
    }
}
