//! Deterministic open-loop traffic generation in simulated time.
//!
//! The fault study's original harness replayed a fixed workload slice per
//! experiment rep. This crate replaces that with *traffic*: an open-loop
//! stream of user sessions whose arrivals, request mixes, and think times
//! are all pure functions of a seed, scheduled on a hierarchical timing
//! wheel and served one request at a time through the recovery
//! supervisor. Because the whole stream lives in simulated time, a unit
//! offering a million requests runs in well under a second of wall time
//! and replays byte-identically at any thread count.
//!
//! - [`wheel`](faultstudy_sim::wheel) (in `faultstudy-sim`) — the O(1)
//!   event scheduler the engine drains.
//! - [`arrival`] — Poisson, bursty on/off, and diurnal arrival processes
//!   derived from `split_seed`.
//! - [`session`] — user sessions: a burst of requests with exponential
//!   think time and a seeded request-mix pick.
//! - [`engine`] — the open-loop drive loop and its per-unit
//!   [`UnitStats`] ledger (availability, goodput, SLO violations,
//!   latency histogram).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod engine;
pub mod params;
pub mod session;

pub use arrival::{ArrivalKind, ArrivalProcess};
pub use engine::{run_open_loop, UnitStats};
pub use params::TrafficParams;
pub use session::Session;
