//! The open-loop engine: a timing wheel full of arrivals drained through
//! the per-request supervisor.
//!
//! Open-loop means arrivals never wait for the server: session starts
//! are scheduled by the arrival process regardless of how far behind the
//! serving clock is, so overload shows up as queueing delay in the
//! latency distribution instead of silently throttling offered load —
//! the property closed-loop benchmarks notoriously get wrong. Requests
//! are synchronous in simulated time: when the simulated clock has been
//! pushed past an arrival's timestamp by earlier service, recovery
//! stalls, or backoff, the difference is exactly the request's queueing
//! delay and is charged to its latency.

use crate::arrival::ArrivalProcess;
use crate::params::TrafficParams;
use faultstudy_apps::{Application, Request};
use faultstudy_env::Environment;
use faultstudy_obs::Histogram;
use faultstudy_recovery::{
    EnvHook, RecoveryStrategy, RequestSupervisor, ServeOutcome, SupervisorConfig,
};
use faultstudy_sim::rng::SplitSeedStream;
use faultstudy_sim::wheel::TimingWheel;
use serde::{Deserialize, Serialize};

use crate::session::Session;

/// Per-unit traffic outcome: the request ledger and latency histogram a
/// campaign folds into its (fault class × strategy) SLO accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitStats {
    /// Requests the arrival schedule offered.
    pub offered: u64,
    /// Requests answered successfully.
    pub ok: u64,
    /// Requests answered with a graceful denial.
    pub denied: u64,
    /// Requests lost: the strategy gave up or the breaker shed them.
    pub dropped: u64,
    /// Fault manifestations across all attempts.
    pub failures: u64,
    /// Recovery actions the strategy performed.
    pub recoveries: u64,
    /// Answered requests whose latency exceeded the SLO threshold.
    pub slo_violations: u64,
    /// Hung attempts detected by the watchdog.
    pub watchdog_fires: u64,
    /// Per-request latency in nanoseconds of simulated time (answered
    /// requests only; queueing + service + recovery + backoff).
    pub latency: Histogram,
    /// Simulated time consumed by the unit, in nanoseconds.
    pub sim_nanos: u64,
}

impl Default for UnitStats {
    fn default() -> UnitStats {
        UnitStats::new()
    }
}

impl UnitStats {
    /// An empty ledger.
    pub fn new() -> UnitStats {
        UnitStats {
            offered: 0,
            ok: 0,
            denied: 0,
            dropped: 0,
            failures: 0,
            recoveries: 0,
            slo_violations: 0,
            watchdog_fires: 0,
            latency: Histogram::new(),
            sim_nanos: 0,
        }
    }

    /// Requests that received any answer (success or graceful denial).
    pub fn answered(&self) -> u64 {
        self.ok + self.denied
    }

    /// Fraction of offered requests that were answered, in [0, 1].
    pub fn availability(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.answered() as f64 / self.offered as f64
    }

    /// Successfully served requests per simulated second.
    pub fn goodput_per_sec(&self) -> f64 {
        if self.sim_nanos == 0 {
            return 0.0;
        }
        self.ok as f64 * 1e9 / self.sim_nanos as f64
    }

    /// Folds `other` into `self` (ledgers add, histograms merge).
    pub fn absorb(&mut self, other: &UnitStats) {
        self.offered += other.offered;
        self.ok += other.ok;
        self.denied += other.denied;
        self.dropped += other.dropped;
        self.failures += other.failures;
        self.recoveries += other.recoveries;
        self.slo_violations += other.slo_violations;
        self.watchdog_fires += other.watchdog_fires;
        self.latency.merge_from(&other.latency);
        self.sim_nanos += other.sim_nanos;
    }
}

/// Wheel payload: what to do when simulated time reaches the event.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// A new user session arrives (open-loop: scheduled by the arrival
    /// process, independent of server progress).
    SessionStart,
    /// An existing session issues its next request after think time.
    Next(u32),
}

/// Drives one unit of open-loop traffic against `app` under `strategy`,
/// returning the request ledger.
///
/// The request mix is prepared once by the caller and picked from by
/// index per request, so the hot loop allocates nothing of its own;
/// session slots are slab-recycled and the wheel reuses slot buffers.
/// `arrival_seed` and `session_master` are independent `split_seed`
/// derivations of the unit's seed.
#[allow(clippy::too_many_arguments)]
pub fn run_open_loop(
    app: &mut dyn Application,
    env: &mut Environment,
    strategy: &mut dyn RecoveryStrategy,
    config: &SupervisorConfig,
    mut hook: Option<&mut dyn EnvHook>,
    mix: &[Request],
    params: &TrafficParams,
    arrival_seed: u64,
    session_master: u64,
) -> UnitStats {
    assert!(!mix.is_empty(), "traffic needs a request mix");
    let mut stats = UnitStats::new();
    let mut sup = RequestSupervisor::begin(app, env, strategy, config);
    if params.requests == 0 {
        stats.sim_nanos = env.now().as_nanos();
        return stats;
    }
    let per_session = params.requests_per_session.max(1);
    let mut arrivals = ArrivalProcess::new(
        params.arrival,
        params.rate_per_sec / f64::from(per_session),
        arrival_seed,
    );
    let mut session_seeds = SplitSeedStream::new(session_master, 0);
    let mut wheel: TimingWheel<Event> = TimingWheel::new();
    let mut sessions: Vec<Session> = Vec::new();
    let mut free: Vec<u32> = Vec::new();
    // Requests already promised to spawned sessions; the last session is
    // truncated so the unit offers exactly `params.requests`.
    let mut allotted: u64 = 0;

    let start = env.now();
    let gap = arrivals.next_gap(start);
    wheel.schedule(start.saturating_add(gap), Event::SessionStart);
    while let Some((at, event)) = wheel.pop() {
        let sid = match event {
            Event::SessionStart => {
                let size = (params.requests - allotted).min(u64::from(per_session)) as u32;
                allotted += u64::from(size);
                if allotted < params.requests {
                    let gap = arrivals.next_gap(at);
                    wheel.schedule(at.saturating_add(gap), Event::SessionStart);
                }
                let session = Session::new(size, session_seeds.next_seed());
                match free.pop() {
                    Some(slot) => {
                        sessions[slot as usize] = session;
                        slot
                    }
                    None => {
                        sessions.push(session);
                        (sessions.len() - 1) as u32
                    }
                }
            }
            Event::Next(sid) => sid,
        };
        // The request arrives at `at`; if the serving clock is behind,
        // the server was idle and catches up. If it is ahead, the request
        // queues and the difference lands in its latency.
        if env.now() < at {
            env.advance(at.saturating_since(env.now()));
        }
        let session = &mut sessions[sid as usize];
        session.remaining -= 1;
        let pick = session.pick(mix.len());
        let outcome = sup.serve(app, env, &mix[pick], strategy, config, &mut hook);
        stats.offered += 1;
        match outcome {
            ServeOutcome::Served { denied, .. } => {
                let latency = env.now().saturating_since(at);
                stats.latency.record(latency.as_nanos());
                if denied {
                    stats.denied += 1;
                } else {
                    stats.ok += 1;
                }
                if latency > params.slo {
                    stats.slo_violations += 1;
                }
            }
            ServeOutcome::Abandoned { .. } | ServeOutcome::Degraded { .. } | ServeOutcome::Shed => {
                stats.dropped += 1;
            }
        }
        let session = &mut sessions[sid as usize];
        if session.remaining > 0 {
            let think = session.think(params.think_mean);
            wheel.schedule(env.now().saturating_add(think), Event::Next(sid));
        } else {
            free.push(sid);
        }
    }
    stats.failures = u64::from(sup.failures());
    stats.recoveries = u64::from(sup.recoveries());
    stats.watchdog_fires = u64::from(sup.watchdog_fires());
    stats.sim_nanos = env.now().as_nanos();
    debug_assert_eq!(stats.offered, params.requests);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalKind;
    use faultstudy_apps::MiniWeb;

    fn run(requests: u64, seed: u64) -> (UnitStats, u64) {
        let mut env = Environment::builder().seed(seed).build();
        let mut app = MiniWeb::new(&mut env);
        let mut strategy = faultstudy_recovery::RestartRetry::new(3);
        let config = SupervisorConfig::permissive();
        let mix = vec![Request::new("GET /index.html"), Request::new("AUTH admin")];
        let params = TrafficParams::standard(ArrivalKind::Poisson, requests);
        let stats =
            run_open_loop(&mut app, &mut env, &mut strategy, &config, None, &mix, &params, 1, 2);
        (stats, env.now().as_nanos())
    }

    #[test]
    fn healthy_traffic_answers_every_request() {
        let (stats, _) = run(500, 11);
        assert_eq!(stats.offered, 500);
        assert_eq!(stats.ok, 500);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.latency.count(), 500);
        assert!(stats.sim_nanos > 0);
        assert!((stats.availability() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn traffic_replays_byte_identically() {
        let (a, now_a) = run(300, 17);
        let (b, now_b) = run(300, 17);
        assert_eq!(a, b);
        assert_eq!(now_a, now_b);
    }

    #[test]
    fn zero_requests_is_a_quiet_unit() {
        let (stats, _) = run(0, 3);
        assert_eq!(stats.offered, 0);
        assert_eq!(stats.answered(), 0);
    }
}
