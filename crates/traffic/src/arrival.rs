//! Seed-derived arrival processes for the open-loop request stream.
//!
//! Every inter-arrival gap is a pure function of `(master seed, draw
//! index)`: the uniform variates come from the same `split_seed`
//! derivation the campaigns use (batched through
//! [`SplitSeedStream`]), so an arrival schedule replays byte-identically
//! regardless of thread count, chunk size, or how the stream is
//! interleaved with the rest of the simulation.

use faultstudy_sim::rng::SplitSeedStream;
use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Nanoseconds per simulated second, as float for rate arithmetic.
const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// The shape of the offered-load curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Memoryless arrivals at a constant mean rate.
    Poisson,
    /// On/off bursts: exponential on-periods at twice the nominal rate
    /// alternating with equally long silent periods (50% duty cycle), so
    /// the long-run mean rate matches [`ArrivalKind::Poisson`].
    Bursty,
    /// A compressed day: the instantaneous rate follows a piecewise-linear
    /// diurnal curve between 0.25× and 1.75× the nominal rate with mean
    /// 1×. Pure arithmetic (no trig) keeps the curve deterministic.
    Diurnal,
}

impl ArrivalKind {
    /// Every arrival kind, in presentation order.
    pub const ALL: [ArrivalKind; 3] =
        [ArrivalKind::Poisson, ArrivalKind::Bursty, ArrivalKind::Diurnal];

    /// CLI name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
            ArrivalKind::Diurnal => "diurnal",
        }
    }

    /// Parses a CLI name (`poisson`, `bursty`, `diurnal`).
    pub fn parse(name: &str) -> Option<ArrivalKind> {
        ArrivalKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One simulated "day" of the diurnal curve, compressed so that multi-day
/// effects show up within a campaign unit's few simulated minutes.
const DIURNAL_PERIOD: u64 = 8_000_000_000; // 8 simulated seconds

/// Mean length of a bursty on-period (and of the silent off-period).
const BURST_ON_MEAN_NS: f64 = 50_000_000.0; // 50 ms

/// A deterministic generator of inter-arrival gaps.
///
/// # Example
///
/// ```
/// use faultstudy_sim::time::SimTime;
/// use faultstudy_traffic::{ArrivalKind, ArrivalProcess};
///
/// let mut a = ArrivalProcess::new(ArrivalKind::Poisson, 1000.0, 42);
/// let mut b = ArrivalProcess::new(ArrivalKind::Poisson, 1000.0, 42);
/// let gap = a.next_gap(SimTime::ZERO);
/// assert_eq!(gap, b.next_gap(SimTime::ZERO), "same seed, same schedule");
/// assert!(gap.as_nanos() >= 1);
/// ```
#[derive(Debug)]
pub struct ArrivalProcess {
    kind: ArrivalKind,
    /// Nominal mean arrival rate in events per nanosecond.
    rate: f64,
    seeds: SplitSeedStream,
    /// Bursty state: nanoseconds left in the current on-period.
    on_left: f64,
}

impl ArrivalProcess {
    /// A process emitting `rate_per_sec` arrivals per simulated second on
    /// average, with all randomness derived from `master`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_per_sec` is positive and finite.
    pub fn new(kind: ArrivalKind, rate_per_sec: f64, master: u64) -> ArrivalProcess {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive, got {rate_per_sec}"
        );
        let mut seeds = SplitSeedStream::new(master, 0);
        let on_left = match kind {
            ArrivalKind::Bursty => exp_ns(&mut seeds, 1.0 / BURST_ON_MEAN_NS),
            _ => 0.0,
        };
        ArrivalProcess { kind, rate: rate_per_sec / NANOS_PER_SEC, seeds, on_left }
    }

    /// The gap from `now` to the next arrival; always at least 1 ns so
    /// the stream makes progress.
    pub fn next_gap(&mut self, now: SimTime) -> Duration {
        let gap = match self.kind {
            ArrivalKind::Poisson => exp_ns(&mut self.seeds, self.rate),
            ArrivalKind::Bursty => self.bursty_gap(),
            ArrivalKind::Diurnal => {
                let factor = diurnal_factor(now.as_nanos());
                exp_ns(&mut self.seeds, self.rate * factor)
            }
        };
        Duration::from_nanos((gap as u64).max(1))
    }

    /// On/off alternation: draw at double rate inside the on-period;
    /// when it runs out, skip a silent off-period and start a new burst.
    fn bursty_gap(&mut self) -> f64 {
        let mut offset = 0.0;
        loop {
            let gap = exp_ns(&mut self.seeds, self.rate * 2.0);
            if gap <= self.on_left {
                self.on_left -= gap;
                return offset + gap;
            }
            offset += self.on_left;
            offset += exp_ns(&mut self.seeds, 1.0 / BURST_ON_MEAN_NS);
            self.on_left = exp_ns(&mut self.seeds, 1.0 / BURST_ON_MEAN_NS);
        }
    }
}

/// The diurnal rate multiplier at absolute time `now_ns`: a triangle wave
/// over [`DIURNAL_PERIOD`] ranging 0.25..1.75 with mean exactly 1.
fn diurnal_factor(now_ns: u64) -> f64 {
    let phase = (now_ns % DIURNAL_PERIOD) as f64 / DIURNAL_PERIOD as f64;
    let triangle = if phase < 0.5 { 2.0 * phase } else { 2.0 * (1.0 - phase) };
    0.25 + 1.5 * triangle
}

/// An exponential variate with rate `lambda` (per nanosecond), from the
/// next seed of `seeds` mapped to a uniform in [0, 1).
fn exp_ns(seeds: &mut SplitSeedStream, lambda: f64) -> f64 {
    // 53 mantissa bits give an exactly representable uniform in [0, 1).
    let u = (seeds.next_seed() >> 11) as f64 / (1u64 << 53) as f64;
    // -ln(1-u) is finite because 1-u > 0.
    -(1.0 - u).ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_gap(kind: ArrivalKind, seed: u64, draws: u32) -> f64 {
        let mut p = ArrivalProcess::new(kind, 1000.0, seed);
        let mut now = SimTime::ZERO;
        let mut total = 0u64;
        for _ in 0..draws {
            let gap = p.next_gap(now);
            now = now.saturating_add(gap);
            total += gap.as_nanos();
        }
        total as f64 / f64::from(draws)
    }

    #[test]
    fn poisson_mean_rate_is_close_to_nominal() {
        // 1000/s nominal → 1e6 ns mean gap; 20k draws keep the sample
        // mean within a few percent.
        let mean = mean_gap(ArrivalKind::Poisson, 7, 20_000);
        assert!((mean - 1e6).abs() < 0.05 * 1e6, "mean gap {mean}");
    }

    #[test]
    fn bursty_long_run_rate_matches_nominal() {
        let mean = mean_gap(ArrivalKind::Bursty, 7, 50_000);
        assert!((mean - 1e6).abs() < 0.15 * 1e6, "mean gap {mean}");
    }

    #[test]
    fn diurnal_long_run_rate_matches_nominal() {
        let mean = mean_gap(ArrivalKind::Diurnal, 7, 50_000);
        assert!((mean - 1e6).abs() < 0.25 * 1e6, "mean gap {mean}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mut a = ArrivalProcess::new(ArrivalKind::Poisson, 1000.0, 1);
        let mut b = ArrivalProcess::new(ArrivalKind::Poisson, 1000.0, 2);
        let gaps_a: Vec<_> = (0..8).map(|_| a.next_gap(SimTime::ZERO)).collect();
        let gaps_b: Vec<_> = (0..8).map(|_| b.next_gap(SimTime::ZERO)).collect();
        assert_ne!(gaps_a, gaps_b);
    }

    #[test]
    fn parse_round_trips_names() {
        for kind in ArrivalKind::ALL {
            assert_eq!(ArrivalKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ArrivalKind::parse("uniform"), None);
    }
}
