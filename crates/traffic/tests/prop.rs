//! Property tests for the arrival processes and session model: schedules
//! are pure functions of their seed, gaps always advance time, and the
//! long-run offered rate stays near nominal for every curve shape.

use faultstudy_sim::time::SimTime;
use faultstudy_traffic::{ArrivalKind, ArrivalProcess, Session};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ArrivalKind> {
    prop::sample::select(ArrivalKind::ALL.to_vec())
}

proptest! {
    /// Two processes built from the same (kind, rate, seed) emit exactly
    /// the same schedule — the property the thread-invariant campaign
    /// fold rests on.
    #[test]
    fn same_seed_replays_the_same_schedule(
        kind in kind_strategy(),
        rate in 1.0f64..100_000.0,
        seed in any::<u64>(),
    ) {
        let mut a = ArrivalProcess::new(kind, rate, seed);
        let mut b = ArrivalProcess::new(kind, rate, seed);
        let mut now = SimTime::ZERO;
        for _ in 0..64 {
            let gap = a.next_gap(now);
            prop_assert_eq!(gap, b.next_gap(now), "schedules diverged");
            prop_assert!(gap.as_nanos() >= 1, "a gap must advance time");
            now = now.saturating_add(gap);
        }
    }

    /// The sampled mean inter-arrival gap lands near 1/rate for every
    /// arrival kind and seed. Bursty and diurnal curves modulate the
    /// instantaneous rate, so the bound is loose but still catches a
    /// mis-scaled lambda (which would be off by 2x or more).
    #[test]
    fn long_run_rate_tracks_nominal(kind in kind_strategy(), seed in any::<u64>()) {
        let rate_per_sec = 1000.0;
        let draws = 20_000u32;
        let mut p = ArrivalProcess::new(kind, rate_per_sec, seed);
        let mut now = SimTime::ZERO;
        for _ in 0..draws {
            now = now.saturating_add(p.next_gap(now));
        }
        let mean = now.as_nanos() as f64 / f64::from(draws);
        let nominal = 1e9 / rate_per_sec;
        prop_assert!(
            (mean - nominal).abs() < 0.35 * nominal,
            "kind {:?} mean gap {} vs nominal {}", kind, mean, nominal
        );
    }

    /// Sessions with the same master seed replay the same request picks
    /// and think times; think times always advance the clock.
    #[test]
    fn sessions_replay_from_their_seed(
        master in any::<u64>(),
        len in 1usize..32,
        requests in 1u32..64,
    ) {
        let mut a = Session::new(requests, master);
        let mut b = Session::new(requests, master);
        let think_mean = faultstudy_sim::time::Duration::from_millis(200);
        for _ in 0..requests {
            let pick = a.pick(len);
            prop_assert_eq!(pick, b.pick(len));
            prop_assert!(pick < len, "pick must stay in the mix");
            let think = a.think(think_mean);
            prop_assert_eq!(think, b.think(think_mean));
            prop_assert!(think.as_nanos() >= 1);
        }
    }
}
