//! Differential property tests: the automaton agrees with the naive
//! lowercase-and-`contains` predicate on arbitrary text.

use faultstudy_textscan::{contains_ci, PatternSetBuilder};
use proptest::prelude::*;

/// Pattern shapes drawn from the real scan set: short words, two-word
/// phrases, overlapping prefixes/suffixes.
fn pattern_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "crash".to_owned(),
        "race".to_owned(),
        "race condition".to_owned(),
        "dns".to_owned(),
        "reverse dns".to_owned(),
        "full".to_owned(),
        "full file system".to_owned(),
        "file system".to_owned(),
        "no space left".to_owned(),
        "a".to_owned(),
        "ab".to_owned(),
        "abc".to_owned(),
    ])
}

/// Text built from fragments that deliberately collide with the patterns
/// (prefixes, suffixes, case variants) plus arbitrary filler.
fn text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "crash".to_owned(),
            "CRASHED".to_owned(),
            "race".to_owned(),
            "condition".to_owned(),
            "race condition".to_owned(),
            "reverse".to_owned(),
            "dns".to_owned(),
            "file".to_owned(),
            "system full".to_owned(),
            "ful".to_owned(),
            "ab".to_owned(),
            "abcabc".to_owned(),
            " ".to_owned(),
            "\n".to_owned(),
            "xyz".to_owned(),
        ]),
        0..12,
    )
    .prop_map(|fragments| fragments.concat())
}

proptest! {
    /// Every pattern the automaton reports is exactly the set the naive
    /// per-pattern `contains` scan finds.
    #[test]
    fn automaton_agrees_with_naive_contains(
        patterns in prop::collection::vec(pattern_strategy(), 1..8),
        text in text_strategy(),
    ) {
        let mut b = PatternSetBuilder::new();
        let ids: Vec<_> = patterns.iter().map(|p| b.add(p)).collect();
        let automaton = b.build();
        let hits = automaton.scan(&text);
        let lower = text.to_lowercase();
        for (pattern, &id) in patterns.iter().zip(&ids) {
            prop_assert_eq!(
                hits.contains(id),
                lower.contains(pattern.as_str()),
                "pattern {:?} in text {:?}", pattern, &text
            );
        }
    }

    /// Scanning fields separately equals scanning them joined by '\n'
    /// (the `full_text` layout), for patterns without newlines.
    #[test]
    fn segment_scan_equals_joined_scan(
        patterns in prop::collection::vec(pattern_strategy(), 1..6),
        a in "[a-z ]{0,20}",
        b in "[a-z ]{0,20}",
        c in "[a-z ]{0,20}",
    ) {
        let mut builder = PatternSetBuilder::new();
        for p in &patterns {
            builder.add(p);
        }
        let automaton = builder.build();
        let joined = format!("{a}\n{b}\n{c}");
        prop_assert_eq!(automaton.scan_segments(&[&a, &b, &c]), automaton.scan(&joined));
    }

    /// `contains_ci` agrees with the lowercase-then-contains predicate.
    #[test]
    fn contains_ci_agrees_with_naive(
        hay in ".{0,60}",
        needle in pattern_strategy(),
    ) {
        prop_assert_eq!(
            contains_ci(&hay, &needle),
            hay.to_lowercase().contains(&needle.to_lowercase()),
            "needle {:?} in hay {:?}", &needle, &hay
        );
    }
}
