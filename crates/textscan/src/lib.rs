//! Single-pass, allocation-free multi-pattern text scanning.
//!
//! The mining funnel and the evidence extractor ask the same question of
//! every report: *which of these fixed substrings occur in this text,
//! case-insensitively?* Answered naively that is one `to_lowercase`
//! allocation plus one `contains` traversal per pattern — roughly 95
//! traversals of every report in the corpus. This crate answers it with a
//! classic Aho–Corasick automaton instead: all patterns are compiled once
//! into a DFA whose transition table covers all 256 byte values with ASCII
//! case folding baked in, and a single left-to-right pass over the text —
//! one table load per byte, no per-byte case or range checks — produces a
//! [`HitSet`]: a fixed-size stack bitset recording every pattern that
//! occurs. Scanning performs **zero heap allocations**.
//!
//! Byte-identical semantics with the naive implementation are preserved:
//!
//! - A pattern is "hit" exactly when `text.to_lowercase()` contains the
//!   Unicode-lowercased pattern, the same predicate the naive scans use.
//! - Non-ASCII text (or a non-ASCII pattern set) cannot be case folded
//!   bytewise, so [`Automaton::scan`] transparently falls back to the
//!   naive lowercase-and-`contains` path for that input. The fast path
//!   covers every ASCII input, which is all of the paper's corpora.
//!
//! # Example
//!
//! ```
//! use faultstudy_textscan::PatternSetBuilder;
//!
//! let mut b = PatternSetBuilder::new();
//! let crash = b.add("crash");
//! let race = b.add("race condition");
//! let automaton = b.build();
//!
//! let hits = automaton.scan("Server CRASHED under load");
//! assert!(hits.contains(crash));
//! assert!(!hits.contains(race));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

/// Identifier of one pattern inside an [`Automaton`], assigned by
/// [`PatternSetBuilder::add`] in insertion order (duplicates collapse onto
/// the first id).
pub type PatternId = u16;

/// Number of 64-bit words in a [`HitSet`].
const WORDS: usize = 4;

/// Maximum number of distinct patterns one automaton can hold: the
/// [`HitSet`] capacity. 256 comfortably covers the shared scan set
/// (lexicon rules + reproducibility cues + search keywords ≈ 95 patterns).
pub const MAX_PATTERNS: usize = WORDS * 64;

/// The byte alphabet the DFA transitions over. Patterns are ASCII, but the
/// table covers all 256 byte values so the scan loop needs no per-byte
/// range or case check: uppercase columns mirror their lowercase twins
/// (case folding is baked into the table) and non-ASCII columns carry the
/// [`NON_ASCII`] sentinel that diverts to the naive fallback.
const ALPHABET: usize = 256;

/// High bit of a packed transition word: set when the target state has a
/// non-empty output set, so the scan loop only touches the per-node hit
/// sets on the rare bytes that complete a match.
const HAS_OUTPUT: u32 = 1 << 31;

/// Sentinel flag on the 128 non-ASCII columns: bytewise case folding would
/// be wrong past this byte, so the scan bails out to the naive path.
const NON_ASCII: u32 = 1 << 30;

/// Mask extracting the target state from a packed transition word.
const STATE_MASK: u32 = !(HAS_OUTPUT | NON_ASCII);

/// A fixed-capacity bitset of pattern hits — `Copy`, stack-allocated, and
/// therefore free to create per report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HitSet {
    words: [u64; WORDS],
}

impl HitSet {
    /// The empty set.
    pub const EMPTY: HitSet = HitSet { words: [0; WORDS] };

    /// Marks `id` as hit.
    pub fn insert(&mut self, id: PatternId) {
        self.words[usize::from(id) / 64] |= 1 << (usize::from(id) % 64);
    }

    /// Whether `id` was hit.
    pub fn contains(&self, id: PatternId) -> bool {
        self.words[usize::from(id) / 64] & (1 << (usize::from(id) % 64)) != 0
    }

    /// Unions `other` into `self`.
    pub fn or_assign(&mut self, other: &HitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Whether no pattern was hit.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of patterns hit.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether at least one of `ids` was hit (disjunction).
    pub fn any_of(&self, ids: &[PatternId]) -> bool {
        ids.iter().any(|&id| self.contains(id))
    }

    /// Whether every one of `ids` was hit (conjunction).
    pub fn all_of(&self, ids: &[PatternId]) -> bool {
        ids.iter().all(|&id| self.contains(id))
    }

    /// The set containing exactly `ids`.
    pub fn of(ids: &[PatternId]) -> HitSet {
        let mut set = HitSet::EMPTY;
        for &id in ids {
            set.insert(id);
        }
        set
    }

    /// Whether the two sets share at least one pattern. Equivalent to
    /// [`Self::any_of`] over the ids `other` was built from, in a fixed
    /// four-word pass instead of a probe per id.
    pub fn intersects(&self, other: &HitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(w, o)| w & o != 0)
    }

    /// Whether every pattern in `other` is also in `self`. Equivalent to
    /// [`Self::all_of`] over the ids `other` was built from.
    pub fn is_superset(&self, other: &HitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(w, o)| w & o == *o)
    }
}

/// Collects patterns (deduplicated, case folded) and compiles them into an
/// [`Automaton`].
#[derive(Debug, Default)]
pub struct PatternSetBuilder {
    patterns: Vec<String>,
}

impl PatternSetBuilder {
    /// An empty builder.
    pub fn new() -> PatternSetBuilder {
        PatternSetBuilder::default()
    }

    /// Registers `pattern` (stored Unicode-lowercased, matching the naive
    /// scans' case folding) and returns its id. Adding the same pattern
    /// twice returns the first id.
    ///
    /// # Panics
    ///
    /// Panics if the set would exceed [`MAX_PATTERNS`].
    pub fn add(&mut self, pattern: &str) -> PatternId {
        let lowered = pattern.to_lowercase();
        if let Some(pos) = self.patterns.iter().position(|p| *p == lowered) {
            return pos as PatternId;
        }
        assert!(self.patterns.len() < MAX_PATTERNS, "pattern set exceeds {MAX_PATTERNS} patterns");
        self.patterns.push(lowered);
        (self.patterns.len() - 1) as PatternId
    }

    /// Compiles the collected patterns.
    pub fn build(self) -> Automaton {
        Automaton::compile(self.patterns)
    }
}

/// A compiled multi-pattern matcher: one scan of the text reports every
/// registered pattern that occurs in it.
///
/// Construction is the standard three steps — goto trie, BFS failure
/// links, then full DFA conversion (every missing transition resolved
/// through the failure chain at build time) with output sets propagated
/// along failure links into per-node [`HitSet`]s. The scan loop is then
/// branch-light: one table lookup per byte, plus one bitset union on the
/// rare bytes whose target state completes a match.
#[derive(Debug)]
pub struct Automaton {
    /// Packed DFA transitions: `next[state * ALPHABET + byte]` is the next
    /// state index, with [`HAS_OUTPUT`] set when that state has outputs.
    /// Empty when `ascii` is false (naive fallback only).
    next: Vec<u32>,
    /// Union of the patterns ending at each state (own outputs plus the
    /// failure chain's).
    node_hits: Vec<HitSet>,
    /// The lowercased patterns, indexed by [`PatternId`]; retained for the
    /// non-ASCII fallback path and introspection.
    patterns: Vec<String>,
    /// Whether the DFA tables were built: the pattern set is non-empty and
    /// all-ASCII. False means every scan takes the naive path (or, for an
    /// empty set, trivially returns).
    ascii: bool,
    /// Whether the root state has outputs (i.e. the set contains an empty
    /// pattern); when false — the overwhelmingly common case — the scan
    /// loop skips the up-front root-hits union entirely.
    root_has_output: bool,
}

impl Automaton {
    fn compile(patterns: Vec<String>) -> Automaton {
        let ascii = !patterns.is_empty() && patterns.iter().all(|p| p.is_ascii());
        if !ascii {
            return Automaton {
                next: Vec::new(),
                node_hits: Vec::new(),
                patterns,
                ascii,
                root_has_output: false,
            };
        }

        // Goto trie. `u32::MAX` marks an absent edge until DFA conversion.
        const NONE: u32 = u32::MAX;
        let mut children: Vec<[u32; ALPHABET]> = vec![[NONE; ALPHABET]];
        let mut node_hits: Vec<HitSet> = vec![HitSet::EMPTY];
        for (id, pattern) in patterns.iter().enumerate() {
            let mut node = 0usize;
            for &b in pattern.as_bytes() {
                let c = usize::from(b);
                node = if children[node][c] == NONE {
                    children.push([NONE; ALPHABET]);
                    node_hits.push(HitSet::EMPTY);
                    let new = (children.len() - 1) as u32;
                    children[node][c] = new;
                    new as usize
                } else {
                    children[node][c] as usize
                };
            }
            node_hits[node].insert(id as PatternId);
        }

        // BFS: failure links, output propagation, and DFA conversion in one
        // pass. Depth-1 nodes fail to the root; deeper nodes fail to where
        // the root-ward DFA already goes on their edge byte.
        let nodes = children.len();
        let mut fail = vec![0u32; nodes];
        let mut next = vec![0u32; nodes * ALPHABET];
        let mut queue = VecDeque::new();
        for c in 0..ALPHABET {
            let child = children[0][c];
            if child == NONE {
                next[c] = 0;
            } else {
                fail[child as usize] = 0;
                next[c] = child;
                queue.push_back(child as usize);
            }
        }
        while let Some(node) = queue.pop_front() {
            let f = fail[node] as usize;
            let inherited = node_hits[f];
            node_hits[node].or_assign(&inherited);
            for c in 0..ALPHABET {
                let through_fail = next[f * ALPHABET + c] & STATE_MASK;
                let child = children[node][c];
                if child == NONE {
                    next[node * ALPHABET + c] = through_fail;
                } else {
                    fail[child as usize] = through_fail;
                    next[node * ALPHABET + c] = child;
                    queue.push_back(child as usize);
                }
            }
        }

        // Pack the has-output flag into every transition targeting an
        // output state, so the scan loop can skip the bitset union on the
        // (overwhelmingly common) bytes that complete no match.
        for entry in &mut next {
            if !node_hits[(*entry & STATE_MASK) as usize].is_empty() {
                *entry |= HAS_OUTPUT;
            }
        }

        // Bake case folding into the table (uppercase columns mirror their
        // lowercase twins, flags included — patterns are lowercase, so the
        // uppercase columns built above were dead) and mark the non-ASCII
        // columns with the fallback sentinel.
        for state in 0..nodes {
            let row = state * ALPHABET;
            for c in b'A'..=b'Z' {
                next[row + usize::from(c)] = next[row + usize::from(c.to_ascii_lowercase())];
            }
            for entry in &mut next[row + 128..row + ALPHABET] {
                *entry = NON_ASCII;
            }
        }

        let root_has_output = !node_hits[0].is_empty();
        Automaton { next, node_hits, patterns, ascii, root_has_output }
    }

    /// Number of distinct patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The patterns, lowercased, indexed by [`PatternId`].
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// Whether the DFA fast path is available (non-empty, all-ASCII
    /// pattern set).
    pub fn is_ascii(&self) -> bool {
        self.ascii
    }

    /// Scans `text` once and returns the set of patterns occurring in it.
    pub fn scan(&self, text: &str) -> HitSet {
        let mut hits = HitSet::EMPTY;
        self.scan_into(&mut hits, text);
        hits
    }

    /// Scans several independent text segments (e.g. the fields of a bug
    /// report), accumulating hits across all of them. The automaton state
    /// resets between segments, so no match spans a segment boundary —
    /// exactly the semantics of scanning fields joined by `'\n'` with
    /// patterns that contain no newline, which is how the naive scans
    /// consume `BugReport::full_text()`.
    pub fn scan_segments(&self, segments: &[&str]) -> HitSet {
        let mut hits = HitSet::EMPTY;
        let mut scanned_any = false;
        for segment in segments {
            if !segment.is_empty() {
                self.scan_into(&mut hits, segment);
                scanned_any = true;
            }
        }
        // Empty segments can be skipped except when *all* were empty: a
        // registered empty pattern still matches "" (as it matches any
        // scanned text), so run one empty scan to report it.
        if !scanned_any && !segments.is_empty() {
            self.scan_into(&mut hits, "");
        }
        hits
    }

    /// Unions the patterns occurring in `text` into `hits`.
    pub fn scan_into(&self, hits: &mut HitSet, text: &str) {
        if !self.ascii {
            if !self.patterns.is_empty() {
                self.scan_naive(hits, text);
            }
            return;
        }
        // The root's outputs are the empty patterns, which match any text
        // (including "") at position 0, mirroring `contains("") == true`.
        if self.root_has_output {
            let root_hits = self.node_hits[0];
            hits.or_assign(&root_hits);
        }
        let mut state = 0usize;
        for &b in text.as_bytes() {
            let entry = self.next[state * ALPHABET + usize::from(b)];
            state = (entry & STATE_MASK) as usize;
            if entry & (HAS_OUTPUT | NON_ASCII) != 0 {
                if entry & NON_ASCII != 0 {
                    // Bytewise case folding would be wrong from here on
                    // (e.g. U+212A KELVIN SIGN lowercases to ASCII 'k'):
                    // rescan the whole segment naively. Hits already found
                    // in the ASCII prefix are a subset of the naive hits,
                    // so the union is exactly the naive result.
                    self.scan_naive(hits, text);
                    return;
                }
                hits.or_assign(&self.node_hits[state]);
            }
        }
    }

    /// The reference path: one lowercase allocation plus one `contains`
    /// traversal per pattern. Used for non-ASCII input, where bytewise
    /// case folding would be wrong (e.g. U+212A KELVIN SIGN lowercases to
    /// ASCII `k`), and by the differential tests as the ground truth.
    fn scan_naive(&self, hits: &mut HitSet, text: &str) {
        let lower = text.to_lowercase();
        for (id, pattern) in self.patterns.iter().enumerate() {
            if lower.contains(pattern.as_str()) {
                hits.insert(id as PatternId);
            }
        }
    }
}

/// Whether `needle` occurs in `haystack` under the same case folding as
/// the naive scans (`haystack.to_lowercase().contains(&needle.to_lowercase())`),
/// without allocating on ASCII input.
///
/// This is the one-off cousin of [`Automaton::scan`] for callers with a
/// single dynamic pattern (e.g. a custom keyword query) where compiling an
/// automaton is not worth it.
///
/// # Example
///
/// ```
/// use faultstudy_textscan::contains_ci;
///
/// assert!(contains_ci("Server CRASHED", "crash"));
/// assert!(!contains_ci("all quiet", "crash"));
/// assert!(contains_ci("anything", ""));
/// ```
pub fn contains_ci(haystack: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return true;
    }
    if !haystack.is_ascii() || !needle.is_ascii() {
        return haystack.to_lowercase().contains(&needle.to_lowercase());
    }
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    h.len() >= n.len() && h.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn automaton(patterns: &[&str]) -> (Automaton, Vec<PatternId>) {
        let mut b = PatternSetBuilder::new();
        let ids = patterns.iter().map(|p| b.add(p)).collect();
        (b.build(), ids)
    }

    #[test]
    fn single_pattern_basic_hits() {
        let (a, ids) = automaton(&["crash"]);
        assert!(a.scan("the server crashed").contains(ids[0]));
        assert!(a.scan("CRASH").contains(ids[0]));
        assert!(!a.scan("all fine").contains(ids[0]));
        assert!(!a.scan("").contains(ids[0]));
    }

    #[test]
    fn overlapping_patterns_all_reported() {
        // "dns" is a suffix of "reverse dns"; "he" overlaps "she" and
        // "hers" shares its prefix — the classic Aho-Corasick example.
        let (a, ids) = automaton(&["he", "she", "his", "hers"]);
        let hits = a.scan("ushers");
        assert!(hits.contains(ids[0]), "he inside ushers");
        assert!(hits.contains(ids[1]), "she inside ushers");
        assert!(!hits.contains(ids[2]), "no his");
        assert!(hits.contains(ids[3]), "hers inside ushers");
        assert_eq!(hits.len(), 3);

        let (a, ids) = automaton(&["reverse dns", "dns"]);
        let hits = a.scan("reverse dns lookup failed");
        assert!(hits.contains(ids[0]) && hits.contains(ids[1]));
        let hits = a.scan("plain dns lookup failed");
        assert!(!hits.contains(ids[0]) && hits.contains(ids[1]));
    }

    #[test]
    fn pattern_at_end_of_text() {
        let (a, ids) = automaton(&["full", "disk"]);
        let hits = a.scan("the disk is full");
        assert!(hits.contains(ids[0]));
        assert!(hits.contains(ids[1]));
        // Exact-length text: the match consumes the final byte.
        assert!(a.scan("full").contains(ids[0]));
    }

    #[test]
    fn empty_pattern_set_matches_nothing() {
        let a = PatternSetBuilder::new().build();
        assert_eq!(a.pattern_count(), 0);
        assert!(a.scan("any text at all").is_empty());
        assert!(a.scan("").is_empty());
        assert!(a.scan_segments(&["a", "b"]).is_empty());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let (a, ids) = automaton(&["", "crash"]);
        assert!(a.scan("").contains(ids[0]));
        assert!(a.scan("no keywords here").contains(ids[0]));
        let hits = a.scan("crash");
        assert!(hits.contains(ids[0]) && hits.contains(ids[1]));
    }

    #[test]
    fn non_ascii_input_falls_back_to_naive() {
        let (a, ids) = automaton(&["network", "crash"]);
        // U+212A KELVIN SIGN Unicode-lowercases to ASCII 'k': the naive
        // predicate matches, so the fallback must too.
        let text = "networ\u{212A} trouble";
        assert!(text.to_lowercase().contains("network"));
        assert!(a.scan(text).contains(ids[0]));
        // Plain non-ASCII text with an ASCII match elsewhere.
        let hits = a.scan("caf\u{e9} server crash");
        assert!(hits.contains(ids[1]));
        assert!(!hits.contains(ids[0]));
    }

    #[test]
    fn non_ascii_pattern_set_always_uses_naive_path() {
        let (a, ids) = automaton(&["caf\u{e9}", "crash"]);
        assert!(!a.is_ascii());
        assert!(a.scan("visit the CAF\u{c9}").contains(ids[0]));
        assert!(a.scan("plain ascii crash").contains(ids[1]));
        assert!(!a.scan("nothing relevant").contains(ids[0]));
    }

    #[test]
    fn duplicate_patterns_collapse_to_one_id() {
        let mut b = PatternSetBuilder::new();
        let first = b.add("crash");
        let second = b.add("CRASH");
        assert_eq!(first, second);
        let a = b.build();
        assert_eq!(a.pattern_count(), 1);
    }

    #[test]
    fn segments_do_not_match_across_boundaries() {
        let (a, ids) = automaton(&["race condition"]);
        // Naive semantics: fields are joined by '\n', so "race" at the end
        // of the title and "condition" at the start of the body is not a
        // match.
        assert!(!a.scan_segments(&["ends in race", "condition starts"]).contains(ids[0]));
        assert!(a.scan_segments(&["fine", "a race condition here"]).contains(ids[0]));
    }

    #[test]
    fn scan_matches_naive_on_the_lexicon_shapes() {
        let patterns =
            ["file system", "full", "race condition", "dns", "reverse dns", "no space left"];
        let (a, ids) = automaton(&patterns);
        for text in [
            "Full File System on /var",
            "a race condition between reverse dns lookups",
            "no space left on device",
            "perfectly healthy",
            "",
            "fulfil is not full-, wait, full",
        ] {
            let lower = text.to_lowercase();
            for (pattern, &id) in patterns.iter().zip(&ids) {
                assert_eq!(
                    a.scan(text).contains(id),
                    lower.contains(pattern),
                    "{pattern:?} in {text:?}"
                );
            }
        }
    }

    #[test]
    fn hitset_operations() {
        let mut h = HitSet::EMPTY;
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        h.insert(0);
        h.insert(63);
        h.insert(64);
        h.insert(255);
        assert_eq!(h.len(), 4);
        assert!(h.contains(63) && h.contains(64) && h.contains(255));
        assert!(!h.contains(1));
        assert!(h.any_of(&[1, 64]));
        assert!(!h.any_of(&[1, 2]));
        assert!(h.all_of(&[0, 63, 64, 255]));
        assert!(!h.all_of(&[0, 1]));
        assert!(h.all_of(&[]));
        let mut other = HitSet::EMPTY;
        other.insert(7);
        h.or_assign(&other);
        assert!(h.contains(7));
    }

    #[test]
    fn contains_ci_agrees_with_lowercase_contains() {
        for (hay, needle) in [
            ("Server CRASHED", "crash"),
            ("Server CRASHED", "segmentation"),
            ("", ""),
            ("", "x"),
            ("x", ""),
            ("networ\u{212A}", "network"),
            ("caf\u{e9}", "caf\u{e9}"),
            ("ab", "abc"),
        ] {
            assert_eq!(
                contains_ci(hay, needle),
                hay.to_lowercase().contains(&needle.to_lowercase()),
                "{hay:?} / {needle:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "pattern set exceeds")]
    fn capacity_overflow_panics() {
        let mut b = PatternSetBuilder::new();
        for i in 0..=MAX_PATTERNS {
            b.add(&format!("pattern-{i}"));
        }
    }
}
