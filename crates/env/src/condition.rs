//! The vocabulary of environmental conditions and their retry persistence.
//!
//! Every environment-dependent fault in the paper's corpus names a condition
//! of the operating environment that triggers it (§5.1–§5.3). This module
//! enumerates those conditions as [`ConditionKind`] and records, for each,
//! whether the condition is expected to *persist* across an application-
//! generic recovery ([`Persistence::Persists`], yielding an environment-
//! dependent-**nontransient** fault) or to be *cleared by the act of
//! recovery* or to *change naturally* with time ([`Persistence`] variants
//! yielding environment-dependent-**transient** faults).
//!
//! The classifier in `faultstudy-core` and the simulated environment in
//! [`crate::environment`] must agree on this mapping; the test suite checks
//! the agreement end to end (the paper's proposed "end-to-end check", §5.4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// How an environmental condition behaves across a generic recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Persistence {
    /// The condition is still present when the operation is retried.
    /// Faults triggered by such conditions are environment-dependent-
    /// nontransient: e.g. a full disk is not emptied by restarting the
    /// application (§3).
    Persists,
    /// The act of generic recovery itself clears the condition, e.g. the
    /// recovery system kills all processes associated with the application,
    /// freeing process-table slots and the ports hung children held (§3).
    ClearedByRecovery,
    /// The condition changes on its own between the failure and the retry:
    /// thread interleavings differ, a slow network heals, `/dev/random`
    /// accumulates more events (§5.1).
    ChangesNaturally,
}

impl Persistence {
    /// Whether a fault triggered by a condition with this persistence is
    /// transient in the paper's sense (likely survivable by retry).
    pub fn is_transient(self) -> bool {
        !matches!(self, Persistence::Persists)
    }
}

impl fmt::Display for Persistence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Persistence::Persists => "persists on retry",
            Persistence::ClearedByRecovery => "cleared by recovery",
            Persistence::ChangesNaturally => "changes naturally",
        };
        f.write_str(s)
    }
}

/// An environmental condition that can trigger a fault.
///
/// The variants cover every condition named by the paper's 26 environment-
/// dependent faults, plus [`ConditionKind::UnknownTransient`] for the GNOME
/// report that "works on a retry" with no further diagnosis (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConditionKind {
    // ---- conditions that persist on retry (nontransient triggers) ----
    /// An application resource leak built up under high load; a truly
    /// generic recovery saves and restores all application state, so the
    /// leaked resources come back with it (Apache §5.1).
    ResourceLeak,
    /// The kernel's file-descriptor table (or the per-process limit) is
    /// exhausted; restored with application state (Apache, GNOME, MySQL).
    FdExhaustion,
    /// The application's disk cache is full; temporary files cannot be
    /// stored (Apache §5.1).
    DiskCacheFull,
    /// A file (log or database) has reached the maximum allowed file size
    /// (Apache, MySQL).
    MaxFileSize,
    /// The filesystem has no free space (Apache, MySQL).
    FileSystemFull,
    /// An unspecified network resource is exhausted (Apache §5.1).
    NetworkResourceExhausted,
    /// A hardware component (the PCMCIA network card) was removed from the
    /// machine (Apache §5.1).
    HardwareRemoved,
    /// The machine's hostname changed while the application was running
    /// (GNOME §5.2).
    HostnameChanged,
    /// A file carries an illegal value in a metadata field (the owner
    /// field); the bad file is still there on retry (GNOME §5.2).
    CorruptFileMetadata,
    /// Reverse DNS is not configured for a connecting host; the
    /// misconfiguration outlives any recovery of the server (MySQL §5.3).
    ReverseDnsMissing,

    // ---- conditions cleared by the act of recovery ----
    /// Hung child processes have consumed all process-table slots; generic
    /// recovery kills all processes associated with the application,
    /// freeing the slots (Apache §5.1).
    ProcessTableFull,
    /// Hung children hold required network ports; they are killed during
    /// recovery and the ports are freed (Apache §5.1).
    PortsHeldByChildren,

    // ---- conditions that change naturally between failure and retry ----
    /// A DNS lookup returned an error; likely fixed when the DNS server is
    /// restarted (Apache §5.1).
    DnsError,
    /// DNS responses are slow; the cause is eventually fixed without
    /// application-specific recovery (Apache §5.1).
    DnsSlow,
    /// The network connection is slow; may be fixed by the time the
    /// application recovers (Apache §5.1).
    NetworkSlow,
    /// `/dev/random` lacks events to generate sufficient random numbers;
    /// more events accumulate during recovery (Apache §5.1).
    EntropyExhausted,
    /// The user's exact request timing triggered the fault (pressing stop
    /// mid-download); unlikely to repeat on retry (Apache §5.1).
    WorkloadTiming,
    /// A specific thread/process interleaving triggered a race; the
    /// interleaving is likely to differ on retry (GNOME, MySQL).
    RaceCondition,
    /// The report only records that the failure "works on a retry"
    /// (GNOME §5.2).
    UnknownTransient,
}

impl ConditionKind {
    /// Every condition kind, in declaration order.
    pub const ALL: [ConditionKind; 19] = [
        ConditionKind::ResourceLeak,
        ConditionKind::FdExhaustion,
        ConditionKind::DiskCacheFull,
        ConditionKind::MaxFileSize,
        ConditionKind::FileSystemFull,
        ConditionKind::NetworkResourceExhausted,
        ConditionKind::HardwareRemoved,
        ConditionKind::HostnameChanged,
        ConditionKind::CorruptFileMetadata,
        ConditionKind::ReverseDnsMissing,
        ConditionKind::ProcessTableFull,
        ConditionKind::PortsHeldByChildren,
        ConditionKind::DnsError,
        ConditionKind::DnsSlow,
        ConditionKind::NetworkSlow,
        ConditionKind::EntropyExhausted,
        ConditionKind::WorkloadTiming,
        ConditionKind::RaceCondition,
        ConditionKind::UnknownTransient,
    ];

    /// The expected behaviour of this condition across a generic recovery.
    ///
    /// This mapping is the paper's Tables 1–3 reasoning in executable form.
    /// Note the paper's own caveat (§3, §5.4): the split between "persists"
    /// and "cleared/changes" is relative to the recovery systems common at
    /// the time — e.g. a system that automatically grows disk capacity would
    /// move [`ConditionKind::FileSystemFull`] to transient.
    pub fn persistence(self) -> Persistence {
        use ConditionKind::*;
        match self {
            ResourceLeak
            | FdExhaustion
            | DiskCacheFull
            | MaxFileSize
            | FileSystemFull
            | NetworkResourceExhausted
            | HardwareRemoved
            | HostnameChanged
            | CorruptFileMetadata
            | ReverseDnsMissing => Persistence::Persists,
            ProcessTableFull | PortsHeldByChildren => Persistence::ClearedByRecovery,
            DnsError | DnsSlow | NetworkSlow | EntropyExhausted | WorkloadTiming
            | RaceCondition | UnknownTransient => Persistence::ChangesNaturally,
        }
    }

    /// Short stable identifier used in serialized corpora and reports.
    pub fn slug(self) -> &'static str {
        use ConditionKind::*;
        match self {
            ResourceLeak => "resource-leak",
            FdExhaustion => "fd-exhaustion",
            DiskCacheFull => "disk-cache-full",
            MaxFileSize => "max-file-size",
            FileSystemFull => "filesystem-full",
            NetworkResourceExhausted => "net-resource-exhausted",
            HardwareRemoved => "hardware-removed",
            HostnameChanged => "hostname-changed",
            CorruptFileMetadata => "corrupt-file-metadata",
            ReverseDnsMissing => "reverse-dns-missing",
            ProcessTableFull => "process-table-full",
            PortsHeldByChildren => "ports-held-by-children",
            DnsError => "dns-error",
            DnsSlow => "dns-slow",
            NetworkSlow => "network-slow",
            EntropyExhausted => "entropy-exhausted",
            WorkloadTiming => "workload-timing",
            RaceCondition => "race-condition",
            UnknownTransient => "unknown-transient",
        }
    }
}

impl fmt::Display for ConditionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_lists_every_variant_once() {
        let set: HashSet<_> = ConditionKind::ALL.iter().collect();
        assert_eq!(set.len(), ConditionKind::ALL.len());
    }

    #[test]
    fn slugs_are_unique() {
        let set: HashSet<_> = ConditionKind::ALL.iter().map(|c| c.slug()).collect();
        assert_eq!(set.len(), ConditionKind::ALL.len());
    }

    #[test]
    fn paper_nontransient_conditions_persist() {
        // The ten conditions backing the paper's 14 EDN faults.
        for c in [
            ConditionKind::ResourceLeak,
            ConditionKind::FdExhaustion,
            ConditionKind::DiskCacheFull,
            ConditionKind::MaxFileSize,
            ConditionKind::FileSystemFull,
            ConditionKind::NetworkResourceExhausted,
            ConditionKind::HardwareRemoved,
            ConditionKind::HostnameChanged,
            ConditionKind::CorruptFileMetadata,
            ConditionKind::ReverseDnsMissing,
        ] {
            assert_eq!(c.persistence(), Persistence::Persists, "{c}");
            assert!(!c.persistence().is_transient());
        }
    }

    #[test]
    fn paper_transient_conditions_do_not_persist() {
        for c in [
            ConditionKind::ProcessTableFull,
            ConditionKind::PortsHeldByChildren,
            ConditionKind::DnsError,
            ConditionKind::DnsSlow,
            ConditionKind::NetworkSlow,
            ConditionKind::EntropyExhausted,
            ConditionKind::WorkloadTiming,
            ConditionKind::RaceCondition,
            ConditionKind::UnknownTransient,
        ] {
            assert!(c.persistence().is_transient(), "{c}");
        }
    }

    #[test]
    fn recovery_cleared_conditions_are_exactly_the_process_related_ones() {
        let cleared: Vec<_> = ConditionKind::ALL
            .into_iter()
            .filter(|c| c.persistence() == Persistence::ClearedByRecovery)
            .collect();
        assert_eq!(cleared, [ConditionKind::ProcessTableFull, ConditionKind::PortsHeldByChildren]);
    }

    #[test]
    fn display_matches_slug() {
        for c in ConditionKind::ALL {
            assert_eq!(c.to_string(), c.slug());
        }
    }

    #[test]
    fn serde_round_trip() {
        for c in ConditionKind::ALL {
            let json = serde_json::to_string(&c).unwrap();
            let back: ConditionKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, c);
        }
    }
}
