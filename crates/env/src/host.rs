//! Host-level configuration: hostname, removable hardware, signal routing.
//!
//! Backs three corpus triggers: "hostname of the machine was changed while
//! the application was running" (GNOME, nontransient), "removal of PCMCIA
//! network card from the computer" (Apache, nontransient), and the signal
//! behaviour behind "SIGHUP kills apache on Solaris and Unixware" and
//! MySQL's signal-masking race.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Signals the simulated kernel can deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Signal {
    /// Hang-up: conventionally asks a daemon to restart/rejuvenate.
    Hup,
    /// Termination request.
    Term,
    /// Immediate kill.
    Kill,
    /// User-defined signal used by the MySQL signal-masking race.
    Usr1,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Signal::Hup => "SIGHUP",
            Signal::Term => "SIGTERM",
            Signal::Kill => "SIGKILL",
            Signal::Usr1 => "SIGUSR1",
        };
        f.write_str(s)
    }
}

/// A removable hardware component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardwareComponent {
    /// The PCMCIA network card of the Apache corpus fault.
    PcmciaNic,
}

impl fmt::Display for HardwareComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareComponent::PcmciaNic => f.write_str("PCMCIA network card"),
        }
    }
}

/// Host configuration and hardware inventory.
///
/// # Example
///
/// ```
/// use faultstudy_env::host::{HardwareComponent, HostConfig};
///
/// let mut host = HostConfig::new("db1");
/// assert!(!host.hostname_changed());
/// host.set_hostname("db1-renamed");
/// assert!(host.hostname_changed());
/// host.remove_hardware(HardwareComponent::PcmciaNic);
/// assert!(!host.hardware_present(HardwareComponent::PcmciaNic));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostConfig {
    boot_hostname: String,
    hostname: String,
    nic_present: bool,
}

impl HostConfig {
    /// Creates a host with the given boot-time hostname and all hardware
    /// present.
    pub fn new(hostname: impl Into<String>) -> Self {
        let hostname = hostname.into();
        HostConfig { boot_hostname: hostname.clone(), hostname, nic_present: true }
    }

    /// The current hostname.
    pub fn hostname(&self) -> &str {
        &self.hostname
    }

    /// The hostname at application start ("boot").
    pub fn boot_hostname(&self) -> &str {
        &self.boot_hostname
    }

    /// Renames the host while applications are running.
    pub fn set_hostname(&mut self, name: impl Into<String>) {
        self.hostname = name.into();
    }

    /// Whether the hostname differs from the boot-time name — the GNOME
    /// corpus condition. Note this persists across generic recovery: the
    /// restored application still carries the old name in its state.
    pub fn hostname_changed(&self) -> bool {
        self.hostname != self.boot_hostname
    }

    /// Whether `component` is plugged in.
    pub fn hardware_present(&self, component: HardwareComponent) -> bool {
        match component {
            HardwareComponent::PcmciaNic => self.nic_present,
        }
    }

    /// Unplugs `component`.
    pub fn remove_hardware(&mut self, component: HardwareComponent) {
        match component {
            HardwareComponent::PcmciaNic => self.nic_present = false,
        }
    }

    /// Re-inserts `component` (an operator action; no recovery system does
    /// this, which is why hardware removal is nontransient).
    pub fn insert_hardware(&mut self, component: HardwareComponent) {
        match component {
            HardwareComponent::PcmciaNic => self.nic_present = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hostname_change_detected_and_reversible() {
        let mut h = HostConfig::new("alpha");
        assert_eq!(h.hostname(), "alpha");
        assert_eq!(h.boot_hostname(), "alpha");
        h.set_hostname("beta");
        assert!(h.hostname_changed());
        h.set_hostname("alpha");
        assert!(!h.hostname_changed(), "renaming back clears the condition");
    }

    #[test]
    fn hardware_removal_and_reinsertion() {
        let mut h = HostConfig::new("x");
        assert!(h.hardware_present(HardwareComponent::PcmciaNic));
        h.remove_hardware(HardwareComponent::PcmciaNic);
        assert!(!h.hardware_present(HardwareComponent::PcmciaNic));
        h.insert_hardware(HardwareComponent::PcmciaNic);
        assert!(h.hardware_present(HardwareComponent::PcmciaNic));
    }

    #[test]
    fn signal_display_names() {
        assert_eq!(Signal::Hup.to_string(), "SIGHUP");
        assert_eq!(Signal::Kill.to_string(), "SIGKILL");
        assert_eq!(Signal::Term.to_string(), "SIGTERM");
        assert_eq!(Signal::Usr1.to_string(), "SIGUSR1");
    }
}
