//! A virtual filesystem with finite capacity and a maximum file size.
//!
//! Backs four of the paper's environment-dependent-nontransient triggers:
//! a full filesystem (Apache, MySQL), a full application disk cache
//! (Apache), a log or database file exceeding the maximum allowed file size
//! (Apache, MySQL), and a file with an illegal owner field (GNOME).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors returned by [`VirtualFs`] operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsError {
    /// The filesystem has no space for the requested write.
    NoSpace {
        /// Bytes requested by the write.
        requested: u64,
        /// Bytes actually free.
        free: u64,
    },
    /// The write would push the file past the maximum allowed file size.
    FileTooLarge {
        /// Resulting size the write would have produced.
        would_be: u64,
        /// The configured maximum file size.
        max: u64,
    },
    /// No file exists at the given path.
    NotFound(String),
    /// The file's metadata is corrupt (e.g. an illegal owner id) and the
    /// operation refuses to proceed.
    CorruptMetadata(String),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSpace { requested, free } => {
                write!(f, "no space on device: requested {requested} bytes, {free} free")
            }
            FsError::FileTooLarge { would_be, max } => {
                write!(f, "file size limit exceeded: {would_be} > max {max}")
            }
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::CorruptMetadata(p) => write!(f, "corrupt metadata on file: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// Metadata of one virtual file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// Current size in bytes.
    pub size: u64,
    /// Numeric owner id; `u32::MAX` conventionally encodes the GNOME
    /// corpus's "illegal value in the owner field".
    pub owner: u32,
}

impl FileMeta {
    /// Whether the owner field holds an illegal value.
    pub fn owner_is_illegal(&self) -> bool {
        self.owner == u32::MAX
    }
}

/// A capacity-bounded virtual filesystem.
///
/// Paths are flat strings; the hierarchy the applications use is purely a
/// naming convention (`"cache/tmp1"`, `"logs/access.log"`), which is all the
/// fault families require.
///
/// # Example
///
/// ```
/// use faultstudy_env::fs::VirtualFs;
///
/// let mut fs = VirtualFs::new(1_000, 400);
/// fs.write("logs/a", 300).unwrap();
/// assert_eq!(fs.used(), 300);
/// assert!(fs.append("logs/a", 200).is_err()); // would exceed max file size
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualFs {
    files: BTreeMap<String, FileMeta>,
    capacity: u64,
    max_file_size: u64,
    used: u64,
}

impl VirtualFs {
    /// Creates a filesystem with `capacity` total bytes and a per-file size
    /// limit of `max_file_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `max_file_size` is zero.
    pub fn new(capacity: u64, max_file_size: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(max_file_size > 0, "max file size must be positive");
        VirtualFs { files: BTreeMap::new(), capacity, max_file_size, used: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated to files.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Whether the filesystem is completely full.
    pub fn is_full(&self) -> bool {
        self.used >= self.capacity
    }

    /// The maximum allowed size of a single file.
    pub fn max_file_size(&self) -> u64 {
        self.max_file_size
    }

    /// Creates or truncates the file at `path` to `size` bytes.
    ///
    /// # Errors
    ///
    /// [`FsError::FileTooLarge`] if `size` exceeds the per-file limit;
    /// [`FsError::NoSpace`] if the net new allocation exceeds free space.
    /// On error nothing is changed.
    pub fn write(&mut self, path: impl Into<String>, size: u64) -> Result<(), FsError> {
        let path = path.into();
        if size > self.max_file_size {
            return Err(FsError::FileTooLarge { would_be: size, max: self.max_file_size });
        }
        let old = self.files.get(&path).map(|m| m.size).unwrap_or(0);
        let grow = size.saturating_sub(old);
        if grow > self.free() {
            return Err(FsError::NoSpace { requested: grow, free: self.free() });
        }
        self.used = self.used - old + size;
        let owner = self.files.get(&path).map(|m| m.owner).unwrap_or(0);
        self.files.insert(path, FileMeta { size, owner });
        Ok(())
    }

    /// Appends `bytes` to the file at `path`, creating it if absent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`VirtualFs::write`], evaluated against the
    /// resulting size.
    pub fn append(&mut self, path: impl Into<String>, bytes: u64) -> Result<(), FsError> {
        let path = path.into();
        let old = self.files.get(&path).map(|m| m.size).unwrap_or(0);
        let new = old.saturating_add(bytes);
        self.write(path, new)
    }

    /// Removes the file at `path`, reclaiming its space.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if no such file exists.
    pub fn remove(&mut self, path: &str) -> Result<FileMeta, FsError> {
        match self.files.remove(path) {
            Some(meta) => {
                self.used -= meta.size;
                Ok(meta)
            }
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Removes every file whose path starts with `prefix`; returns the
    /// number of files removed. Used by the applications' disk caches.
    pub fn remove_prefix(&mut self, prefix: &str) -> usize {
        let doomed: Vec<String> = self
            .files
            .range(prefix.to_owned()..)
            .take_while(|(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.clone())
            .collect();
        for p in &doomed {
            let meta = self.files.remove(p).expect("listed file exists");
            self.used -= meta.size;
        }
        doomed.len()
    }

    /// Metadata of the file at `path`, if present.
    pub fn stat(&self, path: &str) -> Option<&FileMeta> {
        self.files.get(path)
    }

    /// Sets the owner field of an existing file. Setting `u32::MAX` models
    /// the GNOME corpus's illegal-owner corruption.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if no such file exists.
    pub fn set_owner(&mut self, path: &str, owner: u32) -> Result<(), FsError> {
        match self.files.get_mut(path) {
            Some(meta) => {
                meta.owner = owner;
                Ok(())
            }
            None => Err(FsError::NotFound(path.to_owned())),
        }
    }

    /// Reads a file's metadata, failing if the owner field is illegal —
    /// models the GNOME file manager crashing on a corrupt owner field.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] or [`FsError::CorruptMetadata`].
    pub fn stat_checked(&self, path: &str) -> Result<&FileMeta, FsError> {
        let meta = self.stat(path).ok_or_else(|| FsError::NotFound(path.to_owned()))?;
        if meta.owner_is_illegal() {
            Err(FsError::CorruptMetadata(path.to_owned()))
        } else {
            Ok(meta)
        }
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Iterates over `(path, metadata)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &FileMeta)> {
        self.files.iter().map(|(p, m)| (p.as_str(), m))
    }

    /// Removes every external ballast file written by
    /// [`VirtualFs::fill_with_ballast`], returning the number of files
    /// reclaimed. The environment-scrubbing hook for disk-full conditions:
    /// an operator deleting the *other* program's files — application data
    /// (logs, caches, databases) is deliberately untouched, because a
    /// generic recovery has no licence to delete it either.
    pub fn scrub_ballast(&mut self) -> usize {
        self.remove_prefix("!ballast/")
    }

    /// Fills the filesystem to capacity with an external ballast file,
    /// modelling another program consuming the disk.
    pub fn fill_with_ballast(&mut self) {
        let free = self.free();
        if free > 0 {
            // Ballast may exceed max_file_size conceptually; bypass the
            // per-file limit by spreading across numbered ballast files.
            let mut remaining = free;
            let mut i = 0;
            while remaining > 0 {
                let chunk = remaining.min(self.max_file_size);
                let path = format!("!ballast/{i}");
                let meta = FileMeta { size: chunk, owner: 0 };
                self.used += chunk;
                self.files.insert(path, meta);
                remaining -= chunk;
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> VirtualFs {
        VirtualFs::new(1000, 400)
    }

    #[test]
    fn write_and_accounting() {
        let mut f = fs();
        f.write("a", 100).unwrap();
        f.write("b", 200).unwrap();
        assert_eq!(f.used(), 300);
        assert_eq!(f.free(), 700);
        assert_eq!(f.file_count(), 2);
        // Truncate shrinks usage.
        f.write("b", 50).unwrap();
        assert_eq!(f.used(), 150);
    }

    #[test]
    fn no_space_error_and_atomicity() {
        let mut f = VirtualFs::new(100, 1000);
        f.write("a", 80).unwrap();
        let err = f.write("b", 30).unwrap_err();
        assert!(matches!(err, FsError::NoSpace { requested: 30, free: 20 }));
        assert_eq!(f.used(), 80, "failed write must not change state");
    }

    #[test]
    fn max_file_size_enforced() {
        let mut f = fs();
        assert!(matches!(
            f.write("big", 401),
            Err(FsError::FileTooLarge { would_be: 401, max: 400 })
        ));
        f.write("log", 300).unwrap();
        assert!(f.append("log", 101).is_err());
        f.append("log", 100).unwrap();
        assert_eq!(f.stat("log").unwrap().size, 400);
    }

    #[test]
    fn append_creates_missing_file() {
        let mut f = fs();
        f.append("fresh", 10).unwrap();
        assert_eq!(f.stat("fresh").unwrap().size, 10);
    }

    #[test]
    fn remove_reclaims_space() {
        let mut f = fs();
        f.write("a", 100).unwrap();
        let meta = f.remove("a").unwrap();
        assert_eq!(meta.size, 100);
        assert_eq!(f.used(), 0);
        assert!(matches!(f.remove("a"), Err(FsError::NotFound(_))));
    }

    #[test]
    fn remove_prefix_clears_cache_dir() {
        let mut f = fs();
        f.write("cache/1", 10).unwrap();
        f.write("cache/2", 20).unwrap();
        f.write("logs/x", 30).unwrap();
        assert_eq!(f.remove_prefix("cache/"), 2);
        assert_eq!(f.used(), 30);
        assert_eq!(f.remove_prefix("cache/"), 0);
    }

    #[test]
    fn illegal_owner_detected() {
        let mut f = fs();
        f.write("doc", 5).unwrap();
        assert!(f.stat_checked("doc").is_ok());
        f.set_owner("doc", u32::MAX).unwrap();
        assert!(matches!(f.stat_checked("doc"), Err(FsError::CorruptMetadata(_))));
        assert!(f.stat("doc").unwrap().owner_is_illegal());
    }

    #[test]
    fn ballast_fills_to_capacity_across_chunks() {
        let mut f = VirtualFs::new(1000, 300);
        f.write("a", 100).unwrap();
        f.fill_with_ballast();
        assert!(f.is_full());
        assert_eq!(f.free(), 0);
        // 900 bytes of ballast in 300-byte chunks = 3 files.
        assert_eq!(f.iter().filter(|(p, _)| p.starts_with("!ballast/")).count(), 3);
    }

    #[test]
    fn scrub_ballast_reclaims_only_ballast() {
        let mut f = VirtualFs::new(1000, 300);
        f.write("logs/access", 100).unwrap();
        f.fill_with_ballast();
        assert!(f.is_full());
        assert_eq!(f.scrub_ballast(), 3);
        assert_eq!(f.used(), 100, "application files survive the scrub");
        assert!(f.stat("logs/access").is_some());
        assert_eq!(f.scrub_ballast(), 0, "second scrub finds nothing");
    }

    #[test]
    fn errors_display() {
        assert_eq!(
            FsError::NoSpace { requested: 5, free: 2 }.to_string(),
            "no space on device: requested 5 bytes, 2 free"
        );
        assert!(FsError::NotFound("x".into()).to_string().contains("x"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        VirtualFs::new(0, 1);
    }
}
