//! The simulated operating environment for the fault study.
//!
//! The paper classifies faults *"based on how they depend on the operating
//! environment"* (§3): states or events outside the application — other
//! programs (DNS), kernel state (process-table slots, file descriptors),
//! hardware conditions, and the timing of workload requests. This crate
//! implements each environmental resource the paper's 26 environment-
//! dependent faults name, so that the recovery experiments in
//! `faultstudy-harness` exercise the same *persist-vs-change-on-retry*
//! distinction the paper reasons about.
//!
//! # Modules
//!
//! - [`condition`] — the [`ConditionKind`] vocabulary shared by the corpus,
//!   the applications, and the classifier, plus each condition's expected
//!   [`Persistence`] across a generic recovery.
//! - [`fs`] — a virtual filesystem with finite capacity and a maximum file
//!   size (full-filesystem and file-too-big faults).
//! - [`fdtable`] — a bounded file-descriptor table (fd-exhaustion faults).
//! - [`proctable`] — a bounded process table with per-owner accounting and
//!   hang states (process-slot and hung-children faults).
//! - [`dns`] — a DNS service that can be healthy, erroring, slow, or missing
//!   reverse records, with natural repair over time.
//! - [`network`] — link quality, exhaustible "network resources", and a port
//!   namespace.
//! - [`entropy`] — a `/dev/random`-style pool that drains and refills.
//! - [`host`] — hostname, removable hardware, signal delivery flags.
//! - [`environment`] — [`Environment`], the aggregate, including
//!   [`Environment::on_generic_recovery`] which encodes the paper's retry
//!   semantics, and natural dynamics under [`Environment::advance`].
//!
//! # Example
//!
//! ```
//! use faultstudy_env::{Environment, condition::{ConditionKind, Persistence}};
//!
//! let mut env = Environment::builder().seed(1).fd_limit(8).build();
//! let app = env.register_owner("myapp");
//! for _ in 0..8 {
//!     env.fds.open(app).unwrap();
//! }
//! assert!(env.holds(ConditionKind::FdExhaustion));
//! // Generic recovery restores all app state, so fd exhaustion persists:
//! assert_eq!(ConditionKind::FdExhaustion.persistence(), Persistence::Persists);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod condition;
pub mod dns;
pub mod entropy;
pub mod environment;
pub mod fdtable;
pub mod fs;
pub mod host;
pub mod network;
pub mod proctable;

pub use condition::{ConditionKind, Persistence};
pub use environment::{Environment, EnvironmentBuilder, OwnerId};
