//! A bounded process table with per-owner accounting and hang states.
//!
//! Backs the transient Apache triggers of §5.1: *"child processes hang
//! during peak load and consume all available slots in the process table"*
//! and *"hung child processes hang onto required network ports"*. Both are
//! classified environment-dependent-**transient** precisely because "as part
//! of automatic recovery, the recovery system is likely to kill all
//! processes associated with the application", clearing the condition.

use crate::environment::OwnerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcState {
    /// Making progress.
    Running,
    /// Hung: holds its slot (and any ports) but does no work.
    Hung,
    /// Exited but not yet reaped: still consumes a slot (a zombie).
    Zombie,
}

/// Error returned when no process-table slots remain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcTableFull {
    /// The configured slot count.
    pub slots: u32,
}

impl fmt::Display for ProcTableFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "process table full ({} slots)", self.slots)
    }
}

impl std::error::Error for ProcTableFull {}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ProcEntry {
    owner: OwnerId,
    state: ProcState,
    ports: Vec<u16>,
}

/// The kernel's process table.
///
/// Owner registration also lives here so that one id namespace covers every
/// per-owner resource in the environment.
///
/// # Example
///
/// ```
/// use faultstudy_env::proctable::ProcessTable;
///
/// let mut t = ProcessTable::new(4);
/// let app = t.register_owner("apache");
/// let child = t.spawn(app).unwrap();
/// t.hang(child).unwrap();
/// assert_eq!(t.kill_all_of(app), 1); // recovery kills app processes
/// assert_eq!(t.in_use(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessTable {
    slots: u32,
    next_pid: u32,
    next_owner: u32,
    owners: BTreeMap<u32, String>,
    procs: BTreeMap<Pid, ProcEntry>,
}

impl ProcessTable {
    /// Creates a table with `slots` process slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: u32) -> Self {
        assert!(slots > 0, "process table needs at least one slot");
        ProcessTable {
            slots,
            next_pid: 1,
            next_owner: 1,
            owners: BTreeMap::new(),
            procs: BTreeMap::new(),
        }
    }

    /// Registers a named owner (an application or an external program) and
    /// returns its id.
    pub fn register_owner(&mut self, name: impl Into<String>) -> OwnerId {
        let id = OwnerId(self.next_owner);
        self.next_owner += 1;
        self.owners.insert(id.0, name.into());
        id
    }

    /// The name an owner registered with, if any.
    pub fn owner_name(&self, owner: OwnerId) -> Option<&str> {
        self.owners.get(&owner.0).map(String::as_str)
    }

    /// Total slots.
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// Slots currently occupied (running, hung, or zombie).
    pub fn in_use(&self) -> u32 {
        self.procs.len() as u32
    }

    /// Whether no slots remain.
    pub fn is_full(&self) -> bool {
        self.in_use() >= self.slots
    }

    /// Spawns a process for `owner`.
    ///
    /// # Errors
    ///
    /// [`ProcTableFull`] if every slot is occupied.
    pub fn spawn(&mut self, owner: OwnerId) -> Result<Pid, ProcTableFull> {
        if self.is_full() {
            return Err(ProcTableFull { slots: self.slots });
        }
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid, ProcEntry { owner, state: ProcState::Running, ports: Vec::new() });
        Ok(pid)
    }

    /// Marks `pid` as hung. A hung process keeps its slot and ports.
    ///
    /// # Errors
    ///
    /// Returns `Err(pid)` if the process does not exist.
    pub fn hang(&mut self, pid: Pid) -> Result<(), Pid> {
        match self.procs.get_mut(&pid) {
            Some(e) => {
                e.state = ProcState::Hung;
                Ok(())
            }
            None => Err(pid),
        }
    }

    /// Marks `pid` as a zombie (exited, unreaped). Keeps its slot; ports are
    /// released on exit.
    ///
    /// # Errors
    ///
    /// Returns `Err(pid)` if the process does not exist.
    pub fn zombify(&mut self, pid: Pid) -> Result<(), Pid> {
        match self.procs.get_mut(&pid) {
            Some(e) => {
                e.state = ProcState::Zombie;
                e.ports.clear();
                Ok(())
            }
            None => Err(pid),
        }
    }

    /// Removes `pid` from the table, freeing its slot and ports.
    ///
    /// # Errors
    ///
    /// Returns `Err(pid)` if the process does not exist.
    pub fn kill(&mut self, pid: Pid) -> Result<(), Pid> {
        self.procs.remove(&pid).map(|_| ()).ok_or(pid)
    }

    /// Kills every process belonging to `owner`; returns how many died.
    /// This is what a generic recovery system does on failover (§3).
    pub fn kill_all_of(&mut self, owner: OwnerId) -> u32 {
        let before = self.procs.len();
        self.procs.retain(|_, e| e.owner != owner);
        (before - self.procs.len()) as u32
    }

    /// Records that `pid` holds network `port`.
    ///
    /// # Errors
    ///
    /// Returns `Err(pid)` if the process does not exist.
    pub fn bind_port(&mut self, pid: Pid, port: u16) -> Result<(), Pid> {
        match self.procs.get_mut(&pid) {
            Some(e) => {
                if !e.ports.contains(&port) {
                    e.ports.push(port);
                }
                Ok(())
            }
            None => Err(pid),
        }
    }

    /// Whether any live process holds `port`.
    pub fn port_held(&self, port: u16) -> bool {
        self.procs.values().any(|e| e.ports.contains(&port))
    }

    /// State of `pid`, if it exists.
    pub fn state(&self, pid: Pid) -> Option<ProcState> {
        self.procs.get(&pid).map(|e| e.state)
    }

    /// Number of processes owned by `owner`, in any state.
    pub fn count_of(&self, owner: OwnerId) -> u32 {
        self.procs.values().filter(|e| e.owner == owner).count() as u32
    }

    /// Number of hung processes owned by `owner`.
    pub fn hung_of(&self, owner: OwnerId) -> u32 {
        self.procs.values().filter(|e| e.owner == owner && e.state == ProcState::Hung).count()
            as u32
    }

    /// Pids owned by `owner`, ascending.
    pub fn pids_of(&self, owner: OwnerId) -> Vec<Pid> {
        self.procs.iter().filter(|(_, e)| e.owner == owner).map(|(p, _)| *p).collect()
    }

    /// Spawns processes for `owner` until the table fills; returns how many
    /// were created. Models an external fork bomb or peak-load pile-up.
    pub fn exhaust_as(&mut self, owner: OwnerId) -> u32 {
        let mut n = 0;
        while self.spawn(owner).is_ok() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (ProcessTable, OwnerId) {
        let mut t = ProcessTable::new(4);
        let app = t.register_owner("app");
        (t, app)
    }

    #[test]
    fn spawn_until_full() {
        let (mut t, app) = table();
        for _ in 0..4 {
            t.spawn(app).unwrap();
        }
        assert!(t.is_full());
        assert_eq!(t.spawn(app).unwrap_err(), ProcTableFull { slots: 4 });
    }

    #[test]
    fn owner_names_round_trip() {
        let (mut t, app) = table();
        assert_eq!(t.owner_name(app), Some("app"));
        let ext = t.register_owner("cron");
        assert_eq!(t.owner_name(ext), Some("cron"));
        assert_ne!(app, ext);
        assert_eq!(t.owner_name(OwnerId(999)), None);
    }

    #[test]
    fn hang_keeps_slot_and_ports_zombie_frees_ports() {
        let (mut t, app) = table();
        let a = t.spawn(app).unwrap();
        let b = t.spawn(app).unwrap();
        t.bind_port(a, 80).unwrap();
        t.bind_port(b, 443).unwrap();
        t.hang(a).unwrap();
        t.zombify(b).unwrap();
        assert_eq!(t.state(a), Some(ProcState::Hung));
        assert_eq!(t.state(b), Some(ProcState::Zombie));
        assert!(t.port_held(80), "hung process still holds its port");
        assert!(!t.port_held(443), "zombie released its port");
        assert_eq!(t.in_use(), 2, "both still consume slots");
    }

    #[test]
    fn kill_all_of_clears_owner_only() {
        let (mut t, app) = table();
        let ext = t.register_owner("other");
        let a = t.spawn(app).unwrap();
        t.bind_port(a, 8080).unwrap();
        t.hang(a).unwrap();
        t.spawn(app).unwrap();
        t.spawn(ext).unwrap();
        assert_eq!(t.kill_all_of(app), 2);
        assert_eq!(t.count_of(app), 0);
        assert_eq!(t.count_of(ext), 1);
        assert!(!t.port_held(8080), "recovery freed the hung child's port");
    }

    #[test]
    fn kill_unknown_pid_errors() {
        let (mut t, _) = table();
        assert_eq!(t.kill(Pid(42)), Err(Pid(42)));
        assert_eq!(t.hang(Pid(42)), Err(Pid(42)));
        assert_eq!(t.zombify(Pid(42)), Err(Pid(42)));
        assert_eq!(t.bind_port(Pid(42), 1), Err(Pid(42)));
    }

    #[test]
    fn exhaust_fills_remaining_slots() {
        let (mut t, app) = table();
        t.spawn(app).unwrap();
        let ext = t.register_owner("bomb");
        assert_eq!(t.exhaust_as(ext), 3);
        assert!(t.is_full());
    }

    #[test]
    fn hung_count_and_pids() {
        let (mut t, app) = table();
        let a = t.spawn(app).unwrap();
        let b = t.spawn(app).unwrap();
        t.hang(b).unwrap();
        assert_eq!(t.hung_of(app), 1);
        assert_eq!(t.pids_of(app), vec![a, b]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        ProcessTable::new(0);
    }
}
