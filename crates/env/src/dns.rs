//! A Domain Name Service model with failure modes and natural repair.
//!
//! Backs four corpus triggers: "call to Domain Name Service returns an
//! error" and "slow Domain Name Service response" (Apache, both transient —
//! *"likely to change when the DNS server is restarted"*), and "reverse DNS
//! is not configured for the remote host" (MySQL, nontransient — the
//! missing record is a configuration matter that no generic recovery
//! touches).

use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Health of the (forward) DNS service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsHealth {
    /// Lookups succeed promptly.
    Healthy,
    /// Lookups return errors.
    Erroring,
    /// Lookups succeed but take [`DnsService::slow_latency`].
    Slow,
}

/// Result of a name lookup.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lookup {
    /// Resolved after the given latency.
    Resolved {
        /// Synthetic address for the name.
        addr: u32,
        /// How long the lookup took.
        latency: Duration,
    },
    /// The server answered with an error.
    ServerError,
    /// No record of the requested type exists (used for reverse lookups of
    /// unconfigured hosts).
    NoRecord,
}

impl Lookup {
    /// Whether the lookup produced an address.
    pub fn is_resolved(&self) -> bool {
        matches!(self, Lookup::Resolved { .. })
    }
}

impl fmt::Display for Lookup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lookup::Resolved { addr, latency } => write!(f, "resolved {addr} in {latency}"),
            Lookup::ServerError => f.write_str("server error"),
            Lookup::NoRecord => f.write_str("no record"),
        }
    }
}

/// The simulated DNS service.
///
/// Failure states injected with [`DnsService::set_health`] heal on their own
/// once the repair deadline passes — the paper's rationale for classifying
/// DNS faults as transient is exactly that "the cause of the slow DNS
/// response will likely be fixed eventually without application-specific
/// recovery" (§5.1).
///
/// # Example
///
/// ```
/// use faultstudy_env::dns::{DnsHealth, DnsService, Lookup};
/// use faultstudy_sim::time::{Duration, SimTime};
///
/// let mut dns = DnsService::new(Duration::from_millis(2), Duration::from_secs(5));
/// dns.set_health(DnsHealth::Erroring, SimTime::ZERO + Duration::from_secs(30));
/// assert_eq!(dns.resolve("example.org", SimTime::ZERO), Lookup::ServerError);
/// // ... 30 simulated seconds later the operator has restarted DNS:
/// let later = SimTime::from_secs(31);
/// assert!(dns.resolve("example.org", later).is_resolved());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsService {
    health: DnsHealth,
    /// When the current unhealthy state repairs itself.
    repair_at: SimTime,
    normal_latency: Duration,
    slow_latency: Duration,
    /// Hosts with reverse (PTR) records configured.
    reverse_configured: BTreeSet<String>,
}

impl DnsService {
    /// Creates a healthy service with the given normal and degraded latencies.
    pub fn new(normal_latency: Duration, slow_latency: Duration) -> Self {
        DnsService {
            health: DnsHealth::Healthy,
            repair_at: SimTime::ZERO,
            normal_latency,
            slow_latency,
            reverse_configured: BTreeSet::new(),
        }
    }

    /// Current health after accounting for self-repair at `now`.
    pub fn health_at(&self, now: SimTime) -> DnsHealth {
        if self.health != DnsHealth::Healthy && now >= self.repair_at {
            DnsHealth::Healthy
        } else {
            self.health
        }
    }

    /// Latency of a successful lookup in the degraded state.
    pub fn slow_latency(&self) -> Duration {
        self.slow_latency
    }

    /// Injects a failure state that self-repairs at `repair_at`.
    pub fn set_health(&mut self, health: DnsHealth, repair_at: SimTime) {
        self.health = health;
        self.repair_at = repair_at;
    }

    /// Immediately restores healthy service (an operator restarted DNS).
    pub fn repair(&mut self) {
        self.health = DnsHealth::Healthy;
        self.repair_at = SimTime::ZERO;
    }

    /// Performs a forward lookup of `name` at simulated time `now`.
    pub fn resolve(&self, name: &str, now: SimTime) -> Lookup {
        match self.health_at(now) {
            DnsHealth::Healthy => {
                Lookup::Resolved { addr: synthetic_addr(name), latency: self.normal_latency }
            }
            DnsHealth::Erroring => Lookup::ServerError,
            DnsHealth::Slow => {
                Lookup::Resolved { addr: synthetic_addr(name), latency: self.slow_latency }
            }
        }
    }

    /// Declares that `host` has a reverse (PTR) record.
    pub fn configure_reverse(&mut self, host: impl Into<String>) {
        self.reverse_configured.insert(host.into());
    }

    /// Removes `host`'s reverse record (the MySQL corpus condition).
    pub fn drop_reverse(&mut self, host: &str) {
        self.reverse_configured.remove(host);
    }

    /// Performs a reverse lookup of `host` at time `now`.
    ///
    /// Reverse lookups of unconfigured hosts return [`Lookup::NoRecord`]
    /// regardless of service health: the record is *missing*, not the
    /// server broken, which is why the MySQL fault is nontransient.
    pub fn resolve_reverse(&self, host: &str, now: SimTime) -> Lookup {
        if !self.reverse_configured.contains(host) {
            return Lookup::NoRecord;
        }
        self.resolve(host, now)
    }
}

/// Deterministic fake address for a name (FNV-1a folded to 32 bits).
fn synthetic_addr(name: &str) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dns() -> DnsService {
        DnsService::new(Duration::from_millis(1), Duration::from_secs(4))
    }

    #[test]
    fn healthy_lookups_resolve_fast() {
        let d = dns();
        match d.resolve("a.example", SimTime::ZERO) {
            Lookup::Resolved { latency, .. } => assert_eq!(latency, Duration::from_millis(1)),
            other => panic!("expected resolution, got {other}"),
        }
    }

    #[test]
    fn same_name_same_addr_different_names_differ() {
        let d = dns();
        let a1 = d.resolve("a.example", SimTime::ZERO);
        let a2 = d.resolve("a.example", SimTime::from_secs(9));
        assert_eq!(a1, a2);
        let b = d.resolve("b.example", SimTime::ZERO);
        assert_ne!(a1, b);
    }

    #[test]
    fn erroring_state_self_repairs() {
        let mut d = dns();
        d.set_health(DnsHealth::Erroring, SimTime::from_secs(10));
        assert_eq!(d.resolve("x", SimTime::from_secs(5)), Lookup::ServerError);
        assert!(d.resolve("x", SimTime::from_secs(10)).is_resolved());
        assert_eq!(d.health_at(SimTime::from_secs(10)), DnsHealth::Healthy);
    }

    #[test]
    fn slow_state_resolves_with_degraded_latency_then_heals() {
        let mut d = dns();
        d.set_health(DnsHealth::Slow, SimTime::from_secs(60));
        match d.resolve("x", SimTime::ZERO) {
            Lookup::Resolved { latency, .. } => assert_eq!(latency, Duration::from_secs(4)),
            other => panic!("expected slow resolution, got {other}"),
        }
        match d.resolve("x", SimTime::from_secs(61)) {
            Lookup::Resolved { latency, .. } => assert_eq!(latency, Duration::from_millis(1)),
            other => panic!("expected healed resolution, got {other}"),
        }
    }

    #[test]
    fn manual_repair_restores_service() {
        let mut d = dns();
        d.set_health(DnsHealth::Erroring, SimTime::MAX);
        assert_eq!(d.resolve("x", SimTime::from_secs(100)), Lookup::ServerError);
        d.repair();
        assert!(d.resolve("x", SimTime::from_secs(100)).is_resolved());
    }

    #[test]
    fn reverse_lookup_requires_configuration() {
        let mut d = dns();
        assert_eq!(d.resolve_reverse("client1", SimTime::ZERO), Lookup::NoRecord);
        d.configure_reverse("client1");
        assert!(d.resolve_reverse("client1", SimTime::ZERO).is_resolved());
        d.drop_reverse("client1");
        assert_eq!(d.resolve_reverse("client1", SimTime::ZERO), Lookup::NoRecord);
    }

    #[test]
    fn missing_reverse_record_outlives_server_repair() {
        // The nontransient nature: even a healthy, freshly repaired server
        // has no record for the unconfigured host.
        let mut d = dns();
        d.set_health(DnsHealth::Erroring, SimTime::from_secs(1));
        assert_eq!(d.resolve_reverse("ghost", SimTime::from_secs(2)), Lookup::NoRecord);
    }
}
