//! The aggregate operating environment and its retry semantics.
//!
//! [`Environment`] bundles every environmental resource into one value with
//! a shared logical clock. Two methods encode the paper's central reasoning:
//!
//! - [`Environment::advance`] — natural dynamics. DNS and network failures
//!   self-repair once their deadline passes, the entropy pool refills, and
//!   the scheduler's timing (interleave seed) drifts. These are the changes
//!   that make *environment-dependent-transient* faults disappear on retry.
//! - [`Environment::on_generic_recovery`] — what a purely application-
//!   generic recovery system does: it kills every process associated with
//!   the application (freeing process-table slots and ports held by hung
//!   children) and then restores *all* application state from the
//!   checkpoint — including the application's claim on file descriptors and
//!   disk space, which is why resource-leak conditions persist (§3, §5.1).

use crate::condition::ConditionKind;
use crate::dns::{DnsHealth, DnsService};
use crate::entropy::EntropyPool;
use crate::fdtable::FdTable;
use crate::fs::VirtualFs;
use crate::host::HostConfig;
use crate::network::{LinkQuality, Network};
use crate::proctable::ProcessTable;
use faultstudy_obs::Metrics;
use faultstudy_sim::rng::{DetRng, Xoshiro256StarStar};
use faultstudy_sim::sched::Interleaver;
use faultstudy_sim::time::{Clock, Duration, SimTime};
use faultstudy_sim::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a resource owner (an application or an external program)
/// across every per-owner table in the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OwnerId(pub u32);

impl fmt::Display for OwnerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner#{}", self.0)
    }
}

/// The complete simulated operating environment.
///
/// Subsystems are public fields: the environment is a passive compound
/// value in the C-struct spirit, and the applications reach into the
/// subsystem they need (`env.fds.open(..)`, `env.fs.append(..)`), exactly
/// as real programs call into distinct kernel facilities.
#[derive(Debug, Clone)]
pub struct Environment {
    /// The shared logical clock.
    pub clock: Clock,
    /// Virtual filesystem.
    pub fs: VirtualFs,
    /// Kernel file-descriptor table.
    pub fds: FdTable,
    /// Kernel process table (also the owner registry).
    pub procs: ProcessTable,
    /// DNS service.
    pub dns: DnsService,
    /// Network link and opaque resource pool.
    pub net: Network,
    /// `/dev/random` entropy pool.
    pub entropy: EntropyPool,
    /// Hostname and hardware inventory.
    pub host: HostConfig,
    /// Trace of environment-level events.
    pub trace: Trace,
    /// Deterministic metrics sink; disabled unless the builder opted in.
    /// Everything recorded here is measured in simulated time, so an
    /// instrumented run computes exactly what an uninstrumented one does.
    pub metrics: Metrics,
    rng: Xoshiro256StarStar,
    interleave_seed: u64,
    recovery_takes: Duration,
}

impl Environment {
    /// Starts configuring an environment.
    pub fn builder() -> EnvironmentBuilder {
        EnvironmentBuilder::default()
    }

    /// Registers a named resource owner.
    pub fn register_owner(&mut self, name: impl Into<String>) -> OwnerId {
        self.procs.register_owner(name)
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances simulated time by `d`. All lazily-healing subsystems (DNS,
    /// network, entropy) observe the new time on their next query, and the
    /// thread-scheduler timing drifts to a new interleave seed.
    pub fn advance(&mut self, d: Duration) {
        self.clock.advance(d);
        if d > Duration::ZERO {
            self.interleave_seed = self.rng.next_u64();
        }
    }

    /// The scheduler interleaving the *current* environment would impose on
    /// concurrent tasks. Distinct calls between [`Environment::advance`]s
    /// see the same seed — a fixed environment is deterministic; the seed
    /// only drifts when time passes (§3's clock-interrupt timing).
    pub fn current_interleaving(&self) -> Interleaver {
        Interleaver::Seeded(self.interleave_seed)
    }

    /// Overrides the interleave seed; used by tests and by the progressive
    /// retry strategy's message-reordering perturbation \[Wang93\].
    pub fn force_interleave_seed(&mut self, seed: u64) {
        self.interleave_seed = seed;
    }

    /// Draws from the environment's deterministic randomness stream.
    pub fn rng(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.rng
    }

    /// How long one generic recovery (detect, kill, restore, restart) takes.
    pub fn recovery_takes(&self) -> Duration {
        self.recovery_takes
    }

    /// Applies the environmental side effects of one application-generic
    /// recovery of `app`, then advances time by the recovery latency.
    ///
    /// Effects, straight from the paper's reasoning (§3, §5.1):
    ///
    /// - every process associated with the application is killed, freeing
    ///   process-table slots and any ports hung children held;
    /// - *nothing else* owned by the application is released: a truly
    ///   generic mechanism restores all application state, so leaked file
    ///   descriptors and consumed disk space come straight back;
    /// - external state (DNS configuration, hostname, hardware, other
    ///   programs' resources) is untouched;
    /// - simulated time advances, letting naturally-healing conditions heal.
    ///
    /// Returns the number of processes killed.
    pub fn on_generic_recovery(&mut self, app: OwnerId) -> u32 {
        let killed = self.procs.kill_all_of(app);
        let now = self.now();
        self.trace.record(
            now,
            "env.recovery",
            format!("generic recovery of {app}: killed {killed} processes"),
        );
        self.advance(self.recovery_takes);
        killed
    }

    /// Scrubs the environment: clears the non-transient resource conditions
    /// an *operator* (not a generic recovery) could clear by hand — deletes
    /// external ballast files, closes every descriptor in the kernel table,
    /// refills the entropy pool, and reboots the opaque network resource
    /// pool. Returns the number of scrub actions that actually changed
    /// something.
    ///
    /// Deliberately untouched: DNS server health, hostname, and hardware
    /// inventory (external infrastructure no local scrub can fix), and all
    /// application files (a scrub has no licence to delete application
    /// data). The paper's distinction survives the scrub: conditions that
    /// need this hook are exactly the environment-dependent-*nontransient*
    /// ones, which is why the supervisor exposes it as an explicit,
    /// policy-gated step rather than folding it into every recovery (§6).
    pub fn scrub(&mut self) -> u32 {
        let now = self.now();
        let mut actions = 0;
        if self.fs.scrub_ballast() > 0 {
            actions += 1;
        }
        if self.fds.scrub() > 0 {
            actions += 1;
        }
        if self.entropy.scrub(now) > 0 {
            actions += 1;
        }
        if self.net.resource_exhausted() {
            self.net.reboot_resources();
            actions += 1;
        }
        self.trace.record(now, "env.scrub", format!("environment scrub: {actions} actions"));
        actions
    }

    /// Whether the given environmental condition currently holds, probing
    /// live subsystem state.
    ///
    /// Timing-class conditions ([`ConditionKind::RaceCondition`],
    /// [`ConditionKind::WorkloadTiming`], [`ConditionKind::UnknownTransient`])
    /// are properties of an execution, not of environment state, and always
    /// report `false` here; they are realised through
    /// [`Environment::current_interleaving`] and the workload generator.
    pub fn holds(&self, cond: ConditionKind) -> bool {
        let now = self.now();
        match cond {
            ConditionKind::FdExhaustion => self.fds.is_exhausted(),
            ConditionKind::FileSystemFull => self.fs.is_full(),
            ConditionKind::DiskCacheFull => self.fs.is_full(),
            ConditionKind::MaxFileSize => false, // per-file; apps detect via FsError
            ConditionKind::ResourceLeak => false, // app-internal; apps report it
            ConditionKind::NetworkResourceExhausted => self.net.resource_exhausted(),
            ConditionKind::HardwareRemoved => {
                !self.host.hardware_present(crate::host::HardwareComponent::PcmciaNic)
            }
            ConditionKind::HostnameChanged => self.host.hostname_changed(),
            ConditionKind::CorruptFileMetadata => self.fs.iter().any(|(_, m)| m.owner_is_illegal()),
            ConditionKind::ReverseDnsMissing => false, // per-host; apps probe dns
            ConditionKind::ProcessTableFull => self.procs.is_full(),
            ConditionKind::PortsHeldByChildren => false, // per-port; apps probe procs
            ConditionKind::DnsError => self.dns.health_at(now) == DnsHealth::Erroring,
            ConditionKind::DnsSlow => self.dns.health_at(now) == DnsHealth::Slow,
            ConditionKind::NetworkSlow => self.net.quality_at(now) == LinkQuality::Slow,
            ConditionKind::EntropyExhausted => {
                // `available_at` needs &mut for lazy settling; probe a clone.
                self.entropy.clone().is_exhausted_at(now)
            }
            ConditionKind::RaceCondition
            | ConditionKind::WorkloadTiming
            | ConditionKind::UnknownTransient => false,
        }
    }
}

/// Builder for [`Environment`] (C-BUILDER).
///
/// # Example
///
/// ```
/// use faultstudy_env::Environment;
///
/// let env = Environment::builder()
///     .seed(42)
///     .fd_limit(32)
///     .proc_slots(16)
///     .hostname("web1")
///     .build();
/// assert_eq!(env.host.hostname(), "web1");
/// ```
#[derive(Debug, Clone)]
pub struct EnvironmentBuilder {
    seed: u64,
    fs_capacity: u64,
    max_file_size: u64,
    fd_limit: u32,
    proc_slots: u32,
    dns_normal: Duration,
    dns_slow: Duration,
    net_normal: Duration,
    net_slow: Duration,
    net_resource_limit: u32,
    entropy_bits: u64,
    entropy_rate: u64,
    hostname: String,
    recovery_takes: Duration,
    metrics: bool,
}

impl Default for EnvironmentBuilder {
    fn default() -> Self {
        EnvironmentBuilder {
            seed: 0,
            fs_capacity: 10 * 1024 * 1024,
            max_file_size: 2 * 1024 * 1024,
            fd_limit: 64,
            proc_slots: 32,
            dns_normal: Duration::from_millis(2),
            dns_slow: Duration::from_secs(5),
            net_normal: Duration::from_millis(1),
            net_slow: Duration::from_secs(2),
            net_resource_limit: 1024,
            entropy_bits: 4096,
            entropy_rate: 256,
            hostname: "sim-host".to_owned(),
            recovery_takes: Duration::from_secs(1),
            metrics: false,
        }
    }
}

impl EnvironmentBuilder {
    /// Seed for every deterministic random stream in the environment.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Filesystem capacity in bytes.
    pub fn fs_capacity(mut self, bytes: u64) -> Self {
        self.fs_capacity = bytes;
        self
    }

    /// Maximum size of a single file in bytes.
    pub fn max_file_size(mut self, bytes: u64) -> Self {
        self.max_file_size = bytes;
        self
    }

    /// Size of the kernel file-descriptor table.
    pub fn fd_limit(mut self, limit: u32) -> Self {
        self.fd_limit = limit;
        self
    }

    /// Number of process-table slots.
    pub fn proc_slots(mut self, slots: u32) -> Self {
        self.proc_slots = slots;
        self
    }

    /// Units in the opaque network resource pool.
    pub fn net_resource_limit(mut self, units: u32) -> Self {
        self.net_resource_limit = units;
        self
    }

    /// Entropy pool capacity in bits and refill rate in bits/second.
    pub fn entropy(mut self, capacity_bits: u64, refill_bits_per_sec: u64) -> Self {
        self.entropy_bits = capacity_bits;
        self.entropy_rate = refill_bits_per_sec;
        self
    }

    /// Boot-time hostname.
    pub fn hostname(mut self, name: impl Into<String>) -> Self {
        self.hostname = name.into();
        self
    }

    /// How much simulated time one generic recovery consumes.
    pub fn recovery_takes(mut self, d: Duration) -> Self {
        self.recovery_takes = d;
        self
    }

    /// Enables the deterministic metrics sink (disabled by default).
    /// Recording is pure observation — it never touches the clock or the
    /// RNG — so an instrumented environment computes byte-identical
    /// results to an uninstrumented one.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Builds the environment.
    pub fn build(self) -> Environment {
        let mut rng = Xoshiro256StarStar::seed_from(self.seed);
        let interleave_seed = rng.next_u64();
        Environment {
            clock: Clock::new(),
            fs: VirtualFs::new(self.fs_capacity, self.max_file_size),
            fds: FdTable::new(self.fd_limit),
            procs: ProcessTable::new(self.proc_slots),
            dns: DnsService::new(self.dns_normal, self.dns_slow),
            net: Network::new(self.net_normal, self.net_slow, self.net_resource_limit),
            entropy: EntropyPool::new(self.entropy_bits, self.entropy_rate, SimTime::ZERO),
            host: HostConfig::new(self.hostname),
            trace: Trace::default(),
            metrics: if self.metrics { Metrics::enabled() } else { Metrics::disabled() },
            rng,
            interleave_seed,
            recovery_takes: self.recovery_takes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HardwareComponent;

    fn env() -> Environment {
        Environment::builder().seed(7).fd_limit(4).proc_slots(4).build()
    }

    #[test]
    fn builder_applies_settings() {
        let e = Environment::builder()
            .seed(1)
            .fs_capacity(100)
            .max_file_size(50)
            .fd_limit(2)
            .proc_slots(3)
            .hostname("h")
            .build();
        assert_eq!(e.fs.capacity(), 100);
        assert_eq!(e.fs.max_file_size(), 50);
        assert_eq!(e.fds.limit(), 2);
        assert_eq!(e.procs.slots(), 3);
        assert_eq!(e.host.hostname(), "h");
    }

    #[test]
    fn generic_recovery_kills_app_processes_only() {
        let mut e = env();
        let app = e.register_owner("app");
        let ext = e.register_owner("ext");
        let child = e.procs.spawn(app).unwrap();
        e.procs.bind_port(child, 80).unwrap();
        e.procs.hang(child).unwrap();
        e.procs.spawn(ext).unwrap();

        assert!(e.procs.port_held(80));
        let killed = e.on_generic_recovery(app);
        assert_eq!(killed, 1);
        assert!(!e.procs.port_held(80), "hung child's port freed by recovery");
        assert_eq!(e.procs.count_of(ext), 1, "external process untouched");
        assert!(e.now() >= SimTime::from_secs(1), "recovery consumed time");
    }

    #[test]
    fn generic_recovery_leaves_fd_and_disk_claims() {
        let mut e = env();
        let app = e.register_owner("app");
        for _ in 0..4 {
            e.fds.open(app).unwrap();
        }
        e.fs.write("app/leak", 1000).unwrap();
        e.on_generic_recovery(app);
        // The checkpoint restored all application state: fds still held,
        // disk still consumed.
        assert!(e.fds.is_exhausted());
        assert_eq!(e.fs.used(), 1000);
        assert!(e.holds(ConditionKind::FdExhaustion));
    }

    #[test]
    fn holds_probes_live_state() {
        let mut e = env();
        assert!(!e.holds(ConditionKind::FileSystemFull));
        e.fs.fill_with_ballast();
        assert!(e.holds(ConditionKind::FileSystemFull));

        assert!(!e.holds(ConditionKind::HardwareRemoved));
        e.host.remove_hardware(HardwareComponent::PcmciaNic);
        assert!(e.holds(ConditionKind::HardwareRemoved));

        assert!(!e.holds(ConditionKind::HostnameChanged));
        e.host.set_hostname("renamed");
        assert!(e.holds(ConditionKind::HostnameChanged));

        assert!(!e.holds(ConditionKind::ProcessTableFull));
        let ext = e.register_owner("bomb");
        e.procs.exhaust_as(ext);
        assert!(e.holds(ConditionKind::ProcessTableFull));
    }

    #[test]
    fn dns_conditions_heal_with_time() {
        let mut e = env();
        e.dns.set_health(DnsHealth::Erroring, SimTime::from_secs(10));
        assert!(e.holds(ConditionKind::DnsError));
        e.advance(Duration::from_secs(11));
        assert!(!e.holds(ConditionKind::DnsError), "DNS healed while time passed");
    }

    #[test]
    fn entropy_condition_heals_with_time() {
        let mut e = env();
        e.entropy.drain(e.now());
        assert!(e.holds(ConditionKind::EntropyExhausted));
        e.advance(Duration::from_secs(60));
        assert!(!e.holds(ConditionKind::EntropyExhausted));
    }

    #[test]
    fn corrupt_metadata_condition() {
        let mut e = env();
        e.fs.write("f", 1).unwrap();
        assert!(!e.holds(ConditionKind::CorruptFileMetadata));
        e.fs.set_owner("f", u32::MAX).unwrap();
        assert!(e.holds(ConditionKind::CorruptFileMetadata));
    }

    #[test]
    fn scrub_clears_nontransient_resource_conditions() {
        let mut e = env();
        let ext = e.register_owner("hog");
        e.fds.exhaust_as(ext);
        e.fs.fill_with_ballast();
        e.entropy.drain(e.now());
        assert!(e.holds(ConditionKind::FdExhaustion));
        assert!(e.holds(ConditionKind::FileSystemFull));
        assert!(e.holds(ConditionKind::EntropyExhausted));

        let actions = e.scrub();
        assert_eq!(actions, 3);
        assert!(!e.holds(ConditionKind::FdExhaustion));
        assert!(!e.holds(ConditionKind::FileSystemFull));
        assert!(!e.holds(ConditionKind::EntropyExhausted));
        // A clean environment needs no scrubbing.
        assert_eq!(e.scrub(), 0);
    }

    #[test]
    fn scrub_leaves_external_infrastructure_and_app_data() {
        let mut e = env();
        e.fs.write("app/data", 500).unwrap();
        e.dns.set_health(DnsHealth::Erroring, SimTime::from_secs(100));
        e.host.set_hostname("renamed");
        e.scrub();
        assert_eq!(e.fs.used(), 500, "application data untouched");
        assert!(e.holds(ConditionKind::DnsError), "DNS is not locally scrubbable");
        assert!(e.holds(ConditionKind::HostnameChanged));
    }

    #[test]
    fn scrub_does_not_advance_time_or_drift_interleaving() {
        let mut e = env();
        let before = format!("{:?}", e.current_interleaving());
        let t = e.now();
        e.fs.fill_with_ballast();
        e.scrub();
        assert_eq!(e.now(), t);
        assert_eq!(before, format!("{:?}", e.current_interleaving()));
    }

    #[test]
    fn interleaving_is_stable_within_an_instant_and_drifts_with_time() {
        let mut e = env();
        let a = format!("{:?}", e.current_interleaving());
        let b = format!("{:?}", e.current_interleaving());
        assert_eq!(a, b, "fixed environment, fixed interleaving");
        e.advance(Duration::from_millis(1));
        let c = format!("{:?}", e.current_interleaving());
        assert_ne!(a, c, "time passing changes scheduler timing");
    }

    #[test]
    fn environments_with_same_seed_are_identical() {
        let mut e1 = env();
        let mut e2 = env();
        e1.advance(Duration::from_secs(3));
        e2.advance(Duration::from_secs(3));
        assert_eq!(
            format!("{:?}", e1.current_interleaving()),
            format!("{:?}", e2.current_interleaving())
        );
        assert_eq!(e1.rng().next_u64(), e2.rng().next_u64());
    }

    #[test]
    fn zero_advance_keeps_interleaving() {
        let mut e = env();
        let a = format!("{:?}", e.current_interleaving());
        e.advance(Duration::ZERO);
        assert_eq!(a, format!("{:?}", e.current_interleaving()));
    }
}
