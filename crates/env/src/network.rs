//! The network model: link quality, an exhaustible resource pool, and a
//! port namespace.
//!
//! Backs three corpus triggers: "slow network connection" (Apache,
//! transient — *"the network may be fixed by the time Apache recovers"*),
//! "unknown network resource exhausted" (Apache, nontransient), and the
//! port half of "hung child processes hang onto required network ports"
//! (transient via [`crate::proctable::ProcessTable::kill_all_of`]).

use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Quality of the network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkQuality {
    /// Normal latency.
    Normal,
    /// Degraded latency until the repair deadline.
    Slow,
    /// No connectivity at all (e.g. the NIC was removed).
    Down,
}

/// Errors surfaced by the network model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetError {
    /// The link is down.
    LinkDown,
    /// The opaque kernel network resource pool is exhausted.
    ResourceExhausted,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::LinkDown => f.write_str("network link down"),
            NetError::ResourceExhausted => f.write_str("network resource exhausted"),
        }
    }
}

impl std::error::Error for NetError {}

/// The simulated network.
///
/// The "network resource" pool is deliberately opaque — the Apache bug
/// report itself only says *"unknown network resource exhausted"* — so it is
/// modelled as an abstract counter that only an explicit reboot replenishes.
///
/// # Example
///
/// ```
/// use faultstudy_env::network::{LinkQuality, Network};
/// use faultstudy_sim::time::{Duration, SimTime};
///
/// let mut net = Network::new(Duration::from_millis(1), Duration::from_secs(2), 100);
/// net.set_quality(LinkQuality::Slow, SimTime::from_secs(30));
/// assert_eq!(net.latency_at(SimTime::from_secs(10)), Duration::from_secs(2));
/// assert_eq!(net.latency_at(SimTime::from_secs(30)), Duration::from_millis(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    quality: LinkQuality,
    repair_at: SimTime,
    normal_latency: Duration,
    slow_latency: Duration,
    resource_limit: u32,
    resource_used: u32,
}

impl Network {
    /// Creates a healthy network with the given latencies and an opaque
    /// resource pool of `resource_limit` units.
    pub fn new(normal_latency: Duration, slow_latency: Duration, resource_limit: u32) -> Self {
        Network {
            quality: LinkQuality::Normal,
            repair_at: SimTime::ZERO,
            normal_latency,
            slow_latency,
            resource_limit,
            resource_used: 0,
        }
    }

    /// Link quality at `now`, accounting for self-repair. A link that is
    /// [`LinkQuality::Down`] does *not* self-repair: replugging hardware is
    /// an operator action.
    pub fn quality_at(&self, now: SimTime) -> LinkQuality {
        match self.quality {
            LinkQuality::Slow if now >= self.repair_at => LinkQuality::Normal,
            q => q,
        }
    }

    /// Injects degraded quality; `repair_at` is when a slow link heals.
    pub fn set_quality(&mut self, quality: LinkQuality, repair_at: SimTime) {
        self.quality = quality;
        self.repair_at = repair_at;
    }

    /// Restores a downed or slow link immediately.
    pub fn repair(&mut self) {
        self.quality = LinkQuality::Normal;
    }

    /// Round-trip latency at `now`.
    ///
    /// # Errors
    ///
    /// [`NetError::LinkDown`] when there is no connectivity.
    pub fn rtt_at(&self, now: SimTime) -> Result<Duration, NetError> {
        match self.quality_at(now) {
            LinkQuality::Normal => Ok(self.normal_latency),
            LinkQuality::Slow => Ok(self.slow_latency),
            LinkQuality::Down => Err(NetError::LinkDown),
        }
    }

    /// Like [`Network::rtt_at`] but panics on a downed link; convenient in
    /// tests that know the link is up.
    ///
    /// # Panics
    ///
    /// Panics if the link is down.
    pub fn latency_at(&self, now: SimTime) -> Duration {
        self.rtt_at(now).expect("link is up")
    }

    /// Consumes `units` of the opaque network resource.
    ///
    /// # Errors
    ///
    /// [`NetError::ResourceExhausted`] once the pool is spent; the units are
    /// *not* partially consumed on failure.
    pub fn consume_resource(&mut self, units: u32) -> Result<(), NetError> {
        match self.resource_used.checked_add(units) {
            Some(total) if total <= self.resource_limit => {
                self.resource_used = total;
                Ok(())
            }
            _ => Err(NetError::ResourceExhausted),
        }
    }

    /// Whether the opaque resource pool is exhausted.
    pub fn resource_exhausted(&self) -> bool {
        self.resource_used >= self.resource_limit
    }

    /// Units of the opaque resource remaining.
    pub fn resource_free(&self) -> u32 {
        self.resource_limit - self.resource_used
    }

    /// Replenishes the opaque resource pool (a machine reboot — something a
    /// *generic application* recovery never does, hence nontransient).
    pub fn reboot_resources(&mut self) {
        self.resource_used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        Network::new(Duration::from_millis(5), Duration::from_secs(1), 10)
    }

    #[test]
    fn normal_latency_by_default() {
        assert_eq!(net().latency_at(SimTime::ZERO), Duration::from_millis(5));
    }

    #[test]
    fn slow_link_self_heals() {
        let mut n = net();
        n.set_quality(LinkQuality::Slow, SimTime::from_secs(8));
        assert_eq!(n.latency_at(SimTime::from_secs(7)), Duration::from_secs(1));
        assert_eq!(n.latency_at(SimTime::from_secs(8)), Duration::from_millis(5));
        assert_eq!(n.quality_at(SimTime::from_secs(9)), LinkQuality::Normal);
    }

    #[test]
    fn down_link_stays_down_until_repair() {
        let mut n = net();
        n.set_quality(LinkQuality::Down, SimTime::from_secs(1));
        // Past the "repair" deadline, still down: hardware needs an operator.
        assert_eq!(n.rtt_at(SimTime::from_secs(100)), Err(NetError::LinkDown));
        n.repair();
        assert!(n.rtt_at(SimTime::from_secs(100)).is_ok());
    }

    #[test]
    fn resource_pool_exhausts_and_rejects_atomically() {
        let mut n = net();
        n.consume_resource(7).unwrap();
        assert_eq!(n.resource_free(), 3);
        assert_eq!(n.consume_resource(4), Err(NetError::ResourceExhausted));
        assert_eq!(n.resource_free(), 3, "failed consume must not spend units");
        n.consume_resource(3).unwrap();
        assert!(n.resource_exhausted());
    }

    #[test]
    fn reboot_replenishes_resources() {
        let mut n = net();
        n.consume_resource(10).unwrap();
        assert!(n.resource_exhausted());
        n.reboot_resources();
        assert_eq!(n.resource_free(), 10);
    }

    #[test]
    fn saturating_consume_handles_overflow() {
        let mut n = Network::new(Duration::ZERO, Duration::ZERO, u32::MAX);
        n.consume_resource(u32::MAX - 1).unwrap();
        assert_eq!(n.consume_resource(u32::MAX), Err(NetError::ResourceExhausted));
    }

    #[test]
    fn error_display() {
        assert_eq!(NetError::LinkDown.to_string(), "network link down");
        assert_eq!(NetError::ResourceExhausted.to_string(), "network resource exhausted");
    }
}
