//! A bounded file-descriptor table with per-owner accounting.
//!
//! Backs the fd-exhaustion triggers that appear in all three applications:
//! Apache's "lack of file descriptors", GNOME's sound utilities leaking
//! sockets (each open socket consumes a descriptor), and MySQL's shortage of
//! descriptors "due to competition between MySQL and a web server" (§5).
//! The table is a *kernel* resource: descriptors held by one owner reduce
//! what every other owner can open.

use crate::environment::OwnerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A file descriptor handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// Error returned when the descriptor table is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdExhausted {
    /// The configured table size.
    pub limit: u32,
}

impl fmt::Display for FdExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file descriptor table exhausted (limit {})", self.limit)
    }
}

impl std::error::Error for FdExhausted {}

/// The kernel's file-descriptor table.
///
/// # Example
///
/// ```
/// use faultstudy_env::fdtable::FdTable;
/// use faultstudy_env::environment::OwnerId;
///
/// let mut t = FdTable::new(2);
/// let app = OwnerId(1);
/// let a = t.open(app).unwrap();
/// let _b = t.open(app).unwrap();
/// assert!(t.open(app).is_err());
/// t.close(a).unwrap();
/// assert!(t.open(app).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FdTable {
    limit: u32,
    next: u32,
    open: BTreeMap<Fd, OwnerId>,
}

impl FdTable {
    /// Creates a table with room for `limit` simultaneously open descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: u32) -> Self {
        assert!(limit > 0, "fd limit must be positive");
        FdTable { limit, next: 0, open: BTreeMap::new() }
    }

    /// The configured table size.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// Number of descriptors currently open across all owners.
    pub fn in_use(&self) -> u32 {
        self.open.len() as u32
    }

    /// Number of descriptors still available.
    pub fn available(&self) -> u32 {
        self.limit - self.in_use()
    }

    /// Whether the table is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.in_use() >= self.limit
    }

    /// Opens a descriptor for `owner`.
    ///
    /// # Errors
    ///
    /// [`FdExhausted`] if the table is full.
    pub fn open(&mut self, owner: OwnerId) -> Result<Fd, FdExhausted> {
        if self.is_exhausted() {
            return Err(FdExhausted { limit: self.limit });
        }
        let fd = Fd(self.next);
        self.next += 1;
        self.open.insert(fd, owner);
        Ok(fd)
    }

    /// Closes `fd`.
    ///
    /// # Errors
    ///
    /// Returns `Err(fd)` if the descriptor is not open.
    pub fn close(&mut self, fd: Fd) -> Result<(), Fd> {
        self.open.remove(&fd).map(|_| ()).ok_or(fd)
    }

    /// Closes every descriptor held by `owner`; returns how many were closed.
    pub fn close_all_of(&mut self, owner: OwnerId) -> u32 {
        let before = self.open.len();
        self.open.retain(|_, o| *o != owner);
        (before - self.open.len()) as u32
    }

    /// Number of descriptors held by `owner`.
    pub fn held_by(&self, owner: OwnerId) -> u32 {
        self.open.values().filter(|o| **o == owner).count() as u32
    }

    /// Opens descriptors for `owner` until the table is exhausted; returns
    /// how many were opened. Models a competing program (the paper's web
    /// server racing MySQL for descriptors).
    pub fn exhaust_as(&mut self, owner: OwnerId) -> u32 {
        let mut n = 0;
        while self.open(owner).is_ok() {
            n += 1;
        }
        n
    }

    /// Closes every open descriptor regardless of owner; returns how many
    /// were closed. This is the explicit environment-scrubbing hook: an
    /// operator killing the competing descriptor hogs, something no generic
    /// recovery of the *application* can do on its own (§6 — restarting the
    /// app does not return descriptors held by other programs). Descriptor
    /// ids are still never reused afterwards.
    pub fn scrub(&mut self) -> u32 {
        let n = self.open.len() as u32;
        self.open.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const APP: OwnerId = OwnerId(1);
    const OTHER: OwnerId = OwnerId(2);

    #[test]
    fn open_until_exhausted() {
        let mut t = FdTable::new(3);
        for _ in 0..3 {
            t.open(APP).unwrap();
        }
        assert!(t.is_exhausted());
        assert_eq!(t.open(APP).unwrap_err(), FdExhausted { limit: 3 });
        assert_eq!(t.available(), 0);
    }

    #[test]
    fn close_frees_slot_and_rejects_double_close() {
        let mut t = FdTable::new(1);
        let fd = t.open(APP).unwrap();
        t.close(fd).unwrap();
        assert_eq!(t.close(fd), Err(fd));
        assert!(t.open(APP).is_ok());
    }

    #[test]
    fn fds_are_never_reused() {
        let mut t = FdTable::new(2);
        let a = t.open(APP).unwrap();
        t.close(a).unwrap();
        let b = t.open(APP).unwrap();
        assert_ne!(a, b, "descriptor ids are unique per run");
    }

    #[test]
    fn per_owner_accounting_and_bulk_close() {
        let mut t = FdTable::new(10);
        for _ in 0..4 {
            t.open(APP).unwrap();
        }
        for _ in 0..3 {
            t.open(OTHER).unwrap();
        }
        assert_eq!(t.held_by(APP), 4);
        assert_eq!(t.held_by(OTHER), 3);
        assert_eq!(t.close_all_of(APP), 4);
        assert_eq!(t.held_by(APP), 0);
        assert_eq!(t.in_use(), 3);
    }

    #[test]
    fn exhaust_as_models_competition() {
        let mut t = FdTable::new(5);
        t.open(APP).unwrap();
        let grabbed = t.exhaust_as(OTHER);
        assert_eq!(grabbed, 4);
        assert!(t.is_exhausted());
        assert!(t.open(APP).is_err(), "app starved by competitor");
    }

    #[test]
    fn scrub_closes_everything_without_reusing_ids() {
        let mut t = FdTable::new(3);
        let before = t.open(APP).unwrap();
        t.open(OTHER).unwrap();
        t.exhaust_as(OTHER);
        assert!(t.is_exhausted());
        assert_eq!(t.scrub(), 3);
        assert_eq!(t.in_use(), 0);
        assert_eq!(t.held_by(OTHER), 0);
        let after = t.open(APP).unwrap();
        assert!(after.0 > before.0, "scrub must not recycle descriptor ids");
        // Scrubbing an empty table is a no-op.
        t.close(after).unwrap();
        assert_eq!(t.scrub(), 0);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            FdExhausted { limit: 7 }.to_string(),
            "file descriptor table exhausted (limit 7)"
        );
    }

    #[test]
    #[should_panic(expected = "fd limit must be positive")]
    fn zero_limit_rejected() {
        FdTable::new(0);
    }
}
