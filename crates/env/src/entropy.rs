//! A `/dev/random`-style entropy pool that drains and refills.
//!
//! Backs the Apache trigger *"lack of events to generate sufficient random
//! numbers in /dev/random"* — transient because *"during recovery, it is
//! likely that more events will be generated for /dev/random"* (§5.1). The
//! pool accumulates bits at a fixed rate of environmental events per
//! simulated second and blocks (errors) when a read wants more bits than
//! are available.

use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a read wants more entropy than the pool holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntropyExhausted {
    /// Bits requested.
    pub requested: u64,
    /// Bits available at the time of the read.
    pub available: u64,
}

impl fmt::Display for EntropyExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "entropy pool exhausted: requested {} bits, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for EntropyExhausted {}

/// The kernel entropy pool.
///
/// Refill is computed lazily from the timestamp of each operation, so the
/// pool needs no tick hook: simply calling [`EntropyPool::read`] later in
/// simulated time observes the accumulated bits.
///
/// # Example
///
/// ```
/// use faultstudy_env::entropy::EntropyPool;
/// use faultstudy_sim::time::SimTime;
///
/// let mut pool = EntropyPool::new(128, 64, SimTime::ZERO); // 64 bits/sec
/// pool.read(128, SimTime::ZERO).unwrap();                  // drained
/// assert!(pool.read(128, SimTime::ZERO).is_err());
/// assert!(pool.read(128, SimTime::from_secs(2)).is_ok());  // refilled
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntropyPool {
    capacity_bits: u64,
    bits: u64,
    refill_bits_per_sec: u64,
    last_update: SimTime,
}

impl EntropyPool {
    /// Creates a full pool of `capacity_bits` refilling at
    /// `refill_bits_per_sec`, with `now` as the reference instant.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bits` is zero.
    pub fn new(capacity_bits: u64, refill_bits_per_sec: u64, now: SimTime) -> Self {
        assert!(capacity_bits > 0, "entropy capacity must be positive");
        EntropyPool { capacity_bits, bits: capacity_bits, refill_bits_per_sec, last_update: now }
    }

    fn settle(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        // A full pool accrues nothing, and a dead rate never will: in both
        // cases the elapsed time carries no refill progress to preserve.
        if self.bits >= self.capacity_bits || self.refill_bits_per_sec == 0 {
            self.last_update = now;
            return;
        }
        let per_sec = Duration::from_secs(1).as_nanos();
        let elapsed = now.saturating_since(self.last_update).as_nanos();
        let gained = self.refill_bits_per_sec.saturating_mul(elapsed) / per_sec;
        if gained == 0 {
            // Not enough time for one whole bit. Leave `last_update` where
            // it is so the fractional progress keeps accruing: advancing it
            // here would let frequent polling (is_exhausted_at every 1ms)
            // discard every remainder and starve the refill entirely.
            return;
        }
        if gained >= self.capacity_bits - self.bits {
            self.bits = self.capacity_bits;
            self.last_update = now;
        } else {
            self.bits += gained;
            // Consume only the nanoseconds actually converted into bits;
            // the remainder stays banked in `last_update` for the next
            // settle, making refill independent of polling frequency.
            let consumed = gained.saturating_mul(per_sec) / self.refill_bits_per_sec;
            self.last_update =
                self.last_update.saturating_add(Duration::from_nanos(consumed.min(elapsed)));
        }
    }

    /// Bits available at `now`.
    pub fn available_at(&mut self, now: SimTime) -> u64 {
        self.settle(now);
        self.bits
    }

    /// Whether the pool is empty at `now`.
    pub fn is_exhausted_at(&mut self, now: SimTime) -> bool {
        self.available_at(now) == 0
    }

    /// Reads `bits` of entropy at `now`.
    ///
    /// # Errors
    ///
    /// [`EntropyExhausted`] if fewer than `bits` are available; nothing is
    /// consumed on failure (the caller "blocks", i.e. fails, like a
    /// non-blocking read of `/dev/random`).
    pub fn read(&mut self, bits: u64, now: SimTime) -> Result<(), EntropyExhausted> {
        self.settle(now);
        if bits > self.bits {
            return Err(EntropyExhausted { requested: bits, available: self.bits });
        }
        self.bits -= bits;
        Ok(())
    }

    /// Drains the pool completely at `now` (a competing consumer).
    pub fn drain(&mut self, now: SimTime) {
        self.settle(now);
        self.bits = 0;
    }

    /// Scrubs the pool back to capacity at `now` — an operator feeding the
    /// kernel fresh events (moving the mouse, restarting an entropy
    /// daemon). This is the explicit reset hook for environment scrubbing:
    /// it is *not* something a generic recovery may do on its own, which is
    /// why the supervisor gates it behind an explicit policy. Returns the
    /// bits added.
    pub fn scrub(&mut self, now: SimTime) -> u64 {
        self.settle(now);
        let added = self.capacity_bits - self.bits;
        self.bits = self.capacity_bits;
        added
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut p = EntropyPool::new(100, 10, SimTime::ZERO);
        assert_eq!(p.available_at(SimTime::ZERO), 100);
        p.read(60, SimTime::ZERO).unwrap();
        assert_eq!(p.available_at(SimTime::ZERO), 40);
        p.drain(SimTime::ZERO);
        assert!(p.is_exhausted_at(SimTime::ZERO));
    }

    #[test]
    fn failed_read_consumes_nothing() {
        let mut p = EntropyPool::new(100, 0, SimTime::ZERO);
        p.read(90, SimTime::ZERO).unwrap();
        let err = p.read(20, SimTime::ZERO).unwrap_err();
        assert_eq!(err, EntropyExhausted { requested: 20, available: 10 });
        assert_eq!(p.available_at(SimTime::ZERO), 10);
    }

    #[test]
    fn refills_linearly_and_caps_at_capacity() {
        let mut p = EntropyPool::new(100, 10, SimTime::ZERO);
        p.drain(SimTime::ZERO);
        assert_eq!(p.available_at(SimTime::from_secs(3)), 30);
        assert_eq!(p.available_at(SimTime::from_secs(1000)), 100, "capped");
    }

    #[test]
    fn sub_second_refill_rounds_down() {
        let mut p = EntropyPool::new(100, 10, SimTime::ZERO);
        p.drain(SimTime::ZERO);
        assert_eq!(p.available_at(SimTime::from_millis(1500)), 15);
    }

    #[test]
    fn zero_refill_rate_never_recovers() {
        let mut p = EntropyPool::new(10, 0, SimTime::ZERO);
        p.drain(SimTime::ZERO);
        assert!(p.is_exhausted_at(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn time_does_not_flow_backwards() {
        let mut p = EntropyPool::new(100, 10, SimTime::from_secs(10));
        p.drain(SimTime::from_secs(10));
        // An earlier timestamp neither refills nor panics.
        assert_eq!(p.available_at(SimTime::from_secs(5)), 0);
    }

    #[test]
    fn refill_is_independent_of_polling_frequency() {
        // 10 bits/sec means one bit per 100ms; polling every 1ms floors
        // each increment to zero bits. The old settle advanced
        // `last_update` anyway, discarding every fractional remainder, so
        // a frequently-polled pool never refilled at all.
        let mut polled = EntropyPool::new(100, 10, SimTime::ZERO);
        polled.drain(SimTime::ZERO);
        let mut idle = polled.clone();
        for ms in 1..=3000 {
            polled.is_exhausted_at(SimTime::from_millis(ms));
        }
        assert_eq!(
            polled.available_at(SimTime::from_secs(3)),
            idle.available_at(SimTime::from_secs(3)),
            "polling must not slow the refill"
        );
        assert_eq!(polled.available_at(SimTime::from_secs(3)), 30);
    }

    #[test]
    fn sub_bit_remainders_accumulate_across_settles() {
        // 3 bits/sec: each settle at a 400ms boundary gains 1 bit and
        // banks the extra 66.67ms toward the next one.
        let mut p = EntropyPool::new(100, 3, SimTime::ZERO);
        p.drain(SimTime::ZERO);
        for ms in (400..=4000).step_by(400) {
            p.available_at(SimTime::from_millis(ms));
        }
        // 4 seconds at 3 bits/sec is exactly 12 bits, however often we polled.
        assert_eq!(p.available_at(SimTime::from_secs(4)), 12);
    }

    #[test]
    fn full_pool_does_not_bank_refill_time() {
        let mut p = EntropyPool::new(100, 10, SimTime::ZERO);
        // Sit full for an hour, then drain: no credit for the idle time.
        assert_eq!(p.available_at(SimTime::from_secs(3600)), 100);
        p.drain(SimTime::from_secs(3600));
        assert_eq!(p.available_at(SimTime::from_secs(3601)), 10, "refill restarts from the drain");
    }

    #[test]
    fn scrub_refills_to_capacity_and_reports_bits_added() {
        let mut p = EntropyPool::new(100, 10, SimTime::ZERO);
        p.drain(SimTime::ZERO);
        // 2 seconds of refill leave 20 bits; the scrub supplies the other 80.
        assert_eq!(p.scrub(SimTime::from_secs(2)), 80);
        assert_eq!(p.available_at(SimTime::from_secs(2)), 100);
        // Scrubbing a full pool is a no-op.
        assert_eq!(p.scrub(SimTime::from_secs(2)), 0);
    }

    #[test]
    fn scrub_restarts_refill_accounting() {
        let mut p = EntropyPool::new(100, 10, SimTime::ZERO);
        p.drain(SimTime::ZERO);
        p.scrub(SimTime::from_secs(1));
        p.drain(SimTime::from_secs(1));
        // No credit for pre-scrub time: refill restarts from the scrub.
        assert_eq!(p.available_at(SimTime::from_secs(2)), 10);
    }

    #[test]
    fn error_display() {
        let e = EntropyExhausted { requested: 8, available: 3 };
        assert_eq!(e.to_string(), "entropy pool exhausted: requested 8 bits, 3 available");
    }
}
