//! Property tests for the simulated operating environment.

use faultstudy_env::condition::{ConditionKind, Persistence};
use faultstudy_env::dns::{DnsHealth, DnsService};
use faultstudy_env::entropy::EntropyPool;
use faultstudy_env::fs::VirtualFs;
use faultstudy_env::proctable::ProcessTable;
use faultstudy_env::Environment;
use faultstudy_sim::time::{Duration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Process-table slots are conserved under arbitrary spawn/hang/kill
    /// traffic, and per-owner counts sum to the total.
    #[test]
    fn process_table_conserves_slots(
        ops in prop::collection::vec((0u8..4, 0usize..3), 1..100)
    ) {
        let mut table = ProcessTable::new(12);
        let owners = [
            table.register_owner("a"),
            table.register_owner("b"),
            table.register_owner("c"),
        ];
        let mut live = Vec::new();
        for (op, who) in ops {
            match op {
                0 => {
                    if let Ok(pid) = table.spawn(owners[who]) {
                        live.push(pid);
                    }
                }
                1 => {
                    if let Some(pid) = live.last() {
                        prop_assert!(table.hang(*pid).is_ok());
                    }
                }
                2 => {
                    if let Some(pid) = live.pop() {
                        prop_assert!(table.kill(pid).is_ok());
                    }
                }
                _ => {
                    let killed = table.kill_all_of(owners[who]);
                    live.retain(|pid| table.state(*pid).is_some());
                    prop_assert!(killed as usize <= 12);
                }
            }
            prop_assert!(table.in_use() <= table.slots());
            let sum: u32 = owners.iter().map(|o| table.count_of(*o)).sum();
            prop_assert_eq!(sum, table.in_use());
            prop_assert_eq!(live.len() as u32, table.in_use());
        }
    }

    /// The entropy pool never exceeds capacity nor goes negative, for any
    /// interleaving of reads, drains, and waiting.
    #[test]
    fn entropy_pool_stays_in_bounds(
        ops in prop::collection::vec((0u8..3, 0u64..600), 1..60)
    ) {
        let mut pool = EntropyPool::new(512, 64, SimTime::ZERO);
        let mut now = SimTime::ZERO;
        for (op, arg) in ops {
            match op {
                0 => {
                    let before = pool.available_at(now);
                    match pool.read(arg, now) {
                        Ok(()) => prop_assert!(arg <= before),
                        Err(e) => {
                            prop_assert_eq!(e.available, before);
                            prop_assert!(arg > before);
                        }
                    }
                }
                1 => pool.drain(now),
                _ => now = now.saturating_add(Duration::from_millis(arg)),
            }
            let avail = pool.available_at(now);
            prop_assert!(avail <= 512);
        }
    }

    /// DNS health monotonically heals: once healthy at time t, it stays
    /// healthy at any later time (absent new injections).
    #[test]
    fn dns_healing_is_monotone(repair_ms in 0u64..10_000, probes in prop::collection::vec(0u64..20_000, 1..20)) {
        let mut dns = DnsService::new(Duration::from_millis(1), Duration::from_secs(1));
        dns.set_health(DnsHealth::Erroring, SimTime::from_millis(repair_ms));
        let mut sorted = probes;
        sorted.sort_unstable();
        let mut was_healthy = false;
        for t in sorted {
            let healthy = dns.health_at(SimTime::from_millis(t)) == DnsHealth::Healthy;
            if was_healthy {
                prop_assert!(healthy, "healed DNS must not relapse at {t}ms");
            }
            was_healthy = healthy;
            prop_assert_eq!(healthy, t >= repair_ms);
        }
    }

    /// `fill_with_ballast` always reaches exactly full, from any prior
    /// occupancy.
    #[test]
    fn ballast_always_fills(prior in prop::collection::vec(1u64..300, 0..10)) {
        let mut fs = VirtualFs::new(4096, 512);
        for (i, size) in prior.iter().enumerate() {
            let _ = fs.write(format!("pre{i}"), *size);
        }
        fs.fill_with_ballast();
        prop_assert!(fs.is_full());
        prop_assert_eq!(fs.free(), 0);
    }

    /// Generic recovery is idempotent on the environment: a second
    /// recovery immediately after the first changes nothing except time.
    #[test]
    fn generic_recovery_is_idempotent(seed in any::<u64>(), children in 0u32..6) {
        let mut env = Environment::builder().seed(seed).proc_slots(16).build();
        let app = env.register_owner("app");
        for _ in 0..children {
            let pid = env.procs.spawn(app).expect("slots available");
            let _ = env.procs.hang(pid);
        }
        let first = env.on_generic_recovery(app);
        prop_assert_eq!(first, children);
        let second = env.on_generic_recovery(app);
        prop_assert_eq!(second, 0, "nothing left to kill");
        prop_assert_eq!(env.procs.count_of(app), 0);
    }

    /// `holds` is consistent with `persistence` semantics: for conditions
    /// probeable from environment state, injecting and recovering leaves
    /// nontransient conditions holding.
    #[test]
    fn persistent_conditions_survive_recovery(seed in any::<u64>()) {
        let mut env = Environment::builder().seed(seed).fd_limit(4).build();
        let app = env.register_owner("app");
        env.fs.fill_with_ballast();
        env.fds.exhaust_as(app);
        env.host.set_hostname("renamed");
        for cond in [
            ConditionKind::FileSystemFull,
            ConditionKind::FdExhaustion,
            ConditionKind::HostnameChanged,
        ] {
            prop_assert!(env.holds(cond), "{cond} should hold after injection");
            prop_assert_eq!(cond.persistence(), Persistence::Persists);
        }
        env.on_generic_recovery(app);
        for cond in [
            ConditionKind::FileSystemFull,
            ConditionKind::FdExhaustion,
            ConditionKind::HostnameChanged,
        ] {
            prop_assert!(env.holds(cond), "{cond} must persist across generic recovery");
        }
    }

    /// Cleared-by-recovery conditions stop holding after one recovery.
    #[test]
    fn cleared_conditions_do_not_survive_recovery(seed in any::<u64>()) {
        let mut env = Environment::builder().seed(seed).proc_slots(8).build();
        let app = env.register_owner("app");
        let pids: Vec<_> = std::iter::from_fn(|| env.procs.spawn(app).ok()).collect();
        for pid in &pids {
            let _ = env.procs.hang(*pid);
            let _ = env.procs.bind_port(*pid, 8080);
        }
        prop_assert!(env.holds(ConditionKind::ProcessTableFull));
        prop_assert!(env.procs.port_held(8080));
        env.on_generic_recovery(app);
        prop_assert!(!env.holds(ConditionKind::ProcessTableFull));
        prop_assert!(!env.procs.port_held(8080));
    }
}
