//! Property tests for the observability layer: the merge discipline that
//! makes instrumented parallel runs byte-identical at any thread count.

use faultstudy_obs::{bucket_hi, bucket_index, bucket_lo, Histogram, MetricsRegistry};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Histogram merge is commutative: a ∪ b == b ∪ a.
    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..u64::MAX, 0..40),
        b in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge_from(&hb);
        let mut ba = hb.clone();
        ba.merge_from(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Histogram merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..u64::MAX, 0..30),
        b in prop::collection::vec(0u64..u64::MAX, 0..30),
        c in prop::collection::vec(0u64..u64::MAX, 0..30),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge_from(&hb);
        left.merge_from(&hc);
        let mut bc = hb.clone();
        bc.merge_from(&hc);
        let mut right = ha.clone();
        right.merge_from(&bc);
        prop_assert_eq!(left, right);
    }

    /// Merging any contiguous partition of a sample stream in index order
    /// reproduces the histogram of the unpartitioned stream — the exact
    /// shape of `run_indexed` chunking at different thread counts.
    #[test]
    fn partitioned_merge_equals_sequential(
        values in prop::collection::vec(0u64..u64::MAX, 1..80),
        parts in 1usize..8,
    ) {
        let whole = hist_of(&values);
        let chunk = values.len().div_ceil(parts);
        let mut merged = Histogram::new();
        for part in values.chunks(chunk) {
            merged.merge_from(&hist_of(part));
        }
        prop_assert_eq!(merged, whole);
    }

    /// Every value lands in the bucket whose bounds contain it.
    #[test]
    fn bucket_bounds_contain_their_values(v in 0u64..u64::MAX) {
        let i = bucket_index(v);
        prop_assert!(bucket_lo(i) <= v, "lo({i}) > {v}");
        prop_assert!(v <= bucket_hi(i), "{v} > hi({i})");
    }

    /// Quantiles stay within the observed [min, max] and are monotone in
    /// the requested rank.
    #[test]
    fn quantiles_are_bounded_and_monotone(
        values in prop::collection::vec(0u64..u64::MAX, 1..60),
    ) {
        let h = hist_of(&values);
        let (min, max) = (h.min().unwrap(), h.max().unwrap());
        let p50 = h.p50().unwrap();
        let p90 = h.p90().unwrap();
        prop_assert!(min <= p50 && p50 <= max);
        prop_assert!(p50 <= p90 && p90 <= max);
    }

    /// Registry merge in index order is invariant under the chunking: the
    /// same per-sample registries merged as 1, 2, or 8 "workers" agree.
    #[test]
    fn registry_merge_is_chunking_invariant(
        samples in prop::collection::vec((0u64..1000, 0u64..1_000_000), 1..40),
    ) {
        let per_sample: Vec<MetricsRegistry> = samples
            .iter()
            .map(|&(count, value)| {
                let mut r = MetricsRegistry::new();
                r.incr("events", "worker", count);
                r.record("latency", "worker", value);
                r
            })
            .collect();
        let reference = MetricsRegistry::merged_in_index_order(per_sample.clone());
        for workers in [1usize, 2, 8] {
            let chunk = per_sample.len().div_ceil(workers);
            // Each "worker" pre-merges its contiguous chunk, then chunks
            // merge in chunk order — exactly run_indexed's shape.
            let chunked = per_sample
                .chunks(chunk)
                .map(|part| MetricsRegistry::merged_in_index_order(part.to_vec()));
            let merged = MetricsRegistry::merged_in_index_order(chunked);
            prop_assert_eq!(&merged, &reference, "workers={}", workers);
        }
    }

    /// A registry survives a JSON round-trip (the `--json` export path).
    #[test]
    fn registry_round_trips_through_json(
        counts in prop::collection::vec(0u64..1_000_000, 1..20),
    ) {
        let mut r = MetricsRegistry::new();
        for (i, &c) in counts.iter().enumerate() {
            r.incr("count", if i % 2 == 0 { "even" } else { "odd" }, c);
            r.record("value", "all", c);
        }
        r.set_gauge("last", "", counts.len() as i64);
        let json = serde_json::to_string(&r).expect("registry serializes");
        let back: MetricsRegistry = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(back, r);
    }
}
