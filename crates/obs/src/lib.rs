//! Deterministic observability for the fault study.
//!
//! Candea et al. argue that recovery machinery must be *measured* to be
//! kept cheap, and the paper's own end-to-end check hinges on *when*
//! recovery happens (transient conditions heal with simulated time). This
//! crate supplies the measuring instruments without giving up the
//! workspace's central invariant — every result is a pure function of the
//! seed:
//!
//! - [`MetricsRegistry`] — counters, gauges, and fixed-bucket
//!   [`Histogram`]s behind ordered string keys (`name{label}`).
//! - [`Span`] — intervals measured in **simulated** time (`SimTime`), so
//!   span lengths derive from the experiment seed, never the wall clock.
//! - [`Metrics`] — the optional sink an `Environment` carries; disabled it
//!   is one null check per record, enabled it forwards to a boxed
//!   registry.
//!
//! # Merge discipline
//!
//! Parallel executors (`faultstudy-exec::run_indexed`) give each worker a
//! private registry and merge the per-sample registries **in index order**
//! via [`MetricsRegistry::merged_in_index_order`] — the same discipline the
//! campaign uses for its samples. Counter addition and histogram merging
//! are associative and commutative (the property tests prove it), so the
//! merged registry is byte-identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod registry;
pub mod span;

pub use histogram::{bucket_hi, bucket_index, bucket_lo, Histogram, BUCKETS};
pub use registry::{Metrics, MetricsRegistry};
pub use span::Span;
