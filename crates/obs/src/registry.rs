//! The metric registry and its deterministic merge discipline.

use crate::histogram::Histogram;
use crate::span::Span;
use faultstudy_sim::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Composes the registry key for a metric `name` and `label`.
///
/// Labels distinguish instances of one metric (per-strategy, per-stage);
/// the composed form is `name{label}`, or just `name` when unlabeled.
fn key(name: &str, label: &str) -> String {
    let mut k = String::new();
    compose_key(&mut k, name, label);
    k
}

/// Writes the composed key into `out` (cleared first), so hot paths can
/// reuse one scratch buffer instead of allocating per record.
fn compose_key(out: &mut String, name: &str, label: &str) {
    out.clear();
    out.push_str(name);
    if !label.is_empty() {
        out.push('{');
        out.push_str(label);
        out.push('}');
    }
}

/// A registry of counters, gauges, and fixed-bucket histograms.
///
/// All keys are ordered (`BTreeMap`) and all values merge exactly, so a
/// registry is a pure function of the samples recorded into it: per-sample
/// registries produced by `faultstudy-exec::run_indexed` workers, merged
/// in index order, are byte-identical at any thread count.
///
/// # Example
///
/// ```
/// use faultstudy_obs::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.incr("requests", "restart", 2);
/// reg.record("retries", "restart", 3);
/// assert_eq!(reg.counter("requests", "restart"), 2);
/// assert_eq!(reg.histogram("retries", "restart").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `by` to the counter `name{label}`.
    pub fn incr(&mut self, name: &'static str, label: &str, by: u64) {
        self.incr_key(&key(name, label), by);
    }

    fn incr_key(&mut self, k: &str, by: u64) {
        match self.counters.get_mut(k) {
            Some(v) => *v += by,
            None => {
                self.counters.insert(k.to_owned(), by);
            }
        }
    }

    /// Sets the gauge `name{label}` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &'static str, label: &str, value: i64) {
        self.set_gauge_key(&key(name, label), value);
    }

    fn set_gauge_key(&mut self, k: &str, value: i64) {
        match self.gauges.get_mut(k) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(k.to_owned(), value);
            }
        }
    }

    /// Records `value` into the histogram `name{label}`.
    pub fn record(&mut self, name: &'static str, label: &str, value: u64) {
        self.record_key(&key(name, label), value);
    }

    fn record_key(&mut self, k: &str, value: u64) {
        match self.histograms.get_mut(k) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::new();
                h.record(value);
                self.histograms.insert(k.to_owned(), h);
            }
        }
    }

    /// Records a simulated duration (in nanoseconds) into `name{label}`.
    pub fn record_duration(&mut self, name: &'static str, label: &str, d: Duration) {
        self.record(name, label, d.as_nanos());
    }

    /// Closes `span` at `now` and records its simulated length into
    /// `name{label}`.
    pub fn record_span(&mut self, name: &'static str, label: &str, span: Span, now: SimTime) {
        self.record_duration(name, label, span.elapsed(now));
    }

    /// Merges a whole histogram into `name{label}` (used to re-key a
    /// distribution under an aggregate label, e.g. per-class). Takes the
    /// histogram by value so a fresh key adopts it without copying.
    pub fn merge_histogram(&mut self, name: &'static str, label: &str, hist: Histogram) {
        if hist.count() == 0 {
            return;
        }
        let k = key(name, label);
        match self.histograms.get_mut(k.as_str()) {
            Some(mine) => mine.merge_from(&hist),
            None => {
                self.histograms.insert(k, hist);
            }
        }
    }

    /// Current value of the counter `name{label}` (zero if never touched).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters.get(key(name, label).as_str()).copied().unwrap_or(0)
    }

    /// Current value of the gauge `name{label}`.
    pub fn gauge(&self, name: &str, label: &str) -> Option<i64> {
        self.gauges.get(key(name, label).as_str()).copied()
    }

    /// The histogram `name{label}`, if anything was recorded into it.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&Histogram> {
        self.histograms.get(key(name, label).as_str())
    }

    /// All counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds every metric of `other` into `self`: counters add, gauges
    /// take `other`'s value (last write wins), histograms merge bucket-wise.
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        // Keys are cloned only when first seen; repeated merges of the same
        // metric shape (the per-sample campaign case) allocate nothing.
        for (k, &v) in &other.counters {
            self.incr_key(k, v);
        }
        for (k, &v) in &other.gauges {
            self.set_gauge_key(k, v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k.as_str()) {
                Some(mine) => mine.merge_from(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Merges per-worker registries **in index order** into one.
    ///
    /// This is the one sanctioned way to aggregate registries produced by
    /// `run_indexed` workers: the iterator order is the index order, so the
    /// merged registry is identical for every thread count (and, because
    /// counter addition and histogram merging are commutative, identical
    /// to any other order as well — the discipline makes that a theorem
    /// rather than an assumption).
    pub fn merged_in_index_order(parts: impl IntoIterator<Item = MetricsRegistry>) -> Self {
        let mut merged = MetricsRegistry::new();
        for part in parts {
            merged.merge_from(&part);
        }
        merged
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "(empty registry)");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (k, v) in &self.counters {
                writeln!(f, "  {k:<44} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges:")?;
            for (k, v) in &self.gauges {
                writeln!(f, "  {k:<44} {v}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "histograms:")?;
            for (k, h) in &self.histograms {
                writeln!(f, "  {k:<44} {h}")?;
            }
        }
        Ok(())
    }
}

/// The optional recording slot carried by an `Environment`.
///
/// Disabled by default: the uninstrumented hot path pays one pointer-null
/// check per would-be record and allocates nothing. When enabled, calls
/// forward to the boxed [`MetricsRegistry`] through a reusable scratch
/// buffer, so recording into an existing metric allocates nothing either.
#[derive(Debug, Clone, Default)]
pub struct Metrics(Option<Box<Sink>>);

/// The enabled sink: the registry plus a scratch buffer for key
/// composition, so the per-record hot path stays allocation-free.
#[derive(Debug, Clone, Default)]
struct Sink {
    registry: MetricsRegistry,
    scratch: String,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Metrics) -> bool {
        // The scratch buffer is transient working storage, not state.
        self.registry() == other.registry()
    }
}

impl Metrics {
    /// A disabled sink: every record is a no-op.
    pub fn disabled() -> Metrics {
        Metrics(None)
    }

    /// An enabled sink backed by a fresh registry.
    pub fn enabled() -> Metrics {
        Metrics(Some(Box::default()))
    }

    /// Whether records are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `by` to a counter, if enabled.
    pub fn incr(&mut self, name: &'static str, label: &str, by: u64) {
        if let Some(sink) = &mut self.0 {
            let Sink { registry, scratch } = &mut **sink;
            compose_key(scratch, name, label);
            registry.incr_key(scratch, by);
        }
    }

    /// Sets a gauge, if enabled.
    pub fn set_gauge(&mut self, name: &'static str, label: &str, value: i64) {
        if let Some(sink) = &mut self.0 {
            let Sink { registry, scratch } = &mut **sink;
            compose_key(scratch, name, label);
            registry.set_gauge_key(scratch, value);
        }
    }

    /// Records a histogram sample, if enabled.
    pub fn record(&mut self, name: &'static str, label: &str, value: u64) {
        if let Some(sink) = &mut self.0 {
            let Sink { registry, scratch } = &mut **sink;
            compose_key(scratch, name, label);
            registry.record_key(scratch, value);
        }
    }

    /// Records a simulated duration, if enabled.
    pub fn record_duration(&mut self, name: &'static str, label: &str, d: Duration) {
        self.record(name, label, d.as_nanos());
    }

    /// Closes a span at `now` into a histogram, if enabled.
    pub fn record_span(&mut self, name: &'static str, label: &str, span: Span, now: SimTime) {
        self.record(name, label, span.elapsed(now).as_nanos());
    }

    /// The backing registry, if enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.0.as_deref().map(|sink| &sink.registry)
    }

    /// Takes the backing registry out, leaving the sink disabled.
    pub fn take(&mut self) -> Option<MetricsRegistry> {
        self.0.take().map(|sink| sink.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.incr("a", "", 1);
        r.incr("a", "", 2);
        r.incr("a", "x", 5);
        assert_eq!(r.counter("a", ""), 3);
        assert_eq!(r.counter("a", "x"), 5);
        assert_eq!(r.counter("missing", ""), 0);
    }

    #[test]
    fn gauges_last_write_wins_across_merge() {
        let mut a = MetricsRegistry::new();
        a.set_gauge("g", "", 1);
        let mut b = MetricsRegistry::new();
        b.set_gauge("g", "", 7);
        a.merge_from(&b);
        assert_eq!(a.gauge("g", ""), Some(7));
    }

    #[test]
    fn spans_record_simulated_durations() {
        let mut r = MetricsRegistry::new();
        let span = Span::begin(SimTime::from_millis(100));
        r.record_span("ttr", "restart", span, SimTime::from_millis(1100));
        let h = r.histogram("ttr", "restart").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), Some(Duration::from_secs(1).as_nanos()));
    }

    #[test]
    fn merged_in_index_order_equals_single_registry() {
        let mut whole = MetricsRegistry::new();
        let mut parts = Vec::new();
        for i in 0..10u64 {
            let mut part = MetricsRegistry::new();
            whole.incr("n", "", i);
            part.incr("n", "", i);
            whole.record("h", "lbl", i * i);
            part.record("h", "lbl", i * i);
            parts.push(part);
        }
        assert_eq!(MetricsRegistry::merged_in_index_order(parts), whole);
    }

    #[test]
    fn empty_registry_renders_as_empty() {
        assert_eq!(MetricsRegistry::new().to_string(), "(empty registry)\n");
    }

    #[test]
    fn display_lists_sections_in_key_order() {
        let mut r = MetricsRegistry::new();
        r.incr("zeta", "", 1);
        r.incr("alpha", "", 1);
        r.set_gauge("rate", "stage", 42);
        r.record("lat", "s", 3);
        let text = r.to_string();
        let alpha = text.find("alpha").unwrap();
        let zeta = text.find("zeta").unwrap();
        assert!(alpha < zeta, "counters sorted by key");
        assert!(text.contains("rate{stage}"));
        assert!(text.contains("lat{s}"));
        assert!(text.contains("n=1"));
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut m = Metrics::disabled();
        m.incr("a", "", 1);
        m.record("h", "", 9);
        assert!(!m.is_enabled());
        assert_eq!(m.take(), None);

        let mut m = Metrics::enabled();
        m.incr("a", "", 1);
        let reg = m.take().unwrap();
        assert_eq!(reg.counter("a", ""), 1);
        assert!(!m.is_enabled(), "take() disables the sink");
    }
}
