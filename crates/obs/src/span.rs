//! Spans measured in simulated time.
//!
//! A [`Span`] brackets an interval of *simulated* time (`SimTime`), never
//! the wall clock: its length is a pure function of the experiment seed,
//! so recording spans cannot introduce nondeterminism, and an instrumented
//! run reports the same durations on any machine at any thread count.

use faultstudy_sim::time::{Duration, SimTime};

/// An open interval of simulated time.
///
/// # Example
///
/// ```
/// use faultstudy_obs::Span;
/// use faultstudy_sim::time::{Duration, SimTime};
///
/// let span = Span::begin(SimTime::from_millis(10));
/// let end = SimTime::from_millis(25);
/// assert_eq!(span.elapsed(end), Duration::from_millis(15));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    start: SimTime,
}

impl Span {
    /// Opens a span at `now`.
    pub fn begin(now: SimTime) -> Span {
        Span { start: now }
    }

    /// The instant the span was opened.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Simulated time elapsed from the span's start to `now`, saturating
    /// to zero if `now` is earlier.
    pub fn elapsed(&self, now: SimTime) -> Duration {
        now.saturating_since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_saturates_backwards() {
        let span = Span::begin(SimTime::from_secs(5));
        assert_eq!(span.elapsed(SimTime::from_secs(2)), Duration::ZERO);
        assert_eq!(span.start(), SimTime::from_secs(5));
    }
}
