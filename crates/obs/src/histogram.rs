//! A fixed-bucket histogram whose merge is exact and order-independent.
//!
//! Buckets are the base-2 orders of magnitude of a `u64`: bucket 0 holds
//! the value `0` and bucket `i` (1 ≤ i ≤ 64) holds `2^(i-1) ..= 2^i - 1`.
//! The boundaries are compile-time constants, so two histograms built on
//! different threads, machines, or runs always share the same shape and
//! their merge is a plain element-wise sum — associative, commutative, and
//! byte-identical no matter how samples were partitioned.
//!
//! Quantiles are approximated from the bucket counts (clamped to the exact
//! observed `min`/`max`), using only integer arithmetic so a quantile is a
//! pure function of the recorded multiset.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of fixed buckets: one for zero plus one per base-2 order.
pub const BUCKETS: usize = 65;

/// Bucket index of `value`: 0 for zero, else `65 - leading_zeros`.
pub const fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Smallest value the bucket holds.
pub const fn bucket_lo(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// Largest value the bucket holds.
pub const fn bucket_hi(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// A mergeable fixed-bucket histogram of `u64` samples.
///
/// # Example
///
/// ```
/// use faultstudy_obs::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), Some(100));
/// assert!(h.p50().unwrap() <= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Non-empty buckets only, as `(bucket index, count)` pairs sorted by
    /// index. Distributions here are narrow (a handful of base-2 orders),
    /// so the sparse form keeps an empty histogram allocation-free and a
    /// typical one a few pairs — the representation is still canonical
    /// (no zero-count pairs, sorted), so derived equality is exact.
    buckets: Vec<(u8, u64)>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { buckets: Vec::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value) as u8;
        match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
            Ok(pos) => self.buckets[pos].1 += 1,
            Err(pos) => self.buckets.insert(pos, (idx, 1)),
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean of the recorded samples, `None` when empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// The `num/den` quantile (e.g. `1/2` for the median), approximated as
    /// the upper bound of the bucket holding the sample of that rank and
    /// clamped to the exact observed `[min, max]`. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    pub fn quantile(&self, num: u64, den: u64) -> Option<u64> {
        assert!(den > 0 && num <= den, "quantile must be in [0, 1]");
        if self.count == 0 {
            return None;
        }
        if num == 0 {
            // q0 is the observed minimum exactly. Falling through would
            // clamp the rank to 1 and report the first bucket's *upper*
            // bound, overstating the minimum by up to 2x.
            return Some(self.min);
        }
        // Rank of the requested sample, 1-based: ceil(count * num / den),
        // at least 1. Pure integer arithmetic keeps this deterministic.
        let rank = ((self.count as u128 * num as u128).div_ceil(den as u128) as u64).max(1);
        let mut cumulative = 0u64;
        for &(i, c) in &self.buckets {
            cumulative += c;
            if cumulative >= rank {
                return Some(bucket_hi(i as usize).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median approximation.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(1, 2)
    }

    /// 90th-percentile approximation.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(9, 10)
    }

    /// 99th-percentile approximation.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(99, 100)
    }

    /// 99.9th-percentile approximation: the traffic engine's tail-latency
    /// SLO quantile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(999, 1000)
    }

    /// Non-empty buckets in index order, as `(bucket index, count)` pairs
    /// with indices per [`bucket_index`].
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().map(|&(i, c)| (i as usize, c))
    }

    /// Adds every sample of `other` into `self`. Element-wise over the
    /// shared fixed buckets, so merging is associative and commutative.
    pub fn merge_from(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for &(idx, c) in &other.buckets {
            match self.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                Ok(pos) => self.buckets[pos].1 += c,
                Err(pos) => self.buckets.insert(pos, (idx, c)),
            }
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return f.write_str("n=0");
        }
        write!(
            f,
            "n={} p50={} p90={} max={}",
            self.count,
            self.p50().expect("nonempty"),
            self.p90().expect("nonempty"),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..BUCKETS {
            assert_eq!(bucket_index(bucket_lo(i)), i, "lo of bucket {i}");
            assert_eq!(bucket_index(bucket_hi(i)), i, "hi of bucket {i}");
        }
        assert_eq!(bucket_lo(0), 0);
        assert_eq!(bucket_hi(0), 0);
        assert_eq!(bucket_hi(64), u64::MAX);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p90(), None);
        assert_eq!(h.to_string(), "n=0");
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(5);
        // Bucket [4, 7] clamps to the observed min/max of 5.
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.p90(), Some(5));
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.mean(), Some(5));
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = Histogram::new();
        for _ in 0..9 {
            h.record(1);
        }
        h.record(1000);
        assert_eq!(h.p50(), Some(1));
        assert_eq!(h.p90(), Some(1), "rank 9 of 10 is still a 1");
        assert_eq!(h.quantile(95, 100), Some(1000), "rank 10 reaches the outlier");
        assert_eq!(h.quantile(0, 1), Some(1), "q0 is the first sample's bucket");
        assert_eq!(h.quantile(1, 1), Some(1000));
    }

    #[test]
    fn q0_reports_the_observed_min_exactly() {
        // 5 and 6 share bucket [4, 7]. The old rank-clamping path returned
        // the bucket's upper bound clamped to [min, max] — 6, overstating
        // the minimum. q0 must be the exact observed min.
        let mut h = Histogram::new();
        h.record(5);
        h.record(6);
        assert_eq!(h.quantile(0, 4), Some(5));
        assert_eq!(h.quantile(0, 1), Some(5));
        assert_eq!(h.min(), h.quantile(0, 1));
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let values = [0u64, 1, 3, 9, 81, 6561, u64::MAX];
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { &mut left } else { &mut right }.record(v);
        }
        let mut merged = left.clone();
        merged.merge_from(&right);
        assert_eq!(merged, whole);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn quantile_rejects_improper_fractions() {
        let _ = Histogram::new().quantile(3, 2);
    }
}
