//! Randomized fault-injection campaigns.
//!
//! A [`RecoveryMatrix`](crate::RecoveryMatrix) answers "what happens at one
//! seed"; a campaign samples many `(fault, strategy, seed)` triples and
//! checks that the thesis holds in distribution — the fixed-seed analogue
//! of re-running the paper's study on other archives. Transient faults are
//! the only stochastic cell (races depend on the drawn interleavings), so
//! the campaign reports their survival rate with its spread.

use crate::experiment::{
    build_workload, run_fault_experiment, run_fault_experiment_instrumented,
    run_prepared_experiment, run_prepared_experiment_instrumented, LeanOutcome, StrategyKind,
};
use faultstudy_apps::Request;
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_corpus::{full_corpus, CuratedFault};
use faultstudy_exec::{run_chunk_fold, run_indexed, ParallelSpec};
use faultstudy_obs::MetricsRegistry;
use faultstudy_sim::rng::{split_seed, DetRng, SplitSeedStream, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One (class, strategy) cell of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Fault class of the sampled faults.
    pub class: FaultClass,
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Samples that survived.
    pub survived: u32,
    /// Samples drawn.
    pub total: u32,
}

/// Configuration of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Number of `(fault, strategy, seed)` samples to draw.
    pub samples: u32,
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec { samples: 500, seed: 1 }
    }
}

/// Aggregate of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The spec that produced this report.
    pub spec: CampaignSpec,
    /// Per (class, strategy) sample counts, in `(class, strategy)` order.
    pub cells: Vec<CampaignCell>,
    /// Violations of the deterministic guarantees (environment-independent
    /// or generic-vs-nontransient survivals); must be empty.
    pub anomalies: Vec<String>,
}

/// The outcome of one campaign sample, before aggregation.
struct Sample {
    class: FaultClass,
    strategy: StrategyKind,
    survived: bool,
    recoveries: u32,
    anomaly: Option<String>,
    /// `Some` only for instrumented samples that recorded anything — most
    /// samples never recover and produce an empty registry, which the
    /// aggregation can skip outright.
    metrics: Option<MetricsRegistry>,
}

/// Draws the `(fault, strategy, env_seed)` triple of sample `index`.
///
/// Shared by the plain and instrumented campaign paths so the draw — and
/// therefore every downstream result — is identical between them.
fn draw(
    spec: CampaignSpec,
    corpus: &[CuratedFault],
    index: usize,
) -> (&CuratedFault, StrategyKind, u64) {
    let mut rng = Xoshiro256StarStar::seed_from(split_seed(spec.seed, index as u64));
    let fault = &corpus[rng.below(corpus.len() as u64) as usize];
    let strategy = StrategyKind::ALL[rng.below(StrategyKind::ALL.len() as u64) as usize];
    (fault, strategy, rng.next_u64())
}

/// Number of `(class, strategy)` cells a campaign can populate.
const CELL_COUNT: usize = FaultClass::ALL.len() * StrategyKind::ALL.len();

/// Constant-size partial aggregate of one campaign index-partition: the
/// streaming fold's accumulator. A whole campaign needs O(workers) of
/// these instead of O(samples) materialized outcomes, which is what lets
/// sample counts reach the tens of millions.
struct CampaignAcc {
    /// `(survived, total)` per `(class, strategy)` cell, flat in the order
    /// the `ALL` arrays declare. That order equals the derived `Ord`
    /// order of both enums, so emitting non-empty cells in flat order
    /// reproduces the materialized `BTreeMap` aggregation byte for byte.
    counts: [(u32, u32); CELL_COUNT],
    /// Guarantee violations, in sample-index order.
    anomalies: Vec<String>,
    /// Merged metrics, folded per sample in index order.
    registry: MetricsRegistry,
}

impl CampaignAcc {
    fn new() -> CampaignAcc {
        CampaignAcc {
            counts: [(0, 0); CELL_COUNT],
            anomalies: Vec::new(),
            registry: MetricsRegistry::new(),
        }
    }

    fn cell(class: FaultClass, strategy: StrategyKind) -> usize {
        class as usize * StrategyKind::ALL.len() + strategy as usize
    }

    /// Folds one sample's outcome in. Mirrors `aggregate`'s per-sample
    /// body exactly — same counter order, same anomaly text — except the
    /// anomaly borrows the slug from the corpus instead of owning it.
    fn record(
        &mut self,
        slug: &str,
        strategy: StrategyKind,
        env_seed: u64,
        out: LeanOutcome,
        instrumented: bool,
    ) {
        let cell = &mut self.counts[Self::cell(out.class, strategy)];
        cell.1 += 1;
        cell.0 += u32::from(out.survived);
        let violates = out.survived
            && (out.class == FaultClass::EnvironmentIndependent
                || (out.class == FaultClass::EnvDependentNonTransient && strategy.is_generic()));
        if violates {
            self.anomalies.push(format!("{slug} survived {} at seed {env_seed}", strategy.name()));
        }
        if instrumented {
            self.registry.incr("experiment.total", strategy.name(), 1);
            if out.survived {
                self.registry.incr("experiment.survived", strategy.name(), 1);
            }
            if out.recoveries > 0 {
                self.registry.incr("recovery.actions", strategy.name(), u64::from(out.recoveries));
            }
        }
    }

    /// Merges a later index-partition into this one. Because every fold
    /// ingredient is append (anomalies) or accumulate (counts, registry),
    /// merging partials in index order is identical to having folded the
    /// later partition's samples directly — the law the differential
    /// tests in `tests/parallel_determinism.rs` pin down.
    fn merge(&mut self, later: CampaignAcc) {
        for (a, b) in self.counts.iter_mut().zip(later.counts) {
            a.0 += b.0;
            a.1 += b.1;
        }
        self.anomalies.extend(later.anomalies);
        self.registry.merge_from(&later.registry);
    }

    fn into_report(self, spec: CampaignSpec) -> (CampaignReport, MetricsRegistry) {
        let cells = FaultClass::ALL
            .iter()
            .flat_map(|&class| StrategyKind::ALL.iter().map(move |&strategy| (class, strategy)))
            .map(|(class, strategy)| (class, strategy, self.counts[Self::cell(class, strategy)]))
            .filter(|&(_, _, (_, total))| total > 0)
            .map(|(class, strategy, (survived, total))| CampaignCell {
                class,
                strategy,
                survived,
                total,
            })
            .collect();
        (CampaignReport { spec, cells, anomalies: self.anomalies }, self.registry)
    }
}

fn aggregate(
    spec: CampaignSpec,
    samples: Vec<Sample>,
    instrumented: bool,
) -> (CampaignReport, MetricsRegistry) {
    let mut cells: BTreeMap<(FaultClass, StrategyKind), (u32, u32)> = BTreeMap::new();
    let mut anomalies = Vec::new();
    // Per-sample registries merge in index order, so the merged registry is
    // the same for every thread count.
    let mut registry = MetricsRegistry::new();
    for sample in samples {
        let cell = cells.entry((sample.class, sample.strategy)).or_insert((0, 0));
        cell.1 += 1;
        cell.0 += u32::from(sample.survived);
        anomalies.extend(sample.anomaly);
        if let Some(reg) = &sample.metrics {
            registry.merge_from(reg);
        }
        if instrumented {
            // Counters derivable from the outcome live with the
            // aggregation, not the sample: one upsert here is cheaper than
            // a fresh key in every per-sample registry plus a merge.
            registry.incr("experiment.total", sample.strategy.name(), 1);
            if sample.survived {
                registry.incr("experiment.survived", sample.strategy.name(), 1);
            }
            if sample.recoveries > 0 {
                registry.incr(
                    "recovery.actions",
                    sample.strategy.name(),
                    u64::from(sample.recoveries),
                );
            }
        }
    }
    let cells = cells
        .into_iter()
        .map(|((class, strategy), (survived, total))| CampaignCell {
            class,
            strategy,
            survived,
            total,
        })
        .collect();
    (CampaignReport { spec, cells, anomalies }, registry)
}

impl CampaignReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: CampaignSpec) -> CampaignReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    ///
    /// Each sample's RNG is seeded from `split_seed(spec.seed, index)`, so
    /// sample `index` draws the same `(fault, strategy, env_seed)` triple no
    /// matter which worker executes it; aggregation folds the outcomes in
    /// index order. The report is therefore byte-identical for every thread
    /// count.
    pub fn run_with(spec: CampaignSpec, parallel: ParallelSpec) -> CampaignReport {
        Self::run_streamed(spec, parallel, false).0
    }

    /// Runs the campaign with per-sample metrics enabled, returning the
    /// merged registry alongside the (unchanged) report.
    ///
    /// The registry aggregates the supervisor's time-to-recovery and retry
    /// histograms per strategy and per `(class, strategy)` cell. It is as
    /// deterministic as the report itself: per-sample registries merge in
    /// index order, so the result is byte-identical at any thread count.
    pub fn run_instrumented(
        spec: CampaignSpec,
        parallel: ParallelSpec,
    ) -> (CampaignReport, MetricsRegistry) {
        Self::run_streamed(spec, parallel, true)
    }

    /// The streaming campaign engine behind [`run_with`](Self::run_with)
    /// and [`run_instrumented`](Self::run_instrumented).
    ///
    /// Every fault's workload is prepared once up front; each worker then
    /// folds its index-partition into a constant-size [`CampaignAcc`]
    /// (per-chunk sample seeds derived in batch), and partials merge in
    /// index order. Memory is O(workers), not O(samples).
    fn run_streamed(
        spec: CampaignSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (CampaignReport, MetricsRegistry) {
        let corpus = full_corpus();
        let workloads: Vec<Vec<Request>> = corpus.iter().map(build_workload).collect();
        let acc = run_chunk_fold(
            spec.samples as usize,
            parallel,
            CampaignAcc::new,
            |range, acc: &mut CampaignAcc| {
                let mut seeds = SplitSeedStream::new(spec.seed, range.start as u64);
                for _ in range {
                    let mut rng = Xoshiro256StarStar::seed_from(seeds.next_seed());
                    let fi = rng.below(corpus.len() as u64) as usize;
                    let strategy =
                        StrategyKind::ALL[rng.below(StrategyKind::ALL.len() as u64) as usize];
                    let env_seed = rng.next_u64();
                    let fault = &corpus[fi];
                    let out = if instrumented {
                        let (out, reg) = run_prepared_experiment_instrumented(
                            fault,
                            strategy,
                            env_seed,
                            &workloads[fi],
                        );
                        if !reg.is_empty() {
                            acc.registry.merge_from(&reg);
                        }
                        out
                    } else {
                        run_prepared_experiment(fault, strategy, env_seed, &workloads[fi])
                    };
                    acc.record(fault.slug(), strategy, env_seed, out, instrumented);
                }
            },
            |acc, later| acc.merge(later),
        );
        acc.into_report(spec)
    }

    /// The materialized reference engine: collects every sample outcome
    /// into a vector, then aggregates — O(samples) memory.
    ///
    /// This is the original campaign implementation, kept as the oracle
    /// the streaming fold is differentially tested against (and as the
    /// byte-identity precondition the parallel bench asserts before
    /// timing). Use [`run_with`](Self::run_with) for real campaigns.
    pub fn run_materialized(
        spec: CampaignSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (CampaignReport, MetricsRegistry) {
        let corpus = full_corpus();
        let samples = run_indexed(spec.samples as usize, parallel, |index| {
            let (fault, strategy, env_seed) = draw(spec, &corpus, index);
            let (out, metrics) = if instrumented {
                let (out, reg) = run_fault_experiment_instrumented(fault, strategy, env_seed);
                (out, (!reg.is_empty()).then_some(reg))
            } else {
                (run_fault_experiment(fault, strategy, env_seed), None)
            };
            // The deterministic guarantees of the taxonomy.
            let violates = out.survived
                && (out.class == FaultClass::EnvironmentIndependent
                    || (out.class == FaultClass::EnvDependentNonTransient
                        && strategy.is_generic()));
            Sample {
                class: out.class,
                strategy,
                survived: out.survived,
                recoveries: out.recoveries,
                anomaly: violates.then(|| {
                    format!("{} survived {} at seed {env_seed}", out.slug, strategy.name())
                }),
                metrics,
            }
        });
        aggregate(spec, samples, instrumented)
    }

    /// Survival rate of transient faults under `strategy` over the
    /// sampled seeds, with the sample count: `(rate, n)`.
    pub fn transient_rate(&self, strategy: StrategyKind) -> (f64, u32) {
        match self
            .cells
            .iter()
            .find(|c| c.class == FaultClass::EnvDependentTransient && c.strategy == strategy)
        {
            Some(c) if c.total > 0 => (f64::from(c.survived) / f64::from(c.total), c.total),
            _ => (0.0, 0),
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Campaign: {} samples from master seed {}", self.spec.samples, self.spec.seed)?;
        for cell in &self.cells {
            writeln!(
                f,
                "  {:<36} {:<14} {}/{}",
                cell.class.label(),
                cell.strategy.name(),
                cell.survived,
                cell.total
            )?;
        }
        if self.anomalies.is_empty() {
            writeln!(f, "  no anomalies: the deterministic guarantees held on every sample")
        } else {
            writeln!(f, "  ANOMALIES: {:?}", self.anomalies)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_upholds_the_deterministic_guarantees() {
        let report = CampaignReport::run(CampaignSpec { samples: 300, seed: 42 });
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        // Every cell's survived <= total.
        for cell in &report.cells {
            assert!(cell.survived <= cell.total, "{} {}", cell.class, cell.strategy);
        }
        let total: u32 = report.cells.iter().map(|c| c.total).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn transient_survival_is_high_under_retry_strategies() {
        let report = CampaignReport::run(CampaignSpec { samples: 600, seed: 9 });
        for strategy in [StrategyKind::Restart, StrategyKind::Progressive] {
            let (rate, n) = report.transient_rate(strategy);
            assert!(n > 0, "{strategy}: no transient samples drawn");
            assert!(rate >= 0.8, "{strategy}: transient rate {rate:.2} over {n}");
        }
        let (none_rate, _) = report.transient_rate(StrategyKind::None);
        assert_eq!(none_rate, 0.0, "no recovery, no survival");
    }

    #[test]
    fn campaigns_are_reproducible() {
        let spec = CampaignSpec { samples: 50, seed: 7 };
        assert_eq!(CampaignReport::run(spec), CampaignReport::run(spec));
    }

    #[test]
    fn instrumented_campaign_reproduces_the_plain_report() {
        let spec = CampaignSpec { samples: 60, seed: 11 };
        let plain = CampaignReport::run(spec);
        let (report, registry) = CampaignReport::run_instrumented(spec, ParallelSpec::default());
        assert_eq!(report, plain, "metrics must not perturb the campaign");
        let total: u64 =
            StrategyKind::ALL.iter().map(|s| registry.counter("experiment.total", s.name())).sum();
        assert_eq!(total, 60, "every sample counted exactly once");
        // Some sampled strategy recovered a transient fault, so at least
        // one TTR distribution is populated.
        assert!(registry.histograms().any(|(k, _)| k.starts_with("recovery.ttr")));
    }

    #[test]
    fn instrumented_registry_is_identical_across_thread_counts() {
        let spec = CampaignSpec { samples: 40, seed: 5 };
        let (ref_report, ref_registry) =
            CampaignReport::run_instrumented(spec, ParallelSpec::threads(1));
        for threads in [2usize, 8] {
            let (report, registry) =
                CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, ref_report, "{threads} threads");
            assert_eq!(registry, ref_registry, "{threads} threads");
        }
    }

    #[test]
    fn flat_cell_order_reproduces_btreemap_order() {
        // The streaming accumulator indexes cells by enum discriminant and
        // emits them in flat order; that only matches the materialized
        // BTreeMap aggregation if each ALL array lists its variants in
        // declaration (= derived Ord) order.
        for (i, &class) in FaultClass::ALL.iter().enumerate() {
            assert_eq!(class as usize, i, "{class:?}");
        }
        for (i, &strategy) in StrategyKind::ALL.iter().enumerate() {
            assert_eq!(strategy as usize, i, "{strategy:?}");
        }
    }

    #[test]
    fn streaming_fold_matches_the_materialized_reference() {
        let spec = CampaignSpec { samples: 120, seed: 13 };
        let (mat_report, mat_registry) =
            CampaignReport::run_materialized(spec, ParallelSpec::SEQUENTIAL, true);
        for threads in [1usize, 2, 4] {
            let (report, registry) =
                CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, mat_report, "{threads} threads");
            assert_eq!(registry, mat_registry, "{threads} threads");
        }
    }

    #[test]
    fn display_summarizes() {
        let report = CampaignReport::run(CampaignSpec { samples: 30, seed: 3 });
        let text = report.to_string();
        assert!(text.contains("30 samples"));
        assert!(text.contains("no anomalies"));
    }
}
