//! Randomized fault-injection campaigns.
//!
//! A [`RecoveryMatrix`](crate::RecoveryMatrix) answers "what happens at one
//! seed"; a campaign samples many `(fault, strategy, seed)` triples and
//! checks that the thesis holds in distribution — the fixed-seed analogue
//! of re-running the paper's study on other archives. Transient faults are
//! the only stochastic cell (races depend on the drawn interleavings), so
//! the campaign reports their survival rate with its spread.

use crate::experiment::{run_fault_experiment, StrategyKind};
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_corpus::full_corpus;
use faultstudy_exec::{run_indexed, ParallelSpec};
use faultstudy_sim::rng::{split_seed, DetRng, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One (class, strategy) cell of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Fault class of the sampled faults.
    pub class: FaultClass,
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Samples that survived.
    pub survived: u32,
    /// Samples drawn.
    pub total: u32,
}

/// Configuration of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Number of `(fault, strategy, seed)` samples to draw.
    pub samples: u32,
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec { samples: 500, seed: 1 }
    }
}

/// Aggregate of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The spec that produced this report.
    pub spec: CampaignSpec,
    /// Per (class, strategy) sample counts, in `(class, strategy)` order.
    pub cells: Vec<CampaignCell>,
    /// Violations of the deterministic guarantees (environment-independent
    /// or generic-vs-nontransient survivals); must be empty.
    pub anomalies: Vec<String>,
}

/// The outcome of one campaign sample, before aggregation.
struct Sample {
    class: FaultClass,
    strategy: StrategyKind,
    survived: bool,
    anomaly: Option<String>,
}

impl CampaignReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: CampaignSpec) -> CampaignReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    ///
    /// Each sample's RNG is seeded from `split_seed(spec.seed, index)`, so
    /// sample `index` draws the same `(fault, strategy, env_seed)` triple no
    /// matter which worker executes it; aggregation folds the outcomes in
    /// index order. The report is therefore byte-identical for every thread
    /// count.
    pub fn run_with(spec: CampaignSpec, parallel: ParallelSpec) -> CampaignReport {
        let corpus = full_corpus();
        let samples = run_indexed(spec.samples as usize, parallel, |index| {
            let mut rng = Xoshiro256StarStar::seed_from(split_seed(spec.seed, index as u64));
            let fault = &corpus[rng.below(corpus.len() as u64) as usize];
            let strategy = StrategyKind::ALL[rng.below(StrategyKind::ALL.len() as u64) as usize];
            let env_seed = rng.next_u64();
            let out = run_fault_experiment(fault, strategy, env_seed);
            // The deterministic guarantees of the taxonomy.
            let violates = out.survived
                && (out.class == FaultClass::EnvironmentIndependent
                    || (out.class == FaultClass::EnvDependentNonTransient
                        && strategy.is_generic()));
            Sample {
                class: out.class,
                strategy,
                survived: out.survived,
                anomaly: violates.then(|| {
                    format!("{} survived {} at seed {env_seed}", out.slug, strategy.name())
                }),
            }
        });

        let mut cells: BTreeMap<(FaultClass, StrategyKind), (u32, u32)> = BTreeMap::new();
        let mut anomalies = Vec::new();
        for sample in samples {
            let cell = cells.entry((sample.class, sample.strategy)).or_insert((0, 0));
            cell.1 += 1;
            cell.0 += u32::from(sample.survived);
            anomalies.extend(sample.anomaly);
        }
        let cells = cells
            .into_iter()
            .map(|((class, strategy), (survived, total))| CampaignCell {
                class,
                strategy,
                survived,
                total,
            })
            .collect();
        CampaignReport { spec, cells, anomalies }
    }

    /// Survival rate of transient faults under `strategy` over the
    /// sampled seeds, with the sample count: `(rate, n)`.
    pub fn transient_rate(&self, strategy: StrategyKind) -> (f64, u32) {
        match self
            .cells
            .iter()
            .find(|c| c.class == FaultClass::EnvDependentTransient && c.strategy == strategy)
        {
            Some(c) if c.total > 0 => (f64::from(c.survived) / f64::from(c.total), c.total),
            _ => (0.0, 0),
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Campaign: {} samples from master seed {}", self.spec.samples, self.spec.seed)?;
        for cell in &self.cells {
            writeln!(
                f,
                "  {:<36} {:<14} {}/{}",
                cell.class.label(),
                cell.strategy.name(),
                cell.survived,
                cell.total
            )?;
        }
        if self.anomalies.is_empty() {
            writeln!(f, "  no anomalies: the deterministic guarantees held on every sample")
        } else {
            writeln!(f, "  ANOMALIES: {:?}", self.anomalies)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_upholds_the_deterministic_guarantees() {
        let report = CampaignReport::run(CampaignSpec { samples: 300, seed: 42 });
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        // Every cell's survived <= total.
        for cell in &report.cells {
            assert!(cell.survived <= cell.total, "{} {}", cell.class, cell.strategy);
        }
        let total: u32 = report.cells.iter().map(|c| c.total).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn transient_survival_is_high_under_retry_strategies() {
        let report = CampaignReport::run(CampaignSpec { samples: 600, seed: 9 });
        for strategy in [StrategyKind::Restart, StrategyKind::Progressive] {
            let (rate, n) = report.transient_rate(strategy);
            assert!(n > 0, "{strategy}: no transient samples drawn");
            assert!(rate >= 0.8, "{strategy}: transient rate {rate:.2} over {n}");
        }
        let (none_rate, _) = report.transient_rate(StrategyKind::None);
        assert_eq!(none_rate, 0.0, "no recovery, no survival");
    }

    #[test]
    fn campaigns_are_reproducible() {
        let spec = CampaignSpec { samples: 50, seed: 7 };
        assert_eq!(CampaignReport::run(spec), CampaignReport::run(spec));
    }

    #[test]
    fn display_summarizes() {
        let report = CampaignReport::run(CampaignSpec { samples: 30, seed: 3 });
        let text = report.to_string();
        assert!(text.contains("30 samples"));
        assert!(text.contains("no anomalies"));
    }
}
