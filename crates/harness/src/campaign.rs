//! Randomized fault-injection campaigns.
//!
//! A [`RecoveryMatrix`](crate::RecoveryMatrix) answers "what happens at one
//! seed"; a campaign samples many `(fault, strategy, seed)` triples and
//! checks that the thesis holds in distribution — the fixed-seed analogue
//! of re-running the paper's study on other archives. Transient faults are
//! the only stochastic cell (races depend on the drawn interleavings), so
//! the campaign reports their survival rate with its spread.

use crate::experiment::{run_fault_experiment, run_fault_experiment_instrumented, StrategyKind};
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_corpus::{full_corpus, CuratedFault};
use faultstudy_exec::{run_indexed, ParallelSpec};
use faultstudy_obs::MetricsRegistry;
use faultstudy_sim::rng::{split_seed, DetRng, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One (class, strategy) cell of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Fault class of the sampled faults.
    pub class: FaultClass,
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Samples that survived.
    pub survived: u32,
    /// Samples drawn.
    pub total: u32,
}

/// Configuration of a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Number of `(fault, strategy, seed)` samples to draw.
    pub samples: u32,
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec { samples: 500, seed: 1 }
    }
}

/// Aggregate of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The spec that produced this report.
    pub spec: CampaignSpec,
    /// Per (class, strategy) sample counts, in `(class, strategy)` order.
    pub cells: Vec<CampaignCell>,
    /// Violations of the deterministic guarantees (environment-independent
    /// or generic-vs-nontransient survivals); must be empty.
    pub anomalies: Vec<String>,
}

/// The outcome of one campaign sample, before aggregation.
struct Sample {
    class: FaultClass,
    strategy: StrategyKind,
    survived: bool,
    recoveries: u32,
    anomaly: Option<String>,
    /// `Some` only for instrumented samples that recorded anything — most
    /// samples never recover and produce an empty registry, which the
    /// aggregation can skip outright.
    metrics: Option<MetricsRegistry>,
}

/// Draws the `(fault, strategy, env_seed)` triple of sample `index`.
///
/// Shared by the plain and instrumented campaign paths so the draw — and
/// therefore every downstream result — is identical between them.
fn draw(
    spec: CampaignSpec,
    corpus: &[CuratedFault],
    index: usize,
) -> (&CuratedFault, StrategyKind, u64) {
    let mut rng = Xoshiro256StarStar::seed_from(split_seed(spec.seed, index as u64));
    let fault = &corpus[rng.below(corpus.len() as u64) as usize];
    let strategy = StrategyKind::ALL[rng.below(StrategyKind::ALL.len() as u64) as usize];
    (fault, strategy, rng.next_u64())
}

fn aggregate(
    spec: CampaignSpec,
    samples: Vec<Sample>,
    instrumented: bool,
) -> (CampaignReport, MetricsRegistry) {
    let mut cells: BTreeMap<(FaultClass, StrategyKind), (u32, u32)> = BTreeMap::new();
    let mut anomalies = Vec::new();
    // Per-sample registries merge in index order, so the merged registry is
    // the same for every thread count.
    let mut registry = MetricsRegistry::new();
    for sample in samples {
        let cell = cells.entry((sample.class, sample.strategy)).or_insert((0, 0));
        cell.1 += 1;
        cell.0 += u32::from(sample.survived);
        anomalies.extend(sample.anomaly);
        if let Some(reg) = &sample.metrics {
            registry.merge_from(reg);
        }
        if instrumented {
            // Counters derivable from the outcome live with the
            // aggregation, not the sample: one upsert here is cheaper than
            // a fresh key in every per-sample registry plus a merge.
            registry.incr("experiment.total", sample.strategy.name(), 1);
            if sample.survived {
                registry.incr("experiment.survived", sample.strategy.name(), 1);
            }
            if sample.recoveries > 0 {
                registry.incr(
                    "recovery.actions",
                    sample.strategy.name(),
                    u64::from(sample.recoveries),
                );
            }
        }
    }
    let cells = cells
        .into_iter()
        .map(|((class, strategy), (survived, total))| CampaignCell {
            class,
            strategy,
            survived,
            total,
        })
        .collect();
    (CampaignReport { spec, cells, anomalies }, registry)
}

impl CampaignReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: CampaignSpec) -> CampaignReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    ///
    /// Each sample's RNG is seeded from `split_seed(spec.seed, index)`, so
    /// sample `index` draws the same `(fault, strategy, env_seed)` triple no
    /// matter which worker executes it; aggregation folds the outcomes in
    /// index order. The report is therefore byte-identical for every thread
    /// count.
    pub fn run_with(spec: CampaignSpec, parallel: ParallelSpec) -> CampaignReport {
        Self::run_sampled(spec, parallel, false).0
    }

    /// Runs the campaign with per-sample metrics enabled, returning the
    /// merged registry alongside the (unchanged) report.
    ///
    /// The registry aggregates the supervisor's time-to-recovery and retry
    /// histograms per strategy and per `(class, strategy)` cell. It is as
    /// deterministic as the report itself: per-sample registries merge in
    /// index order, so the result is byte-identical at any thread count.
    pub fn run_instrumented(
        spec: CampaignSpec,
        parallel: ParallelSpec,
    ) -> (CampaignReport, MetricsRegistry) {
        Self::run_sampled(spec, parallel, true)
    }

    fn run_sampled(
        spec: CampaignSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (CampaignReport, MetricsRegistry) {
        let corpus = full_corpus();
        let samples = run_indexed(spec.samples as usize, parallel, |index| {
            let (fault, strategy, env_seed) = draw(spec, &corpus, index);
            let (out, metrics) = if instrumented {
                let (out, reg) = run_fault_experiment_instrumented(fault, strategy, env_seed);
                (out, (!reg.is_empty()).then_some(reg))
            } else {
                (run_fault_experiment(fault, strategy, env_seed), None)
            };
            // The deterministic guarantees of the taxonomy.
            let violates = out.survived
                && (out.class == FaultClass::EnvironmentIndependent
                    || (out.class == FaultClass::EnvDependentNonTransient
                        && strategy.is_generic()));
            Sample {
                class: out.class,
                strategy,
                survived: out.survived,
                recoveries: out.recoveries,
                anomaly: violates.then(|| {
                    format!("{} survived {} at seed {env_seed}", out.slug, strategy.name())
                }),
                metrics,
            }
        });
        aggregate(spec, samples, instrumented)
    }

    /// Survival rate of transient faults under `strategy` over the
    /// sampled seeds, with the sample count: `(rate, n)`.
    pub fn transient_rate(&self, strategy: StrategyKind) -> (f64, u32) {
        match self
            .cells
            .iter()
            .find(|c| c.class == FaultClass::EnvDependentTransient && c.strategy == strategy)
        {
            Some(c) if c.total > 0 => (f64::from(c.survived) / f64::from(c.total), c.total),
            _ => (0.0, 0),
        }
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Campaign: {} samples from master seed {}", self.spec.samples, self.spec.seed)?;
        for cell in &self.cells {
            writeln!(
                f,
                "  {:<36} {:<14} {}/{}",
                cell.class.label(),
                cell.strategy.name(),
                cell.survived,
                cell.total
            )?;
        }
        if self.anomalies.is_empty() {
            writeln!(f, "  no anomalies: the deterministic guarantees held on every sample")
        } else {
            writeln!(f, "  ANOMALIES: {:?}", self.anomalies)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_upholds_the_deterministic_guarantees() {
        let report = CampaignReport::run(CampaignSpec { samples: 300, seed: 42 });
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        // Every cell's survived <= total.
        for cell in &report.cells {
            assert!(cell.survived <= cell.total, "{} {}", cell.class, cell.strategy);
        }
        let total: u32 = report.cells.iter().map(|c| c.total).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn transient_survival_is_high_under_retry_strategies() {
        let report = CampaignReport::run(CampaignSpec { samples: 600, seed: 9 });
        for strategy in [StrategyKind::Restart, StrategyKind::Progressive] {
            let (rate, n) = report.transient_rate(strategy);
            assert!(n > 0, "{strategy}: no transient samples drawn");
            assert!(rate >= 0.8, "{strategy}: transient rate {rate:.2} over {n}");
        }
        let (none_rate, _) = report.transient_rate(StrategyKind::None);
        assert_eq!(none_rate, 0.0, "no recovery, no survival");
    }

    #[test]
    fn campaigns_are_reproducible() {
        let spec = CampaignSpec { samples: 50, seed: 7 };
        assert_eq!(CampaignReport::run(spec), CampaignReport::run(spec));
    }

    #[test]
    fn instrumented_campaign_reproduces_the_plain_report() {
        let spec = CampaignSpec { samples: 60, seed: 11 };
        let plain = CampaignReport::run(spec);
        let (report, registry) = CampaignReport::run_instrumented(spec, ParallelSpec::default());
        assert_eq!(report, plain, "metrics must not perturb the campaign");
        let total: u64 =
            StrategyKind::ALL.iter().map(|s| registry.counter("experiment.total", s.name())).sum();
        assert_eq!(total, 60, "every sample counted exactly once");
        // Some sampled strategy recovered a transient fault, so at least
        // one TTR distribution is populated.
        assert!(registry.histograms().any(|(k, _)| k.starts_with("recovery.ttr")));
    }

    #[test]
    fn instrumented_registry_is_identical_across_thread_counts() {
        let spec = CampaignSpec { samples: 40, seed: 5 };
        let (ref_report, ref_registry) =
            CampaignReport::run_instrumented(spec, ParallelSpec::threads(1));
        for threads in [2usize, 8] {
            let (report, registry) =
                CampaignReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, ref_report, "{threads} threads");
            assert_eq!(registry, ref_registry, "{threads} threads");
        }
    }

    #[test]
    fn display_summarizes() {
        let report = CampaignReport::run(CampaignSpec { samples: 30, seed: 3 });
        let text = report.to_string();
        assert!(text.contains("30 samples"));
        assert!(text.contains("no anomalies"));
    }
}
