//! Ablation sweeps over the recovery-design parameters (E11–E13).
//!
//! These quantify the design choices §6 discusses: how much replay work a
//! rollback-recovery checkpoint interval buys (E11), how much Wang93-style
//! perturbation improves race survival over plain retry (E12), and how the
//! rejuvenation period trades proactive work against leak-driven failures
//! (E13).

use faultstudy_apps::{spawn_app, AppState, Application, Request};
use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::Environment;
use faultstudy_recovery::{
    run_workload, ProgressiveRetry, RecoveryStrategy, Rejuvenation, RollbackRecovery,
};
use serde::{Deserialize, Serialize};

/// In-place retry in an *unchanged* environment: restore the checkpoint
/// and immediately re-execute, without advancing simulated time. Under the
/// paper's §3 principle — a fixed operating environment makes execution
/// deterministic — such a retry re-encounters the same interleaving, so it
/// is the correct no-perturbation baseline for E12.
#[derive(Debug)]
struct InstantRetry {
    retries: u32,
    checkpoint: Option<AppState>,
}

impl InstantRetry {
    fn new(retries: u32) -> InstantRetry {
        InstantRetry { retries, checkpoint: None }
    }
}

impl RecoveryStrategy for InstantRetry {
    fn name(&self) -> &'static str {
        "instant-retry"
    }

    fn is_generic(&self) -> bool {
        true
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        _env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        true
    }
}

fn standard_env(seed: u64) -> Environment {
    Environment::builder().seed(seed).fd_limit(16).proc_slots(8).build()
}

/// One point of the E11 checkpoint-interval sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPoint {
    /// Requests between checkpoints.
    pub interval: u32,
    /// Whether the workload survived its mid-stream transient failure.
    pub survived: bool,
    /// Messages replayed during recovery — the cost a long interval incurs.
    pub replayed: u64,
}

/// E11: a 24-request workload with one transient failure at the end, under
/// rollback recovery at each checkpoint interval.
pub fn sweep_checkpoint_interval(intervals: &[u32], seed: u64) -> Vec<CheckpointPoint> {
    intervals
        .iter()
        .map(|&interval| {
            let mut env = standard_env(seed);
            let mut app = spawn_app(AppKind::Apache, &mut env);
            app.inject("apache-edt-02", &mut env).expect("injectable");
            // 27 requests so that no swept interval divides the workload
            // evenly — every interval leaves a non-trivial log to replay.
            let mut workload: Vec<Request> =
                (0..27).map(|i| Request::new(format!("GET /page{i}"))).collect();
            workload.push(app.trigger_request("apache-edt-02").expect("trigger"));
            let mut strategy = RollbackRecovery::new(interval, 3);
            let run = run_workload(app.as_mut(), &mut env, &workload, &mut strategy);
            CheckpointPoint {
                interval,
                survived: run.survived,
                replayed: strategy.replayed_total(),
            }
        })
        .collect()
}

/// One point of the E12 perturbation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerturbationPoint {
    /// Retry budget.
    pub retries: u32,
    /// Environment seeds tried.
    pub seeds: u64,
    /// Survivals under in-place retry in an unchanged environment (the
    /// same interleaving re-fails deterministically).
    pub instant_survived: u32,
    /// Survivals under progressive retry with interleaving perturbation.
    pub progressive_survived: u32,
}

/// E12: survival of the armed MySQL shutdown race across environment
/// seeds, retry-in-unchanged-environment vs perturbed retry.
pub fn sweep_perturbation(retry_budgets: &[u32], seeds: u64) -> Vec<PerturbationPoint> {
    retry_budgets
        .iter()
        .map(|&retries| {
            let mut instant_survived = 0;
            let mut progressive_survived = 0;
            for seed in 0..seeds {
                for progressive in [false, true] {
                    let mut env = standard_env(seed);
                    let mut app = spawn_app(AppKind::Mysql, &mut env);
                    app.inject("mysql-edt-01", &mut env).expect("injectable");
                    let workload = vec![app.trigger_request("mysql-edt-01").expect("trigger")];
                    let survived = if progressive {
                        let mut s = ProgressiveRetry::new(retries);
                        run_workload(app.as_mut(), &mut env, &workload, &mut s).survived
                    } else {
                        let mut s = InstantRetry::new(retries);
                        run_workload(app.as_mut(), &mut env, &workload, &mut s).survived
                    };
                    if survived {
                        if progressive {
                            progressive_survived += 1;
                        } else {
                            instant_survived += 1;
                        }
                    }
                }
            }
            PerturbationPoint { retries, seeds, instant_survived, progressive_survived }
        })
        .collect()
}

/// One point of the E13 rejuvenation sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RejuvenationPoint {
    /// Requests between proactive rejuvenations.
    pub period: u32,
    /// Whether the 12-burst leak workload completed.
    pub survived: bool,
    /// Failures observed along the way (0 = the leak never manifested).
    pub failures: u32,
}

/// E13: the Apache leak fault (crash at 3 accumulated units) under a
/// 12-burst workload, for each rejuvenation period.
pub fn sweep_rejuvenation(periods: &[u32], seed: u64) -> Vec<RejuvenationPoint> {
    periods
        .iter()
        .map(|&period| {
            let mut env = standard_env(seed);
            let mut app = spawn_app(AppKind::Apache, &mut env);
            app.inject("apache-edn-01", &mut env).expect("injectable");
            let workload: Vec<Request> = (0..12).map(|_| Request::new("GET /burst")).collect();
            let mut strategy = Rejuvenation::new(period, 2);
            let run = run_workload(app.as_mut(), &mut env, &workload, &mut strategy);
            RejuvenationPoint { period, survived: run.survived, failures: run.failures }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_checkpoint_intervals_replay_less() {
        let points = sweep_checkpoint_interval(&[1, 4, 16], 11);
        assert!(points.iter().all(|p| p.survived), "{points:?}");
        assert!(
            points[0].replayed <= points[1].replayed && points[1].replayed <= points[2].replayed,
            "replay work grows with the interval: {points:?}"
        );
    }

    #[test]
    fn unchanged_environment_retries_never_recover_the_race() {
        // §3: fixed environment => deterministic execution. The armed race
        // re-fails on every in-place retry, no matter the budget.
        for p in sweep_perturbation(&[1, 5], 24) {
            assert_eq!(p.instant_survived, 0, "{p:?}");
        }
    }

    #[test]
    fn perturbation_recovers_most_races_given_budget() {
        let points = sweep_perturbation(&[1, 5], 24);
        assert!(
            points[1].progressive_survived > points[0].progressive_survived,
            "more perturbed retries recover more races: {points:?}"
        );
        let generous = &points[1];
        assert!(
            f64::from(generous.progressive_survived) >= 0.8 * generous.seeds as f64,
            "{generous:?}"
        );
    }

    #[test]
    fn frequent_rejuvenation_prevents_leak_failures() {
        let points = sweep_rejuvenation(&[1, 2, 4, 8], 13);
        // Period below the leak threshold (3): the fault never manifests.
        assert!(points[0].survived && points[0].failures == 0, "{points:?}");
        assert!(points[1].survived && points[1].failures == 0, "{points:?}");
        // Longer periods see failures; the reactive path still recovers
        // because it re-runs the rejuvenation hook after restore.
        assert!(points[2].failures > 0, "{points:?}");
        assert!(points[3].failures >= points[2].failures, "{points:?}");
    }

    #[test]
    fn sweeps_are_deterministic() {
        assert_eq!(sweep_rejuvenation(&[2, 4], 1), sweep_rejuvenation(&[2, 4], 1));
        assert_eq!(sweep_checkpoint_interval(&[2], 9), sweep_checkpoint_interval(&[2], 9));
    }
}
