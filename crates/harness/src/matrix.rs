//! The corpus × strategy survival matrix — the end-to-end check of the
//! paper's thesis.
//!
//! The paper predicts (Tables 1–3 + §6): environment-independent faults
//! survive nothing; environment-dependent-nontransient faults survive no
//! purely generic strategy; environment-dependent-transient faults survive
//! generic retry-based recovery. Running every corpus fault under every
//! strategy turns that prediction into measurement.

use crate::experiment::{
    run_fault_experiment, run_fault_experiment_instrumented, FaultOutcome, StrategyKind,
};
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_corpus::full_corpus;
use faultstudy_exec::{run_chunk_fold, ParallelSpec};
use faultstudy_obs::MetricsRegistry;
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// Survival counts for one (class, strategy) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cell {
    /// Experiments in the cell.
    pub total: u32,
    /// Experiments whose workload was eventually served.
    pub survived: u32,
}

impl Cell {
    /// Survival rate in [0, 1]; zero for an empty cell.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            f64::from(self.survived) / f64::from(self.total)
        }
    }
}

/// One (class, strategy) entry of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// Fault class of the cell.
    pub class: FaultClass,
    /// Strategy of the cell.
    pub strategy: StrategyKind,
    /// Survival counts.
    pub cell: Cell,
}

/// The full survival matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryMatrix {
    seed: u64,
    cells: Vec<MatrixCell>,
    outcomes: Vec<FaultOutcome>,
}

impl RecoveryMatrix {
    /// Runs the whole corpus under every strategy with the given seed.
    pub fn run(seed: u64) -> RecoveryMatrix {
        Self::run_strategies(seed, &StrategyKind::ALL)
    }

    /// Runs the whole corpus under the given strategies only.
    pub fn run_strategies(seed: u64, strategies: &[StrategyKind]) -> RecoveryMatrix {
        Self::run_strategies_sampled(seed, strategies, false, ParallelSpec::SEQUENTIAL).0
    }

    /// Runs the whole corpus under every strategy across worker threads.
    ///
    /// The matrix is byte-identical to [`RecoveryMatrix::run`]: each
    /// experiment is keyed only by its `(fault, strategy)` index and the
    /// shared seed, and chunk partials merge in index order.
    pub fn run_parallel(seed: u64, parallel: ParallelSpec) -> RecoveryMatrix {
        Self::run_strategies_sampled(seed, &StrategyKind::ALL, false, parallel).0
    }

    /// Runs the whole corpus under every strategy with per-experiment
    /// metrics enabled, returning the merged registry alongside the
    /// (unchanged) matrix.
    ///
    /// The registry holds a time-to-recovery histogram per strategy
    /// (`recovery.ttr{<strategy>}`) and per `(class, strategy)` cell
    /// (`recovery.ttr.class{<class>/<strategy>}`); render them next to the
    /// survival columns with [`RecoveryMatrix::render_with_ttr`].
    pub fn run_instrumented(seed: u64) -> (RecoveryMatrix, MetricsRegistry) {
        Self::run_strategies_sampled(seed, &StrategyKind::ALL, true, ParallelSpec::SEQUENTIAL)
    }

    fn run_strategies_sampled(
        seed: u64,
        strategies: &[StrategyKind],
        instrumented: bool,
        parallel: ParallelSpec,
    ) -> (RecoveryMatrix, MetricsRegistry) {
        struct Acc {
            map: BTreeMap<(FaultClass, StrategyKind), Cell>,
            outcomes: Vec<FaultOutcome>,
            registry: MetricsRegistry,
        }
        let corpus = full_corpus();
        let acc = run_chunk_fold(
            corpus.len() * strategies.len(),
            parallel,
            || Acc { map: BTreeMap::new(), outcomes: Vec::new(), registry: MetricsRegistry::new() },
            |range, acc: &mut Acc| {
                for index in range {
                    let fault = &corpus[index / strategies.len()];
                    let strategy = strategies[index % strategies.len()];
                    let out = if instrumented {
                        let (out, reg) = run_fault_experiment_instrumented(fault, strategy, seed);
                        if !reg.is_empty() {
                            acc.registry.merge_from(&reg);
                        }
                        acc.registry.incr("experiment.total", strategy.name(), 1);
                        if out.survived {
                            acc.registry.incr("experiment.survived", strategy.name(), 1);
                        }
                        if out.recoveries > 0 {
                            acc.registry.incr(
                                "recovery.actions",
                                strategy.name(),
                                u64::from(out.recoveries),
                            );
                        }
                        out
                    } else {
                        run_fault_experiment(fault, strategy, seed)
                    };
                    let cell = acc.map.entry((out.class, strategy)).or_default();
                    cell.total += 1;
                    cell.survived += u32::from(out.survived);
                    acc.outcomes.push(out);
                }
            },
            |acc, later| {
                for (key, cell) in later.map {
                    let merged = acc.map.entry(key).or_default();
                    merged.total += cell.total;
                    merged.survived += cell.survived;
                }
                acc.outcomes.extend(later.outcomes);
                acc.registry.merge_from(&later.registry);
            },
        );
        let cells = acc
            .map
            .into_iter()
            .map(|((class, strategy), cell)| MatrixCell { class, strategy, cell })
            .collect();
        (RecoveryMatrix { seed, cells, outcomes: acc.outcomes }, acc.registry)
    }

    /// The seed the matrix was computed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// One cell of the matrix.
    pub fn cell(&self, class: FaultClass, strategy: StrategyKind) -> Cell {
        self.cells
            .iter()
            .find(|c| c.class == class && c.strategy == strategy)
            .map(|c| c.cell)
            .unwrap_or_default()
    }

    /// Overall survival rate of one strategy across all 139 faults — the
    /// number to compare against the paper's 5–14% transient fraction.
    pub fn overall(&self, strategy: StrategyKind) -> Cell {
        let mut out = Cell::default();
        for class in FaultClass::ALL {
            let c = self.cell(class, strategy);
            out.total += c.total;
            out.survived += c.survived;
        }
        out
    }

    /// Every individual outcome.
    pub fn outcomes(&self) -> &[FaultOutcome] {
        &self.outcomes
    }

    /// Slugs of faults with the given class and strategy that survived
    /// (`survived = true`) or failed (`survived = false`).
    pub fn slugs_where(
        &self,
        class: FaultClass,
        strategy: StrategyKind,
        survived: bool,
    ) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.class == class && o.strategy == strategy && o.survived == survived)
            .map(|o| o.slug.as_str())
            .collect()
    }

    /// Renders the matrix with a time-to-recovery column per strategy,
    /// taken from the `recovery.ttr{<strategy>}` histograms of a registry
    /// produced by [`RecoveryMatrix::run_instrumented`]. Strategies that
    /// never recovered anything show `-`.
    pub fn render_with_ttr(&self, registry: &MetricsRegistry) -> String {
        let mut out = self.to_string();
        let _ = writeln!(out, "time to recovery (simulated, over recovered requests):");
        let _ = writeln!(
            out,
            "{:<22} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "strategy", "n", "p50", "p90", "p99", "p999", "max"
        );
        for strategy in StrategyKind::ALL {
            match registry.histogram("recovery.ttr", strategy.name()) {
                Some(h) if h.count() > 0 => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
                        strategy.name(),
                        h.count(),
                        Duration::from_nanos(h.p50().expect("nonempty")).to_string(),
                        Duration::from_nanos(h.p90().expect("nonempty")).to_string(),
                        Duration::from_nanos(h.p99().expect("nonempty")).to_string(),
                        Duration::from_nanos(h.p999().expect("nonempty")).to_string(),
                        Duration::from_nanos(h.max().expect("nonempty")).to_string(),
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "{:<22} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
                        strategy.name(),
                        0,
                        "-",
                        "-",
                        "-",
                        "-",
                        "-"
                    );
                }
            }
        }
        out
    }

    /// Renders the matrix with the microreboot comparison appended: per
    /// fault class, availability and median time-to-recovery under
    /// whole-process restart versus crash-only microreboot from the same
    /// open-loop traffic. The survival matrix measures what *generic*
    /// recovery can do; this family measures what the one deliberately
    /// application-aware axis — knowing which state a crash may discard —
    /// buys on top.
    pub fn render_with_micro(&self, micro: &crate::micro::MicroReport) -> String {
        use crate::micro::RecoveryMode;
        let mut out = self.to_string();
        let _ = writeln!(
            out,
            "microreboot vs whole-process restart (open-loop traffic, {} requests):",
            micro.spec.requests
        );
        let _ = write!(out, "{:<22}", "availability");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for mode in RecoveryMode::ALL {
            let _ = write!(out, "{:<22}", mode.name());
            for class in FaultClass::ALL {
                let stats = micro.class_stats(class, mode);
                if stats.offered == 0 {
                    let _ = write!(out, " {:>14}", "-");
                } else {
                    let _ = write!(out, " {:>14}", format!("{:.2}%", 100.0 * stats.availability()));
                }
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<22}", "ttr p50");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for mode in RecoveryMode::ALL {
            let _ = write!(out, "{:<22}", mode.name());
            for class in FaultClass::ALL {
                match micro.class_ttr(class, mode).p50() {
                    Some(nanos) => {
                        let _ = write!(out, " {:>14}", Duration::from_nanos(nanos).to_string());
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the matrix with the distributed comparison appended: per
    /// fault class at the campaign's full retry budget, availability and
    /// median time-to-recovery under process-level supervision versus
    /// per-channel recovery on the service graph, plus the cascade line
    /// (faulted chains, channel resets, node restarts, peak downstream
    /// amplification). The survival matrix measures recovery of one
    /// process; these families measure what the same taxonomy costs once
    /// the fault rides the wire between processes.
    pub fn render_with_graph(&self, graph: &crate::graph::GraphReport) -> String {
        use crate::graph::GRAPH_BUDGETS;
        use faultstudy_graph::PlaneKind;
        let full = *GRAPH_BUDGETS.last().expect("sweep is nonempty");
        let mut out = self.to_string();
        let _ = writeln!(
            out,
            "per-channel recovery vs process supervision (service graph, {} requests, budget {}):",
            graph.spec.requests, full
        );
        let _ = write!(out, "{:<22}", "availability");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for plane in PlaneKind::ALL {
            let _ = write!(out, "{:<22}", plane.name());
            for class in FaultClass::ALL {
                let stats = graph.class_stats(class, plane, full);
                if stats.offered == 0 {
                    let _ = write!(out, " {:>14}", "-");
                } else {
                    let _ = write!(out, " {:>14}", format!("{:.2}%", 100.0 * stats.availability()));
                }
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<22}", "ttr p50");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for plane in PlaneKind::ALL {
            let _ = write!(out, "{:<22}", plane.name());
            for class in FaultClass::ALL {
                match graph.class_ttr(class, plane, full).p50() {
                    Some(nanos) => {
                        let _ = write!(out, " {:>14}", Duration::from_nanos(nanos).to_string());
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let totals = graph.graph_totals();
        let _ = writeln!(
            out,
            "cascade: {} faulted chains, {} channel resets, {} node restarts, max amplification \
             {:.2}",
            totals.cascade_depth.count(),
            totals.channel_recoveries,
            totals.node_restarts,
            graph.max_amplification(full),
        );
        out
    }

    /// Renders the matrix with the oblivious-recovery column families
    /// per fault class, taken from an oblivious campaign: availability
    /// per heal mode, then the price of staying available — substitute
    /// answers handed out (visible discards + silent manufactured
    /// defaults) and correctness-oracle violations. The survival matrix
    /// says whether a strategy keeps an application alive; these
    /// families say which answers were wrong while it did.
    pub fn render_with_oracle(&self, oblivious: &crate::oblivious::ObliviousReport) -> String {
        use crate::oblivious::HealMode;
        let mut out = self.to_string();
        let _ = writeln!(
            out,
            "oblivious recovery vs restart (open-loop traffic, {} requests):",
            oblivious.spec.requests
        );
        let _ = write!(out, "{:<22}", "availability");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for mode in HealMode::ALL {
            let _ = write!(out, "{:<22}", mode.name());
            for class in FaultClass::ALL {
                let stats = oblivious.class_stats(class, mode);
                if stats.offered == 0 {
                    let _ = write!(out, " {:>14}", "-");
                } else {
                    let _ = write!(out, " {:>14}", format!("{:.2}%", 100.0 * stats.availability()));
                }
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<22}", "substitutes");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for mode in HealMode::ALL {
            let _ = write!(out, "{:<22}", mode.name());
            for class in FaultClass::ALL {
                let stats = oblivious.class_stats(class, mode);
                if stats.offered == 0 {
                    let _ = write!(out, " {:>14}", "-");
                } else {
                    let (discarded, manufactured, _) = oblivious.class_costs(class, mode);
                    let _ = write!(out, " {:>14}", format!("{discarded}+{manufactured}"));
                }
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<22}", "oracle violations");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for mode in HealMode::ALL {
            let _ = write!(out, "{:<22}", mode.name());
            for class in FaultClass::ALL {
                let stats = oblivious.class_stats(class, mode);
                if stats.offered == 0 {
                    let _ = write!(out, " {:>14}", "-");
                } else {
                    let (_, _, violations) = oblivious.class_costs(class, mode);
                    let _ = write!(out, " {:>14}", violations);
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the matrix with an SLO-miss column family per fault class,
    /// taken from a traffic campaign over the same strategies: the
    /// fraction of offered requests that were dropped or answered over
    /// the latency SLO. The survival matrix says whether a strategy keeps
    /// an application alive; this family says what the users experienced
    /// while it did.
    pub fn render_with_slo(&self, traffic: &crate::traffic::TrafficReport) -> String {
        let mut out = self.to_string();
        let _ =
            writeln!(out, "SLO misses under open-loop traffic (dropped + over-SLO, of offered):");
        let _ = write!(out, "{:<22}", "strategy");
        for class in FaultClass::ALL {
            let _ = write!(out, " {:>14}", class.short());
        }
        let _ = writeln!(out);
        for strategy in StrategyKind::ALL {
            let _ = write!(out, "{:<22}", strategy.name());
            for class in FaultClass::ALL {
                let stats = traffic.class_stats(class, strategy);
                if stats.offered == 0 {
                    let _ = write!(out, " {:>14}", "-");
                } else {
                    let _ = write!(
                        out,
                        " {:>14}",
                        format!("{:.2}%", 100.0 * traffic.slo_miss_rate(class, strategy))
                    );
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl fmt::Display for RecoveryMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Recovery matrix (seed {}): survived/total per fault class and strategy",
            self.seed
        )?;
        write!(f, "{:<22}", "strategy")?;
        for class in FaultClass::ALL {
            write!(f, " {:>14}", class.short())?;
        }
        writeln!(f, " {:>14}", "overall")?;
        for strategy in StrategyKind::ALL {
            write!(f, "{:<22}", strategy.name())?;
            for class in FaultClass::ALL {
                let c = self.cell(class, strategy);
                write!(f, " {:>14}", format!("{}/{}", c.survived, c.total))?;
            }
            let o = self.overall(strategy);
            writeln!(
                f,
                " {:>14}",
                format!("{}/{} ({:.0}%)", o.survived, o.total, o.rate() * 100.0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One full-matrix computation shared by the assertions below.
    fn matrix() -> RecoveryMatrix {
        RecoveryMatrix::run(2000)
    }

    #[test]
    fn matrix_reproduces_the_papers_thesis() {
        let m = matrix();

        // Environment-independent faults survive nothing (Tables 1-3, §6.1).
        for strategy in StrategyKind::ALL {
            let c = m.cell(FaultClass::EnvironmentIndependent, strategy);
            assert_eq!(c.total, 113);
            assert_eq!(c.survived, 0, "{strategy} must not survive EI faults");
        }

        // Nontransient faults survive no purely generic strategy (§3).
        for strategy in StrategyKind::ALL.into_iter().filter(|s| s.is_generic()) {
            let c = m.cell(FaultClass::EnvDependentNonTransient, strategy);
            assert_eq!(c.total, 14);
            assert_eq!(c.survived, 0, "{strategy} must not survive EDN faults");
        }

        // Application knowledge recovers the self-inflicted EDN conditions.
        let app_specific = m.cell(FaultClass::EnvDependentNonTransient, StrategyKind::AppSpecific);
        assert_eq!(app_specific.survived, 4, "leak, 2x own-fd leaks, hostname rebind");

        // Transient faults survive retry-based generic recovery (§6.3).
        let restart = m.cell(FaultClass::EnvDependentTransient, StrategyKind::Restart);
        assert_eq!(restart.total, 12);
        assert!(restart.survived >= 10, "restart survived only {}", restart.survived);
        let progressive = m.cell(FaultClass::EnvDependentTransient, StrategyKind::Progressive);
        assert!(progressive.survived >= 11, "progressive survived {}", progressive.survived);

        // Without any recovery nothing survives.
        assert_eq!(m.overall(StrategyKind::None).survived, 0);

        // The headline: overall generic survival lands in the paper's
        // 5-14% transient band.
        let overall = m.overall(StrategyKind::Restart);
        let pct = overall.rate() * 100.0;
        assert!((5.0..=14.0).contains(&pct), "restart overall {pct:.1}% outside 5-14%");
    }

    #[test]
    fn fast_failover_underperforms_slow_restart_on_healing_conditions() {
        let m = matrix();
        let pair = m.cell(FaultClass::EnvDependentTransient, StrategyKind::ProcessPair);
        let restart = m.cell(FaultClass::EnvDependentTransient, StrategyKind::Restart);
        assert!(
            pair.survived < restart.survived,
            "pair {} !< restart {}",
            pair.survived,
            restart.survived
        );
    }

    #[test]
    fn display_renders_all_strategies() {
        let m = RecoveryMatrix::run_strategies(1, &[StrategyKind::None]);
        let text = m.to_string();
        assert!(text.contains("none"));
        assert!(text.contains("transient"));
        assert!(text.contains("0/113"));
    }

    #[test]
    fn instrumented_matrix_matches_plain_and_renders_ttr() {
        let plain = RecoveryMatrix::run(2000);
        let (m, registry) = RecoveryMatrix::run_instrumented(2000);
        assert_eq!(m, plain, "metrics must not perturb the matrix");
        // Retry strategies recovered transient faults, so their TTR columns
        // are populated; the baseline never recovers anything.
        assert!(registry.histogram("recovery.ttr", "restart").unwrap().count() > 0);
        assert!(registry.histogram("recovery.ttr", "none").is_none());
        let text = m.render_with_ttr(&registry);
        assert!(text.contains("time to recovery"));
        assert!(text.contains("restart"), "{text}");
        let none_row = text.lines().filter(|l| l.starts_with("none")).nth(1).unwrap_or_else(|| {
            text.lines().find(|l| l.starts_with("none") && l.contains('-')).expect("none TTR row")
        });
        assert!(none_row.contains('-'), "baseline shows empty TTR: {none_row}");
    }

    #[test]
    fn matrix_is_identical_at_every_thread_count() {
        let sequential = matrix();
        for threads in [2, 4, 8] {
            let parallel = RecoveryMatrix::run_parallel(2000, ParallelSpec::threads(threads));
            assert_eq!(parallel, sequential, "matrix diverged at {threads} threads");
        }
    }

    #[test]
    fn slugs_where_partitions_outcomes() {
        let m = RecoveryMatrix::run_strategies(3, &[StrategyKind::Restart]);
        let survived =
            m.slugs_where(FaultClass::EnvDependentTransient, StrategyKind::Restart, true);
        let failed = m.slugs_where(FaultClass::EnvDependentTransient, StrategyKind::Restart, false);
        assert_eq!(survived.len() + failed.len(), 12);
        assert!(survived.contains(&"apache-edt-02"));
    }
}
