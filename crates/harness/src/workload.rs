//! Seeded workload generation for the simulated applications.
//!
//! The fault experiments in [`crate::experiment`] drive the *triggering*
//! workload of one fault; this module generates realistic *background*
//! load — the mixed request streams a production deployment would see —
//! for soak tests and benchmarks. Every generator is a pure function of
//! its seed.

use faultstudy_apps::Request;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_sim::rng::{DetRng, Xoshiro256StarStar};

/// A seeded generator of benign requests for one application.
///
/// "Benign" means the requests exercise real code paths (logging, lookups,
/// SQL, widget actions) but none of the fault triggers; on a healthy
/// application every generated request is served.
///
/// # Example
///
/// ```
/// use faultstudy_harness::workload::WorkloadGen;
/// use faultstudy_core::taxonomy::AppKind;
///
/// let reqs = WorkloadGen::new(AppKind::Mysql, 7).take_requests(5);
/// assert_eq!(reqs.len(), 5);
/// ```
#[derive(Debug)]
pub struct WorkloadGen {
    app: AppKind,
    rng: Xoshiro256StarStar,
    /// Tables created so far (minidb workloads insert into them).
    created_tables: u32,
}

impl WorkloadGen {
    /// Creates a generator for `app` with the given seed.
    pub fn new(app: AppKind, seed: u64) -> WorkloadGen {
        WorkloadGen { app, rng: Xoshiro256StarStar::seed_from(seed), created_tables: 0 }
    }

    /// The application this generator targets.
    pub fn app(&self) -> AppKind {
        self.app
    }

    /// Generates the next request.
    pub fn next_request(&mut self) -> Request {
        match self.app {
            AppKind::Apache => self.next_web(),
            AppKind::Gnome => self.next_desktop(),
            AppKind::Mysql => self.next_sql(),
        }
    }

    /// Generates `n` requests.
    pub fn take_requests(&mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_request()).collect()
    }

    fn next_web(&mut self) -> Request {
        match self.rng.below(10) {
            0..=5 => Request::new(format!("GET /page{}", self.rng.below(64))),
            6 => Request::new(format!("GET /assets/img{}.png", self.rng.below(16))),
            7 => Request::new("SPAWN"),
            8 => Request::new("SSL"),
            _ => Request::new(format!("RESOLVE host{}.example", self.rng.below(8))),
        }
    }

    fn next_desktop(&mut self) -> Request {
        match self.rng.below(8) {
            0..=2 => Request::new(format!("CLICK widget{}", self.rng.below(12))),
            3 => Request::new(format!("OPEN docs/file{}.txt", self.rng.below(20))),
            4 => Request::new("LAUNCH"),
            5 => Request::new("OPEN-DISPLAY"),
            6 => Request::new("PLAY-SOUND"),
            _ => Request::new("CLICK clock"),
        }
    }

    fn next_sql(&mut self) -> Request {
        // Ensure at least one table exists before data operations.
        if self.created_tables == 0 {
            self.created_tables = 1;
            return Request::new("CREATE TABLE load0 (k, v)");
        }
        let table = self.rng.below(u64::from(self.created_tables));
        match self.rng.below(12) {
            0 if self.created_tables < 4 => {
                let t = self.created_tables;
                self.created_tables += 1;
                Request::new(format!("CREATE TABLE load{t} (k, v)"))
            }
            0..=5 => Request::new(format!(
                "INSERT INTO load{table} VALUES ({}, {})",
                self.rng.below(1000),
                self.rng.below(1000)
            )),
            6 | 7 => Request::new(format!("SELECT * FROM load{table} ORDER BY k")),
            8 => Request::new(format!("SELECT COUNT(*) FROM load{table}")),
            9 => Request::new(format!(
                "UPDATE load{table} SET v = {} WHERE k = {}",
                self.rng.below(1000),
                self.rng.below(1000)
            )),
            10 => {
                Request::new(format!("DELETE FROM load{table} WHERE k = {}", self.rng.below(1000)))
            }
            _ => Request::new("PING"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_apps::spawn_app;
    use faultstudy_env::Environment;

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadGen::new(AppKind::Apache, 3).take_requests(50);
        let b = WorkloadGen::new(AppKind::Apache, 3).take_requests(50);
        assert_eq!(a, b);
        let c = WorkloadGen::new(AppKind::Apache, 4).take_requests(50);
        assert_ne!(a, c);
    }

    #[test]
    fn benign_workloads_are_served_by_healthy_apps() {
        for app_kind in AppKind::ALL {
            let mut env = Environment::builder()
                .seed(1)
                .fd_limit(64)
                .proc_slots(32)
                .fs_capacity(1 << 22)
                .build();
            let mut app = spawn_app(app_kind, &mut env);
            let mut generator = WorkloadGen::new(app_kind, 5);
            for i in 0..300 {
                let req = generator.next_request();
                let result = app.handle(&req, &mut env);
                assert!(result.is_ok(), "{app_kind} request {i} ({req}) failed: {result:?}");
            }
        }
    }

    #[test]
    fn sql_workload_creates_tables_before_using_them() {
        let mut generator = WorkloadGen::new(AppKind::Mysql, 9);
        let first = generator.next_request();
        assert!(first.body.starts_with("CREATE TABLE"), "{first}");
    }

    #[test]
    fn workloads_cover_multiple_request_kinds() {
        for app in AppKind::ALL {
            let reqs = WorkloadGen::new(app, 11).take_requests(200);
            let kinds: std::collections::BTreeSet<&str> =
                reqs.iter().map(|r| r.body.split_whitespace().next().unwrap_or("")).collect();
            assert!(kinds.len() >= 3, "{app}: workload too uniform: {kinds:?}");
        }
    }
}
