//! Generates the paper-vs-measured experiment report (`EXPERIMENTS.md`).
//!
//! For every table and figure of the paper — and for the end-to-end
//! experiments the paper proposed as future work — this module runs the
//! reproduction and renders a markdown comparison of the paper's value
//! against the measured value. `faultstudy experiments > EXPERIMENTS.md`
//! regenerates the checked-in file.

use crate::experiment::StrategyKind;
use crate::funnel::paper_scale_funnels;
use crate::graph::{GraphReport, GraphSpec, GRAPH_BUDGETS};
use crate::matrix::RecoveryMatrix;
use crate::oblivious::{HealMode, ObliviousReport, ObliviousSpec};
use faultstudy_core::taxonomy::{AppKind, FaultClass};
use faultstudy_core::timeline::{by_month, by_release, ei_shares, max_deviation, totals_grow};
use faultstudy_corpus::paper_study;
use faultstudy_report::TandemReconciliation;
use std::fmt::Write as _;

/// Renders the full paper-vs-measured report as markdown.
///
/// Deterministic for a given `seed` (the corpus-derived experiments do not
/// depend on it at all; the funnels and the recovery matrix do).
pub fn experiments_markdown(seed: u64) -> String {
    let mut md = String::new();
    let study = paper_study();

    writeln!(md, "# EXPERIMENTS — paper vs. measured").expect("write to string");
    writeln!(md).expect("w");
    writeln!(
        md,
        "Regenerate with `cargo run -p faultstudy-harness --bin faultstudy -- experiments \
         --seed {seed}`."
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- E1-E3: tables ----
    writeln!(md, "## E1–E3: Tables 1–3 (fault classification per application)").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Experiment | App | Class | Paper | Measured | Match |").expect("w");
    writeln!(md, "|---|---|---|---|---|---|").expect("w");
    let paper_counts = [
        (AppKind::Apache, [36u32, 7, 7]),
        (AppKind::Gnome, [39, 3, 3]),
        (AppKind::Mysql, [38, 4, 2]),
    ];
    for (app, paper) in paper_counts {
        let measured = study.table(app);
        for (class, expected) in FaultClass::ALL.into_iter().zip(paper) {
            let got = measured.get(class);
            writeln!(
                md,
                "| E{} | {} | {} | {} | {} | {} |",
                app.table_number(),
                app,
                class,
                expected,
                got,
                tick(got == expected)
            )
            .expect("w");
        }
    }
    writeln!(md).expect("w");

    // ---- E4-E6: figures ----
    writeln!(md, "## E4–E6: Figures 1–3 (distributions over releases/time)").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Experiment | Property stated in the paper | Measured | Match |").expect("w");
    writeln!(md, "|---|---|---|---|").expect("w");

    let fig1 = by_release(&study, AppKind::Apache);
    let counts1: Vec<_> = fig1.buckets.iter().map(|b| b.counts).collect();
    let dev1 = max_deviation(&ei_shares(counts1.iter().copied(), 3));
    writeln!(
        md,
        "| E4 (Fig. 1) | Apache EI proportion 'stays about the same' across releases | \
         max deviation {:.1} pp | {} |",
        dev1 * 100.0,
        tick(dev1 < 0.08)
    )
    .expect("w");
    writeln!(
        md,
        "| E4 (Fig. 1) | total reports increase with newer releases | totals {:?} | {} |",
        counts1.iter().map(|c| c.total()).collect::<Vec<_>>(),
        tick(totals_grow(&counts1))
    )
    .expect("w");

    let fig2 = by_month(&study, AppKind::Gnome);
    let totals2: Vec<u32> = fig2.buckets.iter().map(|(_, c)| c.total()).collect();
    let min_pos = totals2.iter().enumerate().min_by_key(|(_, v)| **v).map(|(i, _)| i).unwrap_or(0);
    writeln!(
        md,
        "| E5 (Fig. 2) | GNOME reports dip mid-period then grow again | monthly totals {:?}, \
         minimum at bucket {} of {} | {} |",
        totals2,
        min_pos,
        totals2.len(),
        tick(min_pos > 0 && min_pos + 1 < totals2.len())
    )
    .expect("w");

    let fig3 = by_release(&study, AppKind::Mysql);
    let totals3: Vec<u32> = fig3.buckets.iter().map(|b| b.counts.total()).collect();
    let grows = totals3[..totals3.len() - 1].windows(2).all(|w| w[0] < w[1]);
    let fresh_drop = totals3.last() < totals3.get(totals3.len().saturating_sub(2));
    writeln!(
        md,
        "| E6 (Fig. 3) | MySQL totals grow, newest release substantially lower | totals {:?} | {} |",
        totals3,
        tick(grows && fresh_drop)
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- E7: discussion ----
    let d = study.discussion();
    writeln!(md, "## E7: §5.4 aggregates").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Quantity | Paper | Measured | Match |").expect("w");
    writeln!(md, "|---|---|---|---|").expect("w");
    writeln!(md, "| total faults | 139 | {} | {} |", d.total, tick(d.total == 139)).expect("w");
    writeln!(
        md,
        "| env-dep-nontransient | 14 (10%) | {} ({:.0}%) | {} |",
        d.nontransient.0,
        d.nontransient.1,
        tick(d.nontransient.0 == 14)
    )
    .expect("w");
    writeln!(
        md,
        "| env-dep-transient | 12 (9%) | {} ({:.0}%) | {} |",
        d.transient.0,
        d.transient.1,
        tick(d.transient.0 == 12)
    )
    .expect("w");
    writeln!(
        md,
        "| env-independent share | 72–87% | {:.0}%–{:.0}% | {} |",
        d.independent_range.0,
        d.independent_range.1.ceil(),
        tick(d.independent_range.0 >= 72.0 && d.independent_range.1 <= 87.0)
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- E8: funnels ----
    writeln!(md, "## E8: §4 selection funnels (synthetic archives, seed {seed})").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| App | Paper funnel | Measured funnel | Unique bugs | Precision/Recall |")
        .expect("w");
    writeln!(md, "|---|---|---|---|---|").expect("w");
    let paper_funnels = [
        (AppKind::Apache, "5220 → 50"),
        (AppKind::Gnome, "~500 → 45"),
        (AppKind::Mysql, "44,000 → few hundred → 44"),
    ];
    for (run, (app, paper)) in paper_scale_funnels(seed).iter().zip(paper_funnels) {
        let measured: Vec<String> =
            run.outcome.funnel.iter().map(|s| s.survivors.to_string()).collect();
        writeln!(
            md,
            "| {app} | {paper} | {} | {} | {:.3}/{:.3} |",
            measured.join(" → "),
            run.outcome.unique_bugs(),
            run.quality.precision(),
            run.quality.recall()
        )
        .expect("w");
    }
    writeln!(md).expect("w");

    // ---- E9: recovery matrix ----
    writeln!(md, "## E9: end-to-end recovery matrix (seed {seed})").expect("w");
    writeln!(md).expect("w");
    writeln!(
        md,
        "The paper predicts: environment-independent faults survive nothing; \
         nontransient faults survive no purely generic strategy; transient faults \
         survive retry-based generic recovery; overall generic survival is bounded \
         by the 5–14% transient fraction."
    )
    .expect("w");
    writeln!(md).expect("w");
    let matrix = RecoveryMatrix::run(seed);
    writeln!(md, "| Strategy | EI survived | EDN survived | EDT survived | Overall |").expect("w");
    writeln!(md, "|---|---|---|---|---|").expect("w");
    for strategy in StrategyKind::ALL {
        let ei = matrix.cell(FaultClass::EnvironmentIndependent, strategy);
        let edn = matrix.cell(FaultClass::EnvDependentNonTransient, strategy);
        let edt = matrix.cell(FaultClass::EnvDependentTransient, strategy);
        let all = matrix.overall(strategy);
        writeln!(
            md,
            "| {} | {}/{} | {}/{} | {}/{} | {}/{} ({:.0}%) |",
            strategy.name(),
            ei.survived,
            ei.total,
            edn.survived,
            edn.total,
            edt.survived,
            edt.total,
            all.survived,
            all.total,
            all.rate() * 100.0
        )
        .expect("w");
    }
    writeln!(md).expect("w");
    let restart_pct = matrix.overall(StrategyKind::Restart).rate() * 100.0;
    writeln!(
        md,
        "Measured overall generic (restart) survival: **{restart_pct:.1}%**, inside the \
         paper's 5–14% transient band — reproducing the conclusion that generic \
         recovery \"will not be sufficient\"."
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- E10: Lee-Iyer ----
    let rec = TandemReconciliation::default();
    writeln!(md, "## E10: §7 Lee–Iyer reconciliation").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Quantity | Paper | Measured |").expect("w");
    writeln!(md, "|---|---|---|").expect("w");
    writeln!(md, "| raw process-pair recovery | 82% | {:.0}% |", rec.raw_recovered).expect("w");
    writeln!(
        md,
        "| transient under purely generic pairs | 29% | {:.0}% |",
        rec.pure_generic_transient()
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- E11-E13: ablations ----
    writeln!(md, "## E11: checkpoint-interval ablation (rollback recovery)").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Interval | Survived | Messages replayed |").expect("w");
    writeln!(md, "|---|---|---|").expect("w");
    for p in crate::ablation::sweep_checkpoint_interval(&[1, 2, 4, 8, 16], seed) {
        writeln!(md, "| {} | {} | {} |", p.interval, p.survived, p.replayed).expect("w");
    }
    writeln!(md).expect("w");
    writeln!(
        md,
        "Longer intervals trade checkpoint frequency for replay work; survival of the \
         transient fault is unaffected (§6.3)."
    )
    .expect("w");
    writeln!(md).expect("w");

    writeln!(md, "## E12: perturbation ablation (progressive retry, Wang93)").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Retries | Unchanged-env retry survived | Perturbed retry survived |")
        .expect("w");
    writeln!(md, "|---|---|---|").expect("w");
    for p in crate::ablation::sweep_perturbation(&[1, 2, 3, 5], 48) {
        writeln!(
            md,
            "| {} | {}/{} | {}/{} |",
            p.retries, p.instant_survived, p.seeds, p.progressive_survived, p.seeds
        )
        .expect("w");
    }
    writeln!(md).expect("w");
    writeln!(
        md,
        "Inducing event reordering increases the chance a race experiences a \
         different operating environment on retry (§7); it never converts an \
         environment-independent fault."
    )
    .expect("w");
    writeln!(md).expect("w");

    writeln!(md, "## E13: rejuvenation-period ablation (Huang95)").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Period | Survived | Failures observed |").expect("w");
    writeln!(md, "|---|---|---|").expect("w");
    for p in crate::ablation::sweep_rejuvenation(&[1, 2, 3, 4, 8], seed) {
        writeln!(md, "| {} | {} | {} |", p.period, p.survived, p.failures).expect("w");
    }
    writeln!(md).expect("w");
    writeln!(
        md,
        "Rejuvenating more often than the leak threshold prevents the failure \
         entirely — the proactive, application-specific mechanism §6.2 describes \
         for Apache."
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- E14: oblivious-recovery cost frontier ----
    writeln!(md, "## E14: oblivious-recovery cost frontier (seed {seed}, 6000 requests)")
        .expect("w");
    writeln!(md).expect("w");
    writeln!(
        md,
        "E9 shows the environment-independent majority survives no generic \
         strategy. Failure-oblivious recovery rescues it anyway — by abandoning \
         the §2 roll-back contract — and a per-app correctness oracle prices the \
         rescue in silently wrong answers (DESIGN.md §16). Costs below are summed \
         over the EI control and the EDN state-leak plans:"
    )
    .expect("w");
    writeln!(md).expect("w");
    let oblivious =
        ObliviousReport::run(ObliviousSpec { seed, requests: 6_000, ..ObliviousSpec::default() });
    let (ei, edn) = (FaultClass::EnvironmentIndependent, FaultClass::EnvDependentNonTransient);
    writeln!(
        md,
        "| Mode | EI availability | EI dropped | Discarded | Manufactured | Oracle violations |"
    )
    .expect("w");
    writeln!(md, "|---|---|---|---|---|---|").expect("w");
    for mode in HealMode::ALL {
        let stats = oblivious.class_stats(ei, mode);
        let (ei_disc, ei_man, ei_viol) = oblivious.class_costs(ei, mode);
        let (edn_disc, edn_man, edn_viol) = oblivious.class_costs(edn, mode);
        writeln!(
            md,
            "| {} | {:.2}% | {} | {} | {} | {} |",
            mode.name(),
            100.0 * stats.availability(),
            stats.dropped,
            ei_disc + edn_disc,
            ei_man + edn_man,
            ei_viol + edn_viol,
        )
        .expect("w");
    }
    writeln!(md).expect("w");
    let restart_ei = oblivious.class_stats(ei, HealMode::Restart);
    let discard_ei = oblivious.class_stats(ei, HealMode::Oblivious);
    let (_, man_ei, _) = oblivious.class_costs(ei, HealMode::Manufactured);
    let (_, _, man_viol_edn) = oblivious.class_costs(edn, HealMode::Manufactured);
    let (_, _, scrub_viol_edn) = oblivious.class_costs(edn, HealMode::Scrub);
    writeln!(md, "| Finding | Measured | Match |").expect("w");
    writeln!(md, "|---|---|---|").expect("w");
    writeln!(
        md,
        "| restart drops EI requests (the paper's limit) | {} dropped | {} |",
        restart_ei.dropped,
        tick(restart_ei.dropped > 0)
    )
    .expect("w");
    writeln!(
        md,
        "| discarding rescues every EI drop, visibly | {} dropped | {} |",
        discard_ei.dropped,
        tick(discard_ei.dropped == 0)
    )
    .expect("w");
    writeln!(
        md,
        "| manufactured values rescue silently, and wrongly | {man_viol_edn} state-leak oracle \
         violations, {man_ei} EI substitutes | {} |",
        tick(man_viol_edn > 0 && man_ei > 0)
    )
    .expect("w");
    writeln!(
        md,
        "| only state scrub heals the leak with a clean oracle | {scrub_viol_edn} violations | {} |",
        tick(scrub_viol_edn == 0)
    )
    .expect("w");
    writeln!(
        md,
        "| every class contract checked, none contradicted | {} anomalies | {} |",
        oblivious.anomalies.len(),
        tick(oblivious.anomalies.is_empty())
    )
    .expect("w");
    writeln!(md).expect("w");
    writeln!(
        md,
        "The rescue is real and so is the bill: going oblivious converts the \
         paper's unrecoverable majority from dropped requests into refusals or \
         silently wrong answers. Only the state-aware scrub gets availability \
         *and* correctness — and only on the fault its state taxonomy covers."
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- E15: distributed IPC fault plane ----
    writeln!(md, "## E15: distributed IPC fault plane (seed {seed}, 7200 requests)").expect("w");
    writeln!(md).expect("w");
    writeln!(
        md,
        "The paper's study is confined to one process; §8 asks how recovery \
         would fare in systems *designed* for it. E15 wires the three apps \
         into a service graph (clients → miniweb → minidb, minide as operator \
         console) and replays the Theseus/MINIX3 IPC fault table on the wire, \
         racing process supervision against per-channel recovery across a \
         retry-budget sweep (DESIGN.md §17). Class cells below are at the \
         full budget:"
    )
    .expect("w");
    writeln!(md).expect("w");
    let graph = GraphReport::run(GraphSpec { seed, requests: 7_200, ..GraphSpec::default() });
    let full = *GRAPH_BUDGETS.last().expect("sweep is nonempty");
    writeln!(md, "| Class | Plane | Availability | Dropped | TTR p50 | Amplification |")
        .expect("w");
    writeln!(md, "|---|---|---|---|---|---|").expect("w");
    for class in FaultClass::ALL {
        for plane in faultstudy_graph::PlaneKind::ALL {
            let g = graph.class_graph(class, plane, full);
            if g.base.offered == 0 {
                continue;
            }
            let ttr = match g.ttr.p50() {
                Some(nanos) => format!("{:.2} ms", nanos as f64 / 1e6),
                None => "—".to_owned(),
            };
            writeln!(
                md,
                "| {} | {} | {:.2}% | {} | {} | {:.2}× |",
                class.short(),
                plane.name(),
                100.0 * g.base.availability(),
                g.base.dropped,
                ttr,
                g.amplification(),
            )
            .expect("w");
        }
    }
    writeln!(md).expect("w");
    let edn = FaultClass::EnvDependentNonTransient;
    let ch = graph.class_graph(edn, faultstudy_graph::PlaneKind::Channel, full);
    let pr = graph.class_graph(edn, faultstudy_graph::PlaneKind::Process, full);
    let ttr_ratio = match (ch.ttr.p50(), pr.ttr.p50()) {
        (Some(c), Some(p)) if c > 0 => p as f64 / c as f64,
        _ => 0.0,
    };
    let amp = graph.max_amplification(full);
    writeln!(md, "| Finding | Measured | Match |").expect("w");
    writeln!(md, "|---|---|---|").expect("w");
    writeln!(
        md,
        "| per-channel recovery beats node restarts on sticky wedges | TTR p50 ratio \
         {ttr_ratio:.1}×, {} dropped | {} |",
        ch.base.dropped,
        tick(ttr_ratio > 1.0 && ch.base.dropped == 0)
    )
    .expect("w");
    writeln!(
        md,
        "| client retries amplify downstream load | peak db amplification {amp:.2}× | {} |",
        tick(amp > 1.0)
    )
    .expect("w");
    let ei_drops: u64 = faultstudy_graph::PlaneKind::ALL
        .iter()
        .map(|&p| graph.class_stats(FaultClass::EnvironmentIndependent, p, full).dropped)
        .sum();
    writeln!(
        md,
        "| wire defects defeat both planes | {ei_drops} dropped across planes | {} |",
        tick(
            faultstudy_graph::PlaneKind::ALL
                .iter()
                .all(
                    |&p| graph.class_stats(FaultClass::EnvironmentIndependent, p, full).dropped > 0
                )
        )
    )
    .expect("w");
    writeln!(
        md,
        "| every wire contract checked, none contradicted | {} anomalies | {} |",
        graph.anomalies().len(),
        tick(graph.anomalies().is_empty())
    )
    .expect("w");
    writeln!(md).expect("w");
    writeln!(
        md,
        "The taxonomy survives the trip onto the wire: one-shot faults retry \
         away, sticky channel wedges recover — orders faster when the channel, \
         not the process, is the recovery unit — and deterministic defects \
         defeat every plane. The new cost is distributed: each retry a tier \
         spends re-drives the tiers below it."
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- A1: §3 assumption sensitivity ----
    writeln!(md, "## A1: §3 recovery-assumption sensitivity").expect("w");
    writeln!(md).expect("w");
    writeln!(
        md,
        "§3 notes the transient/nontransient split depends on the recovery systems \
         in place (e.g. storage that auto-grows would re-classify full-disk faults \
         as transient). Re-classifying the corpus under those assumptions:"
    )
    .expect("w");
    writeln!(md).expect("w");
    writeln!(md, "| Assumptions | EI | EDN | EDT |").expect("w");
    writeln!(md, "|---|---|---|---|").expect("w");
    for (label, counts) in assumption_sensitivity() {
        writeln!(md, "| {label} | {} | {} | {} |", counts[0], counts[1], counts[2]).expect("w");
    }
    writeln!(md).expect("w");
    writeln!(
        md,
        "Even the most generous assumptions only move a minority of the 14 \
         nontransient faults; the 113 deterministic faults are untouched, so the \
         paper's conclusion is insensitive to this choice."
    )
    .expect("w");
    writeln!(md).expect("w");

    // ---- A2: §7 related work ----
    let transient_pct = d.transient.1;
    let related = faultstudy_report::RelatedWork::paper(transient_pct);
    writeln!(md, "## A2: §7 related-work comparison").expect("w");
    writeln!(md).expect("w");
    writeln!(md, "```text\n{related}```").expect("w");
    writeln!(md).expect("w");

    md
}

/// Re-classifies the corpus under each §3 assumption set; returns
/// `(label, [EI, EDN, EDT])` rows.
pub fn assumption_sensitivity() -> Vec<(&'static str, [u32; 3])> {
    use faultstudy_core::classify::{Classifier, RecoveryAssumptions};
    use faultstudy_core::evidence::Evidence;
    let sets = [
        ("baseline (paper)", RecoveryAssumptions::default()),
        (
            "auto-growing storage",
            RecoveryAssumptions { storage_auto_grows: true, resources_garbage_collected: false },
        ),
        (
            "resource garbage collection",
            RecoveryAssumptions { storage_auto_grows: false, resources_garbage_collected: true },
        ),
        (
            "both",
            RecoveryAssumptions { storage_auto_grows: true, resources_garbage_collected: true },
        ),
    ];
    sets.into_iter()
        .map(|(label, assumptions)| {
            let classifier = Classifier::with_assumptions(assumptions);
            let mut counts = [0u32; 3];
            for fault in faultstudy_corpus::full_corpus() {
                let class = match fault.trigger() {
                    None => FaultClass::EnvironmentIndependent,
                    Some(cond) => {
                        classifier.classify_evidence(&Evidence::of_conditions([cond])).class
                    }
                };
                let idx = FaultClass::ALL.iter().position(|c| *c == class).expect("class in ALL");
                counts[idx] += 1;
            }
            (label, counts)
        })
        .collect()
}

fn tick(ok: bool) -> &'static str {
    if ok {
        "✓"
    } else {
        "✗ MISMATCH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_every_experiment_and_no_mismatches() {
        let md = experiments_markdown(2000);
        for section in ["E1–E3", "E4–E6", "E7", "E8", "E9", "E10", "E14", "E15"] {
            assert!(md.contains(section), "missing section {section}");
        }
        assert!(!md.contains("MISMATCH"), "paper-vs-measured mismatch:\n{md}");
    }

    #[test]
    fn report_is_deterministic_per_seed() {
        assert_eq!(experiments_markdown(7), experiments_markdown(7));
    }

    #[test]
    fn report_mentions_the_headline_band() {
        let md = experiments_markdown(2000);
        assert!(md.contains("5–14% transient band"));
        assert!(md.contains("139"));
    }

    #[test]
    fn assumption_sensitivity_moves_only_nontransient_faults() {
        let rows = assumption_sensitivity();
        let baseline = rows[0].1;
        assert_eq!(baseline, [113, 14, 12], "paper classification");
        for (label, counts) in &rows {
            assert_eq!(counts[0], 113, "{label}: EI count is invariant");
            assert_eq!(counts.iter().sum::<u32>(), 139, "{label}");
        }
        // "Both" is the most generous: strictly more transient than baseline.
        let both = rows[3].1;
        assert!(both[2] > baseline[2], "{both:?}");
        // Storage assumptions move the 3 disk faults of Apache + 2 of MySQL
        // plus the cache fault: full-fs x2, max-file x2, disk-cache x1 = 5.
        let storage = rows[1].1;
        assert_eq!(storage[2] - baseline[2], 5, "{storage:?}");
        // GC moves the 3 fd-exhaustion faults and the leak: 4 more.
        let gc = rows[2].1;
        assert_eq!(gc[2] - baseline[2], 4, "{gc:?}");
    }
}
