//! The `faultstudy` CLI: regenerates every table and figure of the paper.
//!
//! ```text
//! faultstudy <command> [--seed N] [--threads N] [--samples N]
//!            [--requests N] [--arrival poisson|bursty|diurnal] [--json]
//!
//! commands:
//!   tables     Tables 1-3: per-application fault classification
//!   figures    Figures 1-3: fault distributions over releases/time
//!   summary    the §5.4 discussion numbers
//!   mine       the §4 selection funnels at paper scale
//!   recover    the end-to-end recovery matrix (§5.4/§8 future work)
//!   campaign   randomized (fault, strategy, seed) sampling in distribution
//!   inject     plan-driven environment injection x strategy x scrub
//!   traffic    open-loop traffic with per-request SLO accounting
//!   micro      microreboot vs whole-process restart under traffic
//!   graph      the distributed IPC fault plane: per-channel recovery vs
//!              process supervision on the three-tier service graph
//!   oblivious  failure-oblivious recovery priced by correctness oracles
//!   metrics    deterministic observability: TTR histograms + stage timings
//!   verify     CI self-check: exits non-zero if a guarantee fails
//!   lee-iyer   the §7 reconciliation with \[Lee93\]
//!   experiments the paper-vs-measured report (EXPERIMENTS.md)
//!   all        the report commands (tables through lee-iyer), in order
//! ```
//!
//! Every command exits zero on success and non-zero with a message on
//! stderr when it cannot produce its output or a checked guarantee fails.

use faultstudy_core::taxonomy::AppKind;
use faultstudy_core::timeline::{by_month, by_release};
use faultstudy_corpus::paper_study;
use faultstudy_harness::{
    paper_scale_funnels_with, CampaignReport, CampaignSpec, GraphReport, GraphSpec, InjectReport,
    InjectSpec, MicroReport, MicroSpec, ObliviousReport, ObliviousSpec, ParallelSpec,
    RecoveryMatrix, TrafficReport, TrafficSpec,
};
use faultstudy_report::{
    render_discussion, render_release_figure, render_table, render_time_figure,
    TandemReconciliation,
};
use faultstudy_traffic::ArrivalKind;
use std::process::ExitCode;

struct Options {
    seed: u64,
    json: bool,
    /// Worker threads for campaign/mining; `AUTO` = available parallelism.
    /// Results are byte-identical for every value.
    parallel: ParallelSpec,
    /// Sample count for the `campaign` subcommand. The streaming fold
    /// holds O(threads) state regardless of this value, so multi-million
    /// sample stress runs are just slower, not bigger.
    samples: u32,
    /// Total requests the `traffic` subcommand offers across its units.
    /// All of it is simulated time, so millions of requests are seconds
    /// of wall clock.
    requests: u64,
    /// Arrival process of the `traffic` subcommand.
    arrival: ArrivalKind,
}

/// Serializes `value` to pretty JSON on stdout; on failure, reports on
/// stderr instead of panicking. Returns whether the output was produced.
fn print_json<T: serde::Serialize>(what: &str, value: &T) -> bool {
    match serde_json::to_string_pretty(value) {
        Ok(text) => {
            println!("{text}");
            true
        }
        Err(err) => {
            eprintln!("faultstudy: cannot serialize {what}: {err}");
            false
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("usage: faultstudy <tables|figures|summary|mine|recover|campaign|inject|traffic|micro|graph|oblivious|metrics|verify|lee-iyer|experiments|all> [--seed N] [--threads N] [--samples N] [--requests N] [--arrival poisson|bursty|diurnal] [--json]");
        return ExitCode::FAILURE;
    };
    let mut opts = Options {
        seed: 2000,
        json: false,
        parallel: ParallelSpec::AUTO,
        samples: 500,
        requests: 20_000,
        arrival: ArrivalKind::Poisson,
    };
    let mut rest = args;
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--seed" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => {
                    eprintln!("--seed requires an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.parallel = ParallelSpec::threads(v),
                None => {
                    eprintln!("--threads requires an integer value (0 = auto)");
                    return ExitCode::FAILURE;
                }
            },
            "--samples" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => opts.samples = v,
                _ => {
                    eprintln!("--samples requires a positive integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--requests" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => opts.requests = v,
                _ => {
                    eprintln!("--requests requires a positive integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--arrival" => match rest.next().as_deref().and_then(ArrivalKind::parse) {
                Some(kind) => opts.arrival = kind,
                None => {
                    eprintln!("--arrival requires one of: poisson, bursty, diurnal");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let ok = match command.as_str() {
        "tables" => tables(&opts),
        "figures" => figures(&opts),
        "summary" => summary(&opts),
        "mine" => mine(&opts),
        "recover" => recover(&opts),
        "lee-iyer" => lee_iyer(&opts),
        "experiments" => {
            print!("{}", faultstudy_harness::experiments_markdown(opts.seed));
            true
        }
        "campaign" => campaign(&opts),
        "inject" => inject(&opts),
        "traffic" => traffic(&opts),
        "micro" => micro(&opts),
        "graph" => graph(&opts),
        "oblivious" => oblivious(&opts),
        "metrics" => metrics(&opts),
        "verify" => verify(&opts),
        "all" => {
            // Run every report even if one fails, then report the worst.
            let results = [
                tables(&opts),
                figures(&opts),
                summary(&opts),
                mine(&opts),
                recover(&opts),
                lee_iyer(&opts),
            ];
            results.iter().all(|&ok| ok)
        }
        other => {
            eprintln!("unknown command: {other}");
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn tables(opts: &Options) -> bool {
    let study = paper_study();
    if opts.json {
        let per_app: Vec<_> = AppKind::ALL
            .iter()
            .map(|&app| {
                serde_json::json!({
                    "app": app.name(),
                    "table": app.table_number(),
                    "counts": study.table(app),
                })
            })
            .collect();
        return print_json("tables", &per_app);
    }
    for app in AppKind::ALL {
        println!("{}", render_table(&study, app));
    }
    true
}

fn figures(opts: &Options) -> bool {
    let study = paper_study();
    if opts.json {
        let value = serde_json::json!({
            "figure1": by_release(&study, AppKind::Apache),
            "figure2": by_month(&study, AppKind::Gnome),
            "figure3": by_release(&study, AppKind::Mysql),
        });
        return print_json("figures", &value);
    }
    println!("{}", render_release_figure(&by_release(&study, AppKind::Apache)));
    println!("{}", render_time_figure(&by_month(&study, AppKind::Gnome)));
    println!("{}", render_release_figure(&by_release(&study, AppKind::Mysql)));
    true
}

fn summary(opts: &Options) -> bool {
    let discussion = paper_study().discussion();
    if opts.json {
        return print_json("summary", &discussion);
    }
    println!("{}", render_discussion(&discussion));
    true
}

fn mine(opts: &Options) -> bool {
    let runs = paper_scale_funnels_with(opts.seed, opts.parallel);
    if opts.json {
        return print_json("funnels", &runs);
    }
    for run in runs {
        println!("{}", run.outcome);
        println!("  {}", run.quality);
    }
    true
}

fn recover(opts: &Options) -> bool {
    let matrix = RecoveryMatrix::run(opts.seed);
    if opts.json {
        return print_json("matrix", &matrix);
    }
    println!("{matrix}");
    true
}

/// CI-style self-check: re-runs the headline experiments and exits
/// non-zero if any of the paper's guarantees fails to reproduce.
fn verify(opts: &Options) -> bool {
    use faultstudy_core::taxonomy::FaultClass;
    use faultstudy_harness::StrategyKind;
    let mut problems: Vec<String> = Vec::new();

    let study = paper_study();
    if study.total() != 139 {
        problems.push(format!("corpus has {} faults, expected 139", study.total()));
    }
    let matrix = RecoveryMatrix::run(opts.seed);
    for strategy in StrategyKind::ALL {
        let ei = matrix.cell(FaultClass::EnvironmentIndependent, strategy);
        if ei.survived != 0 {
            problems.push(format!("{} survived {} EI faults", strategy.name(), ei.survived));
        }
        if strategy.is_generic() {
            let edn = matrix.cell(FaultClass::EnvDependentNonTransient, strategy);
            if edn.survived != 0 {
                problems.push(format!("{} survived {} EDN faults", strategy.name(), edn.survived));
            }
        }
    }
    let restart_pct = matrix.overall(StrategyKind::Restart).rate() * 100.0;
    if !(5.0..=14.0).contains(&restart_pct) {
        problems.push(format!("restart overall {restart_pct:.1}% outside the 5-14% band"));
    }
    let report =
        CampaignReport::run_with(CampaignSpec { samples: 200, seed: opts.seed }, opts.parallel);
    if !report.anomalies.is_empty() {
        problems.push(format!("campaign anomalies: {:?}", report.anomalies));
    }
    let injection = InjectReport::run_with(InjectSpec { seed: opts.seed }, opts.parallel);
    if !injection.anomalies.is_empty() {
        problems.push(format!("injection anomalies: {:?}", injection.anomalies));
    }
    if injection.watchdog_fires() == 0 || injection.breaker_trips() == 0 || injection.scrubs() == 0
    {
        problems.push(format!(
            "injection hardening idle: {} watchdog fires, {} breaker trips, {} scrubs",
            injection.watchdog_fires(),
            injection.breaker_trips(),
            injection.scrubs()
        ));
    }
    for run in paper_scale_funnels_with(opts.seed, opts.parallel) {
        let expected = match run.outcome.app {
            AppKind::Apache => 50,
            AppKind::Gnome => 45,
            AppKind::Mysql => 44,
        };
        if run.outcome.unique_bugs() != expected {
            problems.push(format!(
                "{} funnel selected {} unique bugs, expected {expected}",
                run.outcome.app,
                run.outcome.unique_bugs()
            ));
        }
    }
    if problems.is_empty() {
        println!("verify: all guarantees reproduced at seed {}", opts.seed);
        true
    } else {
        for p in &problems {
            eprintln!("verify: FAILED: {p}");
        }
        false
    }
}

/// The observability surface: time-to-recovery distributions per strategy
/// from an instrumented matrix run, the supervisor's hardening counters
/// from an instrumented injection campaign, plus the mining pipeline's
/// per-stage timings, all measured in simulated time and byte-identical
/// for every seed and thread count.
fn metrics(opts: &Options) -> bool {
    use faultstudy_harness::paper_scale_funnels_instrumented;
    use faultstudy_harness::StrategyKind;
    use faultstudy_sim::time::Duration;

    let (matrix, mut registry) = RecoveryMatrix::run_instrumented(opts.seed);
    let (_, mining) = paper_scale_funnels_instrumented(opts.seed, opts.parallel);
    registry.merge_from(&mining);
    let (_, injection) =
        InjectReport::run_instrumented(InjectSpec { seed: opts.seed }, opts.parallel);
    registry.merge_from(&injection);

    if opts.json {
        let mut ttr: Vec<(std::borrow::Cow<'static, str>, serde_json::Value)> = Vec::new();
        for strategy in StrategyKind::ALL {
            if let Some(h) = registry.histogram("recovery.ttr", strategy.name()) {
                ttr.push((
                    strategy.name().into(),
                    serde_json::json!({
                        "n": h.count(),
                        "p50_ns": h.p50(),
                        "p90_ns": h.p90(),
                        "p99_ns": h.p99(),
                        "p999_ns": h.p999(),
                        "max_ns": h.max(),
                    }),
                ));
            }
        }
        let mut supervisor: Vec<(std::borrow::Cow<'static, str>, serde_json::Value)> = Vec::new();
        for strategy in StrategyKind::ALL {
            supervisor.push((
                strategy.name().into(),
                serde_json::json!({
                    "watchdog_fires": registry.counter("supervisor.watchdog", strategy.name()),
                    "breaker_trips": registry.counter("supervisor.breaker.trips", strategy.name()),
                    "scrubs": registry.counter("supervisor.scrubs", strategy.name()),
                }),
            ));
        }
        let mut stages: Vec<(std::borrow::Cow<'static, str>, serde_json::Value)> = Vec::new();
        for (key, reports) in registry.counters() {
            let Some(label) = key.strip_prefix("mining.stage.reports{") else { continue };
            let label = label.trim_end_matches('}');
            stages.push((
                label.to_owned().into(),
                serde_json::json!({
                    "reports": reports,
                    "nanos": registry.counter("mining.stage.nanos", label),
                    "reports_per_sec": registry.gauge("mining.stage.rps", label),
                }),
            ));
        }
        let value = serde_json::json!({
            "seed": opts.seed,
            "time_to_recovery": serde_json::Value::Map(ttr),
            "supervisor": serde_json::Value::Map(supervisor),
            "mining_stages": serde_json::Value::Map(stages),
            "registry": registry,
        });
        return print_json("metrics", &value);
    }

    print!("{}", matrix.render_with_ttr(&registry));
    println!("supervisor hardening (injection campaign at seed {}):", opts.seed);
    println!("{:<16} {:>10} {:>10} {:>8}", "strategy", "watchdog", "breaker", "scrubs");
    for strategy in StrategyKind::ALL {
        println!(
            "{:<16} {:>10} {:>10} {:>8}",
            strategy.name(),
            registry.counter("supervisor.watchdog", strategy.name()),
            registry.counter("supervisor.breaker.trips", strategy.name()),
            registry.counter("supervisor.scrubs", strategy.name()),
        );
    }
    println!();
    println!("mining stage timings (simulated cost model):");
    println!("{:<32} {:>10} {:>12} {:>14}", "app/stage", "reports", "time", "reports/s");
    let stages: Vec<String> = registry
        .counters()
        .filter_map(|(k, _)| {
            k.strip_prefix("mining.stage.reports{").map(|l| l.trim_end_matches('}').to_owned())
        })
        .collect();
    for label in stages {
        let reports = registry.counter("mining.stage.reports", &label);
        let nanos = registry.counter("mining.stage.nanos", &label);
        let rps = registry.gauge("mining.stage.rps", &label).unwrap_or(0);
        println!(
            "{:<32} {:>10} {:>12} {:>14}",
            label,
            reports,
            Duration::from_nanos(nanos).to_string(),
            rps
        );
    }
    true
}

fn campaign(opts: &Options) -> bool {
    let report = CampaignReport::run_with(
        CampaignSpec { samples: opts.samples, seed: opts.seed },
        opts.parallel,
    );
    if opts.json {
        return print_json("campaign", &report);
    }
    println!("{report}");
    true
}

/// The shared exit-code path of every campaign subcommand: reports each
/// anomaly on stderr and returns whether the list was empty, so a
/// violated class contract — or an underpowered run that could not check
/// one — exits non-zero in every output mode.
fn campaign_ok(what: &str, anomalies: &[String]) -> bool {
    for anomaly in anomalies {
        eprintln!("faultstudy: {what}: ANOMALY: {anomaly}");
    }
    anomalies.is_empty()
}

/// The injection campaign: every standard plan x strategy x scrub setting
/// under the hardened supervisor. Exits non-zero if the class contract is
/// violated, so the command doubles as a CI smoke check.
fn inject(opts: &Options) -> bool {
    let report = InjectReport::run_with(InjectSpec { seed: opts.seed }, opts.parallel);
    if opts.json {
        return print_json("injection report", &report) & campaign_ok("inject", &report.anomalies);
    }
    print!("{report}");
    campaign_ok("inject", &report.anomalies)
}

/// The traffic campaign: open-loop request streams through every
/// injection plan x strategy x application, reported as availability,
/// goodput, and tail latency per (fault class, strategy) cell, plus the
/// recovery matrix extended with the SLO-miss column family. Exits
/// non-zero if the class contract is violated or unchecked.
fn traffic(opts: &Options) -> bool {
    let spec = TrafficSpec { seed: opts.seed, requests: opts.requests, arrival: opts.arrival };
    let report = TrafficReport::run_with(spec, opts.parallel);
    if opts.json {
        return print_json("traffic report", &report) & campaign_ok("traffic", &report.anomalies());
    }
    print!("{report}");
    let matrix = RecoveryMatrix::run(opts.seed);
    print!("{}", matrix.render_with_slo(&report));
    campaign_ok("traffic", &report.anomalies())
}

/// The microreboot campaign: the same open-loop traffic served under
/// whole-process restart and under crash-only component microreboot,
/// reported per (fault class, mode) cell with time-to-recovery, plus the
/// recovery matrix extended with the comparison column families. Exits
/// non-zero if the class contract is violated or unchecked.
fn micro(opts: &Options) -> bool {
    let spec = MicroSpec { seed: opts.seed, requests: opts.requests, arrival: opts.arrival };
    let report = MicroReport::run_with(spec, opts.parallel);
    if opts.json {
        return print_json("micro report", &report) & campaign_ok("micro", &report.anomalies());
    }
    print!("{report}");
    let matrix = RecoveryMatrix::run(opts.seed);
    print!("{}", matrix.render_with_micro(&report));
    campaign_ok("micro", &report.anomalies())
}

/// The graph campaign: the three applications wired into a service graph
/// (clients → miniweb → minidb, minide as operator console), the
/// twelve-kind IPC fault corpus injected on the wire, and per-channel
/// recovery raced against process supervision across a retry-budget
/// sweep — reported per (fault class, plane, budget) cell with cascade
/// and amplification accounting, plus the recovery matrix extended with
/// the distributed comparison. Exits non-zero if the wire-level class
/// contract is violated or unchecked.
fn graph(opts: &Options) -> bool {
    let spec = GraphSpec { seed: opts.seed, requests: opts.requests, arrival: opts.arrival };
    let report = GraphReport::run_with(spec, opts.parallel);
    if opts.json {
        return print_json("graph report", &report) & campaign_ok("graph", &report.anomalies());
    }
    print!("{report}");
    let matrix = RecoveryMatrix::run(opts.seed);
    print!("{}", matrix.render_with_graph(&report));
    campaign_ok("graph", &report.anomalies())
}

/// The oblivious-recovery campaign: the same open-loop traffic served
/// under restart, failure-oblivious discard, manufactured defaults,
/// in-place state scrubbing, and the profile-guided healer — priced by
/// each application's correctness oracle — plus the recovery matrix
/// extended with the availability and wrong-answer column families.
/// Exits non-zero if the class contract is violated or unchecked.
fn oblivious(opts: &Options) -> bool {
    let spec = ObliviousSpec { seed: opts.seed, requests: opts.requests, arrival: opts.arrival };
    let report = ObliviousReport::run_with(spec, opts.parallel);
    if opts.json {
        return print_json("oblivious report", &report)
            & campaign_ok("oblivious", &report.anomalies);
    }
    print!("{report}");
    let matrix = RecoveryMatrix::run(opts.seed);
    print!("{}", matrix.render_with_oracle(&report));
    campaign_ok("oblivious", &report.anomalies)
}

fn lee_iyer(opts: &Options) -> bool {
    let r = TandemReconciliation::default();
    if opts.json {
        return print_json("reconciliation", &r);
    }
    println!("{r}");
    true
}
