//! The `faultstudy` CLI: regenerates every table and figure of the paper.
//!
//! ```text
//! faultstudy <command> [--seed N] [--threads N] [--json]
//!
//! commands:
//!   tables     Tables 1-3: per-application fault classification
//!   figures    Figures 1-3: fault distributions over releases/time
//!   summary    the §5.4 discussion numbers
//!   mine       the §4 selection funnels at paper scale
//!   recover    the end-to-end recovery matrix (§5.4/§8 future work)
//!   lee-iyer   the §7 reconciliation with \[Lee93\]
//!   experiments the paper-vs-measured report (EXPERIMENTS.md)
//!   all        everything above, in order
//! ```

use faultstudy_core::taxonomy::AppKind;
use faultstudy_core::timeline::{by_month, by_release};
use faultstudy_corpus::paper_study;
use faultstudy_harness::{
    paper_scale_funnels_with, CampaignReport, CampaignSpec, ParallelSpec, RecoveryMatrix,
};
use faultstudy_report::{
    render_discussion, render_release_figure, render_table, render_time_figure,
    TandemReconciliation,
};
use std::process::ExitCode;

struct Options {
    seed: u64,
    json: bool,
    /// Worker threads for campaign/mining; `AUTO` = available parallelism.
    /// Results are byte-identical for every value.
    parallel: ParallelSpec,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("usage: faultstudy <tables|figures|summary|mine|recover|campaign|verify|lee-iyer|experiments|all> [--seed N] [--threads N] [--json]");
        return ExitCode::FAILURE;
    };
    let mut opts = Options { seed: 2000, json: false, parallel: ParallelSpec::AUTO };
    let mut rest = args;
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--seed" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => {
                    eprintln!("--seed requires an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.parallel = ParallelSpec::threads(v),
                None => {
                    eprintln!("--threads requires an integer value (0 = auto)");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    match command.as_str() {
        "tables" => tables(&opts),
        "figures" => figures(&opts),
        "summary" => summary(&opts),
        "mine" => mine(&opts),
        "recover" => recover(&opts),
        "lee-iyer" => lee_iyer(&opts),
        "experiments" => print!("{}", faultstudy_harness::experiments_markdown(opts.seed)),
        "campaign" => campaign(&opts),
        "verify" => return verify(&opts),
        "all" => {
            tables(&opts);
            figures(&opts);
            summary(&opts);
            mine(&opts);
            recover(&opts);
            lee_iyer(&opts);
        }
        other => {
            eprintln!("unknown command: {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn tables(opts: &Options) {
    let study = paper_study();
    if opts.json {
        let per_app: Vec<_> = AppKind::ALL
            .iter()
            .map(|&app| {
                serde_json::json!({
                    "app": app.name(),
                    "table": app.table_number(),
                    "counts": study.table(app),
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&per_app).expect("tables serialize"));
        return;
    }
    for app in AppKind::ALL {
        println!("{}", render_table(&study, app));
    }
}

fn figures(opts: &Options) {
    let study = paper_study();
    if opts.json {
        let value = serde_json::json!({
            "figure1": by_release(&study, AppKind::Apache),
            "figure2": by_month(&study, AppKind::Gnome),
            "figure3": by_release(&study, AppKind::Mysql),
        });
        println!("{}", serde_json::to_string_pretty(&value).expect("figures serialize"));
        return;
    }
    println!("{}", render_release_figure(&by_release(&study, AppKind::Apache)));
    println!("{}", render_time_figure(&by_month(&study, AppKind::Gnome)));
    println!("{}", render_release_figure(&by_release(&study, AppKind::Mysql)));
}

fn summary(opts: &Options) {
    let discussion = paper_study().discussion();
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&discussion).expect("summary serializes"));
        return;
    }
    println!("{}", render_discussion(&discussion));
}

fn mine(opts: &Options) {
    let runs = paper_scale_funnels_with(opts.seed, opts.parallel);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&runs).expect("funnels serialize"));
        return;
    }
    for run in runs {
        println!("{}", run.outcome);
        println!("  {}", run.quality);
    }
}

fn recover(opts: &Options) {
    let matrix = RecoveryMatrix::run(opts.seed);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&matrix).expect("matrix serializes"));
        return;
    }
    println!("{matrix}");
}

/// CI-style self-check: re-runs the headline experiments and exits
/// non-zero if any of the paper's guarantees fails to reproduce.
fn verify(opts: &Options) -> ExitCode {
    use faultstudy_core::taxonomy::FaultClass;
    use faultstudy_harness::StrategyKind;
    let mut problems: Vec<String> = Vec::new();

    let study = paper_study();
    if study.total() != 139 {
        problems.push(format!("corpus has {} faults, expected 139", study.total()));
    }
    let matrix = RecoveryMatrix::run(opts.seed);
    for strategy in StrategyKind::ALL {
        let ei = matrix.cell(FaultClass::EnvironmentIndependent, strategy);
        if ei.survived != 0 {
            problems.push(format!("{} survived {} EI faults", strategy.name(), ei.survived));
        }
        if strategy.is_generic() {
            let edn = matrix.cell(FaultClass::EnvDependentNonTransient, strategy);
            if edn.survived != 0 {
                problems.push(format!("{} survived {} EDN faults", strategy.name(), edn.survived));
            }
        }
    }
    let restart_pct = matrix.overall(StrategyKind::Restart).rate() * 100.0;
    if !(5.0..=14.0).contains(&restart_pct) {
        problems.push(format!("restart overall {restart_pct:.1}% outside the 5-14% band"));
    }
    let report =
        CampaignReport::run_with(CampaignSpec { samples: 200, seed: opts.seed }, opts.parallel);
    if !report.anomalies.is_empty() {
        problems.push(format!("campaign anomalies: {:?}", report.anomalies));
    }
    for run in paper_scale_funnels_with(opts.seed, opts.parallel) {
        let expected = match run.outcome.app {
            AppKind::Apache => 50,
            AppKind::Gnome => 45,
            AppKind::Mysql => 44,
        };
        if run.outcome.unique_bugs() != expected {
            problems.push(format!(
                "{} funnel selected {} unique bugs, expected {expected}",
                run.outcome.app,
                run.outcome.unique_bugs()
            ));
        }
    }
    if problems.is_empty() {
        println!("verify: all guarantees reproduced at seed {}", opts.seed);
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("verify: FAILED: {p}");
        }
        ExitCode::FAILURE
    }
}

fn campaign(opts: &Options) {
    let report =
        CampaignReport::run_with(CampaignSpec { samples: 500, seed: opts.seed }, opts.parallel);
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("campaign serializes"));
        return;
    }
    println!("{report}");
}

fn lee_iyer(opts: &Options) {
    let r = TandemReconciliation::default();
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&r).expect("reconciliation serializes"));
        return;
    }
    println!("{r}");
}
