//! The injection campaign: every standard injection plan crossed with
//! every recovery strategy, with and without environment scrubbing.
//!
//! The corpus-driven campaigns (see [`campaign`](crate::campaign)) test the
//! paper's thesis through scripted bug reports; this one tests it from the
//! environment side. Each unit arms one application defect, lets a
//! deterministic [`InjectionPlan`] perturb the simulated environment on its
//! own schedule, and asks the hardened supervisor whether the workload
//! survived. The class contract under test (§3, §6):
//!
//! - **transient** injections self-heal, so retry-family strategies
//!   survive some of them with no operator help;
//! - **nontransient** injections (descriptor and disk exhaustion by an
//!   external program) defeat every generic strategy unless the
//!   supervisor's scrub step — an operator action — clears them;
//! - the **environment-independent** control survives nothing, scrub or
//!   not.
//!
//! Determinism: plans are a pure function of the master seed, each unit's
//! environment and backoff seeds come from `split_seed(seed, index)`, and
//! aggregation folds units in index order — the report is byte-identical
//! at any thread count.

use crate::experiment::{standard_env, StrategyKind};
use faultstudy_apps::{Application, MiniWeb};
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_exec::{run_chunk_fold, ParallelSpec};
use faultstudy_inject::{standard_plans, InjectionPlan, Injector};
use faultstudy_obs::MetricsRegistry;
use faultstudy_recovery::{run_workload_supervised, BackoffPolicy, SupervisorConfig};
use faultstudy_sim::rng::{split_seed, SplitSeedStream};
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectSpec {
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
}

impl Default for InjectSpec {
    fn default() -> Self {
        InjectSpec { seed: 1 }
    }
}

/// One `(plan, strategy, scrub)` unit of the campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectCell {
    /// Injection plan name.
    pub plan: String,
    /// The paper class of the injected condition.
    pub class: FaultClass,
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Whether the supervisor scrubbed the environment between retries.
    pub scrub: bool,
    /// Whether the whole workload was eventually served.
    pub survived: bool,
    /// Fault manifestations observed.
    pub failures: u32,
    /// Recovery actions performed.
    pub recoveries: u32,
    /// Injection events that came due and were applied.
    pub injected: usize,
    /// Hung attempts detected by the watchdog deadline.
    pub watchdog_fires: u32,
    /// Circuit-breaker trips (graceful degradation).
    pub breaker_trips: u32,
    /// Environment scrubs performed.
    pub scrubs: u32,
    /// Requests shed after a breaker trip.
    pub shed: usize,
}

/// Aggregate of one injection campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectReport {
    /// The spec that produced this report.
    pub spec: InjectSpec,
    /// Every unit, in `(plan, strategy, scrub)` enumeration order.
    pub cells: Vec<InjectCell>,
    /// Violations of the class contract; must be empty.
    pub anomalies: Vec<String>,
}

/// The hardened supervisor configuration every campaign unit runs under.
///
/// Requests take 100 ms, so a plan's pre-trigger schedule (50–350 ms)
/// fires while the workload's four leading benign requests are served.
/// The 4 s watchdog outlives every self-healing window (2 s), so a
/// detected hang retries into a healed environment. Backoff starts at
/// 50 ms and caps at 2 s — small enough that strategy retry budgets, not
/// the clock, decide outcomes. The breaker trips at four consecutive
/// recovered failures: inside progressive retry's budget of five, beyond
/// everyone else's, so exactly the most persistent strategy degrades
/// gracefully instead of burning its whole budget.
fn unit_config(scrub: bool, backoff_seed: u64) -> SupervisorConfig {
    SupervisorConfig {
        watchdog: Some(Duration::from_secs(4)),
        backoff: BackoffPolicy::new(
            Duration::from_millis(50),
            Duration::from_secs(2),
            backoff_seed,
        ),
        breaker_threshold: 4,
        scrub_every: u32::from(scrub),
        request_takes: Duration::from_millis(100),
    }
}

/// One campaign unit: arm the plan's companion defect in a fresh MiniWeb,
/// replay the plan through the supervisor's pre-attempt hook, and drive
/// the triggering workload.
fn run_unit(
    plan: &InjectionPlan,
    strategy: StrategyKind,
    scrub: bool,
    unit_seed: u64,
    instrumented: bool,
) -> (InjectCell, Option<MetricsRegistry>) {
    let mut env = standard_env(unit_seed, instrumented);
    let mut app = MiniWeb::new(&mut env);
    app.arm_defect(&plan.companion_defect).expect("every plan's companion defect arms in MiniWeb");
    let benign = app.benign_request();
    let trigger = app
        .trigger_request(&plan.companion_defect)
        .expect("every companion defect has a triggering request");
    // Four benign requests consume the plan's schedule window, three
    // triggers meet the armed defect in the perturbed environment, two
    // trailing benigns prove continued service.
    let mut workload = vec![benign.clone(); 4];
    workload.extend(std::iter::repeat_n(trigger, 3));
    workload.extend([benign.clone(), benign]);
    let mut injector = Injector::new(plan, &mut env);
    let mut strat = strategy.build();
    let config = unit_config(scrub, split_seed(unit_seed, 1));
    let sup = run_workload_supervised(
        &mut app,
        &mut env,
        &workload,
        strat.as_mut(),
        &config,
        Some(&mut injector),
    );
    let cell = InjectCell {
        plan: plan.name.clone(),
        class: plan.class,
        strategy,
        scrub,
        survived: sup.run.survived,
        failures: sup.run.failures,
        recoveries: sup.run.recoveries,
        injected: injector.applied(),
        watchdog_fires: sup.watchdog_fires,
        breaker_trips: sup.breaker_trips,
        scrubs: sup.scrubs,
        shed: sup.shed,
    };
    let metrics = instrumented.then(|| env.metrics.take().expect("metrics were enabled"));
    (cell, metrics.filter(|reg| !reg.is_empty()))
}

/// The class contract a unit may violate.
fn contract_violation(cell: &InjectCell) -> Option<String> {
    let violates = cell.survived
        && (cell.class == FaultClass::EnvironmentIndependent
            || (cell.class == FaultClass::EnvDependentNonTransient
                && !cell.scrub
                && cell.strategy.is_generic()));
    violates.then(|| {
        format!(
            "{} survived {} with scrubbing {}",
            cell.plan,
            cell.strategy.name(),
            if cell.scrub { "on" } else { "off" },
        )
    })
}

impl InjectReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: InjectSpec) -> InjectReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    pub fn run_with(spec: InjectSpec, parallel: ParallelSpec) -> InjectReport {
        Self::run_units(spec, parallel, false).0
    }

    /// Runs the campaign with per-unit metrics enabled, returning the
    /// merged registry alongside the (unchanged) report.
    ///
    /// The registry carries the supervisor's hardening counters
    /// (`supervisor.watchdog`, `supervisor.breaker.trips`,
    /// `supervisor.scrubs`, `supervisor.backoff`), the injector's
    /// `inject.applied` event counts, and the usual recovery histograms.
    /// Per-unit registries merge in index order, so the result is
    /// byte-identical at any thread count.
    pub fn run_instrumented(
        spec: InjectSpec,
        parallel: ParallelSpec,
    ) -> (InjectReport, MetricsRegistry) {
        Self::run_units(spec, parallel, true)
    }

    fn run_units(
        spec: InjectSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (InjectReport, MetricsRegistry) {
        struct Acc {
            cells: Vec<InjectCell>,
            anomalies: Vec<String>,
            registry: MetricsRegistry,
        }
        let plans = standard_plans(spec.seed);
        let per_plan = StrategyKind::ALL.len() * 2;
        // Each worker folds its index-partition straight into a partial
        // report; partials concatenate in chunk (= index) order, so no
        // intermediate per-unit vector is ever materialized.
        let acc = run_chunk_fold(
            plans.len() * per_plan,
            parallel,
            || Acc { cells: Vec::new(), anomalies: Vec::new(), registry: MetricsRegistry::new() },
            |range, acc: &mut Acc| {
                // One batched seed stream per chunk instead of a fresh
                // `split_seed` derivation per unit; the stream yields the
                // same `split_seed(seed, index)` values, so reports are
                // unchanged.
                let mut seeds = SplitSeedStream::new(spec.seed, range.start as u64);
                for index in range {
                    let plan = &plans[index / per_plan];
                    let strategy = StrategyKind::ALL[(index % per_plan) / 2];
                    let scrub = index % 2 == 1;
                    let (cell, metrics) =
                        run_unit(plan, strategy, scrub, seeds.next_seed(), instrumented);
                    acc.anomalies.extend(contract_violation(&cell));
                    if let Some(reg) = &metrics {
                        acc.registry.merge_from(reg);
                    }
                    if instrumented {
                        acc.registry.incr("inject.units", cell.strategy.name(), 1);
                        if cell.survived {
                            acc.registry.incr("inject.survived", cell.strategy.name(), 1);
                        }
                    }
                    acc.cells.push(cell);
                }
            },
            |acc, later| {
                acc.cells.extend(later.cells);
                acc.anomalies.extend(later.anomalies);
                acc.registry.merge_from(&later.registry);
            },
        );
        (InjectReport { spec, cells: acc.cells, anomalies: acc.anomalies }, acc.registry)
    }

    /// The unit for `(plan, strategy, scrub)`, if the plan exists.
    pub fn cell(&self, plan: &str, strategy: StrategyKind, scrub: bool) -> Option<&InjectCell> {
        self.cells.iter().find(|c| c.plan == plan && c.strategy == strategy && c.scrub == scrub)
    }

    /// `(survived, total)` over every unit of `class` under `strategy`
    /// with the given scrub setting.
    pub fn class_survival(
        &self,
        class: FaultClass,
        strategy: StrategyKind,
        scrub: bool,
    ) -> (u32, u32) {
        self.cells
            .iter()
            .filter(|c| c.class == class && c.strategy == strategy && c.scrub == scrub)
            .fold((0, 0), |(s, t), c| (s + u32::from(c.survived), t + 1))
    }

    /// Total watchdog fires across the campaign.
    pub fn watchdog_fires(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.watchdog_fires)).sum()
    }

    /// Total circuit-breaker trips across the campaign.
    pub fn breaker_trips(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.breaker_trips)).sum()
    }

    /// Total environment scrubs across the campaign.
    pub fn scrubs(&self) -> u64 {
        self.cells.iter().map(|c| u64::from(c.scrubs)).sum()
    }
}

impl fmt::Display for InjectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let plans = self.cells.iter().map(|c| c.plan.as_str()).collect::<Vec<_>>();
        let mut seen: Vec<&str> = Vec::new();
        for p in plans {
            if !seen.contains(&p) {
                seen.push(p);
            }
        }
        writeln!(
            f,
            "Injection campaign: {} plans x {} strategies x scrub off/on, master seed {}",
            seen.len(),
            StrategyKind::ALL.len(),
            self.spec.seed
        )?;
        for plan in seen {
            for scrub in [false, true] {
                let survivors: Vec<&str> = self
                    .cells
                    .iter()
                    .filter(|c| c.plan == plan && c.scrub == scrub && c.survived)
                    .map(|c| c.strategy.name())
                    .collect();
                let class =
                    self.cells.iter().find(|c| c.plan == plan).map_or("?", |c| c.class.short());
                writeln!(
                    f,
                    "  {:<20} {:<13} scrub {:<4} survivors: {}",
                    plan,
                    class,
                    if scrub { "on" } else { "off" },
                    if survivors.is_empty() { "(none)".to_owned() } else { survivors.join(" ") },
                )?;
            }
        }
        writeln!(
            f,
            "  supervisor: {} watchdog fires, {} breaker trips, {} scrubs",
            self.watchdog_fires(),
            self.breaker_trips(),
            self.scrubs()
        )?;
        if self.anomalies.is_empty() {
            writeln!(f, "  no anomalies: every survival matched the injected condition's class")
        } else {
            writeln!(f, "  ANOMALIES: {:?}", self.anomalies)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_upholds_the_class_contract() {
        let report = InjectReport::run(InjectSpec { seed: 1 });
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
        assert_eq!(report.cells.len(), 9 * 7 * 2);
        // Transient injections are survivable by the retry family without
        // any operator help.
        for strategy in [StrategyKind::Restart, StrategyKind::Rollback, StrategyKind::Progressive] {
            let (survived, total) =
                report.class_survival(FaultClass::EnvDependentTransient, strategy, false);
            assert!(survived > 0, "{strategy}: no transient injection survived");
            assert_eq!(total, 5);
        }
        // Nontransient injections defeat every generic strategy without a
        // scrub, and the scrub step is what turns them survivable.
        let mut scrub_rescues = 0;
        for strategy in StrategyKind::ALL {
            let (survived, _) =
                report.class_survival(FaultClass::EnvDependentNonTransient, strategy, false);
            if strategy.is_generic() {
                assert_eq!(survived, 0, "{strategy}: nontransient survived without scrub");
            }
            let (with_scrub, _) =
                report.class_survival(FaultClass::EnvDependentNonTransient, strategy, true);
            scrub_rescues += with_scrub;
        }
        assert!(scrub_rescues > 0, "scrubbing rescued no nontransient unit");
        // The control plan survives nothing, scrub or not.
        for scrub in [false, true] {
            for strategy in StrategyKind::ALL {
                let (survived, total) =
                    report.class_survival(FaultClass::EnvironmentIndependent, strategy, scrub);
                assert_eq!((survived, total), (0, 1), "{strategy} scrub={scrub}");
            }
        }
    }

    #[test]
    fn hardening_counters_are_exercised() {
        let report = InjectReport::run(InjectSpec { seed: 1 });
        assert!(report.watchdog_fires() > 0, "no hang was ever detected");
        assert!(report.breaker_trips() > 0, "no breaker ever tripped");
        assert!(report.scrubs() > 0, "no scrub ever ran");
        // Scrubs only happen in scrub-enabled units.
        assert!(report.cells.iter().all(|c| c.scrub || c.scrubs == 0));
        // The control plan injects nothing; every other plan injects.
        for cell in &report.cells {
            if cell.plan == "ei-control" {
                assert_eq!(cell.injected, 0);
            } else {
                assert!(cell.injected > 0, "{}: no event applied", cell.plan);
            }
        }
    }

    #[test]
    fn campaigns_are_reproducible_and_thread_invariant() {
        let spec = InjectSpec { seed: 7 };
        let reference = InjectReport::run_with(spec, ParallelSpec::threads(1));
        for threads in [2usize, 8] {
            let report = InjectReport::run_with(spec, ParallelSpec::threads(threads));
            assert_eq!(report, reference, "{threads} threads");
        }
    }

    #[test]
    fn instrumented_campaign_reproduces_the_plain_report() {
        let spec = InjectSpec { seed: 5 };
        let plain = InjectReport::run(spec);
        let (report, registry) = InjectReport::run_instrumented(spec, ParallelSpec::default());
        assert_eq!(report, plain, "metrics must not perturb the campaign");
        let units: u64 =
            StrategyKind::ALL.iter().map(|s| registry.counter("inject.units", s.name())).sum();
        assert_eq!(units, 9 * 7 * 2, "every unit counted exactly once");
        // The supervisor's hardening events reached the registry.
        let watchdog: u64 = StrategyKind::ALL
            .iter()
            .map(|s| registry.counter("supervisor.watchdog", s.name()))
            .sum();
        assert_eq!(watchdog, report.watchdog_fires());
        let scrubs: u64 =
            StrategyKind::ALL.iter().map(|s| registry.counter("supervisor.scrubs", s.name())).sum();
        assert_eq!(scrubs, report.scrubs());
    }

    #[test]
    fn instrumented_registry_is_identical_across_thread_counts() {
        let spec = InjectSpec { seed: 3 };
        let (ref_report, ref_registry) =
            InjectReport::run_instrumented(spec, ParallelSpec::threads(1));
        for threads in [2usize, 8] {
            let (report, registry) =
                InjectReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, ref_report, "{threads} threads");
            assert_eq!(registry, ref_registry, "{threads} threads");
        }
    }

    #[test]
    fn display_summarizes() {
        let report = InjectReport::run(InjectSpec { seed: 2 });
        let text = report.to_string();
        assert!(text.contains("9 plans"));
        assert!(text.contains("ei-control"));
        assert!(text.contains("watchdog fires"));
    }
}
