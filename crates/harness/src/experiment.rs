//! One fault-injection experiment: inject a corpus fault into its
//! application, drive the triggering workload under a recovery strategy,
//! and record whether the work survived.

use faultstudy_apps::{spawn_app, Request};
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_corpus::CuratedFault;
use faultstudy_env::Environment;
use faultstudy_obs::MetricsRegistry;
use faultstudy_recovery::{
    run_workload, AppSpecific, NoRecovery, ProcessPair, ProgressiveRetry, RecoveryStrategy,
    Rejuvenation, RestartRetry, RollbackRecovery,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The recovery strategies the matrix compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrategyKind {
    /// No recovery: first failure is fatal (baseline).
    None,
    /// Generic restart + retry from the last checkpoint.
    Restart,
    /// Process pairs: mirrored state, fast failover \[Gray86\].
    ProcessPair,
    /// Checkpoint every N requests + message-log replay \[Elnozahy99\].
    Rollback,
    /// Progressive retry with environment perturbation \[Wang93\].
    Progressive,
    /// Proactive software rejuvenation \[Huang95\].
    Rejuvenation,
    /// The application-specific comparator (§2).
    AppSpecific,
}

impl StrategyKind {
    /// Every strategy, baseline first.
    pub const ALL: [StrategyKind; 7] = [
        StrategyKind::None,
        StrategyKind::Restart,
        StrategyKind::ProcessPair,
        StrategyKind::Rollback,
        StrategyKind::Progressive,
        StrategyKind::Rejuvenation,
        StrategyKind::AppSpecific,
    ];

    /// Short identifier.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::None => "none",
            StrategyKind::Restart => "restart",
            StrategyKind::ProcessPair => "process-pair",
            StrategyKind::Rollback => "rollback",
            StrategyKind::Progressive => "progressive",
            StrategyKind::Rejuvenation => "rejuvenation",
            StrategyKind::AppSpecific => "app-specific",
        }
    }

    /// Whether the strategy is application-generic in the paper's sense.
    pub fn is_generic(self) -> bool {
        !matches!(self, StrategyKind::Rejuvenation | StrategyKind::AppSpecific)
    }

    /// Instantiates the strategy with the harness's standard budgets.
    pub fn build(self) -> Box<dyn RecoveryStrategy> {
        match self {
            StrategyKind::None => Box::new(NoRecovery),
            StrategyKind::Restart => Box::new(RestartRetry::new(3)),
            StrategyKind::ProcessPair => Box::new(ProcessPair::new(3)),
            StrategyKind::Rollback => Box::new(RollbackRecovery::new(2, 3)),
            StrategyKind::Progressive => Box::new(ProgressiveRetry::new(5)),
            StrategyKind::Rejuvenation => Box::new(Rejuvenation::new(2, 3)),
            StrategyKind::AppSpecific => Box::new(AppSpecific::new(3)),
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of one (fault, strategy) experiment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// Corpus slug of the injected fault.
    pub slug: String,
    /// The fault's class per the corpus.
    pub class: FaultClass,
    /// The strategy under test.
    pub strategy: StrategyKind,
    /// Whether the full triggering workload was eventually served.
    pub survived: bool,
    /// Fault manifestations observed.
    pub failures: u32,
    /// Recovery actions performed.
    pub recoveries: u32,
}

/// Builds the triggering workload for a fault: warm-up, the trigger
/// repeated as its How-To-Repeat demands, and a trailing request proving
/// continued service.
fn workload_for(fault: &CuratedFault, benign: Request, trigger: Request) -> Vec<Request> {
    // Resource-leak faults manifest under sustained load (§5.1 "high
    // load"): their trigger must be repeated past the leak threshold. The
    // corpus knows how often from the condition kind.
    let mut workload = vec![benign.clone(), benign.clone()];
    for _ in 0..fault.trigger_reps() {
        workload.push(trigger.clone());
    }
    workload.push(benign);
    workload
}

/// Builds `fault`'s triggering workload without running anything.
///
/// Benign and trigger requests are pure functions of `(application,
/// slug)` — they never read the environment — so a campaign prepares every
/// fault's workload once up front instead of rebuilding (and re-cloning)
/// it for each of millions of samples. The scratch environment here is
/// discarded; only the request text survives.
pub fn build_workload(fault: &CuratedFault) -> Vec<Request> {
    let mut env = standard_env(0, false);
    let mut app = spawn_app(fault.app(), &mut env);
    app.inject(fault.slug(), &mut env).expect("every corpus fault is injectable");
    let benign = app.benign_request();
    let trigger =
        app.trigger_request(fault.slug()).expect("every corpus fault has a triggering request");
    workload_for(fault, benign, trigger)
}

/// The slug-free outcome of one experiment: what a campaign aggregates.
///
/// [`FaultOutcome`] owns the fault's slug, which costs an allocation per
/// sample; the campaign hot path borrows the slug from the corpus instead
/// and folds these plain counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeanOutcome {
    /// The fault's class per the corpus.
    pub class: FaultClass,
    /// Whether the full triggering workload was eventually served.
    pub survived: bool,
    /// Fault manifestations observed.
    pub failures: u32,
    /// Recovery actions performed.
    pub recoveries: u32,
}

fn run_prepared_in(
    fault: &CuratedFault,
    strategy: StrategyKind,
    env: &mut Environment,
    workload: &[Request],
) -> LeanOutcome {
    let mut app = spawn_app(fault.app(), env);
    app.inject(fault.slug(), env).expect("every corpus fault is injectable into its application");
    let mut strat = strategy.build();
    let run = run_workload(app.as_mut(), env, workload, strat.as_mut());
    LeanOutcome {
        class: fault.class(),
        survived: run.survived,
        failures: run.failures,
        recoveries: run.recoveries,
    }
}

/// Runs one fault under one strategy against a workload prepared by
/// [`build_workload`] — the campaign hot path. Byte-identical in outcome
/// to [`run_fault_experiment`], minus the owned slug.
pub fn run_prepared_experiment(
    fault: &CuratedFault,
    strategy: StrategyKind,
    seed: u64,
    workload: &[Request],
) -> LeanOutcome {
    let mut env = standard_env(seed, false);
    run_prepared_in(fault, strategy, &mut env, workload)
}

/// Like [`run_prepared_experiment`] with the metrics sink enabled; returns
/// the registry alongside the outcome, re-keying the TTR distribution
/// under this experiment's matrix cell exactly as
/// [`run_fault_experiment_instrumented`] does.
pub fn run_prepared_experiment_instrumented(
    fault: &CuratedFault,
    strategy: StrategyKind,
    seed: u64,
    workload: &[Request],
) -> (LeanOutcome, MetricsRegistry) {
    let mut env = standard_env(seed, true);
    let outcome = run_prepared_in(fault, strategy, &mut env, workload);
    let mut reg = env.metrics.take().expect("metrics were enabled");
    if let Some(ttr) = reg.histogram("recovery.ttr", strategy.name()).cloned() {
        reg.merge_histogram("recovery.ttr.class", cell_label(fault.class(), strategy), ttr);
    }
    (outcome, reg)
}

/// The harness's standard environment budgets, shared by every experiment.
pub(crate) fn standard_env(seed: u64, metrics: bool) -> Environment {
    Environment::builder()
        .seed(seed)
        .fd_limit(16)
        .proc_slots(8)
        .fs_capacity(256 * 1024)
        .max_file_size(64 * 1024)
        .metrics(metrics)
        .build()
}

fn run_experiment_in(
    fault: &CuratedFault,
    strategy: StrategyKind,
    env: &mut Environment,
) -> FaultOutcome {
    let mut app = spawn_app(fault.app(), env);
    app.inject(fault.slug(), env).expect("every corpus fault is injectable into its application");
    let benign = app.benign_request();
    let trigger =
        app.trigger_request(fault.slug()).expect("every corpus fault has a triggering request");
    let workload = workload_for(fault, benign, trigger);
    let mut strat = strategy.build();
    let run = run_workload(app.as_mut(), env, &workload, strat.as_mut());
    FaultOutcome {
        slug: fault.slug().to_owned(),
        class: fault.class(),
        strategy,
        survived: run.survived,
        failures: run.failures,
        recoveries: run.recoveries,
    }
}

/// Runs one fault under one strategy with the given environment seed.
///
/// The environment is built fresh, the application spawned and injected,
/// and the triggering workload driven by the supervisor. Everything is a
/// pure function of `(fault, strategy, seed)`.
pub fn run_fault_experiment(
    fault: &CuratedFault,
    strategy: StrategyKind,
    seed: u64,
) -> FaultOutcome {
    let mut env = standard_env(seed, false);
    run_experiment_in(fault, strategy, &mut env)
}

/// Like [`run_fault_experiment`], but with the environment's metrics sink
/// enabled; returns the registry alongside the outcome.
///
/// The registry carries the supervisor's per-strategy time-to-recovery and
/// retry histograms, plus the TTR distribution re-keyed under this
/// experiment's matrix cell, `recovery.ttr.class{<class>/<strategy>}`.
/// Survival counters (`experiment.*{<strategy>}`) are added by the
/// aggregating callers — the campaign and the matrix — which see the whole
/// sample population. Metrics are pure observation, so the outcome is
/// byte-identical to the uninstrumented run's.
pub fn run_fault_experiment_instrumented(
    fault: &CuratedFault,
    strategy: StrategyKind,
    seed: u64,
) -> (FaultOutcome, MetricsRegistry) {
    let mut env = standard_env(seed, true);
    let outcome = run_experiment_in(fault, strategy, &mut env);
    let mut reg = env.metrics.take().expect("metrics were enabled");
    if let Some(ttr) = reg.histogram("recovery.ttr", strategy.name()).cloned() {
        reg.merge_histogram("recovery.ttr.class", cell_label(fault.class(), strategy), ttr);
    }
    (outcome, reg)
}

/// The `<class>/<strategy>` label of a matrix cell, interned once so the
/// per-sample instrumented path never formats a label.
pub(crate) fn cell_label(class: FaultClass, strategy: StrategyKind) -> &'static str {
    use std::sync::OnceLock;
    static CELLS: OnceLock<Vec<String>> = OnceLock::new();
    let cells = CELLS.get_or_init(|| {
        FaultClass::ALL
            .iter()
            .flat_map(|c| {
                StrategyKind::ALL.iter().map(move |s| format!("{}/{}", c.short(), s.name()))
            })
            .collect()
    });
    let ci = FaultClass::ALL.iter().position(|&c| c == class).expect("class in ALL");
    let si = StrategyKind::ALL.iter().position(|&s| s == strategy).expect("strategy in ALL");
    cells[ci * StrategyKind::ALL.len() + si].as_str()
}

/// Runs several co-resident faults of the *same application* under one
/// strategy: the workload triggers each fault in corpus order.
///
/// Released software carries many latent defects at once (§4: "every piece
/// of software goes through a huge number of bugs over its lifetime");
/// this extension measures whether recovery from one fault is undone by
/// the next. The survival rule composes naturally: the workload survives
/// iff every constituent trigger is eventually served.
///
/// # Panics
///
/// Panics if the faults span different applications or the list is empty.
pub fn run_multi_fault_experiment(
    faults: &[&CuratedFault],
    strategy: StrategyKind,
    seed: u64,
) -> FaultOutcome {
    let first = faults.first().expect("at least one fault");
    assert!(
        faults.iter().all(|f| f.app() == first.app()),
        "multi-fault experiments are per-application"
    );
    let mut env = standard_env(seed, false);
    let mut app = spawn_app(first.app(), &mut env);
    for fault in faults {
        app.inject(fault.slug(), &mut env).expect("injectable");
    }
    let benign = app.benign_request();
    let mut workload = vec![benign.clone()];
    for fault in faults {
        workload.push(app.trigger_request(fault.slug()).expect("trigger"));
    }
    workload.push(benign);
    let mut strat = strategy.build();
    let run = run_workload(app.as_mut(), &mut env, &workload, strat.as_mut());
    // The combined class is the hardest constituent: EI dominates EDN
    // dominates EDT (ordered by how little recovery can do).
    let class = faults.iter().map(|f| f.class()).min().expect("nonempty");
    FaultOutcome {
        slug: faults.iter().map(|f| f.slug()).collect::<Vec<_>>().join("+"),
        class,
        strategy,
        survived: run.survived,
        failures: run.failures,
        recoveries: run.recoveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_corpus::find;

    #[test]
    fn strategy_kinds_have_unique_names() {
        use std::collections::BTreeSet;
        let names: BTreeSet<_> = StrategyKind::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), StrategyKind::ALL.len());
        assert!(StrategyKind::Restart.is_generic());
        assert!(!StrategyKind::AppSpecific.is_generic());
        assert!(!StrategyKind::Rejuvenation.is_generic());
    }

    #[test]
    fn experiments_are_deterministic_in_the_seed() {
        let fault = find("mysql-edt-01").unwrap();
        let a = run_fault_experiment(&fault, StrategyKind::Restart, 42);
        let b = run_fault_experiment(&fault, StrategyKind::Restart, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn environment_independent_fault_never_survives_any_strategy() {
        let fault = find("mysql-ei-03").unwrap();
        for strategy in StrategyKind::ALL {
            let out = run_fault_experiment(&fault, strategy, 7);
            assert!(!out.survived, "{strategy}");
            assert!(out.failures > 0);
        }
    }

    #[test]
    fn nontransient_fault_defeats_generic_but_leak_yields_to_app_knowledge() {
        let leak = find("apache-edn-01").unwrap();
        for strategy in [StrategyKind::Restart, StrategyKind::ProcessPair, StrategyKind::Rollback] {
            assert!(!run_fault_experiment(&leak, strategy, 7).survived, "{strategy}");
        }
        assert!(run_fault_experiment(&leak, StrategyKind::AppSpecific, 7).survived);
        // Rejuvenation *prevents* the leak from ever manifesting (§6.2).
        let rejuv = run_fault_experiment(&leak, StrategyKind::Rejuvenation, 7);
        assert!(rejuv.survived);
        assert_eq!(rejuv.failures, 0, "proactive rejuvenation avoided the crash");
    }

    #[test]
    fn instrumented_experiment_matches_plain_and_carries_metrics() {
        let fault = find("apache-edt-04").unwrap();
        let plain = run_fault_experiment(&fault, StrategyKind::Restart, 7);
        let (outcome, reg) = run_fault_experiment_instrumented(&fault, StrategyKind::Restart, 7);
        assert_eq!(outcome, plain, "instrumentation must not perturb the experiment");
        let ttr = reg.histogram("recovery.ttr", "restart").expect("recovery happened");
        assert!(ttr.max().unwrap() > 0);
        assert_eq!(
            reg.histogram("recovery.ttr.class", "transient/restart").map(|h| h.count()),
            Some(ttr.count()),
            "class re-key carries the same distribution"
        );
    }

    #[test]
    fn transient_fault_survives_restart_but_not_no_recovery() {
        let fault = find("apache-edt-04").unwrap();
        assert!(run_fault_experiment(&fault, StrategyKind::Restart, 7).survived);
        assert!(!run_fault_experiment(&fault, StrategyKind::None, 7).survived);
    }

    #[test]
    fn two_transient_faults_both_survive_one_strategy() {
        let a = find("apache-edt-02").unwrap();
        let b = find("apache-edt-07").unwrap();
        let out = run_multi_fault_experiment(&[&a, &b], StrategyKind::Restart, 7);
        assert!(out.survived, "both transient triggers recoverable in sequence");
        assert_eq!(out.class, FaultClass::EnvDependentTransient);
        // Recovering the first fault advances simulated time, which heals
        // the second (drained entropy) before its trigger even runs — one
        // recovery can clear multiple transient conditions.
        assert!(out.recoveries >= 1);
        assert!(out.failures >= 1);
        assert_eq!(out.slug, "apache-edt-02+apache-edt-07");
    }

    #[test]
    fn a_deterministic_cohabitant_dooms_the_workload() {
        let transient = find("apache-edt-02").unwrap();
        let deterministic = find("apache-ei-26").unwrap();
        let out =
            run_multi_fault_experiment(&[&transient, &deterministic], StrategyKind::Restart, 7);
        assert!(!out.survived, "the EI trigger is still fatal");
        assert_eq!(out.class, FaultClass::EnvironmentIndependent, "hardest class wins");
        // The transient fault *was* recovered before the EI one hit.
        assert!(out.recoveries >= 1);
    }

    #[test]
    #[should_panic(expected = "per-application")]
    fn cross_application_multi_fault_rejected() {
        let a = find("apache-edt-02").unwrap();
        let b = find("mysql-edt-01").unwrap();
        let _ = run_multi_fault_experiment(&[&a, &b], StrategyKind::Restart, 1);
    }

    #[test]
    fn dns_healing_needs_slow_recovery_fast_failover_misses_it() {
        let fault = find("apache-edt-01").unwrap();
        let restart = run_fault_experiment(&fault, StrategyKind::Restart, 7);
        assert!(restart.survived, "1s restarts reach the 2s DNS repair point");
        let pair = run_fault_experiment(&fault, StrategyKind::ProcessPair, 7);
        assert!(
            !pair.survived,
            "100ms failovers exhaust the budget before DNS heals — fast failover \
             is not automatically better for time-healing conditions"
        );
    }
}
