//! The oblivious-recovery campaign: failure-oblivious continuation and
//! self-healing measured against generic restart, priced by a
//! per-application correctness oracle.
//!
//! The microreboot campaign (see [`micro`](crate::micro)) showed what
//! application knowledge of *state* buys. This campaign asks the next
//! question in the paper's §8 lineage: what does giving up on
//! *correctness* buy? Each `(plan, mode, application)` unit offers the
//! same open-loop stream under five recovery modes:
//!
//! - `restart` — [`RestartRetry`], the generic baseline;
//! - `oblivious` — [`Oblivious`]: discard the failing request and keep
//!   serving (visible refusal, nothing dropped);
//! - `manufactured` — [`ManufacturedValue`]: synthesize a deterministic
//!   default answer (silent substitution);
//! - `statescrub` — [`StateScrub`]: drop volatile component state in
//!   place instead of restoring a checkpoint;
//! - `healer` — [`ProfileHealer`]: pick retry/scrub/discard per attempt
//!   from a failure profile observed in a deterministic microreboot
//!   probe of the same unit.
//!
//! After every recovery the supervisor evaluates the application's own
//! correctness oracle
//! ([`Application::check_oracle`](faultstudy_apps::Application::check_oracle)),
//! so each cell reports not just availability but the *silent-wrong-answer
//! cost* of staying available: substitutes manufactured and oracle
//! violations accrued. The campaign's physics, asserted as anomalies:
//! the environment-independent majority that retry never rescues *is*
//! survivable by going oblivious — at a wrong-answer cost the oracle
//! makes visible — while the state-leak slice is healed silently and
//! correctly by scrubbing alone.
//!
//! Determinism: unit seeds come from the batched `split_seed` stream,
//! the healer's probe derives from `split_seed(unit_seed, 5)` on its own
//! environment, and units fold in index order through [`run_chunk_fold`]
//! — reports and registries are byte-identical at any thread count and
//! chunk size.

use crate::experiment::standard_env;
use crate::micro::micro_plans;
use crate::traffic::{traffic_config, traffic_mix};
use faultstudy_apps::spawn_app;
use faultstudy_core::taxonomy::{AppKind, FaultClass};
use faultstudy_exec::{run_chunk_fold, ParallelSpec};
use faultstudy_inject::{InjectionPlan, Injector};
use faultstudy_obs::{Histogram, MetricsRegistry};
use faultstudy_recovery::{
    FailureProfile, ManufacturedValue, MicroReboot, Oblivious, ProfileHealer, RecoveryStrategy,
    RestartRetry, StateScrub,
};
use faultstudy_sim::rng::{split_seed, SplitSeedStream};
use faultstudy_traffic::{run_open_loop, ArrivalKind, TrafficParams, UnitStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Retry budget of the restart baseline, matching the recovery matrix.
const RESTART_RETRIES: u32 = 3;

/// Retry budget of the scrubbing modes. As in the microreboot campaign,
/// budgets are time-equivalent rather than attempt-equivalent: an
/// in-place scrub charges tens of milliseconds where a process restart
/// charges ~1 s, so eight scrub attempts cost less downtime than one
/// restart attempt.
const SCRUB_RETRIES: u32 = 8;

/// Requests the healer's microreboot probe offers on its own environment
/// before the measured run. Fixed so the probe cost — and the profile it
/// distills — is independent of the unit's measured load.
const PROBE_REQUESTS: u64 = 96;

/// Configuration of an oblivious-recovery campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObliviousSpec {
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
    /// Total requests offered across the whole campaign, spread evenly
    /// over the units (earlier units absorb the remainder).
    pub requests: u64,
    /// Arrival-process family for every unit.
    pub arrival: ArrivalKind,
}

impl Default for ObliviousSpec {
    fn default() -> Self {
        ObliviousSpec { seed: 1, requests: 20_000, arrival: ArrivalKind::Poisson }
    }
}

/// The recovery mode of one campaign unit — the comparison axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealMode {
    /// Whole-process restart from the last checkpoint ([`RestartRetry`]).
    Restart,
    /// Discard the failing request and keep serving ([`Oblivious`]).
    Oblivious,
    /// Serve a deterministic default instead ([`ManufacturedValue`]).
    Manufactured,
    /// Drop volatile component state in place ([`StateScrub`]).
    Scrub,
    /// Profile-guided retry/scrub/discard ([`ProfileHealer`]).
    Healer,
}

impl HealMode {
    /// Every mode, in enumeration order.
    pub const ALL: [HealMode; 5] = [
        HealMode::Restart,
        HealMode::Oblivious,
        HealMode::Manufactured,
        HealMode::Scrub,
        HealMode::Healer,
    ];

    /// The mode's strategy name as it appears in metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            HealMode::Restart => "restart",
            HealMode::Oblivious => "oblivious",
            HealMode::Manufactured => "manufactured",
            HealMode::Scrub => "statescrub",
            HealMode::Healer => "healer",
        }
    }

    /// Builds the mode's strategy for one unit. Only the healer looks at
    /// the plan: its profile comes from a deterministic microreboot probe
    /// of the same `(plan, app)` on a separate environment.
    fn build(
        self,
        plan: &InjectionPlan,
        app_kind: AppKind,
        arrival: ArrivalKind,
        unit_seed: u64,
    ) -> Box<dyn RecoveryStrategy> {
        match self {
            HealMode::Restart => Box::new(RestartRetry::new(RESTART_RETRIES)),
            HealMode::Oblivious => Box::new(Oblivious::new(RESTART_RETRIES).discard_after(0)),
            HealMode::Manufactured => Box::new(ManufacturedValue::new(0).with_defaults()),
            HealMode::Scrub => Box::new(StateScrub::new(SCRUB_RETRIES).with_scrub()),
            HealMode::Healer => {
                let profile = probe_profile(plan, app_kind, arrival, unit_seed);
                Box::new(ProfileHealer::new(SCRUB_RETRIES, profile))
            }
        }
    }
}

impl fmt::Display for HealMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The healer's observation pass: a short microreboot run of the same
/// `(plan, app)` on its own instrumented environment, distilled into a
/// [`FailureProfile`]. Seeded from `split_seed(unit_seed, 5)` so it is a
/// pure function of the unit and never perturbs the measured run.
fn probe_profile(
    plan: &InjectionPlan,
    app_kind: AppKind,
    arrival: ArrivalKind,
    unit_seed: u64,
) -> FailureProfile {
    let probe_seed = split_seed(unit_seed, 5);
    let mut env = standard_env(probe_seed, true);
    let mut app = spawn_app(app_kind, &mut env);
    if app_kind == AppKind::Apache {
        app.arm_defect(&plan.companion_defect)
            .expect("every plan's companion defect arms in MiniWeb");
    }
    let mix = traffic_mix(app.as_ref(), app_kind, plan);
    let mut injector = Injector::new(plan, &mut env);
    let mut probe = MicroReboot::new(SCRUB_RETRIES, split_seed(probe_seed, 4));
    let config = traffic_config(split_seed(probe_seed, 1));
    let params = TrafficParams::standard(arrival, PROBE_REQUESTS);
    run_open_loop(
        app.as_mut(),
        &mut env,
        &mut probe,
        &config,
        Some(&mut injector),
        &mix,
        &params,
        split_seed(probe_seed, 2),
        split_seed(probe_seed, 3),
    );
    let registry = env.metrics.take().expect("probe metrics were enabled");
    FailureProfile::from_registry(&registry)
}

/// One `(plan, mode, application)` unit of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObliviousCell {
    /// Application under load.
    pub app: AppKind,
    /// Injection plan name.
    pub plan: String,
    /// The paper class of the injected condition.
    pub class: FaultClass,
    /// Recovery mode under test.
    pub mode: HealMode,
    /// Injection events that came due and were applied.
    pub injected: usize,
    /// The unit's request ledger.
    pub stats: UnitStats,
    /// Time-to-recovery over the unit's recovered requests (simulated).
    pub ttr: Histogram,
    /// Requests answered with a visible discard substitute.
    pub discarded: u64,
    /// Requests answered with a silent manufactured default.
    pub manufactured: u64,
    /// Correctness-oracle violations: per-request checks recorded by the
    /// supervisor plus one end-of-unit audit of the final state.
    pub oracle_violations: u64,
}

/// Aggregate of one oblivious-recovery campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObliviousReport {
    /// The spec that produced this report.
    pub spec: ObliviousSpec,
    /// Every unit, in `(plan, mode, app)` enumeration order.
    pub cells: Vec<ObliviousCell>,
    /// Violations of the oblivious-recovery contract; must be empty for
    /// a campaign large enough to exercise every contract cell.
    pub anomalies: Vec<String>,
}

/// One campaign unit: fresh environment and application, the plan's
/// injector on the pre-attempt hook, and an open-loop request stream
/// under the unit's heal mode. Metrics are always enabled — the cell's
/// TTR, substitute, and oracle counters come from the registry — so the
/// plain and instrumented campaigns run the very same simulation.
fn run_unit(
    plan: &InjectionPlan,
    mode: HealMode,
    app_kind: AppKind,
    requests: u64,
    arrival: ArrivalKind,
    unit_seed: u64,
    instrumented: bool,
) -> (ObliviousCell, Option<MetricsRegistry>) {
    let mut env = standard_env(unit_seed, true);
    let mut app = spawn_app(app_kind, &mut env);
    if app_kind == AppKind::Apache {
        app.arm_defect(&plan.companion_defect)
            .expect("every plan's companion defect arms in MiniWeb");
    }
    let mix = traffic_mix(app.as_ref(), app_kind, plan);
    let mut injector = Injector::new(plan, &mut env);
    let mut strat = mode.build(plan, app_kind, arrival, unit_seed);
    let config = traffic_config(split_seed(unit_seed, 1));
    let params = TrafficParams::standard(arrival, requests);
    let stats = run_open_loop(
        app.as_mut(),
        &mut env,
        strat.as_mut(),
        &config,
        Some(&mut injector),
        &mix,
        &params,
        split_seed(unit_seed, 2),
        split_seed(unit_seed, 3),
    );
    let registry = env.metrics.take().expect("metrics were enabled");
    let name = mode.name();
    let ttr = registry.histogram("recovery.ttr", name).cloned().unwrap_or_default();
    // The end-of-unit audit catches corruption that no later success
    // re-checked — e.g. a unit whose final requests were all dropped.
    let final_audit = app.check_oracle(&env).len() as u64;
    let cell = ObliviousCell {
        app: app_kind,
        plan: plan.name.clone(),
        class: plan.class,
        mode,
        injected: injector.applied(),
        discarded: registry.counter("oblivious.discarded", name),
        manufactured: registry.counter("oblivious.manufactured", name),
        oracle_violations: registry.counter("oracle.violations", name) + final_audit,
        stats,
        ttr,
    };
    let registry = (instrumented && !registry.is_empty()).then_some(registry);
    (cell, registry)
}

/// Ledgers a finished unit into the campaign registry under its
/// `<class>/<mode>` cell label.
fn ledger_unit(registry: &mut MetricsRegistry, cell: &ObliviousCell) {
    let label = format!("{}/{}", cell.class.short(), cell.mode.name());
    let s = &cell.stats;
    registry.incr("oblivious.offered", &label, s.offered);
    registry.incr("oblivious.ok", &label, s.ok);
    registry.incr("oblivious.denied", &label, s.denied);
    registry.incr("oblivious.dropped", &label, s.dropped);
    registry.incr("oblivious.slo.violations", &label, s.slo_violations);
    registry.incr("oblivious.sim_nanos", &label, s.sim_nanos);
    registry.incr("oblivious.substitute.discarded", &label, cell.discarded);
    registry.incr("oblivious.substitute.manufactured", &label, cell.manufactured);
    registry.incr("oblivious.oracle.violations", &label, cell.oracle_violations);
    registry.merge_histogram("oblivious.latency", &label, s.latency.clone());
    registry.merge_histogram("oblivious.ttr.class", &label, cell.ttr.clone());
}

/// Units per campaign: every plan × mode × application.
fn unit_count(plans: usize) -> usize {
    plans * HealMode::ALL.len() * AppKind::ALL.len()
}

/// The campaign's class contract, checked on the folded cell set. Every
/// check pins one edge of the physics on the application whose defect
/// rides in the traffic mix (MiniWeb): the EI slice is rescued *only* by
/// the oblivious family and at visible cost, the state-leak slice is
/// healed silently by scrubbing, and a contract cell that was offered no
/// requests is itself an anomaly — an underpowered campaign must not
/// pass vacuously.
fn contract_anomalies(cells: &[ObliviousCell]) -> Vec<String> {
    let mut anomalies = Vec::new();
    let mut check = |plan: &str,
                     mode: HealMode,
                     what: &str,
                     holds: &dyn Fn(&ObliviousCell) -> bool| {
        let found =
            cells.iter().find(|c| c.plan == plan && c.mode == mode && c.app == AppKind::Apache);
        let Some(cell) = found else {
            anomalies.push(format!("{plan}/{}: contract cell missing", mode.name()));
            return;
        };
        if cell.stats.offered == 0 {
            anomalies
                .push(format!("{plan}/{}: offered no requests, contract unchecked", mode.name()));
            return;
        }
        if !holds(cell) {
            anomalies.push(format!("{plan}/{}: {what}", mode.name()));
        }
    };
    // The EI control: a deterministic code defect in the mix.
    check(
        "ei-control",
        HealMode::Restart,
        "generic restart must keep dropping the EI trigger",
        &|c| c.stats.dropped > 0,
    );
    check(
        "ei-control",
        HealMode::Scrub,
        "scrubbing volatile state must not heal a code defect",
        &|c| c.stats.dropped > 0,
    );
    check("ei-control", HealMode::Oblivious, "discarding must answer every request", &|c| {
        c.stats.dropped == 0 && c.discarded > 0
    });
    check(
        "ei-control",
        HealMode::Manufactured,
        "manufacturing must answer every request at visible wrong-answer cost",
        &|c| c.stats.dropped == 0 && c.manufactured > 0,
    );
    check(
        "ei-control",
        HealMode::Healer,
        "a lost-heavy profile must route the healer to discard",
        &|c| c.stats.dropped == 0,
    );
    // The state leak: poisoned volatile state inside the checkpoint.
    check(
        "state-leak",
        HealMode::Restart,
        "the restored checkpoint must preserve the leak",
        &|c| c.stats.dropped > 0,
    );
    check(
        "state-leak",
        HealMode::Scrub,
        "the in-place scrub must heal the leak with no drops and no oracle violations",
        &|c| c.stats.dropped == 0 && c.oracle_violations == 0,
    );
    check(
        "state-leak",
        HealMode::Manufactured,
        "serving past the crash threshold must trip the correctness oracle",
        &|c| c.oracle_violations > 0,
    );
    check(
        "state-leak",
        HealMode::Healer,
        "a reboot-heavy profile must route the healer to scrub",
        &|c| c.stats.dropped == 0,
    );
    anomalies
}

impl ObliviousReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: ObliviousSpec) -> ObliviousReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    pub fn run_with(spec: ObliviousSpec, parallel: ParallelSpec) -> ObliviousReport {
        Self::run_units(spec, parallel, false).0
    }

    /// Runs the campaign with the per-unit registries merged and the
    /// per-cell ledgers (`oblivious.offered`, `oblivious.ok`,
    /// `oblivious.denied`, `oblivious.dropped`, `oblivious.slo.violations`,
    /// `oblivious.sim_nanos`, `oblivious.substitute.discarded`,
    /// `oblivious.substitute.manufactured`, `oblivious.oracle.violations`,
    /// `oblivious.latency`, `oblivious.ttr.class`) added, returning the
    /// registry alongside the (unchanged) report. Registries merge in
    /// unit-index order, so the result is byte-identical at any thread
    /// count.
    pub fn run_instrumented(
        spec: ObliviousSpec,
        parallel: ParallelSpec,
    ) -> (ObliviousReport, MetricsRegistry) {
        Self::run_units(spec, parallel, true)
    }

    fn run_units(
        spec: ObliviousSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (ObliviousReport, MetricsRegistry) {
        struct Acc {
            cells: Vec<ObliviousCell>,
            registry: MetricsRegistry,
        }
        let plans = micro_plans(spec.seed);
        let units = unit_count(plans.len());
        let per_app = AppKind::ALL.len();
        let per_plan = HealMode::ALL.len() * per_app;
        let base_requests = spec.requests / units as u64;
        let remainder = spec.requests % units as u64;
        let acc = run_chunk_fold(
            units,
            parallel,
            || Acc { cells: Vec::new(), registry: MetricsRegistry::new() },
            |range, acc: &mut Acc| {
                let mut seeds = SplitSeedStream::new(spec.seed, range.start as u64);
                for index in range {
                    let plan = &plans[index / per_plan];
                    let mode = HealMode::ALL[(index % per_plan) / per_app];
                    let app_kind = AppKind::ALL[index % per_app];
                    let requests = base_requests + u64::from((index as u64) < remainder);
                    let (cell, metrics) = run_unit(
                        plan,
                        mode,
                        app_kind,
                        requests,
                        spec.arrival,
                        seeds.next_seed(),
                        instrumented,
                    );
                    if let Some(reg) = &metrics {
                        acc.registry.merge_from(reg);
                    }
                    if instrumented {
                        ledger_unit(&mut acc.registry, &cell);
                    }
                    acc.cells.push(cell);
                }
            },
            |acc, later| {
                acc.cells.extend(later.cells);
                acc.registry.merge_from(&later.registry);
            },
        );
        // The contract spans modes, so it is checked on the complete
        // fold — a pure function of the cells, hence thread-invariant.
        let anomalies = contract_anomalies(&acc.cells);
        (ObliviousReport { spec, cells: acc.cells, anomalies }, acc.registry)
    }

    /// The unit for `(plan, mode, app)`, if the plan exists.
    pub fn cell(&self, plan: &str, mode: HealMode, app: AppKind) -> Option<&ObliviousCell> {
        self.cells.iter().find(|c| c.plan == plan && c.mode == mode && c.app == app)
    }

    /// The folded ledger of every unit of `class` under `mode`, across
    /// all plans and applications.
    pub fn class_stats(&self, class: FaultClass, mode: HealMode) -> UnitStats {
        let mut total = UnitStats::default();
        for cell in &self.cells {
            if cell.class == class && cell.mode == mode {
                total.absorb(&cell.stats);
            }
        }
        total
    }

    /// The merged time-to-recovery histogram of every unit of `class`
    /// under `mode`.
    pub fn class_ttr(&self, class: FaultClass, mode: HealMode) -> Histogram {
        let mut total = Histogram::new();
        for cell in &self.cells {
            if cell.class == class && cell.mode == mode {
                total.merge_from(&cell.ttr);
            }
        }
        total
    }

    /// `(discarded, manufactured, oracle violations)` summed over every
    /// unit of `class` under `mode` — the wrong-answer column family.
    pub fn class_costs(&self, class: FaultClass, mode: HealMode) -> (u64, u64, u64) {
        let mut costs = (0, 0, 0);
        for cell in &self.cells {
            if cell.class == class && cell.mode == mode {
                costs.0 += cell.discarded;
                costs.1 += cell.manufactured;
                costs.2 += cell.oracle_violations;
            }
        }
        costs
    }

    /// Fraction of offered requests in `(class, mode)` that were answered
    /// with a silent manufactured default — the silent-wrong-answer rate.
    pub fn wrong_answer_rate(&self, class: FaultClass, mode: HealMode) -> f64 {
        let stats = self.class_stats(class, mode);
        if stats.offered == 0 {
            return 0.0;
        }
        self.class_costs(class, mode).1 as f64 / stats.offered as f64
    }

    /// The folded ledger of the whole campaign.
    pub fn totals(&self) -> UnitStats {
        let mut total = UnitStats::default();
        for cell in &self.cells {
            total.absorb(&cell.stats);
        }
        total
    }
}

impl fmt::Display for ObliviousReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Oblivious-recovery campaign: {} requests offered over {} units ({} arrivals, seed {})",
            self.spec.requests,
            self.cells.len(),
            self.spec.arrival.name(),
            self.spec.seed
        )?;
        writeln!(
            f,
            "  {:<12} {:<13} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9}",
            "class", "mode", "offered", "avail%", "dropped", "discard", "manuf", "oracle"
        )?;
        for class in FaultClass::ALL {
            for mode in HealMode::ALL {
                let s = self.class_stats(class, mode);
                if s.offered == 0 {
                    continue;
                }
                let (discarded, manufactured, oracle) = self.class_costs(class, mode);
                writeln!(
                    f,
                    "  {:<12} {:<13} {:>9} {:>7.2} {:>9} {:>9} {:>9} {:>9}",
                    class.short(),
                    mode.name(),
                    s.offered,
                    100.0 * s.availability(),
                    s.dropped,
                    discarded,
                    manufactured,
                    oracle,
                )?;
            }
        }
        let t = self.totals();
        writeln!(
            f,
            "  total: {} offered, {} answered ({:.2}%), {} dropped",
            t.offered,
            t.answered(),
            100.0 * t.availability(),
            t.dropped,
        )?;
        if self.anomalies.is_empty() {
            writeln!(f, "  no anomalies: rescue and wrong-answer costs matched the class contract")
        } else {
            writeln!(f, "  ANOMALIES: {:?}", self.anomalies)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> ObliviousSpec {
        // 6000 / 150 units = 40 requests per unit, exactly.
        ObliviousSpec { seed, requests: 6_000, arrival: ArrivalKind::Poisson }
    }

    #[test]
    fn campaign_enumerates_every_plan_mode_app() {
        let report = ObliviousReport::run(small_spec(1));
        assert_eq!(report.cells.len(), 10 * 5 * 3);
        assert_eq!(report.totals().offered, 6_000);
        assert!(report.cells.iter().all(|c| c.stats.offered == 40));
        for mode in HealMode::ALL {
            for app in AppKind::ALL {
                assert!(report.cell("state-leak", mode, app).is_some(), "{mode} {app:?}");
            }
        }
    }

    #[test]
    fn campaign_upholds_the_oblivious_contract() {
        let report = ObliviousReport::run(small_spec(1));
        assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
    }

    #[test]
    fn reports_are_reproducible_and_thread_invariant() {
        let spec = small_spec(7);
        let reference = ObliviousReport::run_with(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let report = ObliviousReport::run_with(spec, ParallelSpec::threads(threads));
            assert_eq!(report, reference, "{threads} threads");
        }
        let chunked = ObliviousReport::run_with(spec, ParallelSpec::threads(2).with_chunk(7));
        assert_eq!(chunked, reference);
    }

    #[test]
    fn the_ei_slice_is_rescued_only_by_going_oblivious() {
        let report = ObliviousReport::run(small_spec(1));
        let restart = report.cell("ei-control", HealMode::Restart, AppKind::Apache).unwrap();
        let scrub = report.cell("ei-control", HealMode::Scrub, AppKind::Apache).unwrap();
        let oblivious = report.cell("ei-control", HealMode::Oblivious, AppKind::Apache).unwrap();
        let manufactured =
            report.cell("ei-control", HealMode::Manufactured, AppKind::Apache).unwrap();
        // Neither retry nor state surgery touches a deterministic defect.
        assert!(restart.stats.dropped > 0);
        assert!(scrub.stats.dropped > 0);
        // Giving up on the request — or on its correctness — does.
        assert_eq!(oblivious.stats.dropped, 0);
        assert!(oblivious.discarded > 0);
        assert_eq!(manufactured.stats.dropped, 0);
        assert!(manufactured.manufactured > 0, "silent substitutes must be counted");
    }

    #[test]
    fn the_state_leak_is_healed_silently_only_by_scrubbing() {
        let report = ObliviousReport::run(small_spec(1));
        let restart = report.cell("state-leak", HealMode::Restart, AppKind::Apache).unwrap();
        let scrub = report.cell("state-leak", HealMode::Scrub, AppKind::Apache).unwrap();
        let manufactured =
            report.cell("state-leak", HealMode::Manufactured, AppKind::Apache).unwrap();
        assert!(restart.stats.dropped > 0, "the checkpoint preserves the leak");
        assert_eq!(scrub.stats.dropped, 0, "the in-place scrub heals it");
        assert_eq!(scrub.oracle_violations, 0, "and correctly so");
        assert!(
            manufactured.oracle_violations > 0,
            "plowing ahead serves past the crash threshold"
        );
    }

    #[test]
    fn instrumented_campaign_reproduces_the_plain_report() {
        let spec = small_spec(5);
        let plain = ObliviousReport::run(spec);
        let (report, registry) = ObliviousReport::run_instrumented(spec, ParallelSpec::default());
        assert_eq!(report, plain, "instrumentation must not perturb the campaign");
        let mut offered = 0;
        let mut oracle = 0;
        for class in FaultClass::ALL {
            for mode in HealMode::ALL {
                let label = format!("{}/{}", class.short(), mode.name());
                offered += registry.counter("oblivious.offered", &label);
                oracle += registry.counter("oblivious.oracle.violations", &label);
            }
        }
        assert_eq!(offered, report.totals().offered);
        let cell_oracle: u64 = report.cells.iter().map(|c| c.oracle_violations).sum();
        assert_eq!(oracle, cell_oracle);
        assert!(oracle > 0, "the campaign must exercise the correctness oracle");
    }

    #[test]
    fn instrumented_registry_is_identical_across_thread_counts() {
        let spec = small_spec(2);
        let (ref_report, ref_registry) =
            ObliviousReport::run_instrumented(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let (report, registry) =
                ObliviousReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, ref_report, "{threads} threads");
            assert_eq!(registry, ref_registry, "{threads} threads");
        }
    }

    #[test]
    fn underpowered_campaigns_report_anomalies_instead_of_passing() {
        // One request per unit cannot exercise the contract cells.
        let spec = ObliviousSpec { seed: 1, requests: 150, arrival: ArrivalKind::Poisson };
        let report = ObliviousReport::run(spec);
        assert!(!report.anomalies.is_empty(), "a vacuous campaign must not look healthy");
    }

    #[test]
    fn display_renders_the_cost_table() {
        let report = ObliviousReport::run(small_spec(4));
        let text = report.to_string();
        assert!(text.contains("oracle"));
        assert!(text.contains("manufactured"));
        assert!(text.contains("statescrub"));
        assert!(text.contains("total:"));
        assert!(text.contains("no anomalies"));
    }
}
