//! The microreboot campaign: crash-only component recovery measured
//! against whole-process restart under open-loop traffic.
//!
//! The traffic campaign (see [`traffic`](crate::traffic)) asks what each
//! *generic* strategy delivers under load. This campaign isolates the one
//! design axis the paper's §2 contract forbids generic recovery from
//! using: application knowledge of which state is safe to discard. Each
//! `(plan, mode, application)` unit offers the same open-loop stream
//! twice — once under [`RestartRetry`] (kill the process, restore the
//! checkpoint byte-for-byte) and once under [`MicroReboot`] (crash and
//! reboot only the component the failing request routed to) — and
//! ledgers availability, requests lost, and time-to-recovery per cell.
//!
//! The plan suite is the traffic campaign's nine standard plans plus a
//! tenth, `state-leak`: no environment events at all, just MiniWeb's
//! checkpointed allocation leak (`apache-edn-01`) riding in the mix. It
//! is the microreboot thesis in one cell — the generic checkpoint
//! faithfully preserves the poisoned counter and crashes forever, while
//! the crash-only worker pool discards it and keeps serving.
//!
//! Determinism: unit seeds come from the batched `split_seed` stream,
//! per-unit arrival/session/backoff seeds derive exactly as in the
//! traffic campaign, and units fold in index order through
//! [`run_chunk_fold`] — reports and registries are byte-identical at any
//! thread count and chunk size.

use crate::experiment::standard_env;
use crate::traffic::{traffic_config, traffic_mix};
use faultstudy_apps::spawn_app;
use faultstudy_core::taxonomy::{AppKind, FaultClass};
use faultstudy_exec::{run_chunk_fold, ParallelSpec};
use faultstudy_inject::{standard_plans, InjectionPlan, Injector};
use faultstudy_obs::{Histogram, MetricsRegistry};
use faultstudy_recovery::{MicroReboot, RecoveryStrategy, RestartRetry};
use faultstudy_sim::rng::{split_seed, SplitSeedStream};
use faultstudy_traffic::{run_open_loop, ArrivalKind, TrafficParams, UnitStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Retry budget of the process-restart mode, matching the recovery
/// matrix's [`RestartRetry`] configuration.
const RESTART_RETRIES: u32 = 3;

/// Retry budget of the microreboot mode. Deliberately larger than
/// [`RESTART_RETRIES`]: budgets here are *time-equivalent*, not
/// attempt-equivalent. A process restart charges ~1 s of simulated
/// recovery latency per attempt where a component reboot charges tens of
/// milliseconds, so eight microreboot attempts still spend well under one
/// process-restart attempt's worth of downtime.
const MICRO_RETRIES: u32 = 8;

/// Configuration of a microreboot campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroSpec {
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
    /// Total requests offered across the whole campaign, spread evenly
    /// over the units (earlier units absorb the remainder).
    pub requests: u64,
    /// Arrival-process family for every unit.
    pub arrival: ArrivalKind,
}

impl Default for MicroSpec {
    fn default() -> Self {
        MicroSpec { seed: 1, requests: 20_000, arrival: ArrivalKind::Poisson }
    }
}

/// The recovery mode of one campaign unit — the comparison axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RecoveryMode {
    /// Whole-process restart from the last checkpoint ([`RestartRetry`]).
    Restart,
    /// Crash-only component reboot with tree escalation ([`MicroReboot`]).
    Micro,
}

impl RecoveryMode {
    /// Both modes, in enumeration order.
    pub const ALL: [RecoveryMode; 2] = [RecoveryMode::Restart, RecoveryMode::Micro];

    /// The mode's strategy name as it appears in metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryMode::Restart => "restart",
            RecoveryMode::Micro => "microreboot",
        }
    }

    /// Builds the mode's strategy for one unit.
    fn build(self, unit_seed: u64) -> Box<dyn RecoveryStrategy> {
        match self {
            RecoveryMode::Restart => Box::new(RestartRetry::new(RESTART_RETRIES)),
            RecoveryMode::Micro => {
                Box::new(MicroReboot::new(MICRO_RETRIES, split_seed(unit_seed, 4)))
            }
        }
    }
}

impl fmt::Display for RecoveryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The campaign's plan suite: the nine standard injection plans plus the
/// `state-leak` plan — no environment events, only MiniWeb's checkpointed
/// allocation leak (`apache-edn-01`) armed and triggered by the mix. The
/// poisoned state lives *inside* the checkpoint, which is exactly the
/// case §2's preserve-all-state contract cannot recover and a crash-only
/// partition can.
pub fn micro_plans(seed: u64) -> Vec<InjectionPlan> {
    let mut plans = standard_plans(seed);
    plans.push(InjectionPlan {
        name: "state-leak".to_owned(),
        class: FaultClass::EnvDependentNonTransient,
        companion_defect: "apache-edn-01".to_owned(),
        events: Vec::new(),
    });
    plans
}

/// One `(plan, mode, application)` unit of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroCell {
    /// Application under load.
    pub app: AppKind,
    /// Injection plan name.
    pub plan: String,
    /// The paper class of the injected condition.
    pub class: FaultClass,
    /// Recovery mode under test.
    pub mode: RecoveryMode,
    /// Injection events that came due and were applied.
    pub injected: usize,
    /// The unit's request ledger.
    pub stats: UnitStats,
    /// Time-to-recovery over the unit's recovered requests (simulated).
    pub ttr: Histogram,
}

/// Aggregate of one microreboot campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroReport {
    /// The spec that produced this report.
    pub spec: MicroSpec,
    /// Every unit, in `(plan, mode, app)` enumeration order.
    pub cells: Vec<MicroCell>,
}

/// One campaign unit: fresh environment and application, the plan's
/// injector on the pre-attempt hook, and an open-loop request stream
/// under the unit's recovery mode.
///
/// The environment's metrics sink is *always* enabled here — the cell's
/// TTR histogram comes from the supervisor's `recovery.ttr` spans — so
/// the plain and instrumented campaigns run the very same simulation and
/// produce identical reports.
fn run_unit(
    plan: &InjectionPlan,
    mode: RecoveryMode,
    app_kind: AppKind,
    requests: u64,
    arrival: ArrivalKind,
    unit_seed: u64,
    instrumented: bool,
) -> (MicroCell, Option<MetricsRegistry>) {
    let mut env = standard_env(unit_seed, true);
    let mut app = spawn_app(app_kind, &mut env);
    if app_kind == AppKind::Apache {
        app.arm_defect(&plan.companion_defect)
            .expect("every plan's companion defect arms in MiniWeb");
    }
    let mix = traffic_mix(app.as_ref(), app_kind, plan);
    let mut injector = Injector::new(plan, &mut env);
    let mut strat = mode.build(unit_seed);
    let config = traffic_config(split_seed(unit_seed, 1));
    let params = TrafficParams::standard(arrival, requests);
    let stats = run_open_loop(
        app.as_mut(),
        &mut env,
        strat.as_mut(),
        &config,
        Some(&mut injector),
        &mix,
        &params,
        split_seed(unit_seed, 2),
        split_seed(unit_seed, 3),
    );
    let registry = env.metrics.take().expect("metrics were enabled");
    let ttr = registry.histogram("recovery.ttr", mode.name()).cloned().unwrap_or_default();
    let cell = MicroCell {
        app: app_kind,
        plan: plan.name.clone(),
        class: plan.class,
        mode,
        injected: injector.applied(),
        stats,
        ttr,
    };
    let registry = (instrumented && !registry.is_empty()).then_some(registry);
    (cell, registry)
}

/// Ledgers a finished unit into the campaign registry under its
/// `<class>/<mode>` cell label.
fn ledger_unit(registry: &mut MetricsRegistry, cell: &MicroCell) {
    let label = format!("{}/{}", cell.class.short(), cell.mode.name());
    let s = &cell.stats;
    registry.incr("micro.offered", &label, s.offered);
    registry.incr("micro.ok", &label, s.ok);
    registry.incr("micro.denied", &label, s.denied);
    registry.incr("micro.dropped", &label, s.dropped);
    registry.incr("micro.slo.violations", &label, s.slo_violations);
    registry.incr("micro.sim_nanos", &label, s.sim_nanos);
    registry.merge_histogram("micro.latency", &label, s.latency.clone());
    registry.merge_histogram("micro.ttr.class", &label, cell.ttr.clone());
}

/// Units per campaign: every plan × mode × application.
fn unit_count(plans: usize) -> usize {
    plans * RecoveryMode::ALL.len() * AppKind::ALL.len()
}

impl MicroReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: MicroSpec) -> MicroReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    pub fn run_with(spec: MicroSpec, parallel: ParallelSpec) -> MicroReport {
        Self::run_units(spec, parallel, false).0
    }

    /// Runs the campaign with the per-unit registries merged and the
    /// per-cell ledgers (`micro.offered`, `micro.ok`, `micro.denied`,
    /// `micro.dropped`, `micro.slo.violations`, `micro.sim_nanos`,
    /// `micro.latency`, `micro.ttr.class`) added, returning the registry
    /// alongside the (unchanged) report. The merged registry also carries
    /// everything the units' environments recorded: the microreboot
    /// strategy's per-component counters (`micro.reboot`,
    /// `micro.reboot.subtree`, `micro.reboot.process`, `micro.lost`) and
    /// per-component TTR spans (`micro.ttr`), supervisor hardening
    /// counters, and injector applications. Registries merge in
    /// unit-index order, so the result is byte-identical at any thread
    /// count.
    pub fn run_instrumented(
        spec: MicroSpec,
        parallel: ParallelSpec,
    ) -> (MicroReport, MetricsRegistry) {
        Self::run_units(spec, parallel, true)
    }

    fn run_units(
        spec: MicroSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (MicroReport, MetricsRegistry) {
        struct Acc {
            cells: Vec<MicroCell>,
            registry: MetricsRegistry,
        }
        let plans = micro_plans(spec.seed);
        let units = unit_count(plans.len());
        let per_app = AppKind::ALL.len();
        let per_plan = RecoveryMode::ALL.len() * per_app;
        let base_requests = spec.requests / units as u64;
        let remainder = spec.requests % units as u64;
        let acc = run_chunk_fold(
            units,
            parallel,
            || Acc { cells: Vec::new(), registry: MetricsRegistry::new() },
            |range, acc: &mut Acc| {
                let mut seeds = SplitSeedStream::new(spec.seed, range.start as u64);
                for index in range {
                    let plan = &plans[index / per_plan];
                    let mode = RecoveryMode::ALL[(index % per_plan) / per_app];
                    let app_kind = AppKind::ALL[index % per_app];
                    let requests = base_requests + u64::from((index as u64) < remainder);
                    let (cell, metrics) = run_unit(
                        plan,
                        mode,
                        app_kind,
                        requests,
                        spec.arrival,
                        seeds.next_seed(),
                        instrumented,
                    );
                    if let Some(reg) = &metrics {
                        acc.registry.merge_from(reg);
                    }
                    if instrumented {
                        ledger_unit(&mut acc.registry, &cell);
                    }
                    acc.cells.push(cell);
                }
            },
            |acc, later| {
                acc.cells.extend(later.cells);
                acc.registry.merge_from(&later.registry);
            },
        );
        (MicroReport { spec, cells: acc.cells }, acc.registry)
    }

    /// The unit for `(plan, mode, app)`, if the plan exists.
    pub fn cell(&self, plan: &str, mode: RecoveryMode, app: AppKind) -> Option<&MicroCell> {
        self.cells.iter().find(|c| c.plan == plan && c.mode == mode && c.app == app)
    }

    /// The folded ledger of every unit of `class` under `mode`, across
    /// all plans and applications.
    pub fn class_stats(&self, class: FaultClass, mode: RecoveryMode) -> UnitStats {
        let mut total = UnitStats::default();
        for cell in &self.cells {
            if cell.class == class && cell.mode == mode {
                total.absorb(&cell.stats);
            }
        }
        total
    }

    /// The merged time-to-recovery histogram of every unit of `class`
    /// under `mode`.
    pub fn class_ttr(&self, class: FaultClass, mode: RecoveryMode) -> Histogram {
        let mut total = Histogram::new();
        for cell in &self.cells {
            if cell.class == class && cell.mode == mode {
                total.merge_from(&cell.ttr);
            }
        }
        total
    }

    /// The folded ledger of the whole campaign.
    pub fn totals(&self) -> UnitStats {
        let mut total = UnitStats::default();
        for cell in &self.cells {
            total.absorb(&cell.stats);
        }
        total
    }

    /// Fraction of offered requests in `(class, mode)` that missed the
    /// SLO — violations plus drops over offered, in [0, 1].
    pub fn slo_miss_rate(&self, class: FaultClass, mode: RecoveryMode) -> f64 {
        let stats = self.class_stats(class, mode);
        if stats.offered == 0 {
            return 0.0;
        }
        (stats.slo_violations + stats.dropped) as f64 / stats.offered as f64
    }

    /// Violations of the campaign's class contract on the state-leak
    /// plan: the restored checkpoint must preserve the leak (restart
    /// drops requests), the crash-only reboot must discard it (no drops,
    /// strictly better availability). A contract cell that was offered no
    /// requests is itself an anomaly — an underpowered run must exit
    /// non-zero instead of passing vacuously.
    pub fn anomalies(&self) -> Vec<String> {
        let mut anomalies = Vec::new();
        let mut fetch = |mode: RecoveryMode| -> Option<&MicroCell> {
            let Some(cell) = self.cell("state-leak", mode, AppKind::Apache) else {
                anomalies.push(format!("state-leak/{}: contract cell missing", mode.name()));
                return None;
            };
            if cell.stats.offered == 0 {
                anomalies.push(format!(
                    "state-leak/{}: offered no requests, contract unchecked",
                    mode.name()
                ));
                return None;
            }
            Some(cell)
        };
        let restart = fetch(RecoveryMode::Restart);
        let micro = fetch(RecoveryMode::Micro);
        if let Some(restart) = restart {
            if restart.stats.dropped == 0 {
                anomalies.push(
                    "state-leak/restart: the restored checkpoint must preserve the leak".to_owned(),
                );
            }
        }
        if let Some(micro) = micro {
            if micro.stats.dropped > 0 {
                anomalies.push(
                    "state-leak/microreboot: the crash-only reboot must not lose a request"
                        .to_owned(),
                );
            }
        }
        if let (Some(restart), Some(micro)) = (restart, micro) {
            if micro.stats.availability() <= restart.stats.availability() {
                anomalies.push(
                    "state-leak: microreboot availability must beat whole-process restart"
                        .to_owned(),
                );
            }
        }
        anomalies
    }
}

/// Nanoseconds rendered as fractional milliseconds for the tables.
fn ms(nanos: Option<u64>) -> f64 {
    nanos.unwrap_or(0) as f64 / 1e6
}

impl fmt::Display for MicroReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Microreboot campaign: {} requests offered over {} units ({} arrivals, seed {})",
            self.spec.requests,
            self.cells.len(),
            self.spec.arrival.name(),
            self.spec.seed
        )?;
        writeln!(
            f,
            "  {:<12} {:<12} {:>9} {:>7} {:>9} {:>11} {:>11} {:>7}",
            "class", "mode", "offered", "avail%", "dropped", "ttr p50 ms", "ttr p99 ms", "viol%"
        )?;
        for class in FaultClass::ALL {
            for mode in RecoveryMode::ALL {
                let s = self.class_stats(class, mode);
                if s.offered == 0 {
                    continue;
                }
                let ttr = self.class_ttr(class, mode);
                writeln!(
                    f,
                    "  {:<12} {:<12} {:>9} {:>7.2} {:>9} {:>11.2} {:>11.2} {:>7.2}",
                    class.short(),
                    mode.name(),
                    s.offered,
                    100.0 * s.availability(),
                    s.dropped,
                    ms(ttr.p50()),
                    ms(ttr.p99()),
                    100.0 * self.slo_miss_rate(class, mode),
                )?;
            }
        }
        let t = self.totals();
        writeln!(
            f,
            "  total: {} offered, {} answered ({:.2}%), {} dropped, {} SLO violations",
            t.offered,
            t.answered(),
            100.0 * t.availability(),
            t.dropped,
            t.slo_violations
        )?;
        let anomalies = self.anomalies();
        if anomalies.is_empty() {
            writeln!(f, "  no anomalies: the state-leak cells matched the crash-only contract")
        } else {
            writeln!(f, "  ANOMALIES: {anomalies:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> MicroSpec {
        // 3600 / 60 units = 60 requests per unit, exactly.
        MicroSpec { seed, requests: 3_600, arrival: ArrivalKind::Poisson }
    }

    #[test]
    fn campaign_enumerates_every_plan_mode_app() {
        let report = MicroReport::run(small_spec(1));
        assert_eq!(report.cells.len(), 10 * 2 * 3);
        assert_eq!(report.totals().offered, 3_600);
        assert!(report.cells.iter().all(|c| c.stats.offered == 60));
        // The tenth plan exists in both modes on every app.
        for mode in RecoveryMode::ALL {
            for app in AppKind::ALL {
                assert!(report.cell("state-leak", mode, app).is_some(), "{mode} {app:?}");
            }
        }
    }

    #[test]
    fn reports_are_reproducible_and_thread_invariant() {
        let spec = small_spec(7);
        let reference = MicroReport::run_with(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let report = MicroReport::run_with(spec, ParallelSpec::threads(threads));
            assert_eq!(report, reference, "{threads} threads");
        }
        let chunked = MicroReport::run_with(spec, ParallelSpec::threads(2).with_chunk(7));
        assert_eq!(chunked, reference);
    }

    #[test]
    fn state_leak_recovers_under_microreboot_and_defeats_restart() {
        let report = MicroReport::run(small_spec(1));
        let restart = report.cell("state-leak", RecoveryMode::Restart, AppKind::Apache).unwrap();
        let micro = report.cell("state-leak", RecoveryMode::Micro, AppKind::Apache).unwrap();
        // The checkpoint preserves the leaked allocations, so the generic
        // restart replays the crash until the retry budget runs out.
        assert!(restart.stats.dropped > 0, "restart must keep dropping the leak trigger");
        // The crash-only worker pool discards the leak and keeps serving.
        assert_eq!(micro.stats.dropped, 0, "microreboot must not lose a single request");
        assert!(micro.stats.availability() > restart.stats.availability());
    }

    #[test]
    fn instrumented_campaign_reproduces_the_plain_report() {
        let spec = small_spec(5);
        let plain = MicroReport::run(spec);
        let (report, registry) = MicroReport::run_instrumented(spec, ParallelSpec::default());
        assert_eq!(report, plain, "instrumentation must not perturb the campaign");
        let mut offered = 0;
        for class in FaultClass::ALL {
            for mode in RecoveryMode::ALL {
                let label = format!("{}/{}", class.short(), mode.name());
                offered += registry.counter("micro.offered", &label);
            }
        }
        assert_eq!(offered, report.totals().offered);
        // The microreboot strategy's own counters surfaced in the merge.
        let reboots: u64 = registry
            .counters()
            .filter(|(k, _)| k.starts_with("micro.reboot{"))
            .map(|(_, v)| v)
            .sum();
        assert!(reboots > 0, "microreboot units must perform component reboots");
    }

    #[test]
    fn instrumented_registry_is_identical_across_thread_counts() {
        let spec = small_spec(2);
        let (ref_report, ref_registry) =
            MicroReport::run_instrumented(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let (report, registry) =
                MicroReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, ref_report, "{threads} threads");
            assert_eq!(registry, ref_registry, "{threads} threads");
        }
    }

    #[test]
    fn display_renders_the_comparison_table() {
        let report = MicroReport::run(small_spec(4));
        let text = report.to_string();
        assert!(text.contains("ttr p50 ms"));
        assert!(text.contains("microreboot"));
        assert!(text.contains("restart"));
        assert!(text.contains("total:"));
    }
}
