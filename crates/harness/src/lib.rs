//! The experiment harness: maps corpus faults onto the simulated
//! applications, runs them under every recovery strategy, and aggregates
//! the per-class survival matrix — the paper's proposed end-to-end check
//! (§5.4, §8) that the bug-report classification actually predicts
//! recovery behaviour.
//!
//! # Modules
//!
//! - [`experiment`] — one fault × one strategy → one [`FaultOutcome`].
//! - [`ablation`] — parameter sweeps over the recovery designs (E11–E13).
//! - [`matrix`] — the full corpus × strategy survival matrix.
//! - [`funnel`] — the §4 selection funnels at paper scale.
//! - [`traffic`] — open-loop traffic streams with per-request SLO
//!   accounting under injection load.
//! - [`micro`] — microreboot (crash-only component recovery) measured
//!   against whole-process restart under the same traffic.
//! - [`graph`] — the distributed IPC fault plane: the three applications
//!   wired into a service graph, wire-level fault injection, and
//!   per-channel recovery raced against process supervision.
//! - [`oblivious`] — failure-oblivious continuation and self-healing
//!   measured against restart, priced by per-application correctness
//!   oracles.
//!
//! # Example
//!
//! ```
//! use faultstudy_harness::experiment::{run_fault_experiment, StrategyKind};
//! use faultstudy_corpus::find;
//!
//! let fault = find("apache-edt-02").unwrap();
//! let outcome = run_fault_experiment(&fault, StrategyKind::Restart, 1);
//! assert!(outcome.survived, "hung children are cleared by generic recovery");
//!
//! let fault = find("apache-ei-01").unwrap();
//! let outcome = run_fault_experiment(&fault, StrategyKind::Restart, 1);
//! assert!(!outcome.survived, "deterministic faults defeat generic recovery");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod campaign;
pub mod experiment;
pub mod expreport;
pub mod funnel;
pub mod graph;
pub mod inject;
pub mod matrix;
pub mod micro;
pub mod oblivious;
pub mod traffic;
pub mod workload;

pub use campaign::{CampaignReport, CampaignSpec};
pub use experiment::{
    run_fault_experiment, run_fault_experiment_instrumented, FaultOutcome, StrategyKind,
};
pub use expreport::experiments_markdown;
pub use faultstudy_exec::ParallelSpec;
pub use funnel::{paper_scale_funnels, paper_scale_funnels_instrumented, paper_scale_funnels_with};
pub use graph::{GraphCell, GraphReport, GraphSpec, GRAPH_BUDGETS};
pub use inject::{InjectCell, InjectReport, InjectSpec};
pub use matrix::RecoveryMatrix;
pub use micro::{micro_plans, MicroCell, MicroReport, MicroSpec, RecoveryMode};
pub use oblivious::{HealMode, ObliviousCell, ObliviousReport, ObliviousSpec};
pub use traffic::{TrafficCell, TrafficReport, TrafficSpec};
