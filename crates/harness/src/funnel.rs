//! The §4 selection funnels at paper scale.

use faultstudy_core::taxonomy::AppKind;
use faultstudy_corpus::{PopulationSpec, SyntheticPopulation};
use faultstudy_exec::ParallelSpec;
use faultstudy_mining::{Archive, PipelineOutcome, PrecisionRecall, SelectionPipeline};
use faultstudy_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// A funnel run plus its quality against the generator's ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunnelRun {
    /// The pipeline outcome with per-stage counts.
    pub outcome: PipelineOutcome,
    /// Selection quality against the embedded ground truth.
    pub quality: PrecisionRecall,
}

/// Runs the three §4 funnels at the paper's archive scales (5220 Apache
/// reports, 500 GNOME reports, 44,000 MySQL messages).
///
/// # Example
///
/// ```
/// use faultstudy_harness::paper_scale_funnels;
///
/// let runs = paper_scale_funnels(7);
/// assert_eq!(runs[0].outcome.unique_bugs(), 50); // Apache
/// assert_eq!(runs[1].outcome.unique_bugs(), 45); // GNOME
/// assert_eq!(runs[2].outcome.unique_bugs(), 44); // MySQL
/// ```
pub fn paper_scale_funnels(seed: u64) -> Vec<FunnelRun> {
    paper_scale_funnels_with(seed, ParallelSpec::default())
}

/// [`paper_scale_funnels`] on `parallel` worker threads; the runs are
/// identical for every thread count.
pub fn paper_scale_funnels_with(seed: u64, parallel: ParallelSpec) -> Vec<FunnelRun> {
    AppKind::ALL.iter().map(|&app| run_funnel_with(app, seed, parallel)).collect()
}

/// Runs one application's funnel at paper scale.
pub fn run_funnel(app: AppKind, seed: u64) -> FunnelRun {
    run_funnel_with(app, seed, ParallelSpec::default())
}

/// [`run_funnel`] on `parallel` worker threads.
pub fn run_funnel_with(app: AppKind, seed: u64, parallel: ParallelSpec) -> FunnelRun {
    let spec = PopulationSpec::paper_scale(app, seed);
    let population = SyntheticPopulation::generate(&spec);
    let archive = Archive::from_columns(app, population.to_columns());
    let outcome = SelectionPipeline::for_app(app).run_with(&archive, parallel);
    let quality = PrecisionRecall::measure(&outcome.selected, &population.ground_truth);
    FunnelRun { outcome, quality }
}

/// [`paper_scale_funnels_with`] with per-stage mining metrics: the three
/// per-app registries merge (in app order) into the one returned, carrying
/// `mining.stage.*` timings and throughput for every `{app}/{stage}`.
pub fn paper_scale_funnels_instrumented(
    seed: u64,
    parallel: ParallelSpec,
) -> (Vec<FunnelRun>, MetricsRegistry) {
    let mut registry = MetricsRegistry::new();
    let runs = AppKind::ALL
        .iter()
        .map(|&app| {
            let spec = PopulationSpec::paper_scale(app, seed);
            let population = SyntheticPopulation::generate(&spec);
            let archive = Archive::from_columns(app, population.to_columns());
            let (outcome, reg) =
                SelectionPipeline::for_app(app).run_instrumented(&archive, parallel);
            registry.merge_from(&reg);
            let quality = PrecisionRecall::measure(&outcome.selected, &population.ground_truth);
            FunnelRun { outcome, quality }
        })
        .collect();
    (runs, registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_funnels_reproduce_section_4() {
        let runs = paper_scale_funnels(99);
        let expected =
            [(AppKind::Apache, 5220, 50), (AppKind::Gnome, 500, 45), (AppKind::Mysql, 44_000, 44)];
        for (run, (app, raw, unique)) in runs.iter().zip(expected) {
            assert_eq!(run.outcome.app, app);
            assert_eq!(run.outcome.raw_size(), raw);
            assert_eq!(run.outcome.unique_bugs(), unique, "{app}");
            assert_eq!(run.quality.precision(), 1.0, "{app}");
            assert_eq!(run.quality.recall(), 1.0, "{app}");
        }
    }

    #[test]
    fn instrumented_funnels_match_plain_runs() {
        let plain = paper_scale_funnels_with(99, ParallelSpec::default());
        let (runs, registry) = paper_scale_funnels_instrumented(99, ParallelSpec::default());
        assert_eq!(runs, plain, "metrics must not perturb the funnels");
        assert_eq!(registry.counter("mining.stage.reports", "MySQL/keyword match"), 44_000);
        assert_eq!(registry.counter("mining.stage.reports", "Apache/high impact"), 5_220);
        assert!(registry.gauge("mining.stage.rps", "GNOME/unique bugs").is_some());
    }

    #[test]
    fn mysql_keyword_stage_does_the_heavy_lifting() {
        let run = run_funnel(AppKind::Mysql, 5);
        // 44,000 messages reduce by orders of magnitude at the keyword
        // stage ("we looked at a few hundred messages", §4).
        let keyword_survivors = run.outcome.funnel[1].survivors;
        assert!(keyword_survivors < 2000, "keyword stage kept {keyword_survivors}");
        assert!(keyword_survivors >= 44);
    }
}
