//! The graph campaign: the distributed IPC fault plane driven at scale.
//!
//! The traffic and microreboot campaigns load a *single* application; this
//! campaign loads the whole service graph — clients → miniweb → minidb
//! with minide as an operator console — and injects the twelve-kind
//! Theseus/MINIX3 IPC fault corpus on the wire between the tiers. Each
//! `(fault kind, recovery plane, retry budget)` unit offers the same
//! open-loop stream and races the two recovery planes the graph engine
//! implements: process-level supervision (the restart tree reboots graph
//! nodes) versus per-channel recovery (drain + reset the channel and
//! microreboot only the endpoint). On top of the usual SLO ledger every
//! unit carries the distributed costs the single-app campaigns cannot
//! see: cascade-depth histograms, per-edge loss/reset counters, and the
//! downstream-amplification ratio (db requests actually served per db
//! request a client chain first demanded).
//!
//! Determinism: unit seeds come from the batched `split_seed` stream,
//! per-unit arrival/session/recovery seeds derive per unit, and units
//! fold in index order through [`run_chunk_fold`] — reports and
//! registries are byte-identical at any thread count and chunk size.

use crate::experiment::standard_env;
use faultstudy_core::taxonomy::FaultClass;
use faultstudy_exec::{run_chunk_fold, ParallelSpec};
use faultstudy_graph::{
    graph_plans, run_graph, ChannelFaultKind, GraphFaultPlan, GraphUnitStats, PlaneKind,
    ServiceGraph,
};
use faultstudy_obs::{Histogram, MetricsRegistry};
use faultstudy_sim::rng::{split_seed, SplitSeedStream};
use faultstudy_traffic::{ArrivalKind, TrafficParams, UnitStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The retry-budget sweep: no retries (every bitten chain is a
/// user-visible drop), one retry, and the production-ish budget the
/// engine's contract tests pin.
pub const GRAPH_BUDGETS: [u32; 3] = [0, 1, 3];

/// Configuration of a graph campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphSpec {
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
    /// Total requests offered across the whole campaign, spread evenly
    /// over the units (earlier units absorb the remainder).
    pub requests: u64,
    /// Arrival-process family for every unit.
    pub arrival: ArrivalKind,
}

impl Default for GraphSpec {
    fn default() -> Self {
        GraphSpec { seed: 1, requests: 21_600, arrival: ArrivalKind::Poisson }
    }
}

/// One `(fault kind, plane, budget)` unit of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphCell {
    /// Fault plan name (the kind's wire name, e.g. `s1-sender-page-fault`).
    pub plan: String,
    /// The paper class the kind maps to under the IPC taxonomy.
    pub class: FaultClass,
    /// The injected IPC fault kind.
    pub kind: ChannelFaultKind,
    /// Recovery plane under test.
    pub plane: PlaneKind,
    /// Client retry budget of the unit's chains.
    pub budget: u32,
    /// Fault firings on the wire, summed over every edge.
    pub fired: u64,
    /// The unit's graph ledger (SLO base + edges + cascade + TTR).
    pub stats: GraphUnitStats,
}

/// Aggregate of one graph campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphReport {
    /// The spec that produced this report.
    pub spec: GraphSpec,
    /// Every unit, in `(kind, plane, budget)` enumeration order.
    pub cells: Vec<GraphCell>,
}

/// Units per campaign: every fault kind × plane × retry budget.
fn unit_count(plans: usize) -> usize {
    plans * PlaneKind::ALL.len() * GRAPH_BUDGETS.len()
}

/// One campaign unit: fresh environment, a fresh three-tier graph, the
/// kind's fault plan firing on the wire, and an open-loop request stream
/// served through multi-hop chains under the unit's recovery plane.
fn run_unit(
    plan: &GraphFaultPlan,
    plane: PlaneKind,
    budget: u32,
    requests: u64,
    arrival: ArrivalKind,
    unit_seed: u64,
    instrumented: bool,
) -> (GraphCell, Option<MetricsRegistry>) {
    let mut env = standard_env(unit_seed, instrumented);
    let mut graph = ServiceGraph::new(&mut env);
    let params = TrafficParams::standard(arrival, requests);
    let stats = run_graph(
        &mut env,
        &mut graph,
        plan,
        plane,
        budget,
        &params,
        split_seed(unit_seed, 1),
        split_seed(unit_seed, 2),
        split_seed(unit_seed, 3),
    );
    let fired =
        stats.edges.client_web.faults + stats.edges.web_db.faults + stats.edges.ide_web.faults;
    let cell = GraphCell {
        plan: plan.name.clone(),
        class: plan.class,
        kind: plan.kind,
        plane,
        budget,
        fired,
        stats,
    };
    let metrics = (instrumented).then(|| env.metrics.take().expect("metrics were enabled"));
    (cell, metrics.filter(|reg| !reg.is_empty()))
}

/// Ledgers a finished unit into the campaign registry under its
/// `<class>/<plane>/b<budget>` cell label.
fn ledger_unit(registry: &mut MetricsRegistry, cell: &GraphCell) {
    let label = format!("{}/{}/b{}", cell.class.short(), cell.plane.name(), cell.budget);
    let s = &cell.stats;
    registry.incr("graph.offered", &label, s.base.offered);
    registry.incr("graph.ok", &label, s.base.ok);
    registry.incr("graph.denied", &label, s.base.denied);
    registry.incr("graph.dropped", &label, s.base.dropped);
    registry.incr("graph.slo.violations", &label, s.base.slo_violations);
    registry.incr("graph.sim_nanos", &label, s.base.sim_nanos);
    registry.incr("graph.db.first", &label, s.db_first);
    registry.incr("graph.db.seen", &label, s.db_seen);
    registry.incr("graph.channel.recoveries", &label, s.channel_recoveries);
    registry.incr("graph.node.restarts", &label, s.node_restarts);
    registry.incr(
        "graph.edge.lost",
        &label,
        s.edges.client_web.lost + s.edges.web_db.lost + s.edges.ide_web.lost,
    );
    registry.incr(
        "graph.edge.resets",
        &label,
        s.edges.client_web.resets + s.edges.web_db.resets + s.edges.ide_web.resets,
    );
    registry.merge_histogram("graph.latency", &label, s.base.latency.clone());
    registry.merge_histogram("graph.ttr.class", &label, s.ttr.clone());
    registry.merge_histogram("graph.cascade.depth", &label, s.cascade_depth.clone());
}

impl GraphReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: GraphSpec) -> GraphReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    pub fn run_with(spec: GraphSpec, parallel: ParallelSpec) -> GraphReport {
        Self::run_units(spec, parallel, false).0
    }

    /// Runs the campaign with per-unit metrics enabled, returning the
    /// merged registry alongside the (unchanged) report.
    ///
    /// The registry carries the per-cell request ledgers
    /// (`graph.offered`, `graph.ok`, `graph.denied`, `graph.dropped`,
    /// `graph.slo.violations`, `graph.sim_nanos`), the distributed cost
    /// counters (`graph.db.first`, `graph.db.seen`,
    /// `graph.channel.recoveries`, `graph.node.restarts`,
    /// `graph.edge.lost`, `graph.edge.resets`), the merged per-cell
    /// histograms (`graph.latency`, `graph.ttr.class`,
    /// `graph.cascade.depth`), and everything the units' environments
    /// recorded. Registries merge in unit-index order, so the result is
    /// byte-identical at any thread count.
    pub fn run_instrumented(
        spec: GraphSpec,
        parallel: ParallelSpec,
    ) -> (GraphReport, MetricsRegistry) {
        Self::run_units(spec, parallel, true)
    }

    fn run_units(
        spec: GraphSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (GraphReport, MetricsRegistry) {
        struct Acc {
            cells: Vec<GraphCell>,
            registry: MetricsRegistry,
        }
        let plans = graph_plans(spec.seed);
        let units = unit_count(plans.len());
        let per_plane = GRAPH_BUDGETS.len();
        let per_plan = PlaneKind::ALL.len() * per_plane;
        let base_requests = spec.requests / units as u64;
        let remainder = spec.requests % units as u64;
        let acc = run_chunk_fold(
            units,
            parallel,
            || Acc { cells: Vec::new(), registry: MetricsRegistry::new() },
            |range, acc: &mut Acc| {
                // One batched seed stream per chunk: the worker derives
                // consecutive unit seeds without per-unit rederivation.
                let mut seeds = SplitSeedStream::new(spec.seed, range.start as u64);
                for index in range {
                    let plan = &plans[index / per_plan];
                    let plane = PlaneKind::ALL[(index % per_plan) / per_plane];
                    let budget = GRAPH_BUDGETS[index % per_plane];
                    let requests = base_requests + u64::from((index as u64) < remainder);
                    let (cell, metrics) = run_unit(
                        plan,
                        plane,
                        budget,
                        requests,
                        spec.arrival,
                        seeds.next_seed(),
                        instrumented,
                    );
                    if let Some(reg) = &metrics {
                        acc.registry.merge_from(reg);
                    }
                    if instrumented {
                        ledger_unit(&mut acc.registry, &cell);
                    }
                    acc.cells.push(cell);
                }
            },
            |acc, later| {
                acc.cells.extend(later.cells);
                acc.registry.merge_from(&later.registry);
            },
        );
        (GraphReport { spec, cells: acc.cells }, acc.registry)
    }

    /// The unit for `(kind, plane, budget)`, if it exists.
    pub fn cell(
        &self,
        kind: ChannelFaultKind,
        plane: PlaneKind,
        budget: u32,
    ) -> Option<&GraphCell> {
        self.cells.iter().find(|c| c.kind == kind && c.plane == plane && c.budget == budget)
    }

    /// The folded graph ledger of every unit of `class` under `plane` at
    /// `budget`, across all fault kinds of the class.
    pub fn class_graph(&self, class: FaultClass, plane: PlaneKind, budget: u32) -> GraphUnitStats {
        let mut total = GraphUnitStats::new();
        for cell in &self.cells {
            if cell.class == class && cell.plane == plane && cell.budget == budget {
                total.absorb(&cell.stats);
            }
        }
        total
    }

    /// The folded SLO ledger of `(class, plane, budget)`.
    pub fn class_stats(&self, class: FaultClass, plane: PlaneKind, budget: u32) -> UnitStats {
        self.class_graph(class, plane, budget).base
    }

    /// The merged time-to-recovery histogram of `(class, plane, budget)`,
    /// over chains that were bitten by a fault and still answered.
    pub fn class_ttr(&self, class: FaultClass, plane: PlaneKind, budget: u32) -> Histogram {
        self.class_graph(class, plane, budget).ttr
    }

    /// The merged cascade-depth histogram of `(class, plane, budget)`:
    /// depth 1 = salvaged inside the chain, 2 = client retried,
    /// 3 = user-visible drop.
    pub fn class_cascade(&self, class: FaultClass, plane: PlaneKind, budget: u32) -> Histogram {
        self.class_graph(class, plane, budget).cascade_depth
    }

    /// The largest per-cell downstream-amplification ratio at `budget` —
    /// db requests served per db request the chains first demanded.
    pub fn max_amplification(&self, budget: u32) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.budget == budget)
            .map(|c| c.stats.amplification())
            .fold(1.0, f64::max)
    }

    /// The folded SLO ledger of the whole campaign.
    pub fn totals(&self) -> UnitStats {
        let mut total = UnitStats::default();
        for cell in &self.cells {
            total.absorb(&cell.stats.base);
        }
        total
    }

    /// The folded graph ledger of the whole campaign.
    pub fn graph_totals(&self) -> GraphUnitStats {
        let mut total = GraphUnitStats::new();
        for cell in &self.cells {
            total.absorb(&cell.stats);
        }
        total
    }

    /// Fraction of offered requests in `(class, plane, budget)` that
    /// missed the SLO — violations plus drops over offered, in [0, 1].
    pub fn slo_miss_rate(&self, class: FaultClass, plane: PlaneKind, budget: u32) -> f64 {
        let stats = self.class_stats(class, plane, budget);
        if stats.offered == 0 {
            return 0.0;
        }
        (stats.slo_violations + stats.dropped) as f64 / stats.offered as f64
    }

    /// Violations of the campaign's class contracts — the distributed
    /// analogue of the survival matrix's predictions, measured on the
    /// wire. A contract cell that was offered no requests (or recovered
    /// nothing where recovery is the thing under test) is itself an
    /// anomaly: an underpowered run must exit non-zero instead of
    /// passing vacuously.
    ///
    /// 1. Sticky (nontransient) wedges at the full budget: per-channel
    ///    recovery must lose nothing and beat process supervision on
    ///    median time-to-recovery — resetting a channel and rebooting one
    ///    endpoint is orders cheaper than restarting the node.
    /// 2. At least one retry policy must amplify downstream load
    ///    (db requests served per db request demanded > 1): retries are
    ///    not free, they cascade.
    /// 3. Defects (environment-independent) must drop requests under
    ///    *both* planes — no channel hygiene recovers a deterministic bug.
    /// 4. The run must exercise faults at all.
    pub fn anomalies(&self) -> Vec<String> {
        let mut anomalies = Vec::new();
        let full = *GRAPH_BUDGETS.last().expect("sweep is nonempty");

        let edn = FaultClass::EnvDependentNonTransient;
        let channel = self.class_graph(edn, PlaneKind::Channel, full);
        let process = self.class_graph(edn, PlaneKind::Process, full);
        if channel.base.offered == 0 || process.base.offered == 0 {
            anomalies.push("edn: offered no requests, contract unchecked".to_owned());
        } else if channel.base.dropped > 0 {
            anomalies.push(format!(
                "edn/channel/b{full}: per-channel recovery lost {} requests on sticky wedges",
                channel.base.dropped
            ));
        } else {
            match (channel.ttr.p50(), process.ttr.p50()) {
                (Some(ch), Some(pr)) if ch < pr => {}
                (Some(ch), Some(pr)) => anomalies.push(format!(
                    "edn/b{full}: channel ttr p50 {ch} ns must beat process ttr p50 {pr} ns"
                )),
                _ => anomalies.push("edn: no recoveries measured, contract unchecked".to_owned()),
            }
        }

        let amp = self.max_amplification(full);
        if amp <= 1.0 {
            anomalies.push(format!(
                "b{full}: no retry policy amplified downstream load (max ratio {amp:.3})"
            ));
        }

        let ei = FaultClass::EnvironmentIndependent;
        for plane in PlaneKind::ALL {
            let stats = self.class_stats(ei, plane, full);
            if stats.offered == 0 {
                anomalies
                    .push(format!("ei/{}: offered no requests, contract unchecked", plane.name()));
            } else if stats.dropped == 0 {
                anomalies.push(format!(
                    "ei/{}: defects must drop requests under any recovery plane",
                    plane.name()
                ));
            }
        }

        if self.totals().failures == 0 {
            anomalies.push("campaign exercised no faults".to_owned());
        }
        anomalies
    }
}

/// Nanoseconds rendered as fractional milliseconds for the tables.
fn ms(nanos: Option<u64>) -> f64 {
    nanos.unwrap_or(0) as f64 / 1e6
}

impl fmt::Display for GraphReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Graph campaign: {} requests offered over {} units ({} arrivals, seed {})",
            self.spec.requests,
            self.cells.len(),
            self.spec.arrival.name(),
            self.spec.seed
        )?;
        writeln!(
            f,
            "  {:<12} {:<8} {:>3} {:>8} {:>7} {:>8} {:>11} {:>6} {:>7}",
            "class", "plane", "b", "offered", "avail%", "dropped", "ttr p50 ms", "amp", "viol%"
        )?;
        for class in FaultClass::ALL {
            for plane in PlaneKind::ALL {
                for budget in GRAPH_BUDGETS {
                    let g = self.class_graph(class, plane, budget);
                    if g.base.offered == 0 {
                        continue;
                    }
                    writeln!(
                        f,
                        "  {:<12} {:<8} {:>3} {:>8} {:>7.2} {:>8} {:>11.2} {:>6.2} {:>7.2}",
                        class.short(),
                        plane.name(),
                        budget,
                        g.base.offered,
                        100.0 * g.base.availability(),
                        g.base.dropped,
                        ms(g.ttr.p50()),
                        g.amplification(),
                        100.0 * self.slo_miss_rate(class, plane, budget),
                    )?;
                }
            }
        }
        let t = self.graph_totals();
        writeln!(
            f,
            "  total: {} offered, {} answered ({:.2}%), {} dropped, {} SLO violations",
            t.base.offered,
            t.base.answered(),
            100.0 * t.base.availability(),
            t.base.dropped,
            t.base.slo_violations
        )?;
        writeln!(
            f,
            "  cascade: {} faulted chains (depth p50 {} max {}), {} channel resets, {} node \
             restarts, max amplification {:.2} at b{}",
            t.cascade_depth.count(),
            t.cascade_depth.p50().unwrap_or(0),
            t.cascade_depth.max().unwrap_or(0),
            t.channel_recoveries,
            t.node_restarts,
            self.max_amplification(*GRAPH_BUDGETS.last().expect("sweep is nonempty")),
            GRAPH_BUDGETS.last().expect("sweep is nonempty"),
        )?;
        let anomalies = self.anomalies();
        if anomalies.is_empty() {
            writeln!(f, "  no anomalies: both planes matched the wire-level class contract")
        } else {
            writeln!(f, "  ANOMALIES: {anomalies:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> GraphSpec {
        // 3600 / 72 units = 50 requests per unit, exactly.
        GraphSpec { seed, requests: 3_600, arrival: ArrivalKind::Poisson }
    }

    #[test]
    fn campaign_enumerates_every_kind_plane_budget() {
        let report = GraphReport::run(small_spec(1));
        assert_eq!(report.cells.len(), 12 * 2 * 3);
        assert_eq!(report.totals().offered, 3_600);
        assert!(report.cells.iter().all(|c| c.stats.base.offered == 50));
        for kind in ChannelFaultKind::ALL {
            for plane in PlaneKind::ALL {
                for budget in GRAPH_BUDGETS {
                    assert!(
                        report.cell(kind, plane, budget).is_some(),
                        "{kind} {plane:?} {budget}"
                    );
                }
            }
        }
    }

    #[test]
    fn uneven_loads_land_on_the_earliest_units() {
        let spec = GraphSpec { seed: 1, requests: 145, arrival: ArrivalKind::Poisson };
        let report = GraphReport::run(spec);
        assert_eq!(report.totals().offered, 145);
        assert_eq!(report.cells[0].stats.base.offered, 3);
        assert_eq!(report.cells[1].stats.base.offered, 2);
        assert_eq!(report.cells[2].stats.base.offered, 2);
    }

    #[test]
    fn reports_are_reproducible_and_thread_invariant() {
        let spec = small_spec(7);
        let reference = GraphReport::run_with(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let report = GraphReport::run_with(spec, ParallelSpec::threads(threads));
            assert_eq!(report, reference, "{threads} threads");
        }
        let chunked = GraphReport::run_with(spec, ParallelSpec::threads(2).with_chunk(7));
        assert_eq!(chunked, reference);
    }

    #[test]
    fn the_class_contracts_hold_and_the_report_is_anomaly_free() {
        let report = GraphReport::run(small_spec(1));
        assert_eq!(report.anomalies(), Vec::<String>::new());

        // Sticky wedges: the channel plane salvages everything and
        // recovers far faster than node restarts.
        let edn = FaultClass::EnvDependentNonTransient;
        let channel = report.class_graph(edn, PlaneKind::Channel, 3);
        let process = report.class_graph(edn, PlaneKind::Process, 3);
        assert_eq!(channel.base.dropped, 0, "channel plane must not lose sticky-wedge chains");
        assert!(
            channel.ttr.p50().unwrap() < process.ttr.p50().unwrap(),
            "channel ttr p50 {:?} !< process {:?}",
            channel.ttr.p50(),
            process.ttr.p50()
        );

        // Retries cascade: some budget-3 cell re-drove the db tier.
        assert!(report.max_amplification(3) > 1.0);

        // Defects defeat both planes.
        for plane in PlaneKind::ALL {
            let ei = report.class_stats(FaultClass::EnvironmentIndependent, plane, 3);
            assert!(ei.dropped > 0, "{} plane must drop on defects", plane.name());
        }

        // Zero budget turns every bitten chain into a user-visible drop:
        // strictly worse availability than the full budget, same plane.
        let b0 = report.class_stats(edn, PlaneKind::Channel, 0);
        assert!(b0.dropped > 0, "zero budget must surface drops");
    }

    #[test]
    fn instrumented_campaign_reproduces_the_plain_report() {
        let spec = small_spec(5);
        let plain = GraphReport::run(spec);
        let (report, registry) = GraphReport::run_instrumented(spec, ParallelSpec::default());
        assert_eq!(report, plain, "instrumentation must not perturb the campaign");
        let mut offered = 0;
        let mut cascade = 0;
        for class in FaultClass::ALL {
            for plane in PlaneKind::ALL {
                for budget in GRAPH_BUDGETS {
                    let label = format!("{}/{}/b{}", class.short(), plane.name(), budget);
                    offered += registry.counter("graph.offered", &label);
                    cascade +=
                        registry.histogram("graph.cascade.depth", &label).map_or(0, |h| h.count());
                }
            }
        }
        assert_eq!(offered, report.totals().offered);
        assert_eq!(cascade, report.graph_totals().cascade_depth.count());
        assert!(cascade > 0, "the campaign must fault some chains");
    }

    #[test]
    fn instrumented_registry_is_identical_across_thread_counts() {
        let spec = small_spec(2);
        let (ref_report, ref_registry) =
            GraphReport::run_instrumented(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let (report, registry) =
                GraphReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, ref_report, "{threads} threads");
            assert_eq!(registry, ref_registry, "{threads} threads");
        }
    }

    #[test]
    fn display_renders_the_cascade_table() {
        let report = GraphReport::run(small_spec(4));
        let text = report.to_string();
        assert!(text.contains("ttr p50 ms"));
        assert!(text.contains("channel"));
        assert!(text.contains("process"));
        assert!(text.contains("cascade:"));
        assert!(text.contains("amplification"));
    }
}
