//! The traffic campaign: open-loop request streams driven through every
//! injection plan × recovery strategy × application.
//!
//! The injection campaign (see [`inject`](crate::inject)) asks a binary
//! question — did a fixed nine-request workload survive? This campaign
//! asks the operator's question instead: under sustained load and the
//! same environmental perturbations, what availability, goodput, and
//! tail latency does each strategy actually deliver? Each unit offers an
//! open-loop stream of user sessions (arrivals never wait for the
//! server), serves every request through the hardened per-request
//! supervisor with the unit's injection plan firing mid-stream, and
//! ledgers per-request outcomes into a latency histogram and SLO
//! counters.
//!
//! Determinism: unit seeds come from the batched `split_seed` stream,
//! arrival schedules and session randomness are derived per unit, and
//! units fold in index order through [`run_chunk_fold`] — the report and
//! the metrics registry are byte-identical at any thread count and chunk
//! size.

use crate::experiment::{cell_label, standard_env, StrategyKind};
use faultstudy_apps::{spawn_app, Application, Request};
use faultstudy_core::taxonomy::{AppKind, FaultClass};
use faultstudy_exec::{run_chunk_fold, ParallelSpec};
use faultstudy_inject::{standard_plans, InjectionPlan, Injector};
use faultstudy_obs::MetricsRegistry;
use faultstudy_recovery::{BackoffPolicy, SupervisorConfig};
use faultstudy_sim::rng::{split_seed, SplitSeedStream};
use faultstudy_sim::time::Duration;
use faultstudy_traffic::{run_open_loop, ArrivalKind, TrafficParams, UnitStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a traffic campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficSpec {
    /// Master seed; the campaign is a pure function of it.
    pub seed: u64,
    /// Total requests offered across the whole campaign, spread evenly
    /// over the units (earlier units absorb the remainder).
    pub requests: u64,
    /// Arrival-process family for every unit.
    pub arrival: ArrivalKind,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec { seed: 1, requests: 20_000, arrival: ArrivalKind::Poisson }
    }
}

/// One `(plan, strategy, application)` unit of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficCell {
    /// Application under load.
    pub app: AppKind,
    /// Injection plan name.
    pub plan: String,
    /// The paper class of the injected condition.
    pub class: FaultClass,
    /// Strategy under test.
    pub strategy: StrategyKind,
    /// Injection events that came due and were applied.
    pub injected: usize,
    /// The unit's request ledger.
    pub stats: UnitStats,
}

/// Aggregate of one traffic campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// The spec that produced this report.
    pub spec: TrafficSpec,
    /// Every unit, in `(plan, strategy, app)` enumeration order.
    pub cells: Vec<TrafficCell>,
}

/// Units per campaign: every plan × strategy × application.
fn unit_count(plans: usize) -> usize {
    plans * StrategyKind::ALL.len() * AppKind::ALL.len()
}

/// The supervised-serving configuration of every traffic unit.
///
/// Requests take 500 µs of simulated service against a 1000 req/s offered
/// rate, so the healthy system runs at 50% utilization with headroom for
/// recovery stalls. The 4 s watchdog outlives every self-healing window;
/// backoff matches the injection campaign's 50 ms–2 s band. The breaker
/// is disabled: an open-loop stream must keep attempting requests so the
/// ledger reflects every strategy's steady-state behaviour, not a single
/// trip to degraded mode.
pub(crate) fn traffic_config(backoff_seed: u64) -> SupervisorConfig {
    SupervisorConfig {
        watchdog: Some(Duration::from_secs(4)),
        backoff: BackoffPolicy::new(
            Duration::from_millis(50),
            Duration::from_secs(2),
            backoff_seed,
        ),
        breaker_threshold: 0,
        scrub_every: 0,
        request_takes: Duration::from_micros(500),
    }
}

/// The request mix a unit's sessions draw from, prepared once per unit so
/// the per-request path only indexes into it.
///
/// Every body is safe on a healthy application (served or gracefully
/// denied); the environment-touching entries (descriptors, DNS, entropy,
/// hostname) are what couple the stream to the injection plan's
/// perturbations. On MiniWeb the plan's companion defect is armed, and
/// its triggering request rides in the mix — the fault under study is
/// *part of the traffic*, exactly the paper's "users do not generously
/// avoid the trigger" assumption.
pub(crate) fn traffic_mix(
    app: &dyn Application,
    kind: AppKind,
    plan: &InjectionPlan,
) -> Vec<Request> {
    match kind {
        AppKind::Apache => {
            let trigger = app
                .trigger_request(&plan.companion_defect)
                .expect("every plan's companion defect has a trigger");
            vec![
                Request::new("GET /index.html"),
                Request::new("GET /index.html"),
                Request::new("GET /file"),
                Request::new("GET /file"),
                Request::new("AUTH admin"),
                Request::new("RESOLVE remote.example"),
                Request::new("SSL"),
                Request::new("BIND"),
                Request::new("KEEPALIVE 4"),
                trigger.clone(),
                trigger,
            ]
        }
        AppKind::Gnome => vec![
            Request::new("CLICK clock"),
            Request::new("CLICK desktop-background"),
            Request::new("OPEN desktop/readme.txt"),
            Request::new("OPEN-DISPLAY"),
            Request::new("PLAY-SOUND"),
            Request::new("LAUNCH"),
            Request::new("FORMULA (1+2)"),
        ],
        AppKind::Mysql => vec![
            Request::new("PING"),
            Request::new("PING"),
            Request::new("CONNECT"),
            Request::new("UNLOCK TABLES"),
            Request::new("FLUSH TABLES"),
        ],
    }
}

/// One campaign unit: fresh environment and application, the plan's
/// injector on the pre-attempt hook, and an open-loop request stream.
fn run_unit(
    plan: &InjectionPlan,
    strategy: StrategyKind,
    app_kind: AppKind,
    requests: u64,
    arrival: ArrivalKind,
    unit_seed: u64,
    instrumented: bool,
) -> (TrafficCell, Option<MetricsRegistry>) {
    let mut env = standard_env(unit_seed, instrumented);
    let mut app = spawn_app(app_kind, &mut env);
    if app_kind == AppKind::Apache {
        app.arm_defect(&plan.companion_defect)
            .expect("every plan's companion defect arms in MiniWeb");
    }
    let mix = traffic_mix(app.as_ref(), app_kind, plan);
    let mut injector = Injector::new(plan, &mut env);
    let mut strat = strategy.build();
    let config = traffic_config(split_seed(unit_seed, 1));
    let params = TrafficParams::standard(arrival, requests);
    let stats = run_open_loop(
        app.as_mut(),
        &mut env,
        strat.as_mut(),
        &config,
        Some(&mut injector),
        &mix,
        &params,
        split_seed(unit_seed, 2),
        split_seed(unit_seed, 3),
    );
    let cell = TrafficCell {
        app: app_kind,
        plan: plan.name.clone(),
        class: plan.class,
        strategy,
        injected: injector.applied(),
        stats,
    };
    let metrics = instrumented.then(|| env.metrics.take().expect("metrics were enabled"));
    (cell, metrics.filter(|reg| !reg.is_empty()))
}

/// Ledgers a finished unit into the campaign registry under its interned
/// `(class, strategy)` cell label.
fn ledger_unit(registry: &mut MetricsRegistry, cell: &TrafficCell) {
    let label = cell_label(cell.class, cell.strategy);
    let s = &cell.stats;
    registry.incr("traffic.offered", label, s.offered);
    registry.incr("traffic.ok", label, s.ok);
    registry.incr("traffic.denied", label, s.denied);
    registry.incr("traffic.dropped", label, s.dropped);
    registry.incr("traffic.slo.violations", label, s.slo_violations);
    registry.incr("traffic.sim_nanos", label, s.sim_nanos);
    registry.merge_histogram("traffic.latency", label, s.latency.clone());
}

impl TrafficReport {
    /// Runs the campaign with the host's available parallelism.
    pub fn run(spec: TrafficSpec) -> TrafficReport {
        Self::run_with(spec, ParallelSpec::default())
    }

    /// Runs the campaign on `parallel` worker threads.
    pub fn run_with(spec: TrafficSpec, parallel: ParallelSpec) -> TrafficReport {
        Self::run_units(spec, parallel, false).0
    }

    /// Runs the campaign with per-unit metrics enabled, returning the
    /// merged registry alongside the (unchanged) report.
    ///
    /// The registry carries per-cell request ledgers (`traffic.offered`,
    /// `traffic.ok`, `traffic.denied`, `traffic.dropped`,
    /// `traffic.slo.violations`, `traffic.sim_nanos`), the merged
    /// per-cell latency histograms (`traffic.latency`), and everything
    /// the environment's own sink recorded (supervisor hardening
    /// counters, recovery TTR spans, injector applications). Registries
    /// merge in unit-index order, so the result is byte-identical at any
    /// thread count.
    pub fn run_instrumented(
        spec: TrafficSpec,
        parallel: ParallelSpec,
    ) -> (TrafficReport, MetricsRegistry) {
        Self::run_units(spec, parallel, true)
    }

    fn run_units(
        spec: TrafficSpec,
        parallel: ParallelSpec,
        instrumented: bool,
    ) -> (TrafficReport, MetricsRegistry) {
        struct Acc {
            cells: Vec<TrafficCell>,
            registry: MetricsRegistry,
        }
        let plans = standard_plans(spec.seed);
        let units = unit_count(plans.len());
        let per_app = AppKind::ALL.len();
        let per_plan = StrategyKind::ALL.len() * per_app;
        let base_requests = spec.requests / units as u64;
        let remainder = spec.requests % units as u64;
        let acc = run_chunk_fold(
            units,
            parallel,
            || Acc { cells: Vec::new(), registry: MetricsRegistry::new() },
            |range, acc: &mut Acc| {
                // One batched seed stream per chunk: the worker derives
                // consecutive unit seeds without per-unit rederivation.
                let mut seeds = SplitSeedStream::new(spec.seed, range.start as u64);
                for index in range {
                    let plan = &plans[index / per_plan];
                    let strategy = StrategyKind::ALL[(index % per_plan) / per_app];
                    let app_kind = AppKind::ALL[index % per_app];
                    let requests = base_requests + u64::from((index as u64) < remainder);
                    let (cell, metrics) = run_unit(
                        plan,
                        strategy,
                        app_kind,
                        requests,
                        spec.arrival,
                        seeds.next_seed(),
                        instrumented,
                    );
                    if let Some(reg) = &metrics {
                        acc.registry.merge_from(reg);
                    }
                    if instrumented {
                        ledger_unit(&mut acc.registry, &cell);
                    }
                    acc.cells.push(cell);
                }
            },
            |acc, later| {
                acc.cells.extend(later.cells);
                acc.registry.merge_from(&later.registry);
            },
        );
        (TrafficReport { spec, cells: acc.cells }, acc.registry)
    }

    /// The unit for `(plan, strategy, app)`, if the plan exists.
    pub fn cell(&self, plan: &str, strategy: StrategyKind, app: AppKind) -> Option<&TrafficCell> {
        self.cells.iter().find(|c| c.plan == plan && c.strategy == strategy && c.app == app)
    }

    /// The folded ledger of every unit of `class` under `strategy`,
    /// across all plans and applications.
    pub fn class_stats(&self, class: FaultClass, strategy: StrategyKind) -> UnitStats {
        let mut total = UnitStats::default();
        for cell in &self.cells {
            if cell.class == class && cell.strategy == strategy {
                total.absorb(&cell.stats);
            }
        }
        total
    }

    /// The folded ledger of the whole campaign.
    pub fn totals(&self) -> UnitStats {
        let mut total = UnitStats::default();
        for cell in &self.cells {
            total.absorb(&cell.stats);
        }
        total
    }

    /// Fraction of offered requests in `(class, strategy)` that missed
    /// the SLO — violations plus drops over offered, in [0, 1].
    pub fn slo_miss_rate(&self, class: FaultClass, strategy: StrategyKind) -> f64 {
        let stats = self.class_stats(class, strategy);
        if stats.offered == 0 {
            return 0.0;
        }
        (stats.slo_violations + stats.dropped) as f64 / stats.offered as f64
    }

    /// Violations of the campaign's class contract: EI triggers must
    /// drop requests under no recovery, restart must not make transient
    /// classes worse than no recovery, and the run must exercise faults
    /// at all. A class cell that was offered no requests is itself an
    /// anomaly — an underpowered run must exit non-zero instead of
    /// passing vacuously.
    pub fn anomalies(&self) -> Vec<String> {
        let mut anomalies = Vec::new();
        let none = self.class_stats(FaultClass::EnvironmentIndependent, StrategyKind::None);
        if none.offered == 0 {
            anomalies.push("ei/none: offered no requests, contract unchecked".to_owned());
        } else if none.dropped == 0 {
            anomalies.push("ei/none: EI triggers must drop requests under no recovery".to_owned());
        }
        let restart = self.class_stats(FaultClass::EnvDependentTransient, StrategyKind::Restart);
        let bare = self.class_stats(FaultClass::EnvDependentTransient, StrategyKind::None);
        if restart.offered == 0 || bare.offered == 0 {
            anomalies.push("edt: offered no requests, contract unchecked".to_owned());
        } else if restart.availability() < bare.availability() {
            anomalies.push(format!(
                "edt: restart availability {:.4} below no-recovery {:.4}",
                restart.availability(),
                bare.availability()
            ));
        }
        if self.totals().failures == 0 {
            anomalies.push("campaign exercised no faults".to_owned());
        }
        anomalies
    }
}

/// Nanoseconds rendered as fractional milliseconds for the SLO table.
fn ms(nanos: Option<u64>) -> f64 {
    nanos.unwrap_or(0) as f64 / 1e6
}

impl fmt::Display for TrafficReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Traffic campaign: {} requests offered over {} units ({} arrivals, seed {})",
            self.spec.requests,
            self.cells.len(),
            self.spec.arrival.name(),
            self.spec.seed
        )?;
        writeln!(
            f,
            "  {:<12} {:<13} {:>9} {:>7} {:>10} {:>9} {:>9} {:>7}",
            "class", "strategy", "offered", "avail%", "goodput/s", "p99 ms", "p999 ms", "viol%"
        )?;
        for class in FaultClass::ALL {
            for strategy in StrategyKind::ALL {
                let s = self.class_stats(class, strategy);
                if s.offered == 0 {
                    continue;
                }
                writeln!(
                    f,
                    "  {:<12} {:<13} {:>9} {:>7.2} {:>10.1} {:>9.2} {:>9.2} {:>7.2}",
                    class.short(),
                    strategy.name(),
                    s.offered,
                    100.0 * s.availability(),
                    s.goodput_per_sec(),
                    ms(s.latency.p99()),
                    ms(s.latency.p999()),
                    100.0 * self.slo_miss_rate(class, strategy),
                )?;
            }
        }
        let t = self.totals();
        writeln!(
            f,
            "  total: {} offered, {} answered ({:.2}%), {} dropped, {} SLO violations",
            t.offered,
            t.answered(),
            100.0 * t.availability(),
            t.dropped,
            t.slo_violations
        )?;
        let anomalies = self.anomalies();
        if anomalies.is_empty() {
            writeln!(f, "  no anomalies: degradation and recovery matched the class contract")
        } else {
            writeln!(f, "  ANOMALIES: {anomalies:?}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> TrafficSpec {
        TrafficSpec { seed, requests: 3_780, arrival: ArrivalKind::Poisson }
    }

    #[test]
    fn campaign_offers_exactly_the_requested_load() {
        let report = TrafficReport::run(small_spec(1));
        assert_eq!(report.cells.len(), 9 * 7 * 3);
        assert_eq!(report.totals().offered, 3_780);
        // Every unit got its even share (3780 / 189 = 20 exactly).
        assert!(report.cells.iter().all(|c| c.stats.offered == 20));
    }

    #[test]
    fn uneven_loads_land_on_the_earliest_units() {
        let spec = TrafficSpec { seed: 1, requests: 191, arrival: ArrivalKind::Poisson };
        let report = TrafficReport::run(spec);
        assert_eq!(report.totals().offered, 191);
        assert_eq!(report.cells[0].stats.offered, 2);
        assert_eq!(report.cells[1].stats.offered, 2);
        assert_eq!(report.cells[2].stats.offered, 1);
    }

    #[test]
    fn reports_are_reproducible_and_thread_invariant() {
        let spec = small_spec(7);
        let reference = TrafficReport::run_with(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let report = TrafficReport::run_with(spec, ParallelSpec::threads(threads));
            assert_eq!(report, reference, "{threads} threads");
        }
        // Chunk size must not matter either.
        let chunked = TrafficReport::run_with(spec, ParallelSpec::threads(2).with_chunk(7));
        assert_eq!(chunked, reference);
    }

    #[test]
    fn faults_degrade_availability_but_recovery_restores_goodput() {
        let report = TrafficReport::run(small_spec(3));
        // The environment-independent control defeats every strategy on
        // MiniWeb: its trigger rides in the mix and always crashes.
        let none = report.class_stats(FaultClass::EnvironmentIndependent, StrategyKind::None);
        assert!(none.dropped > 0, "EI triggers must drop requests under no recovery");
        // Transient perturbations under restart still answer nearly all
        // requests; under no recovery they drop more.
        let restart = report.class_stats(FaultClass::EnvDependentTransient, StrategyKind::Restart);
        let bare = report.class_stats(FaultClass::EnvDependentTransient, StrategyKind::None);
        assert!(
            restart.availability() >= bare.availability(),
            "restart {} < none {}",
            restart.availability(),
            bare.availability()
        );
        assert!(report.totals().failures > 0, "the campaign must exercise faults");
    }

    #[test]
    fn instrumented_campaign_reproduces_the_plain_report() {
        let spec = small_spec(5);
        let plain = TrafficReport::run(spec);
        let (report, registry) = TrafficReport::run_instrumented(spec, ParallelSpec::default());
        assert_eq!(report, plain, "metrics must not perturb the campaign");
        // The per-cell ledgers reconcile with the report.
        let mut offered = 0;
        let mut latency_count = 0;
        for class in FaultClass::ALL {
            for strategy in StrategyKind::ALL {
                let label = format!("{}/{}", class.short(), strategy.name());
                offered += registry.counter("traffic.offered", &label);
                latency_count +=
                    registry.histogram("traffic.latency", &label).map_or(0, |h| h.count());
            }
        }
        assert_eq!(offered, report.totals().offered);
        assert_eq!(latency_count, report.totals().latency.count());
    }

    #[test]
    fn instrumented_registry_is_identical_across_thread_counts() {
        let spec = small_spec(2);
        let (ref_report, ref_registry) =
            TrafficReport::run_instrumented(spec, ParallelSpec::threads(1));
        for threads in [2usize, 4] {
            let (report, registry) =
                TrafficReport::run_instrumented(spec, ParallelSpec::threads(threads));
            assert_eq!(report, ref_report, "{threads} threads");
            assert_eq!(registry, ref_registry, "{threads} threads");
        }
    }

    #[test]
    fn display_renders_the_slo_table() {
        let report = TrafficReport::run(small_spec(4));
        let text = report.to_string();
        assert!(text.contains("goodput/s"));
        assert!(text.contains("p999 ms"));
        assert!(text.contains("restart"));
        assert!(text.contains("total:"));
    }
}
