//! End-to-end tests of the `faultstudy` CLI binary.

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_faultstudy")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn tables_command_prints_all_three_tables() {
    let (stdout, _, ok) = run(&["tables"]);
    assert!(ok);
    for needle in ["Table 1", "Table 2", "Table 3", "Apache", "GNOME", "MySQL", "36", "39", "38"] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
}

#[test]
fn figures_command_prints_all_three_figures() {
    let (stdout, _, ok) = run(&["figures"]);
    assert!(ok);
    for needle in ["Figure 1", "Figure 2", "Figure 3", "1.3.9", "1999-07", "3.23.0"] {
        assert!(stdout.contains(needle), "missing {needle}");
    }
}

#[test]
fn summary_command_prints_discussion() {
    let (stdout, _, ok) = run(&["summary"]);
    assert!(ok);
    assert!(stdout.contains("139 faults"));
    assert!(stdout.contains("72%-87%"));
}

#[test]
fn mine_command_prints_funnels() {
    let (stdout, _, ok) = run(&["mine", "--seed", "5"]);
    assert!(ok);
    assert!(stdout.contains("5220 (raw archive)"));
    assert!(stdout.contains("44 (unique bugs)"));
    assert!(stdout.contains("precision 1.000"));
}

#[test]
fn recover_command_prints_matrix() {
    let (stdout, _, ok) = run(&["recover", "--seed", "2000"]);
    assert!(ok);
    assert!(stdout.contains("Recovery matrix (seed 2000)"));
    assert!(stdout.contains("0/113"), "EI column");
    assert!(stdout.contains("app-specific"));
}

#[test]
fn campaign_command_prints_sampled_cells() {
    let (stdout, _, ok) = run(&["campaign", "--seed", "5"]);
    assert!(ok);
    assert!(stdout.contains("500 samples"));
    assert!(stdout.contains("no anomalies"));
    assert!(stdout.contains("environment-independent"));
}

#[test]
fn experiments_command_emits_markdown_without_mismatches() {
    let (stdout, _, ok) = run(&["experiments", "--seed", "2000"]);
    assert!(ok);
    assert!(stdout.starts_with("# EXPERIMENTS"));
    assert!(stdout.contains("## E9"));
    assert!(!stdout.contains("MISMATCH"), "paper-vs-measured mismatch in CLI output");
}

#[test]
fn lee_iyer_command_prints_reconciliation() {
    let (stdout, _, ok) = run(&["lee-iyer"]);
    assert!(ok);
    assert!(stdout.contains("82.0"));
    assert!(stdout.contains("29.0"));
}

#[test]
fn json_output_parses() {
    for cmd in ["tables", "summary", "lee-iyer"] {
        let (stdout, _, ok) = run(&[cmd, "--json"]);
        assert!(ok, "{cmd}");
        let value: serde_json::Value =
            serde_json::from_str(&stdout).unwrap_or_else(|e| panic!("{cmd}: {e}"));
        assert!(!value.is_null(), "{cmd}");
    }
}

#[test]
fn campaign_commands_pass_at_adequate_sizes() {
    let (stdout, stderr, ok) = run(&["micro", "--requests", "6000"]);
    assert!(ok, "micro: {stderr}");
    assert!(stdout.contains("no anomalies"));
    let (stdout, stderr, ok) = run(&["traffic", "--seed", "3", "--requests", "3780"]);
    assert!(ok, "traffic: {stderr}");
    assert!(stdout.contains("no anomalies"));
}

#[test]
fn underpowered_campaigns_exit_nonzero() {
    // Before the shared anomaly exit path, micro and traffic always
    // exited zero — even on runs too small to check any contract.
    let (_, stderr, ok) = run(&["micro", "--requests", "10"]);
    assert!(!ok, "an unchecked micro contract must fail the command");
    assert!(stderr.contains("ANOMALY"), "{stderr}");
    let (_, stderr, ok) = run(&["traffic", "--requests", "60"]);
    assert!(!ok, "an unchecked traffic contract must fail the command");
    assert!(stderr.contains("ANOMALY"), "{stderr}");
    let (_, stderr, ok) = run(&["oblivious", "--requests", "150"]);
    assert!(!ok, "an unchecked oblivious contract must fail the command");
    assert!(stderr.contains("ANOMALY"), "{stderr}");
}

#[test]
fn oblivious_command_prints_the_cost_matrix() {
    let (stdout, stderr, ok) = run(&["oblivious", "--requests", "6000"]);
    assert!(ok, "oblivious: {stderr}");
    assert!(stdout.contains("Oblivious-recovery campaign"));
    assert!(stdout.contains("oracle violations"));
    assert!(stdout.contains("manufactured"));
    assert!(stdout.contains("no anomalies"));
}

#[test]
fn verify_command_passes_and_reports() {
    let (stdout, _, ok) = run(&["verify", "--seed", "2000"]);
    assert!(ok, "verify must succeed on the shipped configuration");
    assert!(stdout.contains("all guarantees reproduced"));
}

#[test]
fn bad_usage_fails_cleanly() {
    let (_, stderr, ok) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (_, stderr, ok) = run(&["tables", "--seed"]);
    assert!(!ok);
    assert!(stderr.contains("--seed requires"));
    let (_, stderr, ok) = run(&["tables", "--bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown argument"));
}
