//! Property tests for the simulation substrate.

use faultstudy_sim::queue::EventQueue;
use faultstudy_sim::rng::{DetRng, SplitMix64, Xoshiro256StarStar};
use faultstudy_sim::sched::{Interleaver, StepOutcome, StepScheduler, Task};
use faultstudy_sim::time::{Clock, Duration, SimTime};
use faultstudy_sim::trace::Trace;
use faultstudy_sim::wheel::TimingWheel;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Offsets that exercise every wheel regime: same-tick ties (0), level-0
/// slots, mid-level cascades, and the far-future overflow ring beyond the
/// ~69 s horizon.
fn wheel_offset(selector: u8, raw: u64) -> u64 {
    match selector % 4 {
        0 => 0,
        1 => raw % 4_096,
        2 => raw % (1 << 30),
        _ => raw % (1 << 38),
    }
}

proptest! {
    /// SimTime/Duration arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_add_then_subtract_round_trips(t in 0u64..1 << 40, d in 0u64..1 << 40) {
        let t0 = SimTime::from_nanos(t);
        let dur = Duration::from_nanos(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!(t0.saturating_add(dur).saturating_since(t0), dur);
    }

    /// Clock::advance accumulates exactly.
    #[test]
    fn clock_accumulates(steps in prop::collection::vec(0u64..1 << 20, 1..50)) {
        let mut clock = Clock::new();
        let mut total = 0u64;
        for s in steps {
            clock.advance(Duration::from_nanos(s));
            total += s;
            prop_assert_eq!(clock.now(), SimTime::from_nanos(total));
        }
    }

    /// Two generators with the same seed emit identical streams; a
    /// different seed diverges within a few draws (with overwhelming
    /// probability — checked deterministically for the sampled seeds).
    #[test]
    fn xoshiro_streams_are_seed_determined(seed in any::<u64>()) {
        let mut a = Xoshiro256StarStar::seed_from(seed);
        let mut b = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::seed_from(seed.wrapping_add(1));
        let divergent = (0..16).any(|_| a.next_u64() != c.next_u64());
        prop_assert!(divergent);
    }

    /// `range` stays within bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_is_bounded(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..16 {
            let v = rng.range(lo, lo + width);
            prop_assert!((lo..lo + width).contains(&v));
        }
    }

    /// `chance(p)` over many draws lands near p (loose bound).
    #[test]
    fn rng_chance_tracks_probability(seed in any::<u64>(), p in 0.1f64..0.9) {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let n = 2000;
        let hits = (0..n).filter(|_| rng.chance(p)).count() as f64;
        prop_assert!((hits / n as f64 - p).abs() < 0.08, "p={p} rate={}", hits / n as f64);
    }

    /// Shuffle is a permutation.
    #[test]
    fn shuffle_permutes(seed in any::<u64>(), mut items in prop::collection::vec(0u32..100, 0..40)) {
        let mut rng = Xoshiro256StarStar::seed_from(seed);
        let mut shuffled = items.clone();
        rng.shuffle(&mut shuffled);
        shuffled.sort_unstable();
        items.sort_unstable();
        prop_assert_eq!(shuffled, items);
    }

    /// Draining a queue yields exactly the scheduled events, time-ordered.
    #[test]
    fn queue_drains_everything_in_order(times in prop::collection::vec(0u64..1000, 0..80)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(*t), i);
        }
        let mut drained = Vec::new();
        let mut last = SimTime::ZERO;
        while let Some((at, idx)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            drained.push(idx);
        }
        drained.sort_unstable();
        prop_assert_eq!(drained, (0..times.len()).collect::<Vec<_>>());
    }

    /// A scheduler over counter tasks conserves the total work regardless
    /// of the interleaving seed.
    #[test]
    fn scheduler_conserves_work(seed in any::<u64>(), counts in prop::collection::vec(1u32..8, 1..6)) {
        struct Counter(u32);
        impl Task<u64> for Counter {
            fn step(&mut self, shared: &mut u64) -> StepOutcome {
                if self.0 == 0 {
                    return StepOutcome::Done;
                }
                self.0 -= 1;
                *shared += 1;
                StepOutcome::Ready
            }
        }
        let mut sched = StepScheduler::new(0u64, Interleaver::Seeded(seed));
        let expected: u32 = counts.iter().sum();
        for c in counts {
            sched.spawn(Counter(c));
        }
        let (total, report) = sched.run(10_000);
        prop_assert!(report.succeeded());
        prop_assert_eq!(total, u64::from(expected));
    }

    /// Differential check: for arbitrary schedules — same-tick ties,
    /// near and far offsets, pops interleaved with schedules — the timing
    /// wheel pops exactly what a `BTreeMap<(time, seq), _>` reference
    /// pops, in the same order.
    #[test]
    fn wheel_matches_btreemap_reference(
        ops in prop::collection::vec((any::<u8>(), any::<u64>(), 0u8..4), 1..120),
    ) {
        let mut wheel: TimingWheel<u32> = TimingWheel::new();
        let mut reference: BTreeMap<(u64, u64), u32> = BTreeMap::new();
        // The schedule index doubles as the tie-break sequence number.
        for (id, (selector, raw, pops)) in ops.into_iter().enumerate() {
            let at = wheel.now().saturating_add(Duration::from_nanos(wheel_offset(selector, raw)));
            wheel.schedule(at, id as u32);
            reference.insert((at.as_nanos(), id as u64), id as u32);
            for _ in 0..pops {
                match (wheel.pop(), reference.pop_first()) {
                    (Some((t, v)), Some(((rt, _), rv))) => {
                        prop_assert_eq!(t.as_nanos(), rt, "pop time diverged");
                        prop_assert_eq!(v, rv, "pop order diverged");
                    }
                    (None, None) => break,
                    (w, r) => prop_assert!(false, "wheel {w:?} vs reference {r:?}"),
                }
            }
        }
        // Drain the rest: both must empty together, in the same order.
        loop {
            match (wheel.pop(), reference.pop_first()) {
                (Some((t, v)), Some(((rt, _), rv))) => {
                    prop_assert_eq!(t.as_nanos(), rt, "drain time diverged");
                    prop_assert_eq!(v, rv, "drain order diverged");
                }
                (None, None) => break,
                (w, r) => prop_assert!(false, "wheel {w:?} vs reference {r:?}"),
            }
        }
        prop_assert!(wheel.is_empty());
    }

    /// Schedule-everything-then-drain yields a time-sorted, FIFO-stable
    /// permutation of the input.
    #[test]
    fn wheel_drains_sorted_and_stable(
        offsets in prop::collection::vec((any::<u8>(), any::<u64>()), 0..100),
    ) {
        let mut wheel: TimingWheel<usize> = TimingWheel::new();
        let mut expected: Vec<(u64, usize)> = offsets
            .iter()
            .enumerate()
            .map(|(i, &(selector, raw))| (wheel_offset(selector, raw), i))
            .collect();
        for &(at, i) in &expected {
            wheel.schedule(SimTime::from_nanos(at), i);
        }
        // Stable sort preserves schedule order for equal timestamps,
        // which is exactly the wheel's tie-break contract.
        expected.sort_by_key(|&(at, _)| at);
        let mut drained = Vec::new();
        while let Some((at, i)) = wheel.pop() {
            drained.push((at.as_nanos(), i));
        }
        prop_assert_eq!(drained, expected);
    }

    /// The trace ring never exceeds its capacity and keeps the newest
    /// entries.
    #[test]
    fn trace_ring_keeps_newest(cap in 1usize..20, n in 0usize..60) {
        let mut trace = Trace::with_capacity(cap);
        for i in 0..n {
            trace.record(SimTime::from_nanos(i as u64), "s", format!("m{i}"));
        }
        prop_assert!(trace.len() <= cap);
        if n > 0 {
            prop_assert!(trace.contains(&format!("m{}", n - 1)), "newest retained");
        }
        if n > cap {
            prop_assert!(!trace.contains("m0 "), "oldest evicted");
            prop_assert_eq!(trace.len(), cap);
        }
    }
}
