//! Bounded in-memory tracing for simulation runs.
//!
//! Experiments record what happened (fault injected, recovery invoked,
//! environment perturbed, …) into a [`Trace`], a fixed-capacity ring that
//! keeps the most recent entries. Tests assert against traces instead of
//! peeking at private state.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// One timestamped trace line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// When the entry was recorded, in simulated time.
    pub at: SimTime,
    /// Subsystem that recorded it (e.g. `"env.dns"`, `"recovery.pair"`).
    pub source: String,
    /// Free-form message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.at, self.source, self.message)
    }
}

/// A bounded ring of [`TraceEntry`] values, oldest dropped first.
///
/// # Example
///
/// ```
/// use faultstudy_sim::{trace::Trace, time::SimTime};
/// let mut trace = Trace::with_capacity(2);
/// trace.record(SimTime::ZERO, "a", "one");
/// trace.record(SimTime::ZERO, "a", "two");
/// trace.record(SimTime::ZERO, "a", "three"); // evicts "one"
/// assert_eq!(trace.len(), 2);
/// assert!(trace.contains("three"));
/// assert!(!trace.contains("one"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(4096)
    }
}

impl Trace {
    /// Creates a trace keeping at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace { entries: VecDeque::with_capacity(capacity.min(1024)), capacity }
    }

    /// Appends an entry, evicting the oldest if at capacity.
    pub fn record(&mut self, at: SimTime, source: impl Into<String>, message: impl Into<String>) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { at, source: source.into(), message: message.into() });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Whether any retained entry's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.entries.iter().any(|e| e.message.contains(needle))
    }

    /// Entries whose source starts with `prefix`, oldest first.
    pub fn from_source<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.source.starts_with(prefix))
    }

    /// Removes all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::default();
        t.record(SimTime::from_millis(1), "x", "first");
        t.record(SimTime::from_millis(2), "y", "second");
        let msgs: Vec<&str> = t.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["first", "second"]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10 {
            t.record(SimTime::ZERO, "s", format!("m{i}"));
        }
        let msgs: Vec<&str> = t.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, ["m7", "m8", "m9"]);
    }

    #[test]
    fn filters_by_source_prefix() {
        let mut t = Trace::default();
        t.record(SimTime::ZERO, "env.dns", "lookup");
        t.record(SimTime::ZERO, "env.fs", "write");
        t.record(SimTime::ZERO, "env.dns", "timeout");
        assert_eq!(t.from_source("env.dns").count(), 2);
        assert_eq!(t.from_source("env.").count(), 3);
        assert_eq!(t.from_source("recovery").count(), 0);
    }

    #[test]
    fn display_formats_entry() {
        let e = TraceEntry { at: SimTime::from_millis(3), source: "a".into(), message: "b".into() };
        assert_eq!(e.to_string(), "[3ms] a: b");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Trace::with_capacity(0);
    }
}
