//! Hierarchical timing wheel: the event scheduler under the traffic
//! engine's open-loop request stream.
//!
//! A [`TimingWheel`] orders events by simulated time with O(1) schedule
//! and amortized-O(1) pop, against the O(log n) of a comparison-based
//! queue. Six levels of 64 slots each cover a horizon of 2^36
//! nanoseconds (~69 simulated seconds) ahead of the wheel's current
//! time; events beyond the horizon fall back to a `BTreeMap` overflow
//! ring and are pulled into the wheel when it drains down to them.
//!
//! Determinism contract: events scheduled for the same instant pop in
//! scheduling order (FIFO), so a wheel-driven simulation is a pure
//! function of its inputs. The property tests pin the wheel's order
//! against a `BTreeMap<(time, seq), _>` reference for arbitrary
//! schedules, including same-tick ties and far-future overflow times.

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; level `l` spans 2^(6·(l+1)) nanoseconds.
const LEVELS: usize = 6;
/// Bits of horizon the wheel covers; times further out overflow.
const HORIZON_BITS: u32 = SLOT_BITS * LEVELS as u32;

type Entry<T> = (u64, u64, T); // (at, seq, item)

/// A hierarchical timing wheel over simulated nanoseconds.
///
/// Each level holds 64 slots; an event lives at the highest level where
/// its time differs from the wheel's current time, and cascades toward
/// level 0 as time advances. Events with the same timestamp pop in the
/// order they were scheduled.
///
/// # Example
///
/// ```
/// use faultstudy_sim::time::SimTime;
/// use faultstudy_sim::wheel::TimingWheel;
///
/// let mut wheel = TimingWheel::new();
/// wheel.schedule(SimTime::from_nanos(50), "b");
/// wheel.schedule(SimTime::from_nanos(10), "a");
/// wheel.schedule(SimTime::from_nanos(50), "c"); // same tick: FIFO
/// assert_eq!(wheel.pop(), Some((SimTime::from_nanos(10), "a")));
/// assert_eq!(wheel.pop(), Some((SimTime::from_nanos(50), "b")));
/// assert_eq!(wheel.pop(), Some((SimTime::from_nanos(50), "c")));
/// assert_eq!(wheel.pop(), None);
/// ```
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// The wheel's current time: the timestamp of the last popped event.
    base: u64,
    /// Next scheduling sequence number; breaks same-tick ties FIFO.
    seq: u64,
    /// Total events held (wheel + immediate + batch + overflow).
    len: usize,
    /// Per-level slot-occupancy bitmaps; bit `s` set ⇔ slot `s` nonempty.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` slot buckets, flattened level-major.
    slots: Vec<Vec<Entry<T>>>,
    /// Events due exactly at `base`, in scheduling order.
    immediate: VecDeque<(u64, T)>,
    /// A level-0 slot being drained, held in reverse scheduling order so
    /// popping from the back yields FIFO (all entries share one
    /// timestamp).
    batch: Vec<Entry<T>>,
    /// Far-future events beyond the wheel horizon, keyed by (time, seq).
    overflow: BTreeMap<(u64, u64), T>,
    /// Scratch buffer reused while cascading a slot to lower levels.
    scratch: Vec<Entry<T>>,
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T> TimingWheel<T> {
    /// An empty wheel at time zero.
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            base: 0,
            seq: 0,
            len: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            immediate: VecDeque::new(),
            batch: Vec::new(),
            overflow: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current time: the timestamp of the most recently
    /// popped event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.base)
    }

    /// Schedules `item` at time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`TimingWheel::now`] — a
    /// simulation never schedules into its own past.
    pub fn schedule(&mut self, at: SimTime, item: T) {
        let at = at.as_nanos();
        assert!(at >= self.base, "event at {at} scheduled before wheel time {}", self.base);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        if (at ^ self.base) >> HORIZON_BITS != 0 {
            self.overflow.insert((at, seq), item);
        } else {
            self.place((at, seq, item));
        }
    }

    /// Removes and returns the earliest event, advancing the wheel's
    /// time to its timestamp. Same-timestamp events return in the order
    /// they were scheduled.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        loop {
            // A level-0 slot mid-drain: every entry shares one timestamp
            // and the (reversed) vector pops FIFO from the back.
            if let Some((at, _, item)) = self.batch.pop() {
                self.len -= 1;
                return Some((SimTime::from_nanos(at), item));
            }
            if let Some((_, item)) = self.immediate.pop_front() {
                self.len -= 1;
                return Some((SimTime::from_nanos(self.base), item));
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Moves the wheel forward to the next pending work: drains the next
    /// level-0 slot into `batch`, cascades a higher-level slot down, or
    /// refills from the overflow ring. Progress is guaranteed while
    /// `len > 0`.
    fn advance(&mut self) {
        for level in 0..LEVELS {
            if self.occupied[level] == 0 {
                continue;
            }
            // Every occupied slot index is strictly greater than the
            // base's index at this level (lower-indexed events would
            // already have cascaded or popped), so the lowest set bit is
            // the next slot in time.
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.occupied[level] &= !(1u64 << slot);
            let shift = SLOT_BITS * level as u32;
            // Advance to the start of that slot's window: slot index at
            // this level, zeros below, untouched above.
            let above = !0u64 << (shift + SLOT_BITS);
            self.base = (self.base & above) | ((slot as u64) << shift);
            let idx = level * SLOTS + slot;
            if level == 0 {
                // All entries share the timestamp `base`; reversed so the
                // pop-from-the-back drain runs in scheduling order.
                debug_assert!(self.batch.is_empty());
                std::mem::swap(&mut self.batch, &mut self.slots[idx]);
                self.batch.reverse();
            } else {
                // Redistribute to lower levels, preserving entry order so
                // same-timestamp FIFO survives the cascade.
                std::mem::swap(&mut self.scratch, &mut self.slots[idx]);
                let mut scratch = std::mem::take(&mut self.scratch);
                for entry in scratch.drain(..) {
                    self.place(entry);
                }
                self.scratch = scratch;
            }
            return;
        }
        // Wheel empty: jump to the first overflow event and pull in
        // everything sharing its horizon window.
        let &(at, _) = self.overflow.keys().next().expect("len > 0 with an empty wheel");
        self.base = at;
        let boundary = ((at >> HORIZON_BITS) + 1) << HORIZON_BITS;
        let rest = self.overflow.split_off(&(boundary, 0));
        let window = std::mem::replace(&mut self.overflow, rest);
        for ((at, seq), item) in window {
            self.place((at, seq, item));
        }
    }

    /// Files an entry into the level for its distance from `base`, or
    /// the immediate queue when it is due exactly now.
    fn place(&mut self, entry: Entry<T>) {
        let (at, seq, item) = entry;
        let diff = at ^ self.base;
        if diff == 0 {
            self.immediate.push_back((seq, item));
            return;
        }
        let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
        debug_assert!(level < LEVELS, "horizon-checked at schedule time");
        let slot = ((at >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1u64 << slot;
        self.slots[level * SLOTS + slot].push((at, seq, item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(wheel: &mut TimingWheel<T>) -> Vec<(u64, T)> {
        std::iter::from_fn(|| wheel.pop().map(|(t, x)| (t.as_nanos(), x))).collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut wheel = TimingWheel::new();
        for &t in &[500u64, 3, 70_000, 3, 0, 1 << 20, 64, 65] {
            wheel.schedule(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = drain(&mut wheel).into_iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![0, 3, 3, 64, 65, 500, 70_000, 1 << 20]);
    }

    #[test]
    fn same_tick_ties_are_fifo() {
        let mut wheel = TimingWheel::new();
        for label in 0..10u32 {
            wheel.schedule(SimTime::from_nanos(1234), label);
        }
        let labels: Vec<u32> = drain(&mut wheel).into_iter().map(|(_, l)| l).collect();
        assert_eq!(labels, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut wheel = TimingWheel::new();
        let far = 1u64 << 40; // beyond the 2^36 horizon
        wheel.schedule(SimTime::from_nanos(far + 7), "late");
        wheel.schedule(SimTime::from_nanos(far), "later-first");
        wheel.schedule(SimTime::from_nanos(9), "soon");
        assert_eq!(wheel.len(), 3);
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(9), "soon")));
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(far), "later-first")));
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(far + 7), "late")));
        assert!(wheel.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_track_time() {
        let mut wheel = TimingWheel::new();
        wheel.schedule(SimTime::from_nanos(10), "a");
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(10), "a")));
        assert_eq!(wheel.now(), SimTime::from_nanos(10));
        // Scheduling at the current instant is allowed and pops next.
        wheel.schedule(SimTime::from_nanos(10), "b");
        wheel.schedule(SimTime::from_nanos(11), "c");
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(10), "b")));
        assert_eq!(wheel.pop(), Some((SimTime::from_nanos(11), "c")));
    }

    #[test]
    #[should_panic(expected = "scheduled before wheel time")]
    fn scheduling_into_the_past_panics() {
        let mut wheel = TimingWheel::new();
        wheel.schedule(SimTime::from_nanos(100), ());
        wheel.pop();
        wheel.schedule(SimTime::from_nanos(99), ());
    }
}
