//! Logical time for the simulation.
//!
//! Simulated time is a monotonically non-decreasing count of nanoseconds held
//! in a [`SimTime`]. Nothing in the workspace reads the wall clock; every
//! timestamp in an experiment derives from a [`Clock`] advanced by the event
//! loop.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
///
/// `SimTime` is a transparent newtype so that raw integers and durations
/// cannot be confused with timestamps (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use faultstudy_sim::time::{Duration, SimTime};
/// let t = SimTime::ZERO + Duration::from_secs(2);
/// assert_eq!(t.as_nanos(), 2_000_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a timestamp from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos()))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{}.{:03}s", ns / 1_000_000_000, (ns % 1_000_000_000) / 1_000_000)
        } else if ns >= 1_000_000 {
            write!(f, "{}ms", ns / 1_000_000)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A span of simulated time, in nanoseconds.
///
/// Distinct from [`SimTime`] so that instants and spans cannot be mixed up.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub const fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimTime(self.0))
    }
}

/// A monotonically non-decreasing logical clock.
///
/// The clock only moves when the owner of the simulation advances it; no
/// wall-clock time is ever consulted.
///
/// # Example
///
/// ```
/// use faultstudy_sim::time::{Clock, Duration, SimTime};
/// let mut clock = Clock::new();
/// clock.advance(Duration::from_millis(10));
/// assert_eq!(clock.now(), SimTime::from_millis(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Clock::default()
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: Duration) {
        self.now += d;
    }

    /// Moves the clock forward to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current instant — the simulation's
    /// arrow of time never reverses.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "clock moved backwards: {} -> {}", self.now, t);
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_secs(3).as_secs(), 3);
        assert_eq!(SimTime::from_millis(1500).as_secs(), 1);
        assert_eq!(Duration::from_secs(2).as_millis(), 2000);
    }

    #[test]
    fn arithmetic_between_instants_and_spans() {
        let t0 = SimTime::from_millis(10);
        let t1 = t0 + Duration::from_millis(5);
        assert_eq!(t1 - t0, Duration::from_millis(5));
        assert_eq!(t1.saturating_since(t0), Duration::from_millis(5));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(Duration::from_secs(1)), SimTime::MAX);
        assert_eq!(Duration::from_nanos(u64::MAX).saturating_mul(2).as_nanos(), u64::MAX);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(Duration::from_millis(7));
        c.advance_to(SimTime::from_millis(7)); // equal is allowed
        assert_eq!(c.now(), SimTime::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_refuses_to_reverse() {
        let mut c = Clock::new();
        c.advance(Duration::from_secs(1));
        c.advance_to(SimTime::from_millis(1));
    }

    #[test]
    fn display_is_humane() {
        assert_eq!(SimTime::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimTime::from_millis(250).to_string(), "250ms");
        assert_eq!(SimTime::from_millis(1250).to_string(), "1.250s");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
    }
}
