//! Deterministic pseudo-random number generation.
//!
//! The simulator deliberately does not use the `rand` crate for its own
//! randomness: reproducibility of every experiment across toolchain and
//! dependency upgrades is a correctness property here, so the generators are
//! implemented in full. SplitMix64 is used to expand seeds and
//! xoshiro256\*\* is the workhorse stream generator; both are the standard,
//! well-studied constructions by Blackman and Vigna.

use serde::{Deserialize, Serialize};

/// A deterministic random number source.
///
/// All simulation components draw randomness exclusively through this trait,
/// which keeps the set of nondeterministic inputs auditable. Implementations
/// must be pure state machines: the output sequence is a function of the seed
/// alone.
pub trait DetRng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method so the distribution is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's method with rejection to remove modulo bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // low < bound: possibly biased region, check threshold.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a value in the inclusive-exclusive range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range requires lo < hi, got [{lo}, {hi})");
        lo + self.below(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 bits of mantissa give an exactly representable uniform in [0,1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, fast generator used here to expand a `u64` seed into
/// the 256-bit state of [`Xoshiro256StarStar`], and for throwaway streams.
///
/// # Example
///
/// ```
/// use faultstudy_sim::rng::{DetRng, SplitMix64};
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl DetRng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derives the per-item seed for `index` under `master` in O(1).
///
/// SplitMix64 advances its state by a fixed additive constant per draw, so
/// the `index`-th output of `SplitMix64::new(master)` is the finalizer
/// applied to `master + (index + 1) * GOLDEN` — no sequential stream is
/// needed. This is the foundation of deterministic parallel execution:
/// worker threads can seed sample `index` directly, without observing any
/// shared RNG state, and the result is independent of how samples are
/// scheduled across threads.
///
/// # Example
///
/// ```
/// use faultstudy_sim::rng::{split_seed, DetRng, SplitMix64};
/// let mut stream = SplitMix64::new(42);
/// for index in 0..8 {
///     assert_eq!(split_seed(42, index), stream.next_u64());
/// }
/// ```
pub const fn split_seed(master: u64, index: u64) -> u64 {
    let mut z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fills `out[i] = split_seed(master, start + i)` in one pass.
///
/// The per-index form re-multiplies the index for every seed; the batch
/// form jumps the SplitMix64 state to `start` once and then advances it
/// additively, which is how the streaming campaign fold derives the seeds
/// of a whole work-queue chunk at a time instead of per sample.
pub fn fill_split_seeds(master: u64, start: u64, out: &mut [u64]) {
    let mut state = master.wrapping_add(start.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    for slot in out {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *slot = z ^ (z >> 31);
    }
}

/// A buffered [`split_seed`] stream: derives seeds in blocks of
/// [`SplitSeedStream::BLOCK`] and hands them out one at a time.
///
/// Semantically identical to calling `split_seed(master, index)` for
/// `index = start, start + 1, …` — the batching is invisible except in the
/// derivation cost — which is the law the rng tests pin down.
#[derive(Debug, Clone)]
pub struct SplitSeedStream {
    master: u64,
    /// Index of the *next* seed to derive into the buffer.
    next_index: u64,
    buf: Vec<u64>,
    pos: usize,
}

impl SplitSeedStream {
    /// Seeds derived per refill.
    pub const BLOCK: usize = 1024;

    /// A stream positioned at `start` under `master`.
    pub fn new(master: u64, start: u64) -> SplitSeedStream {
        SplitSeedStream { master, next_index: start, buf: Vec::new(), pos: 0 }
    }

    /// The next seed: `split_seed(master, index)` for the stream's current
    /// index.
    pub fn next_seed(&mut self) -> u64 {
        if self.pos == self.buf.len() {
            let remaining = u64::MAX - self.next_index;
            let block = (Self::BLOCK as u64).min(remaining.max(1)) as usize;
            self.buf.resize(block, 0);
            fill_split_seeds(self.master, self.next_index, &mut self.buf);
            self.next_index += block as u64;
            self.pos = 0;
        }
        let seed = self.buf[self.pos];
        self.pos += 1;
        seed
    }
}

/// xoshiro256\*\*: the default stream generator for all simulation components.
///
/// State is seeded via SplitMix64 per the authors' recommendation, which
/// guarantees a non-zero state for any seed.
///
/// # Example
///
/// ```
/// use faultstudy_sim::rng::{DetRng, Xoshiro256StarStar};
/// let mut rng = Xoshiro256StarStar::seed_from(7);
/// let v = rng.below(10);
/// assert!(v < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state by running SplitMix64 on `seed`.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Creates an independent stream by applying the `jump` polynomial,
    /// equivalent to 2^128 calls of `next_u64`. Used to hand each simulated
    /// subsystem its own non-overlapping stream from one master seed.
    pub fn split(&mut self) -> Self {
        let child = self.clone();
        self.jump();
        child
    }

    fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for bit in 0..64 {
                if (j >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl DetRng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the published algorithm.
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let mut again = SplitMix64::new(1234567);
        assert_eq!(first, again.next_u64());
        // Distinct seeds diverge immediately.
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn split_seed_matches_the_sequential_stream() {
        for master in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            let mut stream = SplitMix64::new(master);
            for index in 0..64 {
                assert_eq!(
                    split_seed(master, index),
                    stream.next_u64(),
                    "master {master} index {index}"
                );
            }
        }
    }

    #[test]
    fn batched_derivation_matches_the_per_index_form() {
        // The law the streaming campaign fold relies on: a block fill at
        // any offset equals per-index split_seed calls.
        for master in [0u64, 7, 2000, u64::MAX] {
            for start in [0u64, 1, 1023, 1024, 1_000_000] {
                let mut block = [0u64; 130];
                fill_split_seeds(master, start, &mut block);
                for (i, &seed) in block.iter().enumerate() {
                    assert_eq!(
                        seed,
                        split_seed(master, start + i as u64),
                        "master {master} start {start} offset {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn seed_stream_is_the_split_seed_sequence() {
        let mut stream = SplitSeedStream::new(42, 7);
        for index in 7u64..7 + 3 * SplitSeedStream::BLOCK as u64 {
            assert_eq!(stream.next_seed(), split_seed(42, index), "index {index}");
        }
        // A stream starting mid-block agrees with one that got there by
        // iteration.
        let mut jumped = SplitSeedStream::new(9, 500);
        let mut walked = SplitSeedStream::new(9, 0);
        for _ in 0..500 {
            walked.next_seed();
        }
        for _ in 0..100 {
            assert_eq!(jumped.next_seed(), walked.next_seed());
        }
    }

    #[test]
    fn split_seed_separates_indices_and_masters() {
        assert_ne!(split_seed(1, 0), split_seed(1, 1));
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
    }

    #[test]
    fn xoshiro_is_reproducible_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256StarStar::seed_from(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256StarStar::seed_from(99);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Xoshiro256StarStar::seed_from(100);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Xoshiro256StarStar::seed_from(5);
        for bound in [1u64, 2, 3, 7, 100, 12345] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_hits_every_residue_of_small_bound() {
        let mut rng = Xoshiro256StarStar::seed_from(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        Xoshiro256StarStar::seed_from(1).below(0);
    }

    #[test]
    fn range_and_chance_behave() {
        let mut rng = Xoshiro256StarStar::seed_from(11);
        for _ in 0..100 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
        // chance(0) never fires; chance(1) always fires.
        for _ in 0..50 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit {hits}/10000");
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut master1 = Xoshiro256StarStar::seed_from(7);
        let mut a1 = master1.split();
        let mut b1 = master1.split();

        let mut master2 = Xoshiro256StarStar::seed_from(7);
        let mut a2 = master2.split();
        let mut b2 = master2.split();

        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_eq!(b1.next_u64(), b2.next_u64());
        assert_ne!(a1.next_u64(), b1.next_u64());
    }

    #[test]
    fn shuffle_permutes_and_pick_selects() {
        let mut rng = Xoshiro256StarStar::seed_from(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(rng.pick(&v).is_some());
        let empty: [u32; 0] = [];
        assert_eq!(rng.pick(&empty), None);
    }

    #[test]
    fn unit_is_in_half_open_interval() {
        let mut rng = Xoshiro256StarStar::seed_from(21);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
