//! Deterministic discrete-event simulation substrate for the fault study.
//!
//! Everything in the reproduction that could be a source of nondeterminism —
//! time, randomness, thread interleaving — is owned by this crate. The paper's
//! own observation motivates this design: *"given a fixed operating
//! environment, a set of concurrent, sequential processes is completely
//! deterministic"* (§3, citing Dijkstra). By funnelling every nondeterministic
//! input through a seeded PRNG and a logical clock, a whole recovery
//! experiment becomes a pure function of `(fault, strategy, seed)`, which is
//! what lets the test suite assert exact outcomes.
//!
//! # Modules
//!
//! - [`time`] — logical time ([`SimTime`], [`Duration`]) and the clock.
//! - [`rng`] — SplitMix64 and xoshiro256\*\* deterministic PRNGs.
//! - [`queue`] — the timestamped event queue with stable FIFO tie-breaking.
//! - [`wheel`] — the hierarchical timing wheel: O(1) scheduling for the
//!   traffic engine's million-event streams, same ordering contract as
//!   [`queue`].
//! - [`sched`] — a cooperative step scheduler with controllable
//!   interleavings, used to reproduce race-condition faults.
//! - [`trace`] — bounded in-memory trace ring for debugging experiments.
//!
//! # Example
//!
//! ```
//! use faultstudy_sim::{queue::EventQueue, time::SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(5), "second");
//! q.schedule(SimTime::from_millis(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(1), "first"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod sched;
pub mod time;
pub mod trace;
pub mod wheel;

pub use queue::EventQueue;
pub use rng::{DetRng, SplitMix64, Xoshiro256StarStar};
pub use sched::{Interleaver, StepOutcome, StepScheduler, Task, TaskId};
pub use time::{Clock, Duration, SimTime};
pub use trace::{Trace, TraceEntry};
pub use wheel::TimingWheel;
