//! The timestamped event queue at the heart of the discrete-event loop.
//!
//! Events scheduled for the same instant are delivered in FIFO order of
//! scheduling (stable tie-breaking by sequence number), which is required for
//! determinism: `BinaryHeap` alone makes no ordering promise among equal keys.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A pending event: ordering key is `(time, seq)` with the *earliest* first.
#[derive(Debug)]
struct Pending<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Pending<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Pending<E> {}
impl<E> PartialOrd for Pending<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Pending<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Example
///
/// ```
/// use faultstudy_sim::{queue::EventQueue, time::SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(1), "b");
/// q.schedule(SimTime::from_secs(1), "c"); // same instant: FIFO after "b"
/// q.schedule(SimTime::from_millis(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Pending<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` for delivery at `at`.
    ///
    /// Events with equal timestamps are delivered in the order they were
    /// scheduled.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Pending { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|p| (p.at, p.event))
    }

    /// The timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|p| p.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), "x");
        q.schedule(SimTime::from_secs(1), "y");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), 'a');
        q.schedule(SimTime::from_millis(15), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.schedule(SimTime::from_millis(10), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}
