//! A cooperative step scheduler with controllable interleavings.
//!
//! Race-condition faults — the canonical *environment-dependent-transient*
//! faults of the paper (§3) — arise from the order in which a thread
//! scheduler interleaves concurrent tasks. This module models exactly that:
//! each task exposes discrete steps, and an [`Interleaver`] policy decides
//! which runnable task steps next. The interleaving is part of the *operating
//! environment*, so a retry under a different interleaver seed may observe a
//! different order and thereby avoid the race — which is precisely how the
//! simulated applications realise their transient race faults.

use crate::rng::{DetRng, Xoshiro256StarStar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task within one [`StepScheduler`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// What a task reports after executing one step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepOutcome {
    /// The task has more steps to run.
    Ready,
    /// The task finished successfully.
    Done,
    /// The task (and hence the run) failed; the payload describes why.
    Failed(String),
}

/// A unit of concurrent work executed step by step over shared state `S`.
///
/// Implementations should make each step small enough that interesting
/// interleavings are possible; a task that does everything in one step can
/// never race.
pub trait Task<S> {
    /// Executes the next step against the shared state.
    fn step(&mut self, shared: &mut S) -> StepOutcome;

    /// Short human-readable label used in traces.
    fn label(&self) -> &str {
        "task"
    }
}

/// Policy choosing which runnable task steps next.
#[derive(Debug, Clone)]
pub enum Interleaver {
    /// Cycle through runnable tasks in id order. Fully deterministic and
    /// independent of any seed; useful as a "fixed environment".
    RoundRobin,
    /// Choose uniformly at random with the given seed. Two runs with the same
    /// seed produce identical interleavings; different seeds model the
    /// environment changing between a failed run and its retry.
    Seeded(u64),
    /// Replay an explicit schedule: indexes into the *runnable* task list at
    /// each step. Falls back to round-robin when exhausted. Used by tests to
    /// force the exact interleaving that trips a race.
    Fixed(Vec<u32>),
}

impl Interleaver {
    fn into_driver(self) -> Driver {
        match self {
            Interleaver::RoundRobin => Driver::RoundRobin { next: 0 },
            Interleaver::Seeded(seed) => Driver::Seeded(Xoshiro256StarStar::seed_from(seed)),
            Interleaver::Fixed(v) => Driver::Fixed { script: v, pos: 0 },
        }
    }
}

#[derive(Debug)]
enum Driver {
    RoundRobin { next: usize },
    Seeded(Xoshiro256StarStar),
    Fixed { script: Vec<u32>, pos: usize },
}

impl Driver {
    fn choose(&mut self, runnable: usize) -> usize {
        debug_assert!(runnable > 0);
        match self {
            Driver::RoundRobin { next } => {
                let c = *next % runnable;
                *next = c + 1;
                c
            }
            Driver::Seeded(rng) => rng.below(runnable as u64) as usize,
            Driver::Fixed { script, pos } => {
                if *pos < script.len() {
                    let c = script[*pos] as usize % runnable;
                    *pos += 1;
                    c
                } else {
                    0
                }
            }
        }
    }
}

/// The result of driving a set of tasks to completion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// The order in which tasks were stepped.
    pub schedule: Vec<TaskId>,
    /// `Some((task, reason))` if a task failed, which aborts the run.
    pub failure: Option<(TaskId, String)>,
    /// Total steps executed.
    pub steps: u64,
}

impl RunReport {
    /// Whether every task ran to completion without failure.
    pub fn succeeded(&self) -> bool {
        self.failure.is_none()
    }
}

/// Drives a set of [`Task`]s over shared state under an [`Interleaver`].
///
/// # Example
///
/// ```
/// use faultstudy_sim::sched::{Interleaver, StepOutcome, StepScheduler, Task};
///
/// struct Add(u32, u32);
/// impl Task<u32> for Add {
///     fn step(&mut self, shared: &mut u32) -> StepOutcome {
///         if self.1 == 0 { return StepOutcome::Done; }
///         *shared += self.0;
///         self.1 -= 1;
///         StepOutcome::Ready
///     }
/// }
///
/// let mut sched = StepScheduler::new(0u32, Interleaver::RoundRobin);
/// sched.spawn(Add(1, 3));
/// sched.spawn(Add(10, 2));
/// let (shared, report) = sched.run(1_000);
/// assert!(report.succeeded());
/// assert_eq!(shared, 23);
/// ```
pub struct StepScheduler<S> {
    shared: S,
    tasks: Vec<(TaskId, Box<dyn Task<S>>)>,
    driver: Driver,
    next_id: u32,
}

impl<S: fmt::Debug> fmt::Debug for StepScheduler<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepScheduler")
            .field("shared", &self.shared)
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl<S> StepScheduler<S> {
    /// Creates a scheduler over `shared` using the given interleaving policy.
    pub fn new(shared: S, interleaver: Interleaver) -> Self {
        StepScheduler { shared, tasks: Vec::new(), driver: interleaver.into_driver(), next_id: 0 }
    }

    /// Adds a task; returns its id.
    pub fn spawn(&mut self, task: impl Task<S> + 'static) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.tasks.push((id, Box::new(task)));
        id
    }

    /// Runs until every task completes, a task fails, or `max_steps` is hit.
    ///
    /// Returns the final shared state and a [`RunReport`]. Hitting the step
    /// budget with runnable tasks remaining is reported as a failure labelled
    /// `"step budget exhausted"`, which models a hang.
    pub fn run(mut self, max_steps: u64) -> (S, RunReport) {
        let mut report = RunReport { schedule: Vec::new(), failure: None, steps: 0 };
        while !self.tasks.is_empty() {
            if report.steps >= max_steps {
                let (id, _) = &self.tasks[0];
                report.failure = Some((*id, "step budget exhausted".to_owned()));
                break;
            }
            let idx = self.driver.choose(self.tasks.len());
            let (id, task) = &mut self.tasks[idx];
            let id = *id;
            report.schedule.push(id);
            report.steps += 1;
            match task.step(&mut self.shared) {
                StepOutcome::Ready => {}
                StepOutcome::Done => {
                    self.tasks.remove(idx);
                }
                StepOutcome::Failed(reason) => {
                    report.failure = Some((id, reason));
                    break;
                }
            }
        }
        (self.shared, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A task that appends its tag to the shared log `n` times.
    struct Tagger {
        tag: char,
        remaining: u32,
    }
    impl Task<String> for Tagger {
        fn step(&mut self, shared: &mut String) -> StepOutcome {
            if self.remaining == 0 {
                return StepOutcome::Done;
            }
            shared.push(self.tag);
            self.remaining -= 1;
            StepOutcome::Ready
        }
    }

    fn two_taggers(inter: Interleaver) -> (String, RunReport) {
        let mut s = StepScheduler::new(String::new(), inter);
        s.spawn(Tagger { tag: 'a', remaining: 4 });
        s.spawn(Tagger { tag: 'b', remaining: 4 });
        s.run(1000)
    }

    #[test]
    fn round_robin_alternates() {
        let (log, report) = two_taggers(Interleaver::RoundRobin);
        assert!(report.succeeded());
        assert_eq!(log, "abababab");
    }

    #[test]
    fn seeded_is_reproducible_and_seed_sensitive() {
        let (log1, _) = two_taggers(Interleaver::Seeded(7));
        let (log2, _) = two_taggers(Interleaver::Seeded(7));
        assert_eq!(log1, log2);
        // Some other seed yields a different interleaving (checked over a few
        // candidates to avoid asserting on one specific stream).
        let different = (8..16).any(|s| two_taggers(Interleaver::Seeded(s)).0 != log1);
        assert!(different, "all seeds produced identical interleavings");
    }

    #[test]
    fn fixed_script_forces_exact_order() {
        // Run task 1 to completion first, then task 0.
        let (log, report) = two_taggers(Interleaver::Fixed(vec![1, 1, 1, 1, 1, 0]));
        assert!(report.succeeded());
        assert_eq!(log, "bbbbaaaa");
    }

    #[test]
    fn failure_aborts_run() {
        struct Bomb;
        impl Task<String> for Bomb {
            fn step(&mut self, _shared: &mut String) -> StepOutcome {
                StepOutcome::Failed("segfault".to_owned())
            }
        }
        let mut s = StepScheduler::new(String::new(), Interleaver::RoundRobin);
        s.spawn(Tagger { tag: 'x', remaining: 100 });
        let bomb = s.spawn(Bomb);
        let (_, report) = s.run(1000);
        let (failed, reason) = report.failure.expect("bomb fires");
        assert_eq!(failed, bomb);
        assert_eq!(reason, "segfault");
        assert!(report.steps <= 3);
    }

    #[test]
    fn step_budget_models_hang() {
        struct Spinner;
        impl Task<String> for Spinner {
            fn step(&mut self, _shared: &mut String) -> StepOutcome {
                StepOutcome::Ready
            }
        }
        let mut s = StepScheduler::new(String::new(), Interleaver::RoundRobin);
        s.spawn(Spinner);
        let (_, report) = s.run(50);
        assert_eq!(report.steps, 50);
        let (_, reason) = report.failure.expect("budget exhausted");
        assert!(reason.contains("budget"));
    }

    #[test]
    fn empty_scheduler_finishes_immediately() {
        let s: StepScheduler<u8> = StepScheduler::new(0, Interleaver::RoundRobin);
        let (_, report) = s.run(10);
        assert!(report.succeeded());
        assert_eq!(report.steps, 0);
    }
}
