//! Fault distributions over releases and over time (Figures 1–3).
//!
//! Figure 1 (Apache) and Figure 3 (MySQL) show faults per software release,
//! stacked by class; Figure 2 (GNOME) shows faults per time period, because
//! GNOME's modules release independently (§5.2). The paper reads two
//! properties off the release figures: the proportion of environment-
//! independent faults stays about the same across releases, and the total
//! number of reports grows with newer releases (more users). The helpers
//! here compute exactly those properties so tests and benches can assert
//! the reproduced shapes.

use crate::report::YearMonth;
use crate::study::{ClassCounts, Study};
use crate::taxonomy::{AppKind, FaultClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One bar of a per-release figure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleaseBucket {
    /// Position of the release in the application's release order.
    pub release_idx: u8,
    /// Release label.
    pub release: String,
    /// Stacked class counts for the bar.
    pub counts: ClassCounts,
}

/// A per-release fault distribution (Figures 1 and 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReleaseSeries {
    /// The application plotted.
    pub app: AppKind,
    /// Bars ordered oldest release first.
    pub buckets: Vec<ReleaseBucket>,
}

/// A per-month fault distribution (Figure 2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// The application plotted.
    pub app: AppKind,
    /// Bars in month order, contiguous from first to last report.
    pub buckets: Vec<(YearMonth, ClassCounts)>,
}

/// Groups `app`'s faults by release (Figures 1 and 3).
///
/// # Example
///
/// ```
/// use faultstudy_core::report::YearMonth;
/// use faultstudy_core::study::{ClassifiedFault, Study};
/// use faultstudy_core::taxonomy::{AppKind, FaultClass};
/// use faultstudy_core::timeline::by_release;
///
/// let study = Study::from_faults(vec![ClassifiedFault {
///     app: AppKind::Mysql,
///     class: FaultClass::EnvironmentIndependent,
///     release_idx: 2,
///     release: "3.22".into(),
///     filed: YearMonth::new(1999, 2),
/// }]);
/// let series = by_release(&study, AppKind::Mysql);
/// assert_eq!(series.buckets.len(), 1);
/// assert_eq!(series.buckets[0].release, "3.22");
/// ```
pub fn by_release(study: &Study, app: AppKind) -> ReleaseSeries {
    let mut map: BTreeMap<u8, (String, ClassCounts)> = BTreeMap::new();
    for f in study.faults_of(app) {
        let entry =
            map.entry(f.release_idx).or_insert_with(|| (f.release.clone(), ClassCounts::default()));
        entry.1.bump(f.class);
    }
    ReleaseSeries {
        app,
        buckets: map
            .into_iter()
            .map(|(release_idx, (release, counts))| ReleaseBucket { release_idx, release, counts })
            .collect(),
    }
}

/// Groups `app`'s faults by calendar month, padding interior gaps with
/// empty buckets so the series is contiguous (Figure 2).
pub fn by_month(study: &Study, app: AppKind) -> TimeSeries {
    let mut map: BTreeMap<u32, ClassCounts> = BTreeMap::new();
    let mut first: Option<YearMonth> = None;
    let mut last: Option<YearMonth> = None;
    for f in study.faults_of(app) {
        map.entry(f.filed.index()).or_default().bump(f.class);
        first = Some(first.map_or(f.filed, |cur: YearMonth| cur.min(f.filed)));
        last = Some(last.map_or(f.filed, |cur: YearMonth| cur.max(f.filed)));
    }
    let mut buckets = Vec::new();
    if let (Some(first), Some(last)) = (first, last) {
        let mut ym = first;
        while ym <= last {
            buckets.push((ym, map.get(&ym.index()).copied().unwrap_or_default()));
            ym = ym.plus_months(1);
        }
    }
    TimeSeries { app, buckets }
}

/// The environment-independent share (0–1) of each bucket with at least
/// `min_total` faults. Used to check the paper's "relative proportion …
/// stays about the same" property.
pub fn ei_shares(counts: impl IntoIterator<Item = ClassCounts>, min_total: u32) -> Vec<f64> {
    counts
        .into_iter()
        .filter(|c| c.total() >= min_total.max(1))
        .map(|c| f64::from(c.get(FaultClass::EnvironmentIndependent)) / f64::from(c.total()))
        .collect()
}

/// Maximum absolute deviation of the values from their mean; `0.0` for
/// fewer than two values. A small spread over release buckets reproduces
/// the paper's proportion-stability observation.
pub fn max_deviation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max)
}

/// Whether totals grow (non-strictly) from the first to the last bucket,
/// judged by comparing the first and last halves' sums — the paper's
/// "total number of bugs reported increases with newer releases" property,
/// robust to a dip in the middle.
pub fn totals_grow(counts: &[ClassCounts]) -> bool {
    if counts.len() < 2 {
        return true;
    }
    let half = counts.len() / 2;
    let first: u32 = counts[..half].iter().map(ClassCounts::total).sum();
    let second: u32 = counts[counts.len() - half..].iter().map(ClassCounts::total).sum();
    second >= first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::ClassifiedFault;

    fn fault(app: AppKind, class: FaultClass, idx: u8, ym: YearMonth) -> ClassifiedFault {
        ClassifiedFault { app, class, release_idx: idx, release: format!("r{idx}"), filed: ym }
    }

    fn jan(m: u8) -> YearMonth {
        YearMonth::new(1999, m)
    }

    #[test]
    fn by_release_groups_and_orders() {
        let study = Study::from_faults(vec![
            fault(AppKind::Apache, FaultClass::EnvironmentIndependent, 1, jan(1)),
            fault(AppKind::Apache, FaultClass::EnvDependentTransient, 0, jan(1)),
            fault(AppKind::Apache, FaultClass::EnvironmentIndependent, 1, jan(2)),
            fault(AppKind::Gnome, FaultClass::EnvironmentIndependent, 0, jan(1)),
        ]);
        let s = by_release(&study, AppKind::Apache);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0].release_idx, 0);
        assert_eq!(s.buckets[0].counts.transient, 1);
        assert_eq!(s.buckets[1].counts.independent, 2);
        // Gnome fault not included.
        assert_eq!(s.buckets.iter().map(|b| b.counts.total()).sum::<u32>(), 3);
    }

    #[test]
    fn by_month_pads_gaps() {
        let study = Study::from_faults(vec![
            fault(AppKind::Gnome, FaultClass::EnvironmentIndependent, 0, jan(1)),
            fault(AppKind::Gnome, FaultClass::EnvironmentIndependent, 0, jan(4)),
        ]);
        let s = by_month(&study, AppKind::Gnome);
        assert_eq!(s.buckets.len(), 4, "jan..apr inclusive");
        assert_eq!(s.buckets[1].1.total(), 0);
        assert_eq!(s.buckets[2].1.total(), 0);
        assert_eq!(s.buckets[0].0, jan(1));
        assert_eq!(s.buckets[3].0, jan(4));
    }

    #[test]
    fn by_month_empty_app_is_empty_series() {
        let study = Study::from_faults(Vec::new());
        assert!(by_month(&study, AppKind::Mysql).buckets.is_empty());
        assert!(by_release(&study, AppKind::Mysql).buckets.is_empty());
    }

    #[test]
    fn ei_shares_filters_small_buckets() {
        let mut big = ClassCounts::default();
        for _ in 0..8 {
            big.bump(FaultClass::EnvironmentIndependent);
        }
        big.bump(FaultClass::EnvDependentTransient);
        let mut small = ClassCounts::default();
        small.bump(FaultClass::EnvDependentTransient);
        let shares = ei_shares([big, small], 3);
        assert_eq!(shares.len(), 1);
        assert!((shares[0] - 8.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn max_deviation_behaviour() {
        assert_eq!(max_deviation(&[]), 0.0);
        assert_eq!(max_deviation(&[0.5]), 0.0);
        assert!((max_deviation(&[0.4, 0.6]) - 0.1).abs() < 1e-9);
        assert!(max_deviation(&[0.7, 0.7, 0.7]) < 1e-12);
    }

    #[test]
    fn totals_grow_compares_halves() {
        let mk = |n: u32| {
            let mut c = ClassCounts::default();
            for _ in 0..n {
                c.bump(FaultClass::EnvironmentIndependent);
            }
            c
        };
        assert!(totals_grow(&[mk(1), mk(2), mk(5)]));
        assert!(totals_grow(&[mk(2), mk(1), mk(4)]), "robust to a dip");
        assert!(!totals_grow(&[mk(9), mk(1), mk(1)]));
        assert!(totals_grow(&[mk(3)]), "singleton trivially grows");
    }
}
