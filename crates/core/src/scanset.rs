//! The shared scan set: every fixed pattern the study ever looks for in
//! report text, compiled into **one** Aho–Corasick automaton.
//!
//! Three consumers used to traverse each report's text independently —
//! the [`lexicon`](crate::lexicon) conjunction rules (~60 distinct
//! substrings), the [`evidence`](crate::evidence) reproducibility and
//! retry cue lists, and the mining funnel's §4 keyword search — for
//! roughly 95 traversals plus three `to_lowercase` allocations per
//! report. This module registers all of those patterns with a single
//! [`Automaton`], compiled lazily once per process via [`OnceLock`], so
//! one allocation-free pass per report field yields a [`HitSet`] that
//! answers every question at once. Rule conjunctions, cue disjunctions,
//! and the keyword test are then bitset probes.
//!
//! The §4 keyword list lives here (rather than in `faultstudy-mining`,
//! which re-exports it) so the shared automaton can include it without a
//! dependency cycle: this crate is below the mining crate in the graph.
//!
//! # Example
//!
//! ```
//! use faultstudy_core::scanset;
//!
//! let set = scanset::shared();
//! let hits = set.hits_text("the file system is full and the server crashed");
//! assert!(!set.conditions(&hits).is_empty());
//! assert!(set.matches_mysql_keywords(&hits));
//! ```

use crate::evidence::{DETERMINISTIC_CUES, NONDETERMINISTIC_CUES, RETRY_SUCCESS_CUES};
use crate::lexicon::RULES;
use crate::report::BugReport;
use faultstudy_env::condition::ConditionKind;
use faultstudy_textscan::{Automaton, HitSet, PatternId, PatternSetBuilder};
use std::sync::OnceLock;

/// The paper's §4 mailing-list search keywords ("we use all the messages
/// from the archives that matched one of the following keywords").
pub const MYSQL_KEYWORDS: [&str; 4] = ["crash", "segmentation", "race", "died"];

/// The compiled shared automaton plus the pattern-id views each consumer
/// evaluates against a scan's [`HitSet`].
#[derive(Debug)]
pub struct ScanSet {
    automaton: Automaton,
    /// `rule_patterns[i]` holds the pattern ids of `RULES[i].all_of`.
    rule_patterns: Vec<Vec<PatternId>>,
    /// `rule_masks[i]` is `rule_patterns[i]` as a bitmask paired with the
    /// rule's condition: the conjunction holds iff the scan's [`HitSet`] is
    /// a superset of the mask.
    rule_masks: Vec<(HitSet, ConditionKind)>,
    /// Union of every rule's mask: when a scan intersects none of it, no
    /// conjunction can hold and the rule loop is skipped entirely.
    rule_union: HitSet,
    /// Whether some rule has an empty `all_of` (holds on any text); none
    /// does today, but the `rule_union` short-circuit would be wrong then.
    has_unconditional_rule: bool,
    deterministic: HitSet,
    nondeterministic: HitSet,
    retry: HitSet,
    mysql_keywords: HitSet,
}

/// The process-wide scan set, compiled on first use.
pub fn shared() -> &'static ScanSet {
    static SHARED: OnceLock<ScanSet> = OnceLock::new();
    SHARED.get_or_init(ScanSet::compile)
}

impl ScanSet {
    fn compile() -> ScanSet {
        let mut b = PatternSetBuilder::new();
        let mut register =
            |patterns: &[&str]| -> Vec<PatternId> { patterns.iter().map(|p| b.add(p)).collect() };
        let rule_patterns: Vec<Vec<PatternId>> = RULES.iter().map(|r| register(r.all_of)).collect();
        let deterministic = HitSet::of(&register(DETERMINISTIC_CUES));
        let nondeterministic = HitSet::of(&register(NONDETERMINISTIC_CUES));
        let retry = HitSet::of(&register(RETRY_SUCCESS_CUES));
        let mysql_keywords = HitSet::of(&register(&MYSQL_KEYWORDS));
        let rule_masks: Vec<(HitSet, ConditionKind)> =
            RULES.iter().zip(&rule_patterns).map(|(r, ids)| (HitSet::of(ids), r.kind)).collect();
        let mut rule_union = HitSet::EMPTY;
        for (mask, _) in &rule_masks {
            rule_union.or_assign(mask);
        }
        let has_unconditional_rule = rule_masks.iter().any(|(mask, _)| mask.is_empty());
        ScanSet {
            automaton: b.build(),
            rule_patterns,
            rule_masks,
            rule_union,
            has_unconditional_rule,
            deterministic,
            nondeterministic,
            retry,
            mysql_keywords,
        }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &Automaton {
        &self.automaton
    }

    /// The pattern ids of each lexicon rule's conjunction, parallel to
    /// [`RULES`]; introspection for tests and tooling.
    pub fn rule_patterns(&self) -> &[Vec<PatternId>] {
        &self.rule_patterns
    }

    /// Scans one text in a single pass (no per-call heap allocation on
    /// ASCII input).
    pub fn hits_text(&self, text: &str) -> HitSet {
        self.automaton.scan(text)
    }

    /// Scans every searchable field of `report` — the same text
    /// [`BugReport::full_text`] concatenates — without materializing the
    /// concatenation.
    pub fn hits_report(&self, report: &BugReport) -> HitSet {
        self.hits_segments(&[
            &report.title,
            &report.body,
            &report.how_to_repeat,
            &report.developer_notes,
        ])
    }

    /// Scans borrowed text segments as one logical text with a break
    /// between segments — the input shape of
    /// [`flat::ReportColumns::text_segments`](crate::flat::ReportColumns::text_segments),
    /// so arena-backed archives scan without materializing any report.
    pub fn hits_segments(&self, segments: &[&str]) -> HitSet {
        self.automaton.scan_segments(segments)
    }

    /// Evaluates every lexicon rule conjunction against `hits`, returning
    /// the indicated conditions sorted and deduplicated — bit-identical to
    /// the naive [`crate::lexicon::conditions_in_naive`] scan.
    pub fn conditions(&self, hits: &HitSet) -> Vec<ConditionKind> {
        if !self.has_unconditional_rule && !hits.intersects(&self.rule_union) {
            return Vec::new(); // no rule pattern hit, so no conjunction holds
        }
        let mut found: Vec<ConditionKind> = self
            .rule_masks
            .iter()
            .filter(|(mask, _)| hits.is_superset(mask))
            .map(|&(_, kind)| kind)
            .collect();
        found.sort_unstable();
        found.dedup();
        found
    }

    /// The deterministic-reproduction verdict: `Some(false)` if any
    /// nondeterministic cue hit (they dominate), `Some(true)` if only
    /// deterministic cues hit, `None` if the text is silent.
    pub fn deterministic_repro(&self, hits: &HitSet) -> Option<bool> {
        if hits.intersects(&self.nondeterministic) {
            Some(false)
        } else if hits.intersects(&self.deterministic) {
            Some(true)
        } else {
            None
        }
    }

    /// Whether any retry-success cue hit.
    pub fn retry_succeeded(&self, hits: &HitSet) -> bool {
        hits.intersects(&self.retry)
    }

    /// Whether any §4 MySQL search keyword hit.
    pub fn matches_mysql_keywords(&self, hits: &HitSet) -> bool {
        hits.intersects(&self.mysql_keywords)
    }

    /// Whether `keywords` (already lowercased) is exactly the registered
    /// §4 MySQL keyword list, making [`Self::matches_mysql_keywords`]
    /// applicable.
    pub fn is_mysql_keywords<S: AsRef<str>>(&self, keywords: &[S]) -> bool {
        keywords.len() == MYSQL_KEYWORDS.len()
            && keywords.iter().zip(MYSQL_KEYWORDS).all(|(a, b)| a.as_ref() == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::AppKind;

    #[test]
    fn shared_set_compiles_once_and_covers_all_pattern_families() {
        let set = shared();
        assert!(std::ptr::eq(set, shared()), "OnceLock returns the same instance");
        assert!(set.automaton().is_ascii(), "every registered pattern is ASCII");
        assert_eq!(set.rule_patterns.len(), RULES.len());
        assert_eq!(set.deterministic.len(), DETERMINISTIC_CUES.len());
        assert_eq!(set.nondeterministic.len(), NONDETERMINISTIC_CUES.len());
        assert_eq!(set.retry.len(), RETRY_SUCCESS_CUES.len());
        assert_eq!(set.mysql_keywords.len(), MYSQL_KEYWORDS.len());
        // Patterns shared between families (e.g. "works on a retry" is both
        // a lexicon pattern and a retry cue) deduplicate in the automaton.
        let registered: usize = set.rule_patterns.iter().map(Vec::len).sum::<usize>()
            + DETERMINISTIC_CUES.len()
            + NONDETERMINISTIC_CUES.len()
            + RETRY_SUCCESS_CUES.len()
            + MYSQL_KEYWORDS.len();
        assert!(set.automaton().pattern_count() < registered, "duplicates collapsed");
    }

    #[test]
    fn one_scan_answers_every_consumer() {
        let set = shared();
        let hits = set
            .hits_text("the daemon DIED with a race condition; sometimes works after restarting");
        assert_eq!(set.conditions(&hits), vec![ConditionKind::RaceCondition]);
        assert_eq!(set.deterministic_repro(&hits), Some(false));
        assert!(set.retry_succeeded(&hits));
        assert!(set.matches_mysql_keywords(&hits));
    }

    #[test]
    fn report_scan_covers_every_field() {
        let set = shared();
        let r = BugReport::builder(AppKind::Gnome, 1)
            .title("panel freeze")
            .body("desktop hangs whenever an applet loads")
            .how_to_repeat("open two applets")
            .developer_notes("race condition in the applet registry")
            .build();
        let hits = set.hits_report(&r);
        assert_eq!(set.conditions(&hits), vec![ConditionKind::RaceCondition]);
        assert_eq!(set.deterministic_repro(&hits), Some(true), "'whenever' is in the body");
        assert!(set.matches_mysql_keywords(&hits), "'race' is in the notes");
    }

    #[test]
    fn is_mysql_keywords_requires_exact_list() {
        let set = shared();
        assert!(set.is_mysql_keywords(&MYSQL_KEYWORDS));
        assert!(!set.is_mysql_keywords(&["crash", "segmentation", "race"]));
        assert!(!set.is_mysql_keywords(&["crash", "segmentation", "race", "hang"]));
        assert!(!set.is_mysql_keywords(&["died", "race", "segmentation", "crash"]));
    }
}
