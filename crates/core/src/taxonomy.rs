//! The fault taxonomy of §3 and the applications of §4.

use faultstudy_env::condition::{ConditionKind, Persistence};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's three-way classification of software faults by their
/// dependence on the operating environment (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Occurs independent of the operating environment: given a specific
    /// workload, the fault always occurs. Completely deterministic
    /// (a Bohrbug); application-generic recovery never survives it.
    EnvironmentIndependent,
    /// Depends on an environmental condition that is unlikely to change
    /// enough during retry (full disk, exhausted descriptors, missing
    /// hardware).
    EnvDependentNonTransient,
    /// Depends on an environmental condition likely to differ on retry
    /// (thread interleavings, slow DNS) — a Heisenbug; the class generic
    /// recovery can survive.
    EnvDependentTransient,
}

impl FaultClass {
    /// All classes, in table order.
    pub const ALL: [FaultClass; 3] = [
        FaultClass::EnvironmentIndependent,
        FaultClass::EnvDependentNonTransient,
        FaultClass::EnvDependentTransient,
    ];

    /// Derives the class from the triggering condition, `None` meaning the
    /// fault does not depend on the environment at all.
    ///
    /// This single function is the normative link between the environment
    /// model and the taxonomy: the classifier, the corpus, and the
    /// simulated applications all obtain classes through it.
    ///
    /// # Example
    ///
    /// ```
    /// use faultstudy_core::taxonomy::FaultClass;
    /// use faultstudy_env::condition::ConditionKind;
    ///
    /// assert_eq!(FaultClass::from_condition(None), FaultClass::EnvironmentIndependent);
    /// assert_eq!(
    ///     FaultClass::from_condition(Some(ConditionKind::RaceCondition)),
    ///     FaultClass::EnvDependentTransient,
    /// );
    /// ```
    pub fn from_condition(condition: Option<ConditionKind>) -> FaultClass {
        match condition {
            None => FaultClass::EnvironmentIndependent,
            Some(c) => match c.persistence() {
                Persistence::Persists => FaultClass::EnvDependentNonTransient,
                Persistence::ClearedByRecovery | Persistence::ChangesNaturally => {
                    FaultClass::EnvDependentTransient
                }
            },
        }
    }

    /// Whether faults of this class are deterministic given the workload.
    pub fn is_deterministic(self) -> bool {
        self == FaultClass::EnvironmentIndependent
    }

    /// Whether a purely application-generic recovery is expected to survive
    /// a fault of this class (the paper's hypothesis test: only transient
    /// faults qualify).
    pub fn generic_recovery_expected(self) -> bool {
        self == FaultClass::EnvDependentTransient
    }

    /// The label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::EnvironmentIndependent => "environment-independent",
            FaultClass::EnvDependentNonTransient => "environment-dependent-nontransient",
            FaultClass::EnvDependentTransient => "environment-dependent-transient",
        }
    }

    /// Compact label for column headers and metric keys.
    pub fn short(self) -> &'static str {
        match self {
            FaultClass::EnvironmentIndependent => "env-indep",
            FaultClass::EnvDependentNonTransient => "nontransient",
            FaultClass::EnvDependentTransient => "transient",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The three applications the study examines (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// The Apache HTTP server.
    Apache,
    /// The GNOME desktop environment (core libraries plus panel, gnome-pim,
    /// gnumeric, and gmc).
    Gnome,
    /// The MySQL database server.
    Mysql,
}

impl AppKind {
    /// All applications, in the paper's presentation order.
    pub const ALL: [AppKind; 3] = [AppKind::Apache, AppKind::Gnome, AppKind::Mysql];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Apache => "Apache",
            AppKind::Gnome => "GNOME",
            AppKind::Mysql => "MySQL",
        }
    }

    /// Which table of the paper reports this application's classification.
    pub fn table_number(self) -> u8 {
        match self {
            AppKind::Apache => 1,
            AppKind::Gnome => 2,
            AppKind::Mysql => 3,
        }
    }

    /// Which figure of the paper reports this application's distribution.
    pub fn figure_number(self) -> u8 {
        match self {
            AppKind::Apache => 1,
            AppKind::Gnome => 2,
            AppKind::Mysql => 3,
        }
    }
}

impl fmt::Display for AppKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Impact of a reported fault. The study keeps only high-impact reports —
/// those that "crash, return an error condition, cause security problems,
/// or stop responding" (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Cosmetic or documentation issues.
    Trivial,
    /// Wrong but tolerable behaviour.
    Minor,
    /// Serious misbehaviour short of an outage.
    Major,
    /// Crash or hang: the paper's "severe" category.
    Severe,
    /// Data loss, security, or unconditional crash: "critical".
    Critical,
}

impl Severity {
    /// Whether the study's §4 selection keeps reports of this severity.
    pub fn is_high_impact(self) -> bool {
        self >= Severity::Severe
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Trivial => "trivial",
            Severity::Minor => "minor",
            Severity::Major => "major",
            Severity::Severe => "severe",
            Severity::Critical => "critical",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_from_condition_matches_persistence() {
        assert_eq!(FaultClass::from_condition(None), FaultClass::EnvironmentIndependent);
        assert_eq!(
            FaultClass::from_condition(Some(ConditionKind::FileSystemFull)),
            FaultClass::EnvDependentNonTransient
        );
        assert_eq!(
            FaultClass::from_condition(Some(ConditionKind::ProcessTableFull)),
            FaultClass::EnvDependentTransient
        );
        assert_eq!(
            FaultClass::from_condition(Some(ConditionKind::DnsSlow)),
            FaultClass::EnvDependentTransient
        );
    }

    #[test]
    fn every_condition_maps_to_a_dependent_class() {
        for c in ConditionKind::ALL {
            let class = FaultClass::from_condition(Some(c));
            assert_ne!(class, FaultClass::EnvironmentIndependent, "{c}");
        }
    }

    #[test]
    fn determinism_and_recovery_expectations() {
        assert!(FaultClass::EnvironmentIndependent.is_deterministic());
        assert!(!FaultClass::EnvDependentTransient.is_deterministic());
        assert!(FaultClass::EnvDependentTransient.generic_recovery_expected());
        assert!(!FaultClass::EnvDependentNonTransient.generic_recovery_expected());
        assert!(!FaultClass::EnvironmentIndependent.generic_recovery_expected());
    }

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(FaultClass::EnvironmentIndependent.to_string(), "environment-independent");
        assert_eq!(
            FaultClass::EnvDependentNonTransient.to_string(),
            "environment-dependent-nontransient"
        );
        assert_eq!(
            FaultClass::EnvDependentTransient.to_string(),
            "environment-dependent-transient"
        );
    }

    #[test]
    fn short_labels_are_distinct() {
        let shorts: Vec<_> = FaultClass::ALL.iter().map(|c| c.short()).collect();
        assert_eq!(shorts, ["env-indep", "nontransient", "transient"]);
    }

    #[test]
    fn app_metadata() {
        assert_eq!(AppKind::Apache.table_number(), 1);
        assert_eq!(AppKind::Gnome.table_number(), 2);
        assert_eq!(AppKind::Mysql.table_number(), 3);
        for app in AppKind::ALL {
            assert_eq!(app.table_number(), app.figure_number());
        }
        assert_eq!(AppKind::Gnome.to_string(), "GNOME");
    }

    #[test]
    fn severity_threshold_matches_study_selection() {
        assert!(Severity::Severe.is_high_impact());
        assert!(Severity::Critical.is_high_impact());
        assert!(!Severity::Major.is_high_impact());
        assert!(!Severity::Minor.is_high_impact());
        assert!(!Severity::Trivial.is_high_impact());
        assert!(Severity::Critical > Severity::Severe);
    }
}
