//! The keyword → condition lexicon used by evidence extraction.
//!
//! The paper's authors read each report's How-To-Repeat field and developer
//! comments to decide which environmental condition (if any) triggered the
//! fault. This module encodes that reading as an auditable rule list: each
//! rule is a conjunction of lowercase substrings which, when all present in
//! a report's text, indicate one [`ConditionKind`]. The rules were written
//! from the exact trigger descriptions of §5.1–§5.3.

use faultstudy_env::condition::ConditionKind;

/// One lexicon rule: if every pattern in `all_of` occurs in the lowercased
/// report text, the report mentions `kind`.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Substrings that must all be present.
    pub all_of: &'static [&'static str],
    /// The condition the conjunction indicates.
    pub kind: ConditionKind,
}

/// The ordered rule list. More specific rules come first so that, e.g.,
/// "reverse dns" matches before the generic "dns" rules.
pub const RULES: &[Rule] = &[
    // --- DNS family (most specific first) ---
    Rule { all_of: &["reverse dns"], kind: ConditionKind::ReverseDnsMissing },
    Rule { all_of: &["reverse", "not configured"], kind: ConditionKind::ReverseDnsMissing },
    Rule { all_of: &["dns", "slow"], kind: ConditionKind::DnsSlow },
    Rule { all_of: &["dns", "error"], kind: ConditionKind::DnsError },
    Rule { all_of: &["dns", "returns an error"], kind: ConditionKind::DnsError },
    Rule { all_of: &["name service", "error"], kind: ConditionKind::DnsError },
    // --- races and timing ---
    Rule { all_of: &["race condition"], kind: ConditionKind::RaceCondition },
    Rule { all_of: &["race between"], kind: ConditionKind::RaceCondition },
    Rule { all_of: &["interleaving"], kind: ConditionKind::RaceCondition },
    Rule { all_of: &["masking of a signal", "arrival"], kind: ConditionKind::RaceCondition },
    Rule { all_of: &["presses stop"], kind: ConditionKind::WorkloadTiming },
    Rule { all_of: &["stop", "midst of a page download"], kind: ConditionKind::WorkloadTiming },
    Rule { all_of: &["works on a retry"], kind: ConditionKind::UnknownTransient },
    Rule { all_of: &["works on retry"], kind: ConditionKind::UnknownTransient },
    // --- process table and ports ---
    Rule { all_of: &["process table"], kind: ConditionKind::ProcessTableFull },
    Rule { all_of: &["slots in the process"], kind: ConditionKind::ProcessTableFull },
    Rule { all_of: &["out of processes"], kind: ConditionKind::ProcessTableFull },
    Rule { all_of: &["cannot fork"], kind: ConditionKind::ProcessTableFull },
    Rule { all_of: &["hung", "ports"], kind: ConditionKind::PortsHeldByChildren },
    Rule { all_of: &["hang onto", "port"], kind: ConditionKind::PortsHeldByChildren },
    // --- descriptors, disk, files ---
    Rule { all_of: &["file descriptor"], kind: ConditionKind::FdExhaustion },
    Rule { all_of: &["too many open files"], kind: ConditionKind::FdExhaustion },
    Rule { all_of: &["out of fds"], kind: ConditionKind::FdExhaustion },
    Rule { all_of: &["open socket", "left around"], kind: ConditionKind::FdExhaustion },
    Rule { all_of: &["disk cache", "full"], kind: ConditionKind::DiskCacheFull },
    Rule { all_of: &["maximum allowed file size"], kind: ConditionKind::MaxFileSize },
    Rule { all_of: &["file size", "greater than"], kind: ConditionKind::MaxFileSize },
    Rule { all_of: &["file size limit"], kind: ConditionKind::MaxFileSize },
    Rule { all_of: &["full file system"], kind: ConditionKind::FileSystemFull },
    Rule { all_of: &["file system", "full"], kind: ConditionKind::FileSystemFull },
    Rule { all_of: &["filesystem full"], kind: ConditionKind::FileSystemFull },
    Rule { all_of: &["disk", "full"], kind: ConditionKind::FileSystemFull },
    Rule { all_of: &["no space left"], kind: ConditionKind::FileSystemFull },
    // --- network ---
    Rule {
        all_of: &["network resource", "exhausted"],
        kind: ConditionKind::NetworkResourceExhausted,
    },
    Rule { all_of: &["slow network"], kind: ConditionKind::NetworkSlow },
    Rule { all_of: &["network", "slow connection"], kind: ConditionKind::NetworkSlow },
    Rule { all_of: &["pcmcia"], kind: ConditionKind::HardwareRemoved },
    Rule { all_of: &["card", "removed"], kind: ConditionKind::HardwareRemoved },
    // --- host and metadata ---
    Rule { all_of: &["hostname", "changed"], kind: ConditionKind::HostnameChanged },
    Rule { all_of: &["illegal value", "owner"], kind: ConditionKind::CorruptFileMetadata },
    Rule { all_of: &["owner field", "illegal"], kind: ConditionKind::CorruptFileMetadata },
    // --- entropy ---
    Rule { all_of: &["/dev/random"], kind: ConditionKind::EntropyExhausted },
    Rule { all_of: &["entropy"], kind: ConditionKind::EntropyExhausted },
    Rule { all_of: &["random numbers", "lack of events"], kind: ConditionKind::EntropyExhausted },
    // --- leaks (kept last: "leak" is the least specific pattern) ---
    Rule { all_of: &["memory leak"], kind: ConditionKind::ResourceLeak },
    Rule { all_of: &["resource leak"], kind: ConditionKind::ResourceLeak },
    Rule { all_of: &["shared memory segment", "growing"], kind: ConditionKind::ResourceLeak },
];

/// Scans `text` (any case) and returns every condition the lexicon finds,
/// sorted and deduplicated.
///
/// One pass: the text is scanned once by the shared Aho–Corasick automaton
/// ([`crate::scanset`]) and each rule's conjunction is evaluated against
/// the resulting hit bitset — no `to_lowercase` allocation and no
/// per-pattern traversal. Output is bit-identical to
/// [`conditions_in_naive`].
///
/// # Example
///
/// ```
/// use faultstudy_core::lexicon::conditions_in;
/// use faultstudy_env::condition::ConditionKind;
///
/// let found = conditions_in("server crashes when the file system is full");
/// assert_eq!(found, vec![ConditionKind::FileSystemFull]);
/// ```
pub fn conditions_in(text: &str) -> Vec<ConditionKind> {
    let set = crate::scanset::shared();
    set.conditions(&set.hits_text(text))
}

/// The pre-automaton reference implementation: lowercases `text` and runs
/// every rule as independent `contains` scans. Kept as the ground truth
/// for the differential property tests and the naive-vs-automaton
/// benchmarks; [`conditions_in`] must agree with it on every input.
pub fn conditions_in_naive(text: &str) -> Vec<ConditionKind> {
    let lower = text.to_lowercase();
    let mut found: Vec<ConditionKind> = RULES
        .iter()
        .filter(|r| r.all_of.iter().all(|p| lower.contains(p)))
        .map(|r| r.kind)
        .collect();
    found.sort_unstable();
    found.dedup();
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_paper_trigger_phrase_maps_to_its_condition() {
        // One representative phrase per §5 trigger description.
        let cases: &[(&str, ConditionKind)] = &[
            ("high load leading to an unknown resource leak", ConditionKind::ResourceLeak),
            ("lack of file descriptors", ConditionKind::FdExhaustion),
            ("disk cache used by the application gets full", ConditionKind::DiskCacheFull),
            (
                "size of log file is greater than maximum allowed file size",
                ConditionKind::MaxFileSize,
            ),
            ("full file system", ConditionKind::FileSystemFull),
            ("unknown network resource exhausted", ConditionKind::NetworkResourceExhausted),
            ("removal of pcmcia network card", ConditionKind::HardwareRemoved),
            ("hostname of the machine was changed", ConditionKind::HostnameChanged),
            ("file has an illegal value in the owner field", ConditionKind::CorruptFileMetadata),
            ("reverse dns is not configured for the remote host", ConditionKind::ReverseDnsMissing),
            (
                "child processes consume all available slots in the process table",
                ConditionKind::ProcessTableFull,
            ),
            (
                "hung child processes hang onto required network ports",
                ConditionKind::PortsHeldByChildren,
            ),
            ("call to domain name service dns returns an error", ConditionKind::DnsError),
            ("slow dns response", ConditionKind::DnsSlow),
            ("slow network connection", ConditionKind::NetworkSlow),
            (
                "lack of events to generate sufficient random numbers in /dev/random",
                ConditionKind::EntropyExhausted,
            ),
            ("user presses stop on the browser", ConditionKind::WorkloadTiming),
            (
                "race condition between a image viewer and a property editor",
                ConditionKind::RaceCondition,
            ),
            (
                "unknown failure of application which works on a retry",
                ConditionKind::UnknownTransient,
            ),
        ];
        for (text, expected) in cases {
            let found = conditions_in(text);
            assert!(
                found.contains(expected),
                "{text:?} should contain {expected}, found {found:?}"
            );
        }
    }

    #[test]
    fn plain_deterministic_text_matches_nothing() {
        for text in [
            "dies with a segfault when the submitted url is very long",
            "a count clause on an empty table crashes the server",
            "clicking the prev button in the year view crashes the calendar",
            "",
        ] {
            assert!(conditions_in(text).is_empty(), "{text:?}");
        }
    }

    #[test]
    fn reverse_dns_wins_over_generic_dns() {
        let found = conditions_in("crash on connect when reverse dns is broken");
        assert!(found.contains(&ConditionKind::ReverseDnsMissing));
    }

    #[test]
    fn multiple_conditions_all_reported_sorted_deduped() {
        let text =
            "full file system and a race condition between threads; also the file system is full";
        let found = conditions_in(text);
        assert_eq!(found, {
            let mut v = vec![ConditionKind::FileSystemFull, ConditionKind::RaceCondition];
            v.sort_unstable();
            v
        });
    }

    #[test]
    fn matching_is_case_insensitive() {
        assert_eq!(
            conditions_in("RACE CONDITION in the scheduler"),
            vec![ConditionKind::RaceCondition]
        );
    }

    #[test]
    fn automaton_path_agrees_with_naive_on_trigger_phrases() {
        for text in [
            "reverse dns is not configured for the remote host",
            "full file system and a race condition; the file system is full",
            "RACE CONDITION in the scheduler",
            "dies with a segfault when the submitted url is very long",
            "lack of events to generate sufficient random numbers in /dev/random",
            "",
        ] {
            assert_eq!(conditions_in(text), conditions_in_naive(text), "{text:?}");
        }
    }

    #[test]
    fn rules_cover_every_condition_kind() {
        use std::collections::BTreeSet;
        let covered: BTreeSet<ConditionKind> = RULES.iter().map(|r| r.kind).collect();
        for kind in ConditionKind::ALL {
            assert!(covered.contains(&kind), "no lexicon rule produces {kind}");
        }
    }
}
