//! Fault taxonomy, bug-report model, classifier, and study aggregation —
//! the primary contribution of the DSN 2000 fault study in executable form.
//!
//! The paper's method (§3–§5) is: collect high-impact bug reports from
//! released versions of three open-source applications, extract from each
//! report the evidence of how the fault depends on the *operating
//! environment*, classify the fault as environment-independent,
//! environment-dependent-nontransient, or environment-dependent-transient,
//! and aggregate the classifications into per-application tables and
//! per-release/per-time figures.
//!
//! # Modules
//!
//! - [`taxonomy`] — [`FaultClass`], [`AppKind`], [`Severity`], and the rule
//!   deriving a class from a triggering condition.
//! - [`report`] — the [`report::BugReport`] data model, including the
//!   "How-To-Repeat" field the paper calls *key* (§4).
//! - [`flat`] — [`flat::ReportColumns`]: struct-of-arrays report storage
//!   over a contiguous text arena, the layout archives scan at scale.
//! - [`evidence`] — [`evidence::Evidence`], the structured facts a
//!   classifier needs, and extraction of evidence from report text.
//! - [`lexicon`] — the keyword → condition lexicon used by extraction.
//! - [`scanset`] — the shared single-pass Aho–Corasick scan set backing
//!   the lexicon, the cue lists, and the §4 keyword search.
//! - [`classify`] — the rule-based [`classify::Classifier`].
//! - [`stats`] — chi-square homogeneity test quantifying the figures'
//!   proportion-stability claim.
//! - [`study`] — [`study::Study`]: per-app class counts, totals,
//!   percentages; reproduces Tables 1–3 and the §5.4 aggregates.
//! - [`timeline`] — fault distributions over releases (Figures 1 and 3)
//!   and over time (Figure 2).
//!
//! # Example
//!
//! ```
//! use faultstudy_core::classify::Classifier;
//! use faultstudy_core::report::BugReport;
//! use faultstudy_core::taxonomy::{AppKind, FaultClass, Severity};
//!
//! let report = BugReport::builder(AppKind::Apache, 1)
//!     .title("server dies with segfault on long URL")
//!     .how_to_repeat("request a URL longer than 8k; crashes every time")
//!     .severity(Severity::Critical)
//!     .build();
//! let classification = Classifier::default().classify_report(&report);
//! assert_eq!(classification.class, FaultClass::EnvironmentIndependent);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod evidence;
pub mod flat;
pub mod lexicon;
pub mod report;
pub mod scanset;
pub mod stats;
pub mod study;
pub mod taxonomy;
pub mod timeline;

pub use classify::{Classification, Classifier};
pub use evidence::Evidence;
pub use report::BugReport;
pub use study::{ClassifiedFault, Study};
pub use taxonomy::{AppKind, FaultClass, Severity};
