//! Statistical support: Pearson's chi-square test of homogeneity.
//!
//! The paper reads Figures 1 and 3 by eye: "the relative proportion of
//! environment-independent bugs stays about the same even for new releases
//! of the software". This module makes that claim quantitative: a
//! chi-square test of homogeneity over the per-release class counts, with
//! the null hypothesis that every release draws from the same class
//! distribution. A *non*-significant statistic supports the paper's
//! reading.

use crate::study::ClassCounts;
use crate::taxonomy::FaultClass;
use serde::{Deserialize, Serialize};

/// Upper 5% critical values of the chi-square distribution for 1–12
/// degrees of freedom (Abramowitz & Stegun, table 26.8).
const CHI2_CRIT_05: [f64; 12] =
    [3.841, 5.991, 7.815, 9.488, 11.070, 12.592, 14.067, 15.507, 16.919, 18.307, 19.675, 21.026];

/// Result of a chi-square homogeneity test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chi2Test {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom: `(rows - 1) * (cols - 1)` over non-empty
    /// rows/columns.
    pub dof: u32,
    /// The 5% critical value for `dof` (infinite when `dof` is 0 or out of
    /// the table, making the test trivially non-significant).
    pub critical_05: f64,
}

impl Chi2Test {
    /// Whether the null hypothesis (same distribution everywhere) is
    /// rejected at the 5% level.
    pub fn significant_at_05(&self) -> bool {
        self.statistic > self.critical_05
    }
}

/// Tests whether per-bucket class counts are homogeneous — i.e. whether
/// the class mix is plausibly the same in every release/month bucket.
///
/// Buckets and classes with zero marginal totals are dropped (they carry
/// no information and would divide by zero).
///
/// # Example
///
/// ```
/// use faultstudy_core::stats::chi2_homogeneity;
/// use faultstudy_core::study::ClassCounts;
/// use faultstudy_core::taxonomy::FaultClass;
///
/// let mut a = ClassCounts::default();
/// let mut b = ClassCounts::default();
/// for _ in 0..8 { a.bump(FaultClass::EnvironmentIndependent); }
/// a.bump(FaultClass::EnvDependentTransient);
/// for _ in 0..16 { b.bump(FaultClass::EnvironmentIndependent); }
/// b.bump(FaultClass::EnvDependentTransient);
/// b.bump(FaultClass::EnvDependentTransient);
/// let test = chi2_homogeneity(&[a, b]);
/// assert!(!test.significant_at_05(), "same mix, different sizes");
/// ```
pub fn chi2_homogeneity(buckets: &[ClassCounts]) -> Chi2Test {
    // Keep non-empty rows.
    let rows: Vec<&ClassCounts> = buckets.iter().filter(|b| b.total() > 0).collect();
    // Keep classes with a non-zero grand total.
    let cols: Vec<FaultClass> = FaultClass::ALL
        .into_iter()
        .filter(|c| rows.iter().map(|r| r.get(*c)).sum::<u32>() > 0)
        .collect();
    if rows.len() < 2 || cols.len() < 2 {
        return Chi2Test { statistic: 0.0, dof: 0, critical_05: f64::INFINITY };
    }
    let grand: f64 = rows.iter().map(|r| f64::from(r.total())).sum();
    let col_totals: Vec<f64> =
        cols.iter().map(|c| rows.iter().map(|r| f64::from(r.get(*c))).sum()).collect();
    let mut statistic = 0.0;
    for row in &rows {
        let row_total = f64::from(row.total());
        for (c, col_total) in cols.iter().zip(&col_totals) {
            let expected = row_total * col_total / grand;
            let observed = f64::from(row.get(*c));
            statistic += (observed - expected).powi(2) / expected;
        }
    }
    let dof = (rows.len() as u32 - 1) * (cols.len() as u32 - 1);
    let critical_05 = CHI2_CRIT_05.get(dof as usize - 1).copied().unwrap_or(f64::INFINITY);
    Chi2Test { statistic, dof, critical_05 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(ei: u32, edn: u32, edt: u32) -> ClassCounts {
        let mut c = ClassCounts::default();
        for _ in 0..ei {
            c.bump(FaultClass::EnvironmentIndependent);
        }
        for _ in 0..edn {
            c.bump(FaultClass::EnvDependentNonTransient);
        }
        for _ in 0..edt {
            c.bump(FaultClass::EnvDependentTransient);
        }
        c
    }

    #[test]
    fn identical_distributions_score_zero() {
        let t = chi2_homogeneity(&[counts(10, 2, 2), counts(10, 2, 2)]);
        assert!(t.statistic < 1e-9);
        assert_eq!(t.dof, 2);
        assert!(!t.significant_at_05());
    }

    #[test]
    fn scaled_distributions_score_zero() {
        // Homogeneity is about proportions, not magnitudes.
        let t = chi2_homogeneity(&[counts(5, 1, 1), counts(20, 4, 4)]);
        assert!(t.statistic < 1e-9);
        assert!(!t.significant_at_05());
    }

    #[test]
    fn wildly_different_distributions_are_significant() {
        let t = chi2_homogeneity(&[counts(40, 0, 0), counts(0, 0, 40)]);
        assert!(t.significant_at_05(), "{t:?}");
    }

    #[test]
    fn degenerate_inputs_are_trivially_nonsignificant() {
        assert!(!chi2_homogeneity(&[]).significant_at_05());
        assert!(!chi2_homogeneity(&[counts(5, 1, 1)]).significant_at_05());
        // One class only: no degrees of freedom.
        let t = chi2_homogeneity(&[counts(5, 0, 0), counts(9, 0, 0)]);
        assert_eq!(t.dof, 0);
        assert!(!t.significant_at_05());
        // Empty buckets are ignored.
        let t = chi2_homogeneity(&[counts(0, 0, 0), counts(5, 1, 1), counts(10, 2, 2)]);
        assert_eq!(t.dof, 2);
    }

    #[test]
    fn dof_accounts_for_missing_classes() {
        // Two classes present, three buckets: dof = (3-1)*(2-1) = 2.
        let t = chi2_homogeneity(&[counts(5, 0, 1), counts(6, 0, 1), counts(7, 0, 2)]);
        assert_eq!(t.dof, 2);
    }

    #[test]
    fn paper_figures_are_homogeneous() {
        // The actual claim: Apache's and MySQL's per-release class mixes
        // pass the homogeneity test at the 5% level.
        use crate::taxonomy::AppKind;
        use crate::timeline::by_release;
        let study = faultstudy_corpus_smoke::study();
        for app in [AppKind::Apache, AppKind::Mysql] {
            let buckets: Vec<ClassCounts> =
                by_release(&study, app).buckets.iter().map(|b| b.counts).collect();
            let t = chi2_homogeneity(&buckets);
            assert!(
                !t.significant_at_05(),
                "{app}: class mix should be homogeneous across releases: {t:?}"
            );
        }
    }

    /// Minimal stand-in for the corpus (core cannot depend on
    /// faultstudy-corpus); uses the exact per-release counts the corpus
    /// encodes.
    mod faultstudy_corpus_smoke {
        use super::counts;
        use crate::report::YearMonth;
        use crate::study::{ClassifiedFault, Study};
        use crate::taxonomy::{AppKind, FaultClass};

        pub fn study() -> Study {
            let apache = [
                (0u8, counts(4, 1, 1)),
                (1, counts(7, 1, 2)),
                (2, counts(11, 2, 2)),
                (3, counts(14, 3, 2)),
            ];
            let mysql = [
                (0u8, counts(4, 1, 0)),
                (1, counts(7, 1, 0)),
                (2, counts(10, 1, 1)),
                (3, counts(13, 1, 1)),
                (4, counts(4, 0, 0)),
            ];
            let mut faults = Vec::new();
            let mut emit = |app: AppKind, spec: &[(u8, crate::study::ClassCounts)]| {
                for (idx, c) in spec {
                    for class in FaultClass::ALL {
                        for _ in 0..c.get(class) {
                            faults.push(ClassifiedFault {
                                app,
                                class,
                                release_idx: *idx,
                                release: format!("r{idx}"),
                                filed: YearMonth::new(1999, 1),
                            });
                        }
                    }
                }
            };
            emit(AppKind::Apache, &apache);
            emit(AppKind::Mysql, &mysql);
            Study::from_faults(faults)
        }
    }
}
