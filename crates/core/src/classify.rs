//! The rule-based fault classifier.
//!
//! Given [`Evidence`], the classifier applies the paper's §3 decision
//! procedure:
//!
//! 1. If the evidence names environmental conditions, the fault is
//!    environment-dependent. It is *nontransient* if **any** named
//!    condition persists across generic recovery — a retry that still meets
//!    one unrepaired trigger still fails — and *transient* otherwise.
//! 2. If no condition is named but the operation succeeded on a plain
//!    retry, the fault is transient with an unknown trigger (the GNOME
//!    "works on a retry" report, §5.2).
//! 3. If no condition is named and reproduction is reported flaky, the
//!    fault is *suspected* transient at low confidence.
//! 4. Otherwise the fault is environment-independent: given the workload it
//!    always occurs.
//!
//! The paper acknowledges the transient/nontransient split "is subjective
//! and depends upon the recovery system in place" (§5.4); the
//! [`Classifier`]'s [`RecoveryAssumptions`] make that dependence explicit
//! and testable.

use crate::evidence::Evidence;
use crate::report::BugReport;
use crate::taxonomy::FaultClass;
use faultstudy_env::condition::{ConditionKind, Persistence};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How sure the classifier is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Confidence {
    /// Inferred only from reproduction flakiness.
    Low,
    /// Inferred from absence of evidence (default environment-independent).
    Medium,
    /// Backed by named conditions or explicit determinism cues.
    High,
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Confidence::Low => "low",
            Confidence::Medium => "medium",
            Confidence::High => "high",
        };
        f.write_str(s)
    }
}

/// The recovery-system assumptions under which persistence is judged.
///
/// §3's example: a full disk is nontransient *today*, but "some systems may
/// provide a way to automatically increase the disk capacity", which would
/// re-classify it as transient. Flipping these switches reproduces that
/// re-classification, and the ablation benchmark sweeps them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecoveryAssumptions {
    /// The system auto-grows storage, so full-disk/full-cache/file-size
    /// conditions clear on retry.
    pub storage_auto_grows: bool,
    /// The system garbage-collects leaked descriptors and similar
    /// resources (§6.2's proposal), so exhaustion conditions clear.
    pub resources_garbage_collected: bool,
}

impl RecoveryAssumptions {
    /// The persistence of `cond` under these assumptions.
    pub fn persistence_of(&self, cond: ConditionKind) -> Persistence {
        let base = cond.persistence();
        match cond {
            ConditionKind::FileSystemFull
            | ConditionKind::DiskCacheFull
            | ConditionKind::MaxFileSize
                if self.storage_auto_grows =>
            {
                Persistence::ClearedByRecovery
            }
            ConditionKind::FdExhaustion | ConditionKind::ResourceLeak
                if self.resources_garbage_collected =>
            {
                Persistence::ClearedByRecovery
            }
            _ => base,
        }
    }
}

/// The classifier's verdict on one fault.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    /// The assigned class.
    pub class: FaultClass,
    /// The conditions the verdict is based on (empty for
    /// environment-independent faults).
    pub conditions: Vec<ConditionKind>,
    /// Human-readable reasoning.
    pub rationale: String,
    /// How sure the classifier is.
    pub confidence: Confidence,
}

/// The rule-based classifier of §3.
///
/// # Example
///
/// ```
/// use faultstudy_core::classify::Classifier;
/// use faultstudy_core::evidence::Evidence;
/// use faultstudy_core::taxonomy::FaultClass;
/// use faultstudy_env::condition::ConditionKind;
///
/// let classifier = Classifier::default();
/// let verdict = classifier
///     .classify_evidence(&Evidence::of_conditions([ConditionKind::FileSystemFull]));
/// assert_eq!(verdict.class, FaultClass::EnvDependentNonTransient);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classifier {
    assumptions: RecoveryAssumptions,
}

impl Classifier {
    /// A classifier judging persistence under the given assumptions.
    pub fn with_assumptions(assumptions: RecoveryAssumptions) -> Self {
        Classifier { assumptions }
    }

    /// The assumptions in force.
    pub fn assumptions(&self) -> RecoveryAssumptions {
        self.assumptions
    }

    /// Extracts evidence from `report` and classifies it.
    pub fn classify_report(&self, report: &BugReport) -> Classification {
        self.classify_evidence(&Evidence::extract(report))
    }

    /// Classifies structured evidence.
    pub fn classify_evidence(&self, evidence: &Evidence) -> Classification {
        if evidence.names_conditions() {
            let persisting: Vec<ConditionKind> = evidence
                .conditions
                .iter()
                .copied()
                .filter(|c| self.assumptions.persistence_of(*c) == Persistence::Persists)
                .collect();
            if persisting.is_empty() {
                Classification {
                    class: FaultClass::EnvDependentTransient,
                    conditions: evidence.conditions.clone(),
                    rationale: format!(
                        "triggering condition(s) {} clear or change during recovery",
                        slugs(&evidence.conditions)
                    ),
                    confidence: Confidence::High,
                }
            } else {
                Classification {
                    class: FaultClass::EnvDependentNonTransient,
                    conditions: evidence.conditions.clone(),
                    rationale: format!("condition(s) {} persist on retry", slugs(&persisting)),
                    confidence: Confidence::High,
                }
            }
        } else if evidence.retry_succeeded {
            Classification {
                class: FaultClass::EnvDependentTransient,
                conditions: vec![ConditionKind::UnknownTransient],
                rationale: "operation succeeded on plain retry; trigger unknown".to_owned(),
                confidence: Confidence::High,
            }
        } else if evidence.deterministic_repro == Some(false) {
            Classification {
                class: FaultClass::EnvDependentTransient,
                conditions: vec![ConditionKind::UnknownTransient],
                rationale: "reproduction reported flaky; suspected unnamed environmental trigger"
                    .to_owned(),
                confidence: Confidence::Low,
            }
        } else {
            let confidence = if evidence.deterministic_repro == Some(true) {
                Confidence::High
            } else {
                Confidence::Medium
            };
            Classification {
                class: FaultClass::EnvironmentIndependent,
                conditions: Vec::new(),
                rationale: "no environmental dependence evident; fault follows the workload"
                    .to_owned(),
                confidence,
            }
        }
    }
}

fn slugs(conds: &[ConditionKind]) -> String {
    conds.iter().map(|c| c.slug()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::BugReport;
    use crate::taxonomy::AppKind;

    fn c() -> Classifier {
        Classifier::default()
    }

    #[test]
    fn no_evidence_is_environment_independent_medium() {
        let v = c().classify_evidence(&Evidence::default());
        assert_eq!(v.class, FaultClass::EnvironmentIndependent);
        assert_eq!(v.confidence, Confidence::Medium);
        assert!(v.conditions.is_empty());
    }

    #[test]
    fn deterministic_cue_raises_confidence() {
        let ev = Evidence { deterministic_repro: Some(true), ..Evidence::default() };
        let v = c().classify_evidence(&ev);
        assert_eq!(v.class, FaultClass::EnvironmentIndependent);
        assert_eq!(v.confidence, Confidence::High);
    }

    #[test]
    fn persisting_condition_yields_nontransient() {
        let v = c().classify_evidence(&Evidence::of_conditions([ConditionKind::FdExhaustion]));
        assert_eq!(v.class, FaultClass::EnvDependentNonTransient);
        assert_eq!(v.confidence, Confidence::High);
        assert!(v.rationale.contains("fd-exhaustion"));
    }

    #[test]
    fn transient_condition_yields_transient() {
        for cond in [
            ConditionKind::RaceCondition,
            ConditionKind::ProcessTableFull,
            ConditionKind::DnsSlow,
            ConditionKind::EntropyExhausted,
        ] {
            let v = c().classify_evidence(&Evidence::of_conditions([cond]));
            assert_eq!(v.class, FaultClass::EnvDependentTransient, "{cond}");
        }
    }

    #[test]
    fn any_persisting_condition_dominates_mixed_evidence() {
        let v = c().classify_evidence(&Evidence::of_conditions([
            ConditionKind::RaceCondition,
            ConditionKind::FileSystemFull,
        ]));
        assert_eq!(v.class, FaultClass::EnvDependentNonTransient);
        assert!(v.rationale.contains("filesystem-full"));
        assert!(!v.rationale.contains("race-condition"), "{}", v.rationale);
    }

    #[test]
    fn retry_success_without_condition_is_transient() {
        let ev = Evidence { retry_succeeded: true, ..Evidence::default() };
        let v = c().classify_evidence(&ev);
        assert_eq!(v.class, FaultClass::EnvDependentTransient);
        assert_eq!(v.conditions, vec![ConditionKind::UnknownTransient]);
        assert_eq!(v.confidence, Confidence::High);
    }

    #[test]
    fn flaky_repro_is_suspected_transient_low_confidence() {
        let ev = Evidence { deterministic_repro: Some(false), ..Evidence::default() };
        let v = c().classify_evidence(&ev);
        assert_eq!(v.class, FaultClass::EnvDependentTransient);
        assert_eq!(v.confidence, Confidence::Low);
    }

    #[test]
    fn end_to_end_from_report_text() {
        let report = BugReport::builder(AppKind::Apache, 9)
            .title("apache freezes")
            .how_to_repeat("shared memory segment keeps growing; memory leak in the application")
            .build();
        let v = c().classify_report(&report);
        assert_eq!(v.class, FaultClass::EnvDependentNonTransient);
        assert_eq!(v.conditions, vec![ConditionKind::ResourceLeak]);
    }

    #[test]
    fn assumptions_reclassify_disk_full_as_transient() {
        // §3's thought experiment: auto-growing storage turns full-disk
        // faults transient.
        let optimistic = Classifier::with_assumptions(RecoveryAssumptions {
            storage_auto_grows: true,
            resources_garbage_collected: false,
        });
        let ev = Evidence::of_conditions([ConditionKind::FileSystemFull]);
        assert_eq!(optimistic.classify_evidence(&ev).class, FaultClass::EnvDependentTransient);
        assert_eq!(c().classify_evidence(&ev).class, FaultClass::EnvDependentNonTransient);
    }

    #[test]
    fn assumptions_reclassify_fd_exhaustion_under_gc() {
        let gc = Classifier::with_assumptions(RecoveryAssumptions {
            storage_auto_grows: false,
            resources_garbage_collected: true,
        });
        let ev = Evidence::of_conditions([ConditionKind::FdExhaustion]);
        assert_eq!(gc.classify_evidence(&ev).class, FaultClass::EnvDependentTransient);
        // But hardware removal still persists even under generous assumptions.
        let hw = Evidence::of_conditions([ConditionKind::HardwareRemoved]);
        assert_eq!(gc.classify_evidence(&hw).class, FaultClass::EnvDependentNonTransient);
    }

    #[test]
    fn classification_is_consistent_with_taxonomy_for_single_conditions() {
        // For every single-condition evidence, the classifier agrees with
        // FaultClass::from_condition under default assumptions.
        for cond in ConditionKind::ALL {
            let v = c().classify_evidence(&Evidence::of_conditions([cond]));
            assert_eq!(v.class, FaultClass::from_condition(Some(cond)), "{cond}");
        }
    }
}
