//! Study aggregation: Tables 1–3 and the §5.4 discussion numbers.

use crate::report::YearMonth;
use crate::taxonomy::{AppKind, FaultClass};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One classified fault, carrying just the metadata the tables and figures
/// need.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassifiedFault {
    /// Application the fault belongs to.
    pub app: AppKind,
    /// Assigned fault class.
    pub class: FaultClass,
    /// Index of the release the fault was reported against, ordered oldest
    /// to newest within the application (drives Figures 1 and 3).
    pub release_idx: u8,
    /// Human-readable release label.
    pub release: String,
    /// Month the fault was reported (drives Figure 2).
    pub filed: YearMonth,
}

/// Per-application class counts — one row group of Tables 1–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClassCounts {
    /// Environment-independent faults.
    pub independent: u32,
    /// Environment-dependent-nontransient faults.
    pub nontransient: u32,
    /// Environment-dependent-transient faults.
    pub transient: u32,
}

impl ClassCounts {
    /// Total faults counted.
    pub fn total(&self) -> u32 {
        self.independent + self.nontransient + self.transient
    }

    /// Count for one class.
    pub fn get(&self, class: FaultClass) -> u32 {
        match class {
            FaultClass::EnvironmentIndependent => self.independent,
            FaultClass::EnvDependentNonTransient => self.nontransient,
            FaultClass::EnvDependentTransient => self.transient,
        }
    }

    /// Adds one fault of `class`.
    pub fn bump(&mut self, class: FaultClass) {
        match class {
            FaultClass::EnvironmentIndependent => self.independent += 1,
            FaultClass::EnvDependentNonTransient => self.nontransient += 1,
            FaultClass::EnvDependentTransient => self.transient += 1,
        }
    }

    /// Percentage of total for one class (0 when empty).
    pub fn percent(&self, class: FaultClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            f64::from(self.get(class)) * 100.0 / f64::from(total)
        }
    }
}

impl fmt::Display for ClassCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EI {} / EDN {} / EDT {} (total {})",
            self.independent,
            self.nontransient,
            self.transient,
            self.total()
        )
    }
}

/// The §5.4 discussion numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Discussion {
    /// Total faults across all applications (the paper: 139).
    pub total: u32,
    /// Environment-dependent-nontransient count and percentage
    /// (the paper: 14, 10%).
    pub nontransient: (u32, f64),
    /// Environment-dependent-transient count and percentage
    /// (the paper: 12, 9%).
    pub transient: (u32, f64),
    /// Min and max per-application environment-independent percentage
    /// (the paper: 72–87%).
    pub independent_range: (f64, f64),
}

/// A whole study: classified faults aggregated per application.
///
/// # Example
///
/// ```
/// use faultstudy_core::report::YearMonth;
/// use faultstudy_core::study::{ClassifiedFault, Study};
/// use faultstudy_core::taxonomy::{AppKind, FaultClass};
///
/// let faults = vec![ClassifiedFault {
///     app: AppKind::Apache,
///     class: FaultClass::EnvironmentIndependent,
///     release_idx: 0,
///     release: "1.2".into(),
///     filed: YearMonth::new(1998, 7),
/// }];
/// let study = Study::from_faults(faults);
/// assert_eq!(study.total(), 1);
/// assert_eq!(study.table(AppKind::Apache).independent, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Study {
    per_app: BTreeMap<AppKind, ClassCounts>,
    faults: Vec<ClassifiedFault>,
}

impl Study {
    /// Builds a study from classified faults.
    pub fn from_faults(faults: impl IntoIterator<Item = ClassifiedFault>) -> Study {
        let faults: Vec<ClassifiedFault> = faults.into_iter().collect();
        let mut per_app: BTreeMap<AppKind, ClassCounts> = BTreeMap::new();
        for f in &faults {
            per_app.entry(f.app).or_default().bump(f.class);
        }
        Study { per_app, faults }
    }

    /// The class counts for one application — the body of its table.
    pub fn table(&self, app: AppKind) -> ClassCounts {
        self.per_app.get(&app).copied().unwrap_or_default()
    }

    /// Counts summed over all applications.
    pub fn combined(&self) -> ClassCounts {
        let mut out = ClassCounts::default();
        for counts in self.per_app.values() {
            out.independent += counts.independent;
            out.nontransient += counts.nontransient;
            out.transient += counts.transient;
        }
        out
    }

    /// Total faults in the study.
    pub fn total(&self) -> u32 {
        self.combined().total()
    }

    /// The underlying classified faults.
    pub fn faults(&self) -> &[ClassifiedFault] {
        &self.faults
    }

    /// Faults belonging to `app`.
    pub fn faults_of(&self, app: AppKind) -> impl Iterator<Item = &ClassifiedFault> {
        self.faults.iter().filter(move |f| f.app == app)
    }

    /// Computes the §5.4 discussion numbers.
    pub fn discussion(&self) -> Discussion {
        let combined = self.combined();
        let total = combined.total();
        let pct = |n: u32| if total == 0 { 0.0 } else { f64::from(n) * 100.0 / f64::from(total) };
        let mut min_ei = f64::MAX;
        let mut max_ei = f64::MIN;
        for counts in self.per_app.values() {
            if counts.total() > 0 {
                let p = counts.percent(FaultClass::EnvironmentIndependent);
                min_ei = min_ei.min(p);
                max_ei = max_ei.max(p);
            }
        }
        if self.per_app.values().all(|c| c.total() == 0) {
            min_ei = 0.0;
            max_ei = 0.0;
        }
        Discussion {
            total,
            nontransient: (combined.nontransient, pct(combined.nontransient)),
            transient: (combined.transient, pct(combined.transient)),
            independent_range: (min_ei, max_ei),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(app: AppKind, class: FaultClass) -> ClassifiedFault {
        ClassifiedFault {
            app,
            class,
            release_idx: 0,
            release: "r0".into(),
            filed: YearMonth::new(1999, 1),
        }
    }

    fn paper_shaped_study() -> Study {
        // Tables 1-3 of the paper: Apache 36/7/7, GNOME 39/3/3, MySQL 38/4/2.
        let mut faults = Vec::new();
        let spec =
            [(AppKind::Apache, 36, 7, 7), (AppKind::Gnome, 39, 3, 3), (AppKind::Mysql, 38, 4, 2)];
        for (app, ei, edn, edt) in spec {
            for _ in 0..ei {
                faults.push(fault(app, FaultClass::EnvironmentIndependent));
            }
            for _ in 0..edn {
                faults.push(fault(app, FaultClass::EnvDependentNonTransient));
            }
            for _ in 0..edt {
                faults.push(fault(app, FaultClass::EnvDependentTransient));
            }
        }
        Study::from_faults(faults)
    }

    #[test]
    fn tables_match_paper() {
        let s = paper_shaped_study();
        let t1 = s.table(AppKind::Apache);
        assert_eq!((t1.independent, t1.nontransient, t1.transient), (36, 7, 7));
        let t2 = s.table(AppKind::Gnome);
        assert_eq!((t2.independent, t2.nontransient, t2.transient), (39, 3, 3));
        let t3 = s.table(AppKind::Mysql);
        assert_eq!((t3.independent, t3.nontransient, t3.transient), (38, 4, 2));
    }

    #[test]
    fn discussion_matches_section_5_4() {
        let d = paper_shaped_study().discussion();
        assert_eq!(d.total, 139);
        assert_eq!(d.nontransient.0, 14);
        assert_eq!(d.transient.0, 12);
        // "14 (10%)" and "12 (9%)"
        assert_eq!(d.nontransient.1.round() as i64, 10);
        assert_eq!(d.transient.1.round() as i64, 9);
        // "72-87% of the faults are independent of the operating environment"
        assert_eq!(d.independent_range.0.floor() as i64, 72);
        assert_eq!(d.independent_range.1.floor() as i64, 86); // 39/45 = 86.7%
        assert_eq!(d.independent_range.1.round() as i64, 87);
    }

    #[test]
    fn empty_study_is_all_zeroes() {
        let s = Study::from_faults(Vec::new());
        assert_eq!(s.total(), 0);
        assert_eq!(s.table(AppKind::Apache), ClassCounts::default());
        let d = s.discussion();
        assert_eq!(d.total, 0);
        assert_eq!(d.independent_range, (0.0, 0.0));
        assert_eq!(d.transient.1, 0.0);
    }

    #[test]
    fn percent_and_display() {
        let mut c = ClassCounts::default();
        for _ in 0..3 {
            c.bump(FaultClass::EnvironmentIndependent);
        }
        c.bump(FaultClass::EnvDependentTransient);
        assert_eq!(c.percent(FaultClass::EnvironmentIndependent), 75.0);
        assert_eq!(c.percent(FaultClass::EnvDependentTransient), 25.0);
        assert_eq!(c.percent(FaultClass::EnvDependentNonTransient), 0.0);
        assert_eq!(c.to_string(), "EI 3 / EDN 0 / EDT 1 (total 4)");
    }

    #[test]
    fn faults_of_filters_by_app() {
        let s = paper_shaped_study();
        assert_eq!(s.faults_of(AppKind::Apache).count(), 50);
        assert_eq!(s.faults_of(AppKind::Gnome).count(), 45);
        assert_eq!(s.faults_of(AppKind::Mysql).count(), 44);
        assert_eq!(s.faults().len(), 139);
    }

    #[test]
    fn combined_sums_apps() {
        let s = paper_shaped_study();
        let c = s.combined();
        assert_eq!(c.independent, 113);
        assert_eq!(c.nontransient, 14);
        assert_eq!(c.transient, 12);
    }
}
