//! Flat, cache-friendly storage for bug-report collections.
//!
//! A materialized `Vec<BugReport>` scatters every title, body,
//! how-to-repeat, note, and version string into its own heap allocation;
//! scanning a paper-scale archive (44,000 MySQL messages) then chases
//! five pointers per report and touches as many allocator headers.
//! [`ReportColumns`] stores the same data struct-of-arrays: one
//! contiguous UTF-8 arena holds every text field back to back in archive
//! order, each field is a column of [`Span`]s — `(offset, len)` pairs
//! into the arena — and the fixed-width metadata (severity, production
//! flag, filing month, …) lives in plain parallel columns. Funnel
//! predicates that only look at one column (the §4 high-impact and
//! production-version filters) walk a dense array instead of striding
//! through whole reports, and the keyword scan reads the arena
//! sequentially.
//!
//! The layout is lossless: [`ReportColumns::materialize`] reconstructs
//! the exact [`BugReport`] that was pushed.

use crate::report::{BugReport, ReportSource, Status, YearMonth};
use crate::taxonomy::{AppKind, Severity};
use serde::{Deserialize, Serialize};

/// A byte range into the shared text arena of a [`ReportColumns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    offset: u32,
    len: u32,
}

impl Span {
    fn slice<'a>(&self, arena: &'a str) -> &'a str {
        &arena[self.offset as usize..self.offset as usize + self.len as usize]
    }
}

/// Struct-of-arrays bug-report storage: a contiguous text arena plus one
/// column per field.
///
/// # Example
///
/// ```
/// use faultstudy_core::flat::ReportColumns;
/// use faultstudy_core::report::BugReport;
/// use faultstudy_core::taxonomy::AppKind;
///
/// let report = BugReport::builder(AppKind::Mysql, 7).title("server crashed").build();
/// let mut columns = ReportColumns::new();
/// columns.push(&report);
/// assert_eq!(columns.title(0), "server crashed");
/// assert_eq!(columns.materialize(0), report);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportColumns {
    /// Every text field of every report, back to back in push order.
    text: String,
    app: Vec<AppKind>,
    id: Vec<u64>,
    title: Vec<Span>,
    body: Vec<Span>,
    how_to_repeat: Vec<Span>,
    developer_notes: Vec<Span>,
    version: Vec<Span>,
    severity: Vec<Severity>,
    status: Vec<Status>,
    production: Vec<bool>,
    filed: Vec<YearMonth>,
    source: Vec<ReportSource>,
    duplicate_of: Vec<Option<u64>>,
}

impl ReportColumns {
    /// An empty column set.
    pub fn new() -> ReportColumns {
        ReportColumns::default()
    }

    /// An empty column set sized for `reports` rows and `text_bytes` of
    /// arena.
    pub fn with_capacity(reports: usize, text_bytes: usize) -> ReportColumns {
        ReportColumns {
            text: String::with_capacity(text_bytes),
            app: Vec::with_capacity(reports),
            id: Vec::with_capacity(reports),
            title: Vec::with_capacity(reports),
            body: Vec::with_capacity(reports),
            how_to_repeat: Vec::with_capacity(reports),
            developer_notes: Vec::with_capacity(reports),
            version: Vec::with_capacity(reports),
            severity: Vec::with_capacity(reports),
            status: Vec::with_capacity(reports),
            production: Vec::with_capacity(reports),
            filed: Vec::with_capacity(reports),
            source: Vec::with_capacity(reports),
            duplicate_of: Vec::with_capacity(reports),
        }
    }

    /// Flattens `reports` into columns, sizing the arena up front.
    pub fn from_reports<'a, I>(reports: I) -> ReportColumns
    where
        I: IntoIterator<Item = &'a BugReport>,
        I::IntoIter: Clone,
    {
        let iter = reports.into_iter();
        let (rows, bytes) = iter.clone().fold((0usize, 0usize), |(rows, bytes), r| {
            (
                rows + 1,
                bytes
                    + r.title.len()
                    + r.body.len()
                    + r.how_to_repeat.len()
                    + r.developer_notes.len()
                    + r.version.len(),
            )
        });
        let mut columns = ReportColumns::with_capacity(rows, bytes);
        for report in iter {
            columns.push(report);
        }
        columns
    }

    /// Appends one report as a new row, copying its text into the arena.
    ///
    /// # Panics
    ///
    /// Panics if the arena would exceed `u32::MAX` bytes (spans are
    /// 32-bit).
    pub fn push(&mut self, report: &BugReport) {
        let title = self.intern(&report.title);
        let body = self.intern(&report.body);
        let how_to_repeat = self.intern(&report.how_to_repeat);
        let developer_notes = self.intern(&report.developer_notes);
        let version = self.intern(&report.version);
        self.app.push(report.app);
        self.id.push(report.id);
        self.title.push(title);
        self.body.push(body);
        self.how_to_repeat.push(how_to_repeat);
        self.developer_notes.push(developer_notes);
        self.version.push(version);
        self.severity.push(report.severity);
        self.status.push(report.status);
        self.production.push(report.on_production_version);
        self.filed.push(report.filed);
        self.source.push(report.source);
        self.duplicate_of.push(report.duplicate_of);
    }

    fn intern(&mut self, field: &str) -> Span {
        let offset = self.text.len();
        assert!(
            offset + field.len() <= u32::MAX as usize,
            "text arena exceeds the 32-bit span range"
        );
        self.text.push_str(field);
        Span { offset: offset as u32, len: field.len() as u32 }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Total bytes of text held by the arena.
    pub fn arena_len(&self) -> usize {
        self.text.len()
    }

    /// One row as a lightweight view.
    pub fn row(&self, index: usize) -> ReportRow<'_> {
        assert!(index < self.len(), "row {index} out of bounds ({} rows)", self.len());
        ReportRow { columns: self, index }
    }

    /// Iterates over all rows in archive order.
    pub fn iter(&self) -> impl Iterator<Item = ReportRow<'_>> {
        (0..self.len()).map(move |index| ReportRow { columns: self, index })
    }

    /// Application column.
    pub fn app(&self, index: usize) -> AppKind {
        self.app[index]
    }

    /// Archive-id column.
    pub fn id(&self, index: usize) -> u64 {
        self.id[index]
    }

    /// Title text of one row.
    pub fn title(&self, index: usize) -> &str {
        self.title[index].slice(&self.text)
    }

    /// Body text of one row.
    pub fn body(&self, index: usize) -> &str {
        self.body[index].slice(&self.text)
    }

    /// How-To-Repeat text of one row.
    pub fn how_to_repeat(&self, index: usize) -> &str {
        self.how_to_repeat[index].slice(&self.text)
    }

    /// Developer-notes text of one row.
    pub fn developer_notes(&self, index: usize) -> &str {
        self.developer_notes[index].slice(&self.text)
    }

    /// Version string of one row.
    pub fn version(&self, index: usize) -> &str {
        self.version[index].slice(&self.text)
    }

    /// Severity column.
    pub fn severity(&self, index: usize) -> Severity {
        self.severity[index]
    }

    /// Lifecycle-status column.
    pub fn status(&self, index: usize) -> Status {
        self.status[index]
    }

    /// Production-version column.
    pub fn production(&self, index: usize) -> bool {
        self.production[index]
    }

    /// Filing-month column.
    pub fn filed(&self, index: usize) -> YearMonth {
        self.filed[index]
    }

    /// Report-source column.
    pub fn source(&self, index: usize) -> ReportSource {
        self.source[index]
    }

    /// Duplicate-link column.
    pub fn duplicate_of(&self, index: usize) -> Option<u64> {
        self.duplicate_of[index]
    }

    /// The searchable text of one row, in [`BugReport::full_text`] field
    /// order, as borrowed segments — the input shape of the shared
    /// automaton's segment scan.
    pub fn text_segments(&self, index: usize) -> [&str; 4] {
        [
            self.title(index),
            self.body(index),
            self.how_to_repeat(index),
            self.developer_notes(index),
        ]
    }

    /// Whether the §4 selection keeps row `index`; column-only form of
    /// [`BugReport::passes_selection`].
    pub fn passes_selection(&self, index: usize) -> bool {
        self.severity[index].is_high_impact()
            && self.production[index]
            && self.duplicate_of[index].is_none()
    }

    /// Reconstructs the full owned report of one row.
    pub fn materialize(&self, index: usize) -> BugReport {
        BugReport {
            app: self.app[index],
            id: self.id[index],
            title: self.title(index).to_owned(),
            body: self.body(index).to_owned(),
            how_to_repeat: self.how_to_repeat(index).to_owned(),
            developer_notes: self.developer_notes(index).to_owned(),
            severity: self.severity[index],
            status: self.status[index],
            version: self.version(index).to_owned(),
            on_production_version: self.production[index],
            filed: self.filed[index],
            source: self.source[index],
            duplicate_of: self.duplicate_of[index],
        }
    }
}

/// A borrowed view of one [`ReportColumns`] row.
#[derive(Debug, Clone, Copy)]
pub struct ReportRow<'a> {
    columns: &'a ReportColumns,
    index: usize,
}

impl<'a> ReportRow<'a> {
    /// Row position in the column set.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Application the report is filed against.
    pub fn app(&self) -> AppKind {
        self.columns.app(self.index)
    }

    /// Archive-assigned identifier.
    pub fn id(&self) -> u64 {
        self.columns.id(self.index)
    }

    /// One-line summary.
    pub fn title(&self) -> &'a str {
        self.columns.title(self.index)
    }

    /// Free-form problem description.
    pub fn body(&self) -> &'a str {
        self.columns.body(self.index)
    }

    /// The How-To-Repeat field.
    pub fn how_to_repeat(&self) -> &'a str {
        self.columns.how_to_repeat(self.index)
    }

    /// Developer comments.
    pub fn developer_notes(&self) -> &'a str {
        self.columns.developer_notes(self.index)
    }

    /// Version string.
    pub fn version(&self) -> &'a str {
        self.columns.version(self.index)
    }

    /// Reporter-assigned severity.
    pub fn severity(&self) -> Severity {
        self.columns.severity(self.index)
    }

    /// Lifecycle status.
    pub fn status(&self) -> Status {
        self.columns.status(self.index)
    }

    /// Whether the reported version is a production release.
    pub fn on_production_version(&self) -> bool {
        self.columns.production(self.index)
    }

    /// When the report was filed.
    pub fn filed(&self) -> YearMonth {
        self.columns.filed(self.index)
    }

    /// Where the report came from.
    pub fn source(&self) -> ReportSource {
        self.columns.source(self.index)
    }

    /// Duplicate link, if any.
    pub fn duplicate_of(&self) -> Option<u64> {
        self.columns.duplicate_of(self.index)
    }

    /// Searchable text segments in `full_text` order.
    pub fn text_segments(&self) -> [&'a str; 4] {
        self.columns.text_segments(self.index)
    }

    /// Whether the §4 selection keeps this report.
    pub fn passes_selection(&self) -> bool {
        self.columns.passes_selection(self.index)
    }

    /// Reconstructs the full owned report.
    pub fn materialize(&self) -> BugReport {
        self.columns.materialize(self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(id: u64) -> BugReport {
        BugReport::builder(AppKind::Mysql, id)
            .title(format!("server crashed {id}"))
            .body("segfault in optimizer")
            .how_to_repeat("OPTIMIZE TABLE t")
            .developer_notes("missing initialization")
            .version("3.22.20", true)
            .severity(Severity::Critical)
            .status(Status::Fixed)
            .filed(YearMonth::new(1999, 4))
            .source(ReportSource::MailingList)
            .build()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let reports = vec![sample(1), sample(2), {
            let mut r = sample(3);
            r.duplicate_of = Some(1);
            r.on_production_version = false;
            r
        }];
        let columns = ReportColumns::from_reports(&reports);
        assert_eq!(columns.len(), 3);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(&columns.materialize(i), r, "row {i}");
            assert_eq!(columns.passes_selection(i), r.passes_selection(), "row {i}");
        }
    }

    #[test]
    fn arena_is_contiguous_and_sized_exactly() {
        let reports = vec![sample(1), sample(2)];
        let columns = ReportColumns::from_reports(&reports);
        let expected: usize = reports
            .iter()
            .map(|r| {
                r.title.len()
                    + r.body.len()
                    + r.how_to_repeat.len()
                    + r.developer_notes.len()
                    + r.version.len()
            })
            .sum();
        assert_eq!(columns.arena_len(), expected);
    }

    #[test]
    fn segments_match_full_text_field_order() {
        let r = sample(9);
        let columns = ReportColumns::from_reports(std::iter::once(&r));
        let segments = columns.text_segments(0);
        assert_eq!(segments.join("\n"), r.full_text());
    }

    #[test]
    fn rows_view_every_column() {
        let r = sample(5);
        let columns = ReportColumns::from_reports(std::iter::once(&r));
        let row = columns.row(0);
        assert_eq!(row.id(), 5);
        assert_eq!(row.app(), AppKind::Mysql);
        assert_eq!(row.title(), "server crashed 5");
        assert_eq!(row.version(), "3.22.20");
        assert_eq!(row.severity(), Severity::Critical);
        assert_eq!(row.status(), Status::Fixed);
        assert!(row.on_production_version());
        assert_eq!(row.filed(), YearMonth::new(1999, 4));
        assert_eq!(row.source(), ReportSource::MailingList);
        assert_eq!(row.duplicate_of(), None);
        assert_eq!(columns.iter().count(), 1);
    }

    #[test]
    fn empty_fields_are_empty_slices() {
        let r = BugReport::builder(AppKind::Apache, 1).build();
        let columns = ReportColumns::from_reports(std::iter::once(&r));
        assert_eq!(columns.title(0), "");
        assert_eq!(columns.body(0), "");
        assert_eq!(columns.version(0), "");
        assert_eq!(columns.materialize(0), r);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_row_panics() {
        ReportColumns::new().row(0);
    }
}
