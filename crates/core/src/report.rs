//! The bug-report data model of §4.
//!
//! The paper's primary data source is "the on-line bug reports that are
//! maintained for open-source software", each containing symptoms, results,
//! the environment and workload inducing the fault, the fix, and — "a key
//! field in all the bug reports we study" — the **How-To-Repeat** field.
//! [`BugReport`] carries all of those, plus the selection metadata
//! (severity, production version, duplicate link) that the §4 funnel
//! filters on.

use crate::taxonomy::{AppKind, Severity};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a report came from (§4 uses three different archive styles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportSource {
    /// A structured bug tracker (Apache's bugs.apache.org).
    Tracker,
    /// A debbugs-style tracker plus CVS history (GNOME).
    Debbugs,
    /// A mailing-list archive searched by keyword (MySQL).
    MailingList,
}

impl fmt::Display for ReportSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReportSource::Tracker => "bug tracker",
            ReportSource::Debbugs => "debbugs",
            ReportSource::MailingList => "mailing list",
        };
        f.write_str(s)
    }
}

/// Lifecycle status of a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Newly filed, unconfirmed.
    Open,
    /// Confirmed by a developer.
    Confirmed,
    /// Fixed in the source tree.
    Fixed,
    /// Closed without a fix (works-for-me, invalid, …).
    Closed,
}

/// A calendar month, the granularity of the GNOME timeline (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct YearMonth {
    /// Four-digit year.
    pub year: u16,
    /// Month, 1–12.
    pub month: u8,
}

impl YearMonth {
    /// Creates a year-month.
    ///
    /// # Panics
    ///
    /// Panics if `month` is outside 1–12.
    pub fn new(year: u16, month: u8) -> Self {
        assert!((1..=12).contains(&month), "month must be 1-12, got {month}");
        YearMonth { year, month }
    }

    /// Months elapsed since year 0, for bucket arithmetic.
    pub fn index(self) -> u32 {
        u32::from(self.year) * 12 + u32::from(self.month) - 1
    }

    /// The month `n` months after `self`.
    pub fn plus_months(self, n: u32) -> YearMonth {
        let idx = self.index() + n;
        YearMonth { year: (idx / 12) as u16, month: (idx % 12 + 1) as u8 }
    }
}

impl fmt::Display for YearMonth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

/// One bug report as mined from an archive.
///
/// Construct with [`BugReport::builder`]; the only mandatory inputs are the
/// application and the report id.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BugReport {
    /// Application the report is filed against.
    pub app: AppKind,
    /// Archive-assigned identifier.
    pub id: u64,
    /// One-line summary.
    pub title: String,
    /// Free-form problem description (symptoms, results).
    pub body: String,
    /// The "How-To-Repeat" field: workload and environment that induce the
    /// fault. The paper's key classification input.
    pub how_to_repeat: String,
    /// Developer comments, including how the bug was fixed and whether the
    /// failure could be repeated on the development machines.
    pub developer_notes: String,
    /// Reporter-assigned severity.
    pub severity: Severity,
    /// Lifecycle status.
    pub status: Status,
    /// Version string the report was filed against.
    pub version: String,
    /// Whether that version is a production (non-beta) release. The §4
    /// funnel keeps only production-version reports.
    pub on_production_version: bool,
    /// When the report was filed.
    pub filed: YearMonth,
    /// Where the report came from.
    pub source: ReportSource,
    /// If this report duplicates an earlier one, the earlier id.
    pub duplicate_of: Option<u64>,
}

impl BugReport {
    /// Starts building a report for `app` with archive id `id`.
    pub fn builder(app: AppKind, id: u64) -> BugReportBuilder {
        BugReportBuilder {
            report: BugReport {
                app,
                id,
                title: String::new(),
                body: String::new(),
                how_to_repeat: String::new(),
                developer_notes: String::new(),
                severity: Severity::Major,
                status: Status::Open,
                version: String::new(),
                on_production_version: true,
                filed: YearMonth::new(1999, 1),
                source: ReportSource::Tracker,
                duplicate_of: None,
            },
        }
    }

    /// All searchable text of the report, concatenated in field order.
    /// The §4 keyword search and the evidence extractor operate on this.
    pub fn full_text(&self) -> String {
        let mut s = String::with_capacity(
            self.title.len()
                + self.body.len()
                + self.how_to_repeat.len()
                + self.developer_notes.len()
                + 3,
        );
        s.push_str(&self.title);
        s.push('\n');
        s.push_str(&self.body);
        s.push('\n');
        s.push_str(&self.how_to_repeat);
        s.push('\n');
        s.push_str(&self.developer_notes);
        s
    }

    /// Whether the §4 selection keeps this report: high impact, filed
    /// against a production version, and not a duplicate.
    pub fn passes_selection(&self) -> bool {
        self.severity.is_high_impact() && self.on_production_version && self.duplicate_of.is_none()
    }
}

/// Builder for [`BugReport`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct BugReportBuilder {
    report: BugReport,
}

impl BugReportBuilder {
    /// Sets the one-line summary.
    pub fn title(mut self, t: impl Into<String>) -> Self {
        self.report.title = t.into();
        self
    }

    /// Sets the problem description.
    pub fn body(mut self, b: impl Into<String>) -> Self {
        self.report.body = b.into();
        self
    }

    /// Sets the How-To-Repeat field.
    pub fn how_to_repeat(mut self, h: impl Into<String>) -> Self {
        self.report.how_to_repeat = h.into();
        self
    }

    /// Sets the developer comments / fix description.
    pub fn developer_notes(mut self, n: impl Into<String>) -> Self {
        self.report.developer_notes = n.into();
        self
    }

    /// Sets the severity.
    pub fn severity(mut self, s: Severity) -> Self {
        self.report.severity = s;
        self
    }

    /// Sets the lifecycle status.
    pub fn status(mut self, s: Status) -> Self {
        self.report.status = s;
        self
    }

    /// Sets the version string and whether it is a production release.
    pub fn version(mut self, v: impl Into<String>, production: bool) -> Self {
        self.report.version = v.into();
        self.report.on_production_version = production;
        self
    }

    /// Sets the filing month.
    pub fn filed(mut self, ym: YearMonth) -> Self {
        self.report.filed = ym;
        self
    }

    /// Sets the archive style.
    pub fn source(mut self, s: ReportSource) -> Self {
        self.report.source = s;
        self
    }

    /// Marks this report as a duplicate of `id`.
    pub fn duplicate_of(mut self, id: u64) -> Self {
        self.report.duplicate_of = Some(id);
        self
    }

    /// Finishes the report.
    pub fn build(self) -> BugReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BugReportBuilder {
        BugReport::builder(AppKind::Mysql, 7).title("server crashed").severity(Severity::Critical)
    }

    #[test]
    fn builder_fills_fields() {
        let r = base()
            .body("segfault in optimizer")
            .how_to_repeat("OPTIMIZE TABLE t")
            .developer_notes("missing initialization; fixed in 3.22.21")
            .status(Status::Fixed)
            .version("3.22.20", true)
            .filed(YearMonth::new(1999, 4))
            .source(ReportSource::MailingList)
            .build();
        assert_eq!(r.app, AppKind::Mysql);
        assert_eq!(r.id, 7);
        assert_eq!(r.version, "3.22.20");
        assert_eq!(r.status, Status::Fixed);
        assert_eq!(r.source, ReportSource::MailingList);
        assert!(r.passes_selection());
    }

    #[test]
    fn full_text_concatenates_every_field() {
        let r = base().body("BODY").how_to_repeat("REPEAT").developer_notes("NOTES").build();
        let t = r.full_text();
        for needle in ["server crashed", "BODY", "REPEAT", "NOTES"] {
            assert!(t.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn selection_rejects_low_impact_beta_and_duplicates() {
        assert!(!base().severity(Severity::Minor).build().passes_selection());
        assert!(!base().version("2.0b1", false).build().passes_selection());
        assert!(!base().duplicate_of(3).build().passes_selection());
        assert!(base().build().passes_selection());
    }

    #[test]
    fn year_month_ordering_and_arithmetic() {
        let a = YearMonth::new(1998, 12);
        let b = YearMonth::new(1999, 1);
        assert!(a < b);
        assert_eq!(a.plus_months(1), b);
        assert_eq!(b.plus_months(12), YearMonth::new(2000, 1));
        assert_eq!(b.index() - a.index(), 1);
        assert_eq!(b.to_string(), "1999-01");
    }

    #[test]
    #[should_panic(expected = "month must be 1-12")]
    fn bad_month_rejected() {
        YearMonth::new(1999, 13);
    }

    #[test]
    fn source_display() {
        assert_eq!(ReportSource::Tracker.to_string(), "bug tracker");
        assert_eq!(ReportSource::MailingList.to_string(), "mailing list");
    }
}
