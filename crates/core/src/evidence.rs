//! Structured classification evidence extracted from bug reports.
//!
//! The paper classifies "using information contained in the bug reports and
//! source code" — chiefly the How-To-Repeat field and the developers'
//! comments on whether they could repeat the failure (§4). [`Evidence`] is
//! that information in structured form: the environmental conditions the
//! text names, whether reproduction is reported as deterministic, and
//! whether the reporter observed success on retry.

use crate::lexicon::conditions_in_naive;
use crate::report::BugReport;
use faultstudy_env::condition::ConditionKind;
use serde::{Deserialize, Serialize};

/// Cues that a failure reproduces deterministically.
///
/// Public so [`crate::scanset`] can register them with the shared
/// automaton; treat as read-only data.
pub const DETERMINISTIC_CUES: &[&str] = &[
    "every time",
    "each time",
    "always crashes",
    "always fails",
    "always dies",
    "100% reproducible",
    "fully reproducible",
    "reproducible",
    "repeatable",
    "whenever",
];

/// Cues that reproduction is flaky or impossible. Public for
/// [`crate::scanset`]; treat as read-only data.
pub const NONDETERMINISTIC_CUES: &[&str] = &[
    "sometimes",
    "occasionally",
    "intermittent",
    "at random",
    "randomly",
    "once in a while",
    "cannot reproduce",
    "could not reproduce",
    "can't reproduce",
    "not reproducible",
    "hard to reproduce",
    "unable to repeat",
];

/// Cues that the operation succeeded when simply retried. Public for
/// [`crate::scanset`]; treat as read-only data.
pub const RETRY_SUCCESS_CUES: &[&str] = &[
    "works on a retry",
    "works on retry",
    "works after retry",
    "succeeds on retry",
    "second attempt works",
    "worked the second time",
    "works after restarting",
];

/// The structured facts a classifier needs about one fault.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Evidence {
    /// Environmental conditions the report names, sorted and deduplicated.
    pub conditions: Vec<ConditionKind>,
    /// `Some(true)` if the text claims deterministic reproduction,
    /// `Some(false)` if it claims flaky/impossible reproduction, `None` if
    /// it is silent.
    pub deterministic_repro: Option<bool>,
    /// Whether the reporter observed the operation succeed on a plain retry.
    pub retry_succeeded: bool,
}

impl Evidence {
    /// Extracts evidence from a report's full text.
    ///
    /// # Example
    ///
    /// ```
    /// use faultstudy_core::evidence::Evidence;
    /// use faultstudy_core::report::BugReport;
    /// use faultstudy_core::taxonomy::AppKind;
    ///
    /// let r = BugReport::builder(AppKind::Apache, 1)
    ///     .how_to_repeat("fails whenever the file system is full")
    ///     .build();
    /// let ev = Evidence::extract(&r);
    /// assert_eq!(ev.conditions.len(), 1);
    /// assert_eq!(ev.deterministic_repro, Some(true));
    /// ```
    pub fn extract(report: &BugReport) -> Evidence {
        let set = crate::scanset::shared();
        Evidence::from_hits(&set.hits_report(report))
    }

    /// Extracts evidence from raw text (used by tests and by the mining
    /// pipeline, which classifies mailing-list messages that are not yet
    /// full [`BugReport`]s).
    pub fn from_text(text: &str) -> Evidence {
        let set = crate::scanset::shared();
        Evidence::from_hits(&set.hits_text(text))
    }

    /// Builds evidence from a shared-automaton scan: every lexicon rule
    /// and cue list is evaluated as a bitset probe, so callers that
    /// already hold a [`HitSet`] pay no further text traversal.
    pub fn from_hits(hits: &faultstudy_textscan::HitSet) -> Evidence {
        let set = crate::scanset::shared();
        if hits.is_empty() {
            // Nothing hit, so no cue fired; `conditions` still consults the
            // scan set, which alone knows whether a rule can hold vacuously.
            return Evidence { conditions: set.conditions(hits), ..Evidence::default() };
        }
        Evidence {
            conditions: set.conditions(hits),
            // Nondeterministic cues dominate: "crashes sometimes,
            // reproducible under load" is a flaky report.
            deterministic_repro: set.deterministic_repro(hits),
            retry_succeeded: set.retry_succeeded(hits),
        }
    }

    /// The pre-automaton reference implementation of [`Self::extract`]:
    /// concatenates [`BugReport::full_text`], lowercases it, and runs
    /// every cue and rule as an independent `contains` scan (three
    /// allocations, ~95 traversals). Ground truth for the differential
    /// tests and the naive side of the `textscan` benchmarks.
    pub fn extract_naive(report: &BugReport) -> Evidence {
        Evidence::from_text_naive(&report.full_text())
    }

    /// The pre-automaton reference implementation of [`Self::from_text`];
    /// see [`Self::extract_naive`].
    pub fn from_text_naive(text: &str) -> Evidence {
        let lower = text.to_lowercase();
        let conditions = conditions_in_naive(&lower);
        let deterministic_repro = if NONDETERMINISTIC_CUES.iter().any(|c| lower.contains(c)) {
            Some(false)
        } else if DETERMINISTIC_CUES.iter().any(|c| lower.contains(c)) {
            Some(true)
        } else {
            None
        };
        let retry_succeeded = RETRY_SUCCESS_CUES.iter().any(|c| lower.contains(c));
        Evidence { conditions, deterministic_repro, retry_succeeded }
    }

    /// Evidence naming exactly the given conditions and nothing else;
    /// convenient for constructing evidence programmatically.
    pub fn of_conditions(conditions: impl IntoIterator<Item = ConditionKind>) -> Evidence {
        let mut conditions: Vec<ConditionKind> = conditions.into_iter().collect();
        conditions.sort_unstable();
        conditions.dedup();
        Evidence { conditions, ..Evidence::default() }
    }

    /// Whether the evidence names any environmental condition.
    pub fn names_conditions(&self) -> bool {
        !self.conditions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::AppKind;

    #[test]
    fn deterministic_cue_detected() {
        let ev = Evidence::from_text("the server dies every time I send SIGHUP");
        assert_eq!(ev.deterministic_repro, Some(true));
        assert!(!ev.retry_succeeded);
    }

    #[test]
    fn nondeterministic_cue_detected_and_dominates() {
        let ev = Evidence::from_text("sometimes reproducible under heavy load");
        assert_eq!(ev.deterministic_repro, Some(false));
    }

    #[test]
    fn silence_yields_none() {
        let ev = Evidence::from_text("the server crashed");
        assert_eq!(ev.deterministic_repro, None);
    }

    #[test]
    fn retry_success_detected() {
        let ev = Evidence::from_text("unknown failure which works on a retry");
        assert!(ev.retry_succeeded);
        // The lexicon also maps this phrase to UnknownTransient.
        assert_eq!(ev.conditions, vec![ConditionKind::UnknownTransient]);
    }

    #[test]
    fn extract_reads_every_report_field() {
        let r = BugReport::builder(AppKind::Gnome, 2)
            .title("panel freeze")
            .body("desktop hangs")
            .how_to_repeat("open two applets")
            .developer_notes("race condition between the applet request and its removal")
            .build();
        let ev = Evidence::extract(&r);
        assert_eq!(ev.conditions, vec![ConditionKind::RaceCondition]);
    }

    #[test]
    fn of_conditions_sorts_and_dedups() {
        let ev = Evidence::of_conditions([
            ConditionKind::RaceCondition,
            ConditionKind::FdExhaustion,
            ConditionKind::RaceCondition,
        ]);
        assert_eq!(ev.conditions, vec![ConditionKind::FdExhaustion, ConditionKind::RaceCondition]);
        assert!(ev.names_conditions());
        assert!(!Evidence::default().names_conditions());
    }
}
