//! Property tests for the taxonomy, extractor, and classifier.

use faultstudy_core::classify::{Classifier, RecoveryAssumptions};
use faultstudy_core::evidence::Evidence;
use faultstudy_core::lexicon::conditions_in;
use faultstudy_core::report::{BugReport, YearMonth};
use faultstudy_core::study::{ClassifiedFault, Study};
use faultstudy_core::taxonomy::{AppKind, FaultClass, Severity};
use faultstudy_env::condition::ConditionKind;
use proptest::prelude::*;

fn condition_strategy() -> impl Strategy<Value = ConditionKind> {
    prop::sample::select(ConditionKind::ALL.to_vec())
}

fn app_strategy() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

fn class_strategy() -> impl Strategy<Value = FaultClass> {
    prop::sample::select(FaultClass::ALL.to_vec())
}

proptest! {
    /// Lexicon extraction is total, sorted, and deduplicated for any text.
    #[test]
    fn lexicon_output_is_canonical(text in ".{0,200}") {
        let found = conditions_in(&text);
        let mut canonical = found.clone();
        canonical.sort_unstable();
        canonical.dedup();
        prop_assert_eq!(found, canonical);
    }

    /// Extraction is case-insensitive.
    #[test]
    fn extraction_ignores_case(cond in condition_strategy()) {
        // Build a sentence from the condition's canonical trigger phrase.
        let phrase = match cond {
            ConditionKind::ResourceLeak => "an unknown resource leak",
            ConditionKind::FdExhaustion => "lack of file descriptors",
            ConditionKind::DiskCacheFull => "the disk cache gets full",
            ConditionKind::MaxFileSize => "greater than the maximum allowed file size",
            ConditionKind::FileSystemFull => "a full file system",
            ConditionKind::NetworkResourceExhausted => "network resource exhausted",
            ConditionKind::HardwareRemoved => "the pcmcia card",
            ConditionKind::HostnameChanged => "hostname was changed",
            ConditionKind::CorruptFileMetadata => "illegal value in the owner field",
            ConditionKind::ReverseDnsMissing => "reverse dns is not configured",
            ConditionKind::ProcessTableFull => "slots in the process table",
            ConditionKind::PortsHeldByChildren => "hung children hold ports",
            ConditionKind::DnsError => "dns returns an error",
            ConditionKind::DnsSlow => "slow dns response",
            ConditionKind::NetworkSlow => "slow network connection",
            ConditionKind::EntropyExhausted => "not enough entropy",
            ConditionKind::WorkloadTiming => "the user presses stop",
            ConditionKind::RaceCondition => "a race condition",
            ConditionKind::UnknownTransient => "works on a retry",
            // ConditionKind is non_exhaustive; future variants would need
            // their own phrase.
            _ => "a race condition",
        };
        let lower = conditions_in(&phrase.to_lowercase());
        let upper = conditions_in(&phrase.to_uppercase());
        prop_assert_eq!(&lower, &upper);
        prop_assert!(lower.contains(&cond), "{} not found in {:?}", cond, lower);
    }

    /// Classification never panics on arbitrary report text and always
    /// returns one of the three classes with a non-empty rationale.
    #[test]
    fn classifier_is_total_on_arbitrary_text(
        title in ".{0,80}",
        body in ".{0,200}",
        severity in prop::sample::select(vec![
            Severity::Trivial, Severity::Minor, Severity::Major,
            Severity::Severe, Severity::Critical,
        ])
    ) {
        let report = BugReport::builder(AppKind::Apache, 1)
            .title(title)
            .body(body)
            .severity(severity)
            .build();
        let verdict = Classifier::default().classify_report(&report);
        prop_assert!(FaultClass::ALL.contains(&verdict.class));
        prop_assert!(!verdict.rationale.is_empty());
    }

    /// More generous recovery assumptions never move a fault *toward*
    /// nontransient: the transient set grows monotonically.
    #[test]
    fn assumptions_are_monotone(conds in prop::collection::vec(condition_strategy(), 1..4)) {
        let base = Classifier::default();
        let generous = Classifier::with_assumptions(RecoveryAssumptions {
            storage_auto_grows: true,
            resources_garbage_collected: true,
        });
        let ev = Evidence::of_conditions(conds);
        let base_class = base.classify_evidence(&ev).class;
        let generous_class = generous.classify_evidence(&ev).class;
        if base_class == FaultClass::EnvDependentTransient {
            prop_assert_eq!(generous_class, FaultClass::EnvDependentTransient);
        }
        prop_assert_ne!(generous_class, FaultClass::EnvironmentIndependent);
    }

    /// Study aggregation is invariant under permutation of the fault list
    /// and counts every fault exactly once.
    #[test]
    fn study_is_permutation_invariant(
        spec in prop::collection::vec((app_strategy(), class_strategy()), 0..60),
        seed in any::<u64>()
    ) {
        let faults: Vec<ClassifiedFault> = spec
            .iter()
            .map(|(app, class)| ClassifiedFault {
                app: *app,
                class: *class,
                release_idx: 0,
                release: "r".into(),
                filed: YearMonth::new(1999, 1),
            })
            .collect();
        let forward = Study::from_faults(faults.clone());
        let mut shuffled = faults;
        // Deterministic Fisher-Yates from the seed.
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward = Study::from_faults(shuffled);
        prop_assert_eq!(forward.total(), spec.len() as u32);
        for app in AppKind::ALL {
            prop_assert_eq!(forward.table(app), backward.table(app));
        }
        let combined = forward.combined();
        prop_assert_eq!(
            combined.total(),
            AppKind::ALL.iter().map(|a| forward.table(*a).total()).sum::<u32>()
        );
    }

    /// Discussion percentages always sum consistently with the counts.
    #[test]
    fn discussion_percentages_are_coherent(
        spec in prop::collection::vec((app_strategy(), class_strategy()), 1..60)
    ) {
        let faults: Vec<ClassifiedFault> = spec
            .iter()
            .map(|(app, class)| ClassifiedFault {
                app: *app,
                class: *class,
                release_idx: 0,
                release: "r".into(),
                filed: YearMonth::new(1999, 1),
            })
            .collect();
        let study = Study::from_faults(faults);
        let d = study.discussion();
        prop_assert!(d.nontransient.1 >= 0.0 && d.nontransient.1 <= 100.0);
        prop_assert!(d.transient.1 >= 0.0 && d.transient.1 <= 100.0);
        prop_assert!(d.independent_range.0 <= d.independent_range.1);
        let recomputed = f64::from(study.combined().nontransient) * 100.0 / f64::from(d.total);
        prop_assert!((d.nontransient.1 - recomputed).abs() < 1e-9);
    }

    /// YearMonth arithmetic: plus_months then index difference agrees.
    #[test]
    fn year_month_arithmetic(y in 1990u16..2030, m in 1u8..13, add in 0u32..200) {
        let start = YearMonth::new(y, m);
        let end = start.plus_months(add);
        prop_assert_eq!(end.index() - start.index(), add);
        prop_assert!((1..=12).contains(&end.month));
    }
}

/// Text woven from real trigger phrases, cue words, and filler, so the
/// differential tests exercise hits, near-misses, and overlaps rather
/// than only keyword-free noise.
fn scan_text_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec![
            "the file system is full".to_owned(),
            "file system".to_owned(),
            "full".to_owned(),
            "race condition".to_owned(),
            "race".to_owned(),
            "reverse dns".to_owned(),
            "dns".to_owned(),
            "slow".to_owned(),
            "error".to_owned(),
            "sometimes".to_owned(),
            "whenever".to_owned(),
            "reproducible".to_owned(),
            "not reproducible".to_owned(),
            "works on a retry".to_owned(),
            "crash".to_owned(),
            "the daemon died".to_owned(),
            "SEGMENTATION".to_owned(),
            "perfectly ordinary words".to_owned(),
            " ".to_owned(),
            "\n".to_owned(),
            ", ".to_owned(),
        ]),
        0..10,
    )
    .prop_map(|fragments| fragments.concat())
}

proptest! {
    /// The automaton-backed `conditions_in` is bit-identical to the naive
    /// per-rule `contains` implementation on generated text.
    #[test]
    fn conditions_in_matches_naive(text in scan_text_strategy()) {
        prop_assert_eq!(
            conditions_in(&text),
            faultstudy_core::lexicon::conditions_in_naive(&text),
            "text {:?}", &text
        );
    }

    /// ... and on fully arbitrary (including non-ASCII) text, where the
    /// automaton takes its fallback path.
    #[test]
    fn conditions_in_matches_naive_on_arbitrary_text(text in ".{0,120}") {
        prop_assert_eq!(
            conditions_in(&text),
            faultstudy_core::lexicon::conditions_in_naive(&text),
            "text {:?}", &text
        );
    }

    /// Single-pass evidence extraction equals the naive three-allocation
    /// implementation, both from raw text and from a full report.
    #[test]
    fn evidence_matches_naive(
        text in scan_text_strategy(),
        title in "[a-zA-Z ]{0,30}",
    ) {
        prop_assert_eq!(Evidence::from_text(&text), Evidence::from_text_naive(&text));
        let report = BugReport::builder(AppKind::Mysql, 1)
            .title(title)
            .body(text.clone())
            .how_to_repeat("works on a retry sometimes")
            .developer_notes(text)
            .build();
        prop_assert_eq!(Evidence::extract(&report), Evidence::extract_naive(&report));
    }
}
