//! Simulated applications with injectable faults keyed to the corpus.
//!
//! The paper's future work (§8) is to "implement applications like Apache
//! and MySQL using various fault-tolerant techniques and test how well they
//! recover from the bugs reported in error logs". This crate builds that
//! testbed: three applications that run against the simulated operating
//! environment of `faultstudy-env` and expose every corpus fault as an
//! injectable defect:
//!
//! - [`miniweb`] — an Apache-like request server (URL handling, access
//!   logging with rotation, a child-process pool, CGI-ish handlers).
//! - [`minidb`] — a MySQL-like engine with a small SQL subset (CREATE,
//!   INSERT, SELECT with WHERE/ORDER BY/COUNT, UPDATE, DELETE, LOCK/FLUSH,
//!   OPTIMIZE) over tables persisted in the virtual filesystem.
//! - [`minide`] — a GNOME-like desktop shell (panel, applets, file-manager
//!   operations, property dialogs).
//!
//! Each implements [`Application`]: a checkpointable state machine driven
//! by [`Request`]s whose failures ([`AppFailure`]) the recovery strategies
//! in `faultstudy-recovery` react to. Faults are injected by corpus slug
//! ([`Application::inject`]); the application also knows the workload that
//! triggers each of its faults ([`Application::trigger_request`]), playing
//! the role of the bug report's How-To-Repeat field.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod minidb;
pub mod minide;
pub mod miniweb;
pub mod race;

pub use app::{AppFailure, AppState, Application, InjectError, Request, Response};
pub use minidb::MiniDb;
pub use minide::MiniDe;
pub use miniweb::MiniWeb;

use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::Environment;

/// Constructs the simulated application for `kind`, registered against
/// `env`.
///
/// # Example
///
/// ```
/// use faultstudy_apps::spawn_app;
/// use faultstudy_core::taxonomy::AppKind;
/// use faultstudy_env::Environment;
///
/// let mut env = Environment::builder().seed(1).build();
/// let app = spawn_app(AppKind::Mysql, &mut env);
/// assert_eq!(app.kind(), AppKind::Mysql);
/// ```
pub fn spawn_app(kind: AppKind, env: &mut Environment) -> Box<dyn Application> {
    match kind {
        AppKind::Apache => Box::new(MiniWeb::new(env)),
        AppKind::Gnome => Box::new(MiniDe::new(env)),
        AppKind::Mysql => Box::new(MiniDb::new(env)),
    }
}
