//! `MiniWeb`: the Apache-like request server.
//!
//! Implements every Apache fault family of §5.1 as an injectable defect:
//! the named environment-independent bugs (very long URL, SIGHUP handling,
//! nonexistent URL, empty directory listing) have real code paths; the
//! remaining environment-independent corpus entries are exposed through a
//! deterministic `PROBE` path (a defect that always fires on its trigger
//! request, which is all the class means). The 7 nontransient and 7
//! transient environment-dependent faults each manipulate the simulated
//! operating environment exactly as their bug reports describe.

use crate::app::{AppFailure, AppState, Application, InjectError, Request, Response};
use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::dns::Lookup;
use faultstudy_env::fs::FsError;
use faultstudy_env::host::HardwareComponent;
use faultstudy_env::network::NetError;
use faultstudy_env::{Environment, OwnerId};
use faultstudy_micro::{ComponentDesc, CrashOnly, StateKind};
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Leak units accumulated before the address space is exhausted.
const LEAK_CRASH_UNITS: u32 = 3;
/// The port the listener must be able to re-acquire.
const LISTEN_PORT: u16 = 8080;
/// Request timeout: a slower dependency means a hang.
const REQUEST_TIMEOUT: Duration = Duration::from_millis(900);
/// Entropy an SSL handshake consumes, in bits.
const SSL_ENTROPY_BITS: u64 = 256;

/// Realm strings at or beyond this length overflow the buggy formatter.
const REALM_BUFFER: usize = 256;
/// A signed-short keepalive counter wraps here.
const KEEPALIVE_WRAP: u64 = 32768;

/// The checkpointable state of the server.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct WebState {
    enabled_bugs: BTreeSet<String>,
    served: u64,
    leak_units: u32,
    cache_seq: u64,
    /// Requests on the current keep-alive connection (apache-ei-19).
    keepalive_count: u64,
}

/// The Apache-like web server.
///
/// # Example
///
/// ```
/// use faultstudy_apps::{Application, MiniWeb, Request};
/// use faultstudy_env::Environment;
///
/// let mut env = Environment::builder().seed(3).build();
/// let mut web = MiniWeb::new(&mut env);
/// let resp = web.handle(&Request::new("GET /index.html"), &mut env).unwrap();
/// assert!(resp.is_ok());
/// ```
#[derive(Debug)]
pub struct MiniWeb {
    owner: OwnerId,
    state: WebState,
}

impl MiniWeb {
    /// Creates the server, registering it as a resource owner in `env`.
    pub fn new(env: &mut Environment) -> MiniWeb {
        let owner = env.register_owner("miniweb");
        MiniWeb { owner, state: WebState::default() }
    }

    /// Requests served since start.
    pub fn served(&self) -> u64 {
        self.state.served
    }

    fn bug(&self, slug: &str) -> bool {
        self.state.enabled_bugs.contains(slug)
    }

    /// Appends to the access log; returns the fault the append manifests,
    /// if the relevant bugs are enabled.
    fn log_access(&mut self, env: &mut Environment) -> Result<(), AppFailure> {
        match env.fs.append("miniweb/access.log", 64) {
            Ok(()) => Ok(()),
            Err(FsError::FileTooLarge { .. }) if self.bug("apache-edn-04") => {
                Err(AppFailure::Crash("log write past maximum allowed file size".into()))
            }
            Err(FsError::NoSpace { .. }) if self.bug("apache-edn-05") => {
                Err(AppFailure::ErrorReturn("cannot append access log: no space".into()))
            }
            // A robust server tolerates a failed log write.
            Err(_) => Ok(()),
        }
    }

    fn serve_get(
        &mut self,
        path: &str,
        req: &Request,
        env: &mut Environment,
    ) -> Result<Response, AppFailure> {
        // --- the named environment-independent defects ---
        if self.bug("apache-ei-01") && path.len() > 1024 {
            return Err(AppFailure::Crash("segfault: overflow in the URL hash calculation".into()));
        }
        if self.bug("apache-ei-03") && path == "/nonexistent" {
            return Err(AppFailure::Crash("core dump: va_list reused in ap_log_rerror".into()));
        }
        if self.bug("apache-ei-04") && path.starts_with("/dir-empty") {
            return Err(AppFailure::Crash(
                "palloc(0) mishandled while indexing an empty directory".into(),
            ));
        }
        // apache-ei-13: a self-referential ErrorDocument loops through the
        // internal-redirect machinery; the healthy server bounds the depth.
        if path.starts_with("/error-loop") {
            // The redirect chain is pure repetition, so the outcome is
            // computed directly: the buggy build recurses until the stack
            // dies, the healthy one stops at the depth limit.
            if self.bug("apache-ei-13") {
                return Err(AppFailure::Crash(
                    "unbounded recursion through self-referential ErrorDocument".into(),
                ));
            }
            return Ok(Response::Denied("redirect loop detected".into()));
        }
        // apache-ei-26: a URI of nothing but escaped slashes collapses to
        // an empty segment list.
        if !path.is_empty() && path.chars().all(|c| c == '/') && path.len() > 1 {
            if self.bug("apache-ei-26") {
                return Err(AppFailure::Crash(
                    "empty segment list dereferenced after path collapse".into(),
                ));
            }
            return Ok(Response::Denied("degenerate path".into()));
        }

        // --- environment-dependent paths ---
        match path {
            "/burst" if self.bug("apache-edn-01") => {
                self.state.leak_units += 1;
                if self.state.leak_units >= LEAK_CRASH_UNITS {
                    return Err(AppFailure::Crash(
                        "address space exhausted by leaked allocations".into(),
                    ));
                }
            }
            "/file" => match env.fds.open(self.owner) {
                Ok(fd) => {
                    let _ = env.fds.close(fd);
                }
                Err(_) if self.bug("apache-edn-02") => {
                    return Err(AppFailure::Crash(
                        "unchecked open failure: out of file descriptors".into(),
                    ));
                }
                Err(_) => return Ok(Response::Denied("try again later".into())),
            },
            "/cached" => {
                self.state.cache_seq += 1;
                let name = format!("miniweb/cache/tmp{}", self.state.cache_seq);
                match env.fs.write(name, 1024) {
                    Ok(()) => {}
                    Err(FsError::NoSpace { .. }) if self.bug("apache-edn-03") => {
                        return Err(AppFailure::ErrorReturn(
                            "disk cache full: cannot store temporary file".into(),
                        ));
                    }
                    Err(_) => return Ok(Response::Denied("cache unavailable".into())),
                }
            }
            "/keepalive" => match env.net.consume_resource(8) {
                Ok(()) => {}
                Err(NetError::ResourceExhausted) if self.bug("apache-edn-06") => {
                    return Err(AppFailure::ErrorReturn("network resource exhausted".into()));
                }
                Err(_) => return Ok(Response::Denied("connection refused".into())),
            },
            "/remote" => {
                if !env.host.hardware_present(HardwareComponent::PcmciaNic)
                    && self.bug("apache-edn-07")
                {
                    return Err(AppFailure::Crash(
                        "network interface vanished beneath the listener".into(),
                    ));
                }
                match env.net.rtt_at(env.now()) {
                    Ok(rtt) if rtt > REQUEST_TIMEOUT && self.bug("apache-edt-06") => {
                        return Err(AppFailure::Hang("upstream fetch timed out".into()));
                    }
                    Ok(_) => {}
                    Err(NetError::LinkDown) if self.bug("apache-edn-07") => {
                        return Err(AppFailure::Crash("send on downed link".into()));
                    }
                    Err(_) => return Ok(Response::Denied("link unavailable".into())),
                }
            }
            "/download" if req.timing_event && self.bug("apache-edt-03") => {
                return Err(AppFailure::Crash(
                    "client pressed stop mid-download; abort path corrupts the pool".into(),
                ));
            }
            _ => {}
        }

        self.log_access(env)?;
        self.state.served += 1;
        Ok(Response::Ok(format!("200 OK {path}")))
    }

    fn resolve(&mut self, host: &str, env: &mut Environment) -> Result<Response, AppFailure> {
        match env.dns.resolve(host, env.now()) {
            Lookup::Resolved { latency, .. } => {
                if latency > REQUEST_TIMEOUT && self.bug("apache-edt-05") {
                    return Err(AppFailure::Hang("request stalled on slow DNS".into()));
                }
                self.state.served += 1;
                Ok(Response::Ok(format!("resolved {host}")))
            }
            Lookup::ServerError if self.bug("apache-edt-01") => {
                Err(AppFailure::Crash("unchecked DNS error dereferenced".into()))
            }
            Lookup::ServerError | Lookup::NoRecord => {
                Ok(Response::Denied(format!("cannot resolve {host}")))
            }
        }
    }

    fn spawn_child(&mut self, env: &mut Environment) -> Result<Response, AppFailure> {
        match env.procs.spawn(self.owner) {
            Ok(pid) => {
                // The CGI child does its work and is reaped immediately.
                let _ = env.procs.kill(pid);
                self.state.served += 1;
                Ok(Response::Ok("cgi done".into()))
            }
            Err(_) if self.bug("apache-edt-02") => {
                Err(AppFailure::Hang("cannot fork: process table full".into()))
            }
            Err(_) => Ok(Response::Denied("server busy".into())),
        }
    }

    fn bind_listener(&mut self, env: &mut Environment) -> Result<Response, AppFailure> {
        if env.procs.port_held(LISTEN_PORT) {
            if self.bug("apache-edt-04") {
                return Err(AppFailure::ErrorReturn(
                    "bind: address in use (port held by hung child)".into(),
                ));
            }
            return Ok(Response::Denied("listener busy".into()));
        }
        self.state.served += 1;
        Ok(Response::Ok("listener bound".into()))
    }

    fn ssl_handshake(&mut self, env: &mut Environment) -> Result<Response, AppFailure> {
        let now = env.now();
        match env.entropy.read(SSL_ENTROPY_BITS, now) {
            Ok(()) => {
                self.state.served += 1;
                Ok(Response::Ok("handshake complete".into()))
            }
            Err(_) if self.bug("apache-edt-07") => {
                Err(AppFailure::Hang("blocked reading /dev/random".into()))
            }
            Err(_) => Ok(Response::Denied("ssl unavailable".into())),
        }
    }

    /// Graceful restart on SIGHUP: Apache's application-specific
    /// rejuvenation hook (§6.2). Kills the server's children (reclaiming
    /// slots and ports) and releases leaked allocations. With
    /// `apache-ei-02` injected, the signal handler itself is the bug.
    fn sighup(&mut self, env: &mut Environment) -> Result<Response, AppFailure> {
        if self.bug("apache-ei-02") {
            return Err(AppFailure::Crash("SIGHUP terminates instead of restarting".into()));
        }
        let killed = env.procs.kill_all_of(self.owner);
        self.state.leak_units = 0;
        Ok(Response::Ok(format!("rejuvenated: {killed} children reaped")))
    }
}

impl Application for MiniWeb {
    fn kind(&self) -> AppKind {
        AppKind::Apache
    }

    fn owner(&self) -> OwnerId {
        self.owner
    }

    fn handle(&mut self, req: &Request, env: &mut Environment) -> Result<Response, AppFailure> {
        let body = req.body.as_str();
        if let Some(slug) = body.strip_prefix("PROBE ") {
            return if self.bug(slug) {
                Err(AppFailure::Crash(format!("deterministic defect {slug} triggered")))
            } else {
                self.state.served += 1;
                Ok(Response::Ok("probe passed".into()))
            };
        }
        if let Some(host) = body.strip_prefix("RESOLVE ") {
            return self.resolve(host, env);
        }
        if let Some(path) = body.strip_prefix("GET ") {
            return self.serve_get(path, req, env);
        }
        // apache-ei-32: the WWW-Authenticate assembler copies the realm
        // into a fixed 256-byte frame including the quotes.
        if let Some(realm) = body.strip_prefix("AUTH ") {
            if realm.len() + 2 > REALM_BUFFER {
                if self.bug("apache-ei-32") {
                    return Err(AppFailure::Crash(
                        "stack buffer overrun assembling WWW-Authenticate".into(),
                    ));
                }
                return Ok(Response::Denied("realm too long".into()));
            }
            self.state.served += 1;
            return Ok(Response::Ok(format!("401 realm={realm}")));
        }
        // apache-ei-19: `n` pipelined requests on one keep-alive
        // connection; the buggy per-connection counter is a signed short.
        if let Some(n) = body.strip_prefix("KEEPALIVE ") {
            let Ok(n) = n.trim().parse::<u64>() else {
                return Ok(Response::Denied("bad keepalive count".into()));
            };
            self.state.keepalive_count += n;
            if self.state.keepalive_count >= KEEPALIVE_WRAP {
                if self.bug("apache-ei-19") {
                    return Err(AppFailure::Crash(
                        "keepalive counter wrapped; scoreboard update took a bus error".into(),
                    ));
                }
                // A healthy server closes and reopens the connection.
                self.state.keepalive_count = 0;
            }
            self.state.served += 1;
            return Ok(Response::Ok(format!("served {n} pipelined requests")));
        }
        match body {
            "HUP" => self.sighup(env),
            "SPAWN" => self.spawn_child(env),
            "BIND" => self.bind_listener(env),
            "SSL" => self.ssl_handshake(env),
            _ => Ok(Response::Denied(format!("400 bad request: {body}"))),
        }
    }

    fn snapshot(&self) -> AppState {
        AppState::encode(&self.state)
    }

    fn restore(&mut self, state: &AppState) {
        self.state = state.decode();
    }

    fn inject(&mut self, slug: &str, env: &mut Environment) -> Result<(), InjectError> {
        let now = env.now();
        match slug {
            // Environment-independent defects need no environment setup.
            s if s.starts_with("apache-ei-") => {}
            "apache-edn-01" => {} // the leak lives in application state
            "apache-edn-02" => {
                // The server has leaked descriptors until none remain.
                env.fds.exhaust_as(self.owner);
            }
            "apache-edn-03" | "apache-edn-05" => {
                env.fs.fill_with_ballast();
            }
            "apache-edn-04" => {
                let max = env.fs.max_file_size();
                env.fs
                    .write("miniweb/access.log", max)
                    .expect("log can grow to the per-file limit");
            }
            "apache-edn-06" => {
                let free = env.net.resource_free();
                env.net.consume_resource(free).expect("draining free units succeeds");
            }
            "apache-edn-07" => {
                env.host.remove_hardware(HardwareComponent::PcmciaNic);
            }
            "apache-edt-01" => {
                env.dns.set_health(
                    faultstudy_env::dns::DnsHealth::Erroring,
                    now + Duration::from_secs(2),
                );
            }
            "apache-edt-02" => {
                // Hung children from peak load fill the process table.
                let pids: Vec<_> =
                    std::iter::from_fn(|| env.procs.spawn(self.owner).ok()).collect();
                for pid in pids {
                    env.procs.hang(pid).expect("fresh child exists");
                }
            }
            "apache-edt-03" => {} // purely a workload-timing fault
            "apache-edt-04" => {
                let pid = env.procs.spawn(self.owner).expect("slot for hung child");
                env.procs.bind_port(pid, LISTEN_PORT).expect("child binds");
                env.procs.hang(pid).expect("child hangs");
            }
            "apache-edt-05" => {
                env.dns
                    .set_health(faultstudy_env::dns::DnsHealth::Slow, now + Duration::from_secs(2));
            }
            "apache-edt-06" => {
                env.net.set_quality(
                    faultstudy_env::network::LinkQuality::Slow,
                    now + Duration::from_secs(2),
                );
            }
            "apache-edt-07" => {
                env.entropy.drain(now);
            }
            _ => return Err(InjectError { slug: slug.to_owned() }),
        }
        self.state.enabled_bugs.insert(slug.to_owned());
        Ok(())
    }

    fn arm_defect(&mut self, slug: &str) -> Result<(), InjectError> {
        // Arm only defects the server actually knows — anything with a
        // trigger request. Unlike `inject`, the environment is untouched:
        // the injection plan owns the environmental half of the fault.
        if self.trigger_request(slug).is_none() {
            return Err(InjectError { slug: slug.to_owned() });
        }
        self.state.enabled_bugs.insert(slug.to_owned());
        Ok(())
    }

    fn trigger_request(&self, slug: &str) -> Option<Request> {
        let req = match slug {
            "apache-ei-01" => Request::new(format!("GET /{}", "a".repeat(2000))),
            "apache-ei-02" => Request::new("HUP"),
            "apache-ei-03" => Request::new("GET /nonexistent"),
            "apache-ei-04" => Request::new("GET /dir-empty/"),
            "apache-ei-13" => Request::new("GET /error-loop"),
            "apache-ei-19" => Request::new("KEEPALIVE 40000"),
            "apache-ei-26" => Request::new(format!("GET {}", "/".repeat(12))),
            "apache-ei-32" => Request::new(format!("AUTH {}", "r".repeat(256))),
            s if s.starts_with("apache-ei-") => Request::new(format!("PROBE {s}")),
            "apache-edn-01" => Request::new("GET /burst"),
            "apache-edn-02" => Request::new("GET /file"),
            "apache-edn-03" => Request::new("GET /cached"),
            "apache-edn-04" | "apache-edn-05" => Request::new("GET /logged"),
            "apache-edn-06" => Request::new("GET /keepalive"),
            "apache-edn-07" => Request::new("GET /remote"),
            "apache-edt-01" | "apache-edt-05" => Request::new("RESOLVE remote.example"),
            "apache-edt-02" => Request::new("SPAWN"),
            "apache-edt-03" => Request::new("GET /download").with_timing_event(),
            "apache-edt-04" => Request::new("BIND"),
            "apache-edt-06" => Request::new("GET /remote"),
            "apache-edt-07" => Request::new("SSL"),
            _ => return None,
        };
        Some(req)
    }

    fn benign_request(&self) -> Request {
        Request::new("GET /index.html")
    }

    fn rejuvenate_request(&self) -> Option<Request> {
        // Apache's widely-used rejuvenation signal (§6.2).
        Some(Request::new("HUP"))
    }

    fn cold_start(&mut self, env: &mut Environment) {
        env.fds.close_all_of(self.owner);
        env.procs.kill_all_of(self.owner);
        // A fresh server process has leaked nothing and starts a new
        // temp-file sequence; its served counter and defects carry over.
        self.state.leak_units = 0;
        self.state.cache_seq = 0;
    }

    fn as_crash_only(&mut self) -> Option<&mut dyn CrashOnly> {
        Some(self)
    }

    fn check_oracle(&self, env: &Environment) -> Vec<String> {
        let _ = env;
        let mut violations = Vec::new();
        // Session consistency: a worker pool at or past the address-space
        // crash threshold is only observable between requests if something
        // kept the server alive *through* the crash instead of releasing
        // the leaked units — every answer it produces is suspect.
        if self.state.leak_units >= LEAK_CRASH_UNITS {
            violations.push(format!(
                "worker pool serving with {} leaked units, at the address-space crash \
                 threshold of {LEAK_CRASH_UNITS}",
                self.state.leak_units
            ));
        }
        // Response well-formedness: a healthy server recycles a keep-alive
        // connection when its pipeline counter reaches the wrap limit, so a
        // counter at or past it between requests means the scoreboard slot
        // the next response is assembled from is out of range.
        if self.state.keepalive_count >= KEEPALIVE_WRAP {
            violations.push(format!(
                "keep-alive counter at {} reached the wrap limit of {KEEPALIVE_WRAP} \
                 without the connection being recycled",
                self.state.keepalive_count
            ));
        }
        violations
    }
}

/// Component indices of the server's crash-only partition.
const WEB_LISTENER: usize = 0;
const WEB_WORKERS: usize = 1;
const WEB_CACHE: usize = 2;
const WEB_SESSIONS: usize = 3;

/// The server's component tree: a listener owning a worker pool, a disk
/// cache, and a session store. Everything the workers can lose (request
/// scratch, leaked allocations, their descriptors and CGI children) is
/// volatile; the cache's in-memory sequence is rebuilt over the durable
/// cache files; the session store is the one place whose state no reboot
/// may discard.
static WEB_COMPONENTS: [ComponentDesc; 4] = [
    ComponentDesc {
        name: "web-listener",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(30),
        parent: None,
    },
    ComponentDesc {
        name: "web-worker-pool",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(20),
        parent: Some(WEB_LISTENER),
    },
    ComponentDesc {
        name: "web-cache",
        state_kind: StateKind::DurableSoft,
        boot_cost: Duration::from_millis(15),
        parent: Some(WEB_LISTENER),
    },
    ComponentDesc {
        name: "web-session-store",
        state_kind: StateKind::DurableHard,
        boot_cost: Duration::from_millis(40),
        parent: Some(WEB_LISTENER),
    },
];

impl CrashOnly for MiniWeb {
    fn components(&self) -> &'static [ComponentDesc] {
        &WEB_COMPONENTS
    }

    fn route(&self, body: &str) -> usize {
        if let Some(path) = body.strip_prefix("GET ") {
            if path == "/cached" {
                return WEB_CACHE;
            }
            return WEB_WORKERS;
        }
        if body.starts_with("AUTH ") {
            // Authentication checks credentials against the session store.
            return WEB_SESSIONS;
        }
        if body.starts_with("KEEPALIVE ") || body == "BIND" || body == "HUP" {
            return WEB_LISTENER;
        }
        // RESOLVE, SSL, SPAWN, PROBE, and anything unknown is worker work.
        WEB_WORKERS
    }

    fn crash_component(&mut self, index: usize, env: &mut Environment) {
        match index {
            WEB_LISTENER => {
                // Connections die with the listener: children it forked are
                // reaped and the keep-alive accounting starts over.
                env.procs.kill_all_of(self.owner);
                self.state.keepalive_count = 0;
            }
            WEB_WORKERS => {
                // The pool's descriptors, CGI children, and leaked
                // allocations all die with the pool — exactly the volatile
                // state a checkpoint-restoring recovery must preserve.
                env.fds.close_all_of(self.owner);
                env.procs.kill_all_of(self.owner);
                self.state.leak_units = 0;
            }
            WEB_CACHE => {
                // The in-memory sequence is discarded; cache files on disk
                // are the durable ground truth it reboots over.
                self.state.cache_seq = 0;
            }
            // Durable-hard: nothing may be discarded.
            _ => {}
        }
    }

    fn boot_component(&mut self, _index: usize, _env: &mut Environment) {
        // Reconstruction is lazy: the cache re-derives its sequence on the
        // next miss, the listener rebinds on the next BIND. Served counters
        // and armed defects are durable and carry over.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_env::dns::DnsHealth;

    fn setup() -> (Environment, MiniWeb) {
        let mut env = Environment::builder()
            .seed(5)
            .fd_limit(8)
            .proc_slots(6)
            .fs_capacity(64 * 1024)
            .max_file_size(16 * 1024)
            .build();
        let web = MiniWeb::new(&mut env);
        (env, web)
    }

    #[test]
    fn healthy_server_serves_everything() {
        let (mut env, mut web) = setup();
        for body in ["GET /index.html", "SPAWN", "BIND", "SSL", "RESOLVE a.example"] {
            let resp = web.handle(&Request::new(body), &mut env).unwrap();
            assert!(resp.is_ok(), "{body}");
        }
        assert_eq!(web.served(), 5);
    }

    #[test]
    fn long_url_crashes_only_with_bug_injected() {
        let (mut env, mut web) = setup();
        let long = Request::new(format!("GET /{}", "x".repeat(1500)));
        assert!(web.handle(&long, &mut env).unwrap().is_ok());
        web.inject("apache-ei-01", &mut env).unwrap();
        let failure = web.handle(&long, &mut env).unwrap_err();
        assert!(matches!(failure, AppFailure::Crash(_)));
    }

    #[test]
    fn probe_path_fires_only_for_enabled_slug() {
        let (mut env, mut web) = setup();
        web.inject("apache-ei-17", &mut env).unwrap();
        assert!(web.handle(&Request::new("PROBE apache-ei-17"), &mut env).is_err());
        assert!(web.handle(&Request::new("PROBE apache-ei-18"), &mut env).unwrap().is_ok());
    }

    #[test]
    fn leak_crashes_on_third_burst_and_persists_through_checkpoint() {
        let (mut env, mut web) = setup();
        web.inject("apache-edn-01", &mut env).unwrap();
        let burst = web.trigger_request("apache-edn-01").unwrap();
        assert!(web.handle(&burst, &mut env).unwrap().is_ok());
        assert!(web.handle(&burst, &mut env).unwrap().is_ok());
        let checkpoint = web.snapshot();
        assert!(web.handle(&burst, &mut env).is_err(), "third burst crashes");
        // Generic recovery: restore all state — the leak comes back.
        web.restore(&checkpoint);
        assert!(web.handle(&burst, &mut env).is_err(), "leak persisted in checkpoint");
    }

    #[test]
    fn oracle_is_silent_on_a_healthy_server() {
        let (mut env, mut web) = setup();
        web.handle(&Request::new("GET /index.html"), &mut env).unwrap();
        web.handle(&Request::new("KEEPALIVE 4"), &mut env).unwrap();
        assert!(web.check_oracle(&env).is_empty());
    }

    #[test]
    fn oracle_catches_serving_past_the_leak_threshold() {
        let (mut env, mut web) = setup();
        web.inject("apache-edn-01", &mut env).unwrap();
        let burst = web.trigger_request("apache-edn-01").unwrap();
        web.handle(&burst, &mut env).unwrap();
        web.handle(&burst, &mut env).unwrap();
        assert!(web.check_oracle(&env).is_empty(), "below the threshold is fine");
        assert!(web.handle(&burst, &mut env).is_err(), "third burst crashes");
        // Going oblivious here — serving on without releasing the units —
        // is exactly what the oracle prices.
        let violations = web.check_oracle(&env);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("leaked units"), "{violations:?}");
    }

    #[test]
    fn oracle_catches_a_wrapped_keepalive_counter() {
        let (mut env, mut web) = setup();
        web.inject("apache-ei-19", &mut env).unwrap();
        let req = web.trigger_request("apache-ei-19").unwrap();
        assert!(web.handle(&req, &mut env).is_err(), "the wrap crashes the buggy build");
        let violations = web.check_oracle(&env);
        assert!(violations.iter().any(|v| v.contains("keep-alive")), "{violations:?}");
        // The healthy build recycles the connection: no violation.
        let (mut env2, mut web2) = setup();
        assert!(web2.handle(&req, &mut env2).unwrap().is_ok());
        assert!(web2.check_oracle(&env2).is_empty());
    }

    #[test]
    fn fd_exhaustion_fails_and_survives_recovery_kill() {
        let (mut env, mut web) = setup();
        web.inject("apache-edn-02", &mut env).unwrap();
        let req = web.trigger_request("apache-edn-02").unwrap();
        assert!(web.handle(&req, &mut env).is_err());
        // Generic recovery does not free the app's descriptors.
        env.on_generic_recovery(web.owner());
        assert!(web.handle(&req, &mut env).is_err(), "descriptors still gone");
    }

    #[test]
    fn process_table_fault_clears_after_generic_recovery() {
        let (mut env, mut web) = setup();
        web.inject("apache-edt-02", &mut env).unwrap();
        let req = web.trigger_request("apache-edt-02").unwrap();
        assert!(web.handle(&req, &mut env).is_err(), "table full");
        env.on_generic_recovery(web.owner());
        assert!(web.handle(&req, &mut env).unwrap().is_ok(), "slots freed by recovery");
    }

    #[test]
    fn held_port_freed_by_generic_recovery() {
        let (mut env, mut web) = setup();
        web.inject("apache-edt-04", &mut env).unwrap();
        let req = web.trigger_request("apache-edt-04").unwrap();
        assert!(web.handle(&req, &mut env).is_err());
        env.on_generic_recovery(web.owner());
        assert!(web.handle(&req, &mut env).unwrap().is_ok());
    }

    #[test]
    fn dns_error_heals_with_time_not_with_state_restore() {
        let (mut env, mut web) = setup();
        web.inject("apache-edt-01", &mut env).unwrap();
        let req = web.trigger_request("apache-edt-01").unwrap();
        assert!(web.handle(&req, &mut env).is_err());
        // Restoring state alone does not help...
        let snap = web.snapshot();
        web.restore(&snap);
        assert!(web.handle(&req, &mut env).is_err());
        // ...but time passing does.
        env.advance(Duration::from_secs(3));
        assert!(web.handle(&req, &mut env).unwrap().is_ok());
    }

    #[test]
    fn entropy_refills_during_recovery() {
        let (mut env, mut web) = setup();
        web.inject("apache-edt-07", &mut env).unwrap();
        let req = web.trigger_request("apache-edt-07").unwrap();
        assert!(web.handle(&req, &mut env).is_err());
        env.on_generic_recovery(web.owner()); // takes 1 simulated second
        assert!(web.handle(&req, &mut env).unwrap().is_ok());
    }

    #[test]
    fn timing_event_fault_fires_once() {
        let (mut env, mut web) = setup();
        web.inject("apache-edt-03", &mut env).unwrap();
        let first = web.trigger_request("apache-edt-03").unwrap();
        assert!(first.timing_event);
        assert!(web.handle(&first, &mut env).is_err());
        // The retry replays the request without the user's stop press.
        let mut retry = first.clone();
        retry.timing_event = false;
        assert!(web.handle(&retry, &mut env).unwrap().is_ok());
    }

    #[test]
    fn full_filesystem_fails_logged_requests_persistently() {
        let (mut env, mut web) = setup();
        web.inject("apache-edn-05", &mut env).unwrap();
        let req = web.trigger_request("apache-edn-05").unwrap();
        assert!(web.handle(&req, &mut env).is_err());
        env.on_generic_recovery(web.owner());
        env.advance(Duration::from_secs(60));
        assert!(web.handle(&req, &mut env).is_err(), "disk stays full");
    }

    #[test]
    fn hardware_removal_is_permanent_without_operator() {
        let (mut env, mut web) = setup();
        web.inject("apache-edn-07", &mut env).unwrap();
        let req = web.trigger_request("apache-edn-07").unwrap();
        assert!(web.handle(&req, &mut env).is_err());
        env.advance(Duration::from_secs(3600));
        assert!(web.handle(&req, &mut env).is_err());
        env.host.insert_hardware(HardwareComponent::PcmciaNic);
        env.net.repair();
        assert!(web.handle(&req, &mut env).unwrap().is_ok());
    }

    #[test]
    fn sighup_rejuvenation_reaps_children_and_leaks() {
        let (mut env, mut web) = setup();
        web.inject("apache-edn-01", &mut env).unwrap();
        let burst = Request::new("GET /burst");
        web.handle(&burst, &mut env).unwrap();
        let pid = env.procs.spawn(web.owner()).unwrap();
        env.procs.hang(pid).unwrap();
        let resp = web.handle(&Request::new("HUP"), &mut env).unwrap();
        assert!(resp.is_ok());
        assert_eq!(env.procs.count_of(web.owner()), 0);
        // Leak reset: three more bursts before the next crash.
        assert!(web.handle(&burst, &mut env).unwrap().is_ok());
        assert!(web.handle(&burst, &mut env).unwrap().is_ok());
        assert!(web.handle(&burst, &mut env).is_err());
    }

    #[test]
    fn unknown_slug_rejected_and_unknown_request_denied() {
        let (mut env, mut web) = setup();
        assert!(web.inject("mysql-ei-01", &mut env).is_err());
        assert!(web.trigger_request("gnome-ei-01").is_none());
        let resp = web.handle(&Request::new("TRACE /"), &mut env).unwrap();
        assert!(!resp.is_ok());
    }

    #[test]
    fn every_corpus_apache_slug_is_injectable_with_a_trigger() {
        let (mut env, mut web) = setup();
        for f in faultstudy_corpus::corpus_for(AppKind::Apache) {
            assert!(web.trigger_request(f.slug()).is_some(), "{}", f.slug());
        }
        // Injection of a representative from each class works.
        for slug in ["apache-ei-30", "apache-edn-04", "apache-edt-05"] {
            web.inject(slug, &mut env).unwrap();
        }
    }

    #[test]
    fn dns_slow_hang_heals_on_its_deadline() {
        let (mut env, mut web) = setup();
        web.inject("apache-edt-05", &mut env).unwrap();
        let req = web.trigger_request("apache-edt-05").unwrap();
        match web.handle(&req, &mut env) {
            Err(AppFailure::Hang(_)) => {}
            other => panic!("expected hang, got {other:?}"),
        }
        env.advance(Duration::from_secs(3));
        assert!(web.handle(&req, &mut env).unwrap().is_ok());
    }

    #[test]
    fn dns_injection_sets_health_visible_at_now() {
        let (mut env, mut web) = setup();
        web.inject("apache-edt-01", &mut env).unwrap();
        assert_eq!(env.dns.health_at(env.now()), DnsHealth::Erroring);
        let _ = web;
    }

    #[test]
    fn error_document_recursion_is_bounded_when_healthy() {
        let (mut env, mut web) = setup();
        let req = Request::new("GET /error-loop");
        assert!(!web.handle(&req, &mut env).unwrap().is_ok(), "healthy: loop detected");
        web.inject("apache-ei-13", &mut env).unwrap();
        assert!(matches!(web.handle(&req, &mut env), Err(AppFailure::Crash(_))));
    }

    #[test]
    fn escaped_slash_uri_handled_or_crashes_with_bug() {
        let (mut env, mut web) = setup();
        let req = web.trigger_request("apache-ei-26").unwrap();
        assert!(!web.handle(&req, &mut env).unwrap().is_ok(), "degenerate path denied");
        web.inject("apache-ei-26", &mut env).unwrap();
        assert!(web.handle(&req, &mut env).is_err());
        // A single "/" is the root document, not a degenerate path.
        assert!(web.handle(&Request::new("GET /"), &mut env).unwrap().is_ok());
    }

    #[test]
    fn keepalive_counter_wrap_only_crashes_with_bug() {
        let (mut env, mut web) = setup();
        let burst = web.trigger_request("apache-ei-19").unwrap();
        assert!(web.handle(&burst, &mut env).unwrap().is_ok(), "healthy: reconnects");
        web.inject("apache-ei-19", &mut env).unwrap();
        assert!(web.handle(&burst, &mut env).is_err());
        // Small bursts never reach the wrap point even with the bug.
        let mut fresh_env = Environment::builder().seed(8).build();
        let mut fresh = MiniWeb::new(&mut fresh_env);
        fresh.inject("apache-ei-19", &mut fresh_env).unwrap();
        assert!(fresh.handle(&Request::new("KEEPALIVE 100"), &mut fresh_env).unwrap().is_ok());
    }

    #[test]
    fn realm_overflow_only_crashes_with_bug() {
        let (mut env, mut web) = setup();
        let long = web.trigger_request("apache-ei-32").unwrap();
        assert!(!web.handle(&long, &mut env).unwrap().is_ok(), "healthy: denied");
        let short = Request::new("AUTH intranet");
        assert!(web.handle(&short, &mut env).unwrap().is_ok());
        web.inject("apache-ei-32", &mut env).unwrap();
        assert!(web.handle(&long, &mut env).is_err());
        assert!(web.handle(&short, &mut env).unwrap().is_ok(), "short realms still fine");
    }

    #[test]
    fn arm_defect_enables_the_bug_without_touching_the_environment() {
        let (mut env, mut web) = setup();
        web.arm_defect("apache-edn-02").unwrap();
        // No inject-time descriptor exhaustion: the trigger still succeeds
        // until something else (an injection plan) drains the table.
        let req = web.trigger_request("apache-edn-02").unwrap();
        assert!(web.handle(&req, &mut env).unwrap().is_ok(), "environment untouched");
        let hog = env.register_owner("hog");
        env.fds.exhaust_as(hog);
        assert!(web.handle(&req, &mut env).is_err(), "armed defect fires once env degrades");
        assert!(web.arm_defect("mysql-ei-01").is_err(), "foreign slug rejected");
    }

    #[test]
    fn snapshot_restore_round_trip_is_identity() {
        let (mut env, mut web) = setup();
        web.inject("apache-ei-09", &mut env).unwrap();
        web.handle(&Request::new("GET /a"), &mut env).unwrap();
        let snap = web.snapshot();
        web.handle(&Request::new("GET /b"), &mut env).unwrap();
        web.restore(&snap);
        assert_eq!(web.snapshot(), snap);
        assert_eq!(web.served(), 1);
    }
}
