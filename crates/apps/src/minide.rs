//! `MiniDe`: the GNOME-like desktop environment.
//!
//! Models the §5.2 fault families: widget-level deterministic crashes (the
//! five named environment-independent bugs have their own widgets; the
//! rest are `PROBE` defects), the three nontransient triggers (a hostname
//! change captured in running state, file descriptors leaked by sound
//! utilities, a file with an illegal owner field), and the three transient
//! ones (an unknown failure that works on retry, and two races run on the
//! environment's thread interleaving).

use crate::app::{AppFailure, AppState, Application, InjectError, Request, Response};
use crate::race::RaceGadget;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::fs::FsError;
use faultstudy_env::{Environment, OwnerId};
use faultstudy_micro::{ComponentDesc, CrashOnly, StateKind};
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The checkpointable state of the desktop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct DeState {
    enabled_bugs: BTreeSet<String>,
    /// The hostname the session started under; X authority and session
    /// files embed it, which is what makes a rename fatal.
    boot_hostname: String,
    actions: u64,
}

/// The GNOME-like desktop shell.
///
/// # Example
///
/// ```
/// use faultstudy_apps::{Application, MiniDe, Request};
/// use faultstudy_env::Environment;
///
/// let mut env = Environment::builder().seed(4).build();
/// let mut de = MiniDe::new(&mut env);
/// let resp = de.handle(&Request::new("CLICK clock"), &mut env).unwrap();
/// assert!(resp.is_ok());
/// ```
#[derive(Debug)]
pub struct MiniDe {
    owner: OwnerId,
    state: DeState,
}

impl MiniDe {
    /// Creates the desktop, registering it as a resource owner and
    /// capturing the boot-time hostname into session state.
    pub fn new(env: &mut Environment) -> MiniDe {
        let owner = env.register_owner("minide");
        MiniDe {
            owner,
            state: DeState { boot_hostname: env.host.hostname().to_owned(), ..DeState::default() },
        }
    }

    /// User actions completed since start.
    pub fn actions(&self) -> u64 {
        self.state.actions
    }

    fn bug(&self, slug: &str) -> bool {
        self.state.enabled_bugs.contains(slug)
    }

    fn ok(&mut self, msg: impl Into<String>) -> Result<Response, AppFailure> {
        self.state.actions += 1;
        Ok(Response::Ok(msg.into()))
    }

    fn click(&mut self, widget: &str) -> Result<Response, AppFailure> {
        match widget {
            "pager-tasklist-tab" if self.bug("gnome-ei-01") => {
                Err(AppFailure::Crash("pager died on the tasklist settings tab".into()))
            }
            "calendar-prev-year" if self.bug("gnome-ei-02") => Err(AppFailure::Crash(
                "year view assigned a local copy instead of the global".into(),
            )),
            "gnumeric-define-name-tab" if self.bug("gnome-ei-03") => {
                Err(AppFailure::Crash("dialog variable initialized to an incorrect value".into()))
            }
            "desktop-dismiss-menu" if self.bug("gnome-ei-05") => {
                Err(AppFailure::Hang("grab handling deadlocked dismissing the menu".into()))
            }
            _ => self.ok(format!("clicked {widget}")),
        }
    }

    fn open_icon(&mut self, path: &str) -> Result<Response, AppFailure> {
        if path.ends_with(".tar.gz") && self.bug("gnome-ei-04") {
            return Err(AppFailure::Crash(
                "gmc: size declared long instead of unsigned long".into(),
            ));
        }
        self.ok(format!("opened {path}"))
    }

    fn open_display(&mut self, env: &Environment) -> Result<Response, AppFailure> {
        if env.host.hostname() != self.state.boot_hostname && self.bug("gnome-edn-01") {
            return Err(AppFailure::Crash(format!(
                "display authority mismatch: session bound to {} but host is {}",
                self.state.boot_hostname,
                env.host.hostname()
            )));
        }
        self.ok("display opened")
    }

    fn play_sound(&mut self, env: &mut Environment) -> Result<Response, AppFailure> {
        match env.fds.open(self.owner) {
            Ok(fd) => {
                let _ = env.fds.close(fd);
                self.ok("sound played")
            }
            Err(_) if self.bug("gnome-edn-02") => Err(AppFailure::Crash(
                "sound server: out of file descriptors (sockets leaked on exit)".into(),
            )),
            Err(_) => Ok(Response::Denied("audio device busy".into())),
        }
    }

    fn edit_properties(&mut self, path: &str, env: &Environment) -> Result<Response, AppFailure> {
        match env.fs.stat_checked(path) {
            Ok(_) => self.ok(format!("properties of {path}")),
            Err(FsError::CorruptMetadata(_)) if self.bug("gnome-edn-03") => Err(AppFailure::Crash(
                format!("properties dialog crashed on illegal owner field of {path}"),
            )),
            Err(e) => Ok(Response::Denied(format!("cannot stat {path}: {e}"))),
        }
    }

    fn race(
        &mut self,
        slug: &str,
        what: &str,
        env: &mut Environment,
    ) -> Result<Response, AppFailure> {
        if !self.bug(slug) {
            return self.ok(format!("{what} done"));
        }
        match RaceGadget::default().run(env.current_interleaving()) {
            Ok(()) => self.ok(format!("{what} done")),
            Err(reason) => Err(AppFailure::Crash(format!("{what}: {reason}"))),
        }
    }
}

impl Application for MiniDe {
    fn kind(&self) -> AppKind {
        AppKind::Gnome
    }

    fn owner(&self) -> OwnerId {
        self.owner
    }

    fn handle(&mut self, req: &Request, env: &mut Environment) -> Result<Response, AppFailure> {
        let body = req.body.as_str();
        if let Some(slug) = body.strip_prefix("PROBE ") {
            return if self.bug(slug) {
                Err(AppFailure::Crash(format!("deterministic defect {slug} triggered")))
            } else {
                self.ok("probe passed")
            };
        }
        if let Some(widget) = body.strip_prefix("CLICK ") {
            return self.click(widget);
        }
        if let Some(path) = body.strip_prefix("OPEN ") {
            return self.open_icon(path);
        }
        if let Some(path) = body.strip_prefix("EDIT-PROPS ") {
            return self.edit_properties(path, env);
        }
        // gnome-ei-18: gnumeric's recursive-descent formula parser has no
        // depth limit; the healthy build bounds it.
        if let Some(formula) = body.strip_prefix("FORMULA ") {
            let mut depth = 0u32;
            let mut max = 0u32;
            for c in formula.chars() {
                match c {
                    '(' => {
                        depth += 1;
                        max = max.max(depth);
                    }
                    ')' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if max > 128 {
                if self.bug("gnome-ei-18") {
                    return Err(AppFailure::Crash(
                        "formula parser overran its evaluation stack".into(),
                    ));
                }
                return Ok(Response::Denied("formula too deeply nested".into()));
            }
            return self.ok("formula evaluated");
        }
        match body {
            "OPEN-DISPLAY" => self.open_display(env),
            "PLAY-SOUND" => self.play_sound(env),
            "LAUNCH" => {
                if req.timing_event && self.bug("gnome-edt-01") {
                    Err(AppFailure::Crash(
                        "application failed at startup for no apparent reason".into(),
                    ))
                } else {
                    self.ok("launched")
                }
            }
            "VIEW-AND-EDIT" => self.race("gnome-edt-02", "image view with property edit", env),
            "REMOVE-APPLET" => self.race("gnome-edt-03", "applet removal", env),
            other => Ok(Response::Denied(format!("no such action: {other}"))),
        }
    }

    fn snapshot(&self) -> AppState {
        AppState::encode(&self.state)
    }

    fn restore(&mut self, state: &AppState) {
        self.state = state.decode();
    }

    fn inject(&mut self, slug: &str, env: &mut Environment) -> Result<(), InjectError> {
        match slug {
            s if s.starts_with("gnome-ei-") => {}
            "gnome-edn-01" => {
                // The machine is renamed while the session runs.
                let new_name = format!("{}-renamed", env.host.hostname());
                env.host.set_hostname(new_name);
            }
            "gnome-edn-02" => {
                // Sound utilities leaked sockets until the table is empty.
                env.fds.exhaust_as(self.owner);
            }
            "gnome-edn-03" => {
                env.fs.write("home/user/broken.file", 16).expect("room for one small file");
                env.fs.set_owner("home/user/broken.file", u32::MAX).expect("file exists");
            }
            "gnome-edt-01" => {}
            "gnome-edt-02" | "gnome-edt-03" => {
                // Arm the race (see MiniDb): the first execution runs under
                // a crashing interleaving; retries see fresh timing.
                env.force_interleave_seed(RaceGadget::default().crashing_seed());
            }
            _ => return Err(InjectError { slug: slug.to_owned() }),
        }
        self.state.enabled_bugs.insert(slug.to_owned());
        Ok(())
    }

    fn trigger_request(&self, slug: &str) -> Option<Request> {
        let req = match slug {
            "gnome-ei-01" => Request::new("CLICK pager-tasklist-tab"),
            "gnome-ei-02" => Request::new("CLICK calendar-prev-year"),
            "gnome-ei-03" => Request::new("CLICK gnumeric-define-name-tab"),
            "gnome-ei-04" => Request::new("OPEN desktop/archive.tar.gz"),
            "gnome-ei-05" => Request::new("CLICK desktop-dismiss-menu"),
            "gnome-ei-18" => {
                Request::new(format!("FORMULA {}1{}", "(".repeat(255), ")".repeat(255)))
            }
            s if s.starts_with("gnome-ei-") => Request::new(format!("PROBE {s}")),
            "gnome-edn-01" => Request::new("OPEN-DISPLAY"),
            "gnome-edn-02" => Request::new("PLAY-SOUND"),
            "gnome-edn-03" => Request::new("EDIT-PROPS home/user/broken.file"),
            "gnome-edt-01" => Request::new("LAUNCH").with_timing_event(),
            "gnome-edt-02" => Request::new("VIEW-AND-EDIT"),
            "gnome-edt-03" => Request::new("REMOVE-APPLET"),
            _ => return None,
        };
        Some(req)
    }

    fn benign_request(&self) -> Request {
        Request::new("CLICK clock")
    }

    fn cold_start(&mut self, env: &mut Environment) {
        env.fds.close_all_of(self.owner);
        env.procs.kill_all_of(self.owner);
        // A restarted session re-reads the (possibly renamed) hostname.
        self.state.boot_hostname = env.host.hostname().to_owned();
    }

    fn as_crash_only(&mut self) -> Option<&mut dyn CrashOnly> {
        Some(self)
    }

    fn check_oracle(&self, env: &Environment) -> Vec<String> {
        let mut violations = Vec::new();
        // Buffer/index agreement: the editor buffer's session identity must
        // exist — X authority and session files embed the boot hostname, so
        // an empty one means the durable-hard buffer lost state it may
        // never regenerate.
        if self.state.boot_hostname.is_empty() {
            violations.push("editor buffer lost its session identity (empty boot hostname)".into());
        } else if env.host.hostname() != self.state.boot_hostname && !self.bug("gnome-edn-01") {
            // A divergence between the buffer's identity and the host index
            // is only explainable by the known rename defect; without it
            // armed, the session silently drifted from its environment.
            violations.push(format!(
                "session bound to {} but the host index says {}",
                self.state.boot_hostname,
                env.host.hostname()
            ));
        }
        violations
    }
}

/// Component indices of the desktop's crash-only partition.
const DE_EDITOR_BUFFER: usize = 0;
const DE_PLUGIN_HOST: usize = 1;
const DE_INDEX: usize = 2;

/// The desktop's component tree. The editor buffer is the root *and*
/// durable-hard: it holds session identity (the boot-time hostname that X
/// authority files embed), which no reboot may regenerate — a component
/// crash there escalates straight to a whole-process restart. Applets and
/// sound utilities live in the plugin host, whose sockets and helper
/// processes die with it; the file index rebuilds over the filesystem.
static DE_COMPONENTS: [ComponentDesc; 3] = [
    ComponentDesc {
        name: "de-editor-buffer",
        state_kind: StateKind::DurableHard,
        boot_cost: Duration::from_millis(50),
        parent: None,
    },
    ComponentDesc {
        name: "de-plugin-host",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(20),
        parent: Some(DE_EDITOR_BUFFER),
    },
    ComponentDesc {
        name: "de-index",
        state_kind: StateKind::DurableSoft,
        boot_cost: Duration::from_millis(15),
        parent: Some(DE_EDITOR_BUFFER),
    },
];

impl CrashOnly for MiniDe {
    fn components(&self) -> &'static [ComponentDesc] {
        &DE_COMPONENTS
    }

    fn route(&self, body: &str) -> usize {
        if body == "OPEN-DISPLAY" {
            // Session identity: the hostname captured at boot.
            return DE_EDITOR_BUFFER;
        }
        if body.starts_with("OPEN ")
            || body.starts_with("EDIT-PROPS ")
            || body.starts_with("FORMULA ")
        {
            return DE_INDEX;
        }
        // CLICK, PLAY-SOUND, LAUNCH, the applet races, PROBE, and anything
        // unknown runs inside the plugin host.
        DE_PLUGIN_HOST
    }

    fn crash_component(&mut self, index: usize, env: &mut Environment) {
        match index {
            DE_PLUGIN_HOST => {
                // Sound-server sockets and helper processes die with the
                // host — the leak gnome-edn-02 reports is volatile state.
                env.fds.close_all_of(self.owner);
                env.procs.kill_all_of(self.owner);
            }
            DE_INDEX => {
                // Nothing in memory worth keeping: the index is a pure
                // function of the filesystem.
            }
            // Durable-hard (editor buffer): nothing may be discarded, and
            // in particular the boot-time hostname is NOT re-read — that
            // reconstruction is application-specific cold-start knowledge.
            _ => {}
        }
    }

    fn boot_component(&mut self, _index: usize, _env: &mut Environment) {
        // The index is rebuilt lazily on the next stat; the plugin host
        // restarts its applets on demand.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_sim::time::Duration;

    fn setup() -> (Environment, MiniDe) {
        let mut env = Environment::builder().seed(6).fd_limit(6).hostname("desk1").build();
        let de = MiniDe::new(&mut env);
        (env, de)
    }

    #[test]
    fn healthy_desktop_handles_everything() {
        let (mut env, mut de) = setup();
        for body in [
            "CLICK clock",
            "OPEN desktop/notes.txt",
            "OPEN-DISPLAY",
            "PLAY-SOUND",
            "LAUNCH",
            "VIEW-AND-EDIT",
            "REMOVE-APPLET",
        ] {
            let resp = de.handle(&Request::new(body), &mut env).unwrap();
            assert!(resp.is_ok(), "{body}");
        }
        assert_eq!(de.actions(), 7);
    }

    #[test]
    fn named_widget_bugs_fire_only_when_injected() {
        let (mut env, mut de) = setup();
        let tasklist = Request::new("CLICK pager-tasklist-tab");
        assert!(de.handle(&tasklist, &mut env).unwrap().is_ok());
        de.inject("gnome-ei-01", &mut env).unwrap();
        assert!(de.handle(&tasklist, &mut env).is_err());
        // The tar.gz bug.
        de.inject("gnome-ei-04", &mut env).unwrap();
        let req = de.trigger_request("gnome-ei-04").unwrap();
        assert!(de.handle(&req, &mut env).is_err());
        assert!(de.handle(&Request::new("OPEN plain.txt"), &mut env).unwrap().is_ok());
    }

    #[test]
    fn menu_dismiss_freeze_is_a_hang() {
        let (mut env, mut de) = setup();
        de.inject("gnome-ei-05", &mut env).unwrap();
        let req = de.trigger_request("gnome-ei-05").unwrap();
        assert!(matches!(de.handle(&req, &mut env), Err(AppFailure::Hang(_))));
    }

    #[test]
    fn hostname_change_is_fatal_and_permanent() {
        let (mut env, mut de) = setup();
        de.inject("gnome-edn-01", &mut env).unwrap();
        let req = de.trigger_request("gnome-edn-01").unwrap();
        assert!(de.handle(&req, &mut env).is_err());
        // Generic recovery restores the session with the old name inside.
        let snap = de.snapshot();
        env.on_generic_recovery(de.owner());
        de.restore(&snap);
        env.advance(Duration::from_secs(600));
        assert!(de.handle(&req, &mut env).is_err(), "stale name restored with state");
    }

    #[test]
    fn leaked_sockets_starve_the_desktop_across_recovery() {
        let (mut env, mut de) = setup();
        de.inject("gnome-edn-02", &mut env).unwrap();
        let req = de.trigger_request("gnome-edn-02").unwrap();
        assert!(de.handle(&req, &mut env).is_err());
        env.on_generic_recovery(de.owner());
        assert!(de.handle(&req, &mut env).is_err(), "descriptors restored with state");
    }

    #[test]
    fn corrupt_owner_field_crashes_properties_dialog() {
        let (mut env, mut de) = setup();
        de.inject("gnome-edn-03", &mut env).unwrap();
        let req = de.trigger_request("gnome-edn-03").unwrap();
        assert!(de.handle(&req, &mut env).is_err());
        // Other files are unaffected.
        env.fs.write("home/user/fine.file", 8).unwrap();
        let fine = Request::new("EDIT-PROPS home/user/fine.file");
        assert!(de.handle(&fine, &mut env).unwrap().is_ok());
        // The corrupt file outlives any amount of time and recovery.
        env.advance(Duration::from_secs(3600));
        env.on_generic_recovery(de.owner());
        assert!(de.handle(&req, &mut env).is_err());
    }

    #[test]
    fn unknown_transient_fires_once_via_timing_event() {
        let (mut env, mut de) = setup();
        de.inject("gnome-edt-01", &mut env).unwrap();
        let first = de.trigger_request("gnome-edt-01").unwrap();
        assert!(de.handle(&first, &mut env).is_err());
        let mut retry = first.clone();
        retry.timing_event = false;
        assert!(de.handle(&retry, &mut env).unwrap().is_ok(), "works on a retry");
    }

    #[test]
    fn applet_race_outcome_is_environment_determined() {
        let (mut env, mut de) = setup();
        de.inject("gnome-edt-03", &mut env).unwrap();
        let req = de.trigger_request("gnome-edt-03").unwrap();
        let a = de.handle(&req, &mut env).is_err();
        let b = de.handle(&req, &mut env).is_err();
        assert_eq!(a, b, "fixed environment, fixed outcome");
        let mut outcomes = Vec::new();
        for _ in 0..30 {
            env.advance(Duration::from_millis(50));
            outcomes.push(de.handle(&req, &mut env).is_err());
        }
        assert!(outcomes.iter().any(|crashed| !crashed), "some interleaving succeeds");
    }

    #[test]
    fn unknown_slug_and_action_rejected() {
        let (mut env, mut de) = setup();
        assert!(de.inject("apache-ei-01", &mut env).is_err());
        assert!(de.trigger_request("mysql-ei-02").is_none());
        assert!(!de.handle(&Request::new("FROB"), &mut env).unwrap().is_ok());
    }

    #[test]
    fn every_corpus_gnome_slug_has_a_trigger() {
        let (_, de) = setup();
        for f in faultstudy_corpus::corpus_for(AppKind::Gnome) {
            assert!(de.trigger_request(f.slug()).is_some(), "{}", f.slug());
        }
    }

    #[test]
    fn deep_formula_denied_when_healthy_crash_with_bug() {
        let (mut env, mut de) = setup();
        let deep = de.trigger_request("gnome-ei-18").unwrap();
        assert!(!de.handle(&deep, &mut env).unwrap().is_ok(), "healthy: denied");
        let shallow = Request::new("FORMULA (1)");
        assert!(de.handle(&shallow, &mut env).unwrap().is_ok());
        de.inject("gnome-ei-18", &mut env).unwrap();
        assert!(de.handle(&deep, &mut env).is_err());
        assert!(de.handle(&shallow, &mut env).unwrap().is_ok());
    }

    #[test]
    fn snapshot_keeps_boot_hostname() {
        let (mut env, mut de) = setup();
        let snap = de.snapshot();
        env.host.set_hostname("desk1-new");
        de.restore(&snap);
        de.inject("gnome-edn-01", &mut env).unwrap();
        let req = de.trigger_request("gnome-edn-01").unwrap();
        assert!(de.handle(&req, &mut env).is_err(), "restored state holds desk1");
    }

    #[test]
    fn oracle_is_silent_on_a_healthy_session() {
        let (mut env, mut de) = setup();
        de.handle(&Request::new("OPEN-DISPLAY"), &mut env).unwrap();
        assert!(de.check_oracle(&env).is_empty());
    }

    #[test]
    fn oracle_catches_an_unexplained_hostname_drift() {
        let (mut env, de) = setup();
        env.host.set_hostname("desk1-new");
        let violations = de.check_oracle(&env);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("desk1-new"), "{violations:?}");
    }

    #[test]
    fn oracle_tolerates_drift_from_the_known_rename_defect() {
        let (mut env, mut de) = setup();
        de.inject("gnome-edn-01", &mut env).unwrap();
        let req = de.trigger_request("gnome-edn-01").unwrap();
        assert!(de.handle(&req, &mut env).is_err(), "the rename crashes the session");
        // The divergence is explained by the armed defect: not a silent
        // wrong answer, just the fault the campaign injected.
        assert!(de.check_oracle(&env).is_empty());
    }
}
