//! `MiniDb`: the MySQL-like database server.
//!
//! Implements a small but real SQL subset — `CREATE TABLE`, `INSERT`,
//! `SELECT` (with `COUNT(*)`, `WHERE`, `ORDER BY`), `UPDATE`, `DELETE`,
//! `OPTIMIZE TABLE`, `LOCK/UNLOCK/FLUSH TABLES` — over tables whose data
//! files live in the virtual filesystem, so the full-disk and
//! max-file-size faults of §5.3 arise from real writes. The five named
//! environment-independent MySQL bugs are realized in their actual code
//! paths (a `COUNT` on an empty table really does take the buggy branch);
//! the two race faults run the use-after-free gadget under the
//! environment's thread interleaving.

use crate::app::{AppFailure, AppState, Application, InjectError, Request, Response};
use crate::race::RaceGadget;
use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::dns::Lookup;
use faultstudy_env::fs::FsError;
use faultstudy_env::{Environment, OwnerId};
use faultstudy_micro::{ComponentDesc, CrashOnly, StateKind};
use faultstudy_sim::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Bytes one row occupies in a table's data file.
const ROW_BYTES: u64 = 32;
/// Maximum parenthesis nesting a healthy parser accepts (mysql-ei-18's
/// buggy parser has a fixed 64-frame yacc arena with no check).
const PAREN_DEPTH_LIMIT: u32 = 64;
/// Maximum columns per table (mysql-ei-24's buggy path checks too late).
const COLUMN_LIMIT: usize = 2048;

/// Exact count of `needle` in `hay`, eight bytes per step.
///
/// Per chunk: XOR with the splatted needle turns matches into zero bytes;
/// `(x & 0x7f..) + 0x7f..` sets each byte's high bit iff its low seven
/// bits are non-zero, so `!(y | x) & 0x80..` flags exactly the zero
/// bytes — the carry-free zero-byte mask (no cross-byte borrows, unlike
/// the subtraction variant).
fn count_byte(hay: &[u8], needle: u8) -> usize {
    const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    const HI: u64 = 0x8080_8080_8080_8080;
    let splat = u64::from(needle).wrapping_mul(0x0101_0101_0101_0101);
    let mut count = 0usize;
    let mut chunks = hay.chunks_exact(8);
    for chunk in &mut chunks {
        let x = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes")) ^ splat;
        let y = (x & LO7).wrapping_add(LO7);
        count += (!(y | x) & HI).count_ones() as usize;
    }
    count + chunks.remainder().iter().filter(|&&b| b == needle).count()
}

/// Counts the comma-separated items of `list` that are non-empty after
/// trimming — `list.split(',').map(str::trim).filter(|c| !c.is_empty())
/// .count()` without walking the segments.
///
/// A segment is provably non-empty when the byte just before its closing
/// delimiter (or the end of the string) is significant — neither
/// whitespace nor a comma. When that holds at every comma of an all-ASCII
/// list the answer is simply `commas + 1`. The proof runs eight bytes per
/// step: per-byte high-bit masks flag commas and ASCII whitespace, and a
/// comma whose predecessor byte (mask shifted up one lane, with a carry
/// across chunks) is a boundary voids it. Any doubt — non-ASCII bytes
/// (multi-byte whitespace), a possibly-empty segment, a non-significant
/// final byte — falls back to the exact segment walk. Large column lists
/// are the hot case and always prove out: `c0, c1, ..., cN` has a digit
/// before every comma.
fn count_list_items(list: &str) -> usize {
    const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    const HI: u64 = 0x8080_8080_8080_8080;
    const ONES: u64 = 0x0101_0101_0101_0101;
    let slow = || list.split(',').map(str::trim).filter(|c| !c.is_empty()).count();
    let bytes = list.as_bytes();
    match bytes.last() {
        None => return 0,
        // ASCII whitespace per char::is_whitespace: HT LF VT FF CR, space.
        Some(&last) if matches!(last, 0x09..=0x0D | 0x20 | b',') || last >= 0x80 => {
            return slow();
        }
        Some(_) => {}
    }
    // Per-byte equality mask: XOR makes matches zero bytes, and
    // `!(((x & LO7) + LO7) | x) & HI` is the carry-free zero-byte flag.
    let eq = |v: u64, needle: u8| -> u64 {
        let x = v ^ u64::from(needle).wrapping_mul(ONES);
        let y = (x & LO7).wrapping_add(LO7);
        !(y | x) & HI
    };
    // Per-byte `b >= n` mask; sound only for ASCII bytes (no borrow can
    // leave its lane once every high bit is pre-set).
    let ge = |v: u64, n: u8| -> u64 { (v | HI).wrapping_sub(u64::from(n).wrapping_mul(ONES)) & HI };

    let mut commas = 0usize;
    let mut violation = 0u64;
    let mut non_ascii = 0u64;
    // The start of the string acts as a delimiter: a leading comma means
    // an empty first segment.
    let mut carry = 0x80u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let v = u64::from_le_bytes(chunk.try_into().expect("chunk is 8 bytes"));
        non_ascii |= v & HI;
        let comma = eq(v, b',');
        let ws = (ge(v, 0x09) & !ge(v, 0x0E)) | eq(v, 0x20);
        let boundary = comma | ws;
        violation |= comma & ((boundary << 8) | carry);
        carry = boundary >> 56;
        commas += comma.count_ones() as usize;
    }
    if non_ascii != 0 {
        return slow();
    }
    let mut prev_is_boundary = carry != 0;
    for &b in chunks.remainder() {
        if b >= 0x80 {
            return slow();
        }
        if b == b',' {
            if prev_is_boundary {
                return slow();
            }
            commas += 1;
        }
        prev_is_boundary = matches!(b, 0x09..=0x0D | 0x20 | b',');
    }
    if violation != 0 {
        return slow();
    }
    commas + 1
}

/// Maximum parenthesis nesting depth of a statement.
fn exceeds_paren_depth(sql: &str, limit: u32) -> bool {
    // A statement shorter than the limit cannot nest past it — every open
    // paren is a byte — so ordinary statements skip both scans below.
    if sql.len() as u64 <= u64::from(limit) {
        return false;
    }
    // The open-paren count bounds the nesting depth from above and is a
    // constant-stride scan, unlike the sequential depth walk below; long
    // statements with few parens (e.g. mysql-ei-24's 3000-column CREATE)
    // skip the walk entirely.
    let opens = count_byte(sql.as_bytes(), b'(');
    if opens as u64 <= u64::from(limit) {
        return false;
    }
    let mut depth = 0u32;
    for b in sql.bytes() {
        match b {
            b'(' => {
                depth += 1;
                if depth > limit {
                    return true;
                }
            }
            b')' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    false
}

/// One table: named integer columns, rows, and at most one indexed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<i64>>,
    /// Index of the indexed column, if any.
    indexed: Option<usize>,
}

impl Table {
    fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// The checkpointable state of the server.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct DbState {
    enabled_bugs: BTreeSet<String>,
    tables: BTreeMap<String, Table>,
    locked: BTreeSet<String>,
    executed: u64,
}

/// The MySQL-like database server.
///
/// # Example
///
/// ```
/// use faultstudy_apps::{Application, MiniDb, Request};
/// use faultstudy_env::Environment;
///
/// let mut env = Environment::builder().seed(2).build();
/// let mut db = MiniDb::new(&mut env);
/// db.handle(&Request::new("CREATE TABLE t (k, v)"), &mut env).unwrap();
/// db.handle(&Request::new("INSERT INTO t VALUES (1, 10)"), &mut env).unwrap();
/// let resp = db.handle(&Request::new("SELECT COUNT(*) FROM t"), &mut env).unwrap();
/// assert!(format!("{resp:?}").contains('1'));
/// ```
#[derive(Debug)]
pub struct MiniDb {
    owner: OwnerId,
    state: DbState,
}

impl MiniDb {
    /// Creates the server, registering it as a resource owner in `env`.
    pub fn new(env: &mut Environment) -> MiniDb {
        let owner = env.register_owner("minidb");
        MiniDb { owner, state: DbState::default() }
    }

    /// Statements executed since start.
    pub fn executed(&self) -> u64 {
        self.state.executed
    }

    fn bug(&self, slug: &str) -> bool {
        self.state.enabled_bugs.contains(slug)
    }

    fn ok(&mut self, msg: impl Into<String>) -> Result<Response, AppFailure> {
        self.state.executed += 1;
        Ok(Response::Ok(msg.into()))
    }

    fn create_table(&mut self, rest: &str, env: &mut Environment) -> Result<Response, AppFailure> {
        // CREATE TABLE <name> (<c1>, <c2>, ...)
        let Some((name, cols)) = rest.split_once('(') else {
            return Ok(Response::Denied("syntax error in CREATE TABLE".into()));
        };
        let name = name.trim();
        let col_list = cols.trim_end_matches(')');
        let column_names = || col_list.split(',').map(str::trim).filter(|c| !c.is_empty());
        // Count before materializing: a 3000-column definition (mysql-ei-24's
        // trigger) is rejected — or crashes the buggy build — without
        // allocating a string per column first.
        let column_count = count_list_items(col_list);
        if name.is_empty() || column_count == 0 {
            return Ok(Response::Denied("empty table name or column list".into()));
        }
        // mysql-ei-24: the buggy build writes the definition array before
        // checking the field count.
        if column_count > COLUMN_LIMIT {
            if self.bug("mysql-ei-24") {
                return Err(AppFailure::Crash(
                    "definition array overrun before the field-count check".into(),
                ));
            }
            return Ok(Response::Denied(format!(
                "too many columns: {column_count} > {COLUMN_LIMIT}"
            )));
        }
        let name = name.to_owned();
        let columns: Vec<String> = column_names().map(str::to_owned).collect();
        if self.state.tables.contains_key(&name) {
            return Ok(Response::Denied(format!("table {name} exists")));
        }
        if env.fs.write(format!("minidb/{name}.dat"), 0).is_err() {
            return Ok(Response::Denied("cannot create data file".into()));
        }
        self.state
            .tables
            .insert(name.clone(), Table { columns, rows: Vec::new(), indexed: Some(0) });
        self.ok(format!("created {name}"))
    }

    fn insert(&mut self, rest: &str, env: &mut Environment) -> Result<Response, AppFailure> {
        // INSERT INTO <name> VALUES (<v1>, ...)
        let Some((name, values)) = rest.split_once("VALUES") else {
            return Ok(Response::Denied("syntax error in INSERT".into()));
        };
        let name = name.trim().trim_start_matches("INTO").trim().to_owned();
        let Some(table) = self.state.tables.get(&name) else {
            return Ok(Response::Denied(format!("no such table {name}")));
        };
        let parsed: Option<Vec<i64>> = values
            .trim()
            .trim_start_matches('(')
            .trim_end_matches(')')
            .split(',')
            .map(|v| v.trim().parse::<i64>().ok())
            .collect();
        let Some(row) = parsed else {
            return Ok(Response::Denied("non-integer value in INSERT".into()));
        };
        if row.len() != table.columns.len() {
            return Ok(Response::Denied("column count mismatch".into()));
        }
        match env.fs.append(format!("minidb/{name}.dat"), ROW_BYTES) {
            Ok(()) => {}
            Err(FsError::FileTooLarge { .. }) if self.bug("mysql-edn-03") => {
                return Err(AppFailure::Crash(
                    "table file exceeded the maximum allowed file size".into(),
                ));
            }
            Err(FsError::NoSpace { .. }) if self.bug("mysql-edn-04") => {
                return Err(AppFailure::ErrorReturn("write failed: file system full".into()));
            }
            Err(e) => return Ok(Response::Denied(format!("insert failed: {e}"))),
        }
        self.state.tables.get_mut(&name).expect("checked above").rows.push(row);
        self.ok("1 row inserted")
    }

    fn select(&mut self, rest: &str) -> Result<Response, AppFailure> {
        // SELECT <*|COUNT(*)> FROM <name> [WHERE c = v] [ORDER BY c]
        let Some((proj, tail)) = rest.split_once("FROM") else {
            return Ok(Response::Denied("syntax error in SELECT".into()));
        };
        let proj = proj.trim();
        let tail = tail.trim();
        let (name, where_clause, order_clause) = split_select_tail(tail);
        let Some(table) = self.state.tables.get(&name) else {
            return Ok(Response::Denied(format!("no such table {name}")));
        };

        let mut rows: Vec<&Vec<i64>> = table.rows.iter().collect();
        if let Some((col, val)) = where_clause {
            let Some(ci) = table.col(&col) else {
                return Ok(Response::Denied(format!("no such column {col}")));
            };
            rows.retain(|r| r[ci] == val);
        }

        if proj.eq_ignore_ascii_case("COUNT(*)") {
            if table.rows.is_empty() && self.bug("mysql-ei-03") {
                return Err(AppFailure::Crash(
                    "COUNT on an empty table: missing empty-table check".into(),
                ));
            }
            let n = rows.len();
            return self.ok(format!("{n}"));
        }

        if let Some(order_col) = order_clause {
            if rows.is_empty() && self.bug("mysql-ei-02") {
                return Err(AppFailure::Crash(
                    "ORDER BY over zero records: sort buffer uninitialized".into(),
                ));
            }
            let Some(ci) = table.col(&order_col) else {
                return Ok(Response::Denied(format!("no such column {order_col}")));
            };
            rows.sort_by_key(|r| r[ci]);
        }

        let rendered: Vec<String> = rows
            .iter()
            .map(|r| r.iter().map(i64::to_string).collect::<Vec<_>>().join(","))
            .collect();
        self.ok(rendered.join(";"))
    }

    fn update(&mut self, rest: &str) -> Result<Response, AppFailure> {
        // UPDATE <name> SET <col> = <v> [WHERE <col2> = <w>]
        let Some((name, tail)) = rest.split_once("SET") else {
            return Ok(Response::Denied("syntax error in UPDATE".into()));
        };
        let name = name.trim().to_owned();
        let buggy_index_scan = self.bug("mysql-ei-01");
        let Some(table) = self.state.tables.get_mut(&name) else {
            return Ok(Response::Denied(format!("no such table {name}")));
        };
        let (set_part, where_part) = match tail.split_once("WHERE") {
            Some((s, w)) => (s.trim(), Some(w.trim())),
            None => (tail.trim(), None),
        };
        let Some((set_col, set_val)) = parse_eq(set_part) else {
            return Ok(Response::Denied("syntax error in SET".into()));
        };
        let Some(sci) = table.col(&set_col) else {
            return Ok(Response::Denied(format!("no such column {set_col}")));
        };
        let filter = match where_part {
            Some(w) => match parse_eq(w) {
                Some((c, v)) => match table.col(&c) {
                    Some(ci) => Some((ci, v)),
                    None => return Ok(Response::Denied(format!("no such column {c}"))),
                },
                None => return Ok(Response::Denied("syntax error in WHERE".into())),
            },
            None => None,
        };

        // The mysql-ei-01 defect: updating an indexed column to a value
        // that will be found later while scanning the index creates
        // duplicate index entries and crashes. The fixed code first scans
        // for all matching rows, then updates.
        let mut updated = 0u32;
        for i in 0..table.rows.len() {
            let matches = filter.is_none_or(|(ci, v)| table.rows[i][ci] == v);
            if !matches {
                continue;
            }
            if buggy_index_scan && table.indexed == Some(sci) {
                let exists_later = table.rows[i + 1..].iter().any(|r| r[sci] == set_val);
                if exists_later {
                    return Err(AppFailure::Crash(
                        "duplicate values created in index during scan".into(),
                    ));
                }
            }
            table.rows[i][sci] = set_val;
            updated += 1;
        }
        self.ok(format!("{updated} rows updated"))
    }

    fn delete(&mut self, rest: &str) -> Result<Response, AppFailure> {
        // DELETE FROM <name> [WHERE c = v]
        let name_and_where = rest.trim().trim_start_matches("FROM").trim();
        let (name, filter) = match name_and_where.split_once("WHERE") {
            Some((n, w)) => (n.trim().to_owned(), Some(w.trim().to_owned())),
            None => (name_and_where.to_owned(), None),
        };
        let Some(table) = self.state.tables.get_mut(&name) else {
            return Ok(Response::Denied(format!("no such table {name}")));
        };
        let before = table.rows.len();
        match filter {
            None => table.rows.clear(),
            Some(w) => {
                let Some((c, v)) = parse_eq(&w) else {
                    return Ok(Response::Denied("syntax error in WHERE".into()));
                };
                let Some(ci) = table.col(&c) else {
                    return Ok(Response::Denied(format!("no such column {c}")));
                };
                table.rows.retain(|r| r[ci] != v);
            }
        }
        let removed = before - table.rows.len();
        self.ok(format!("{removed} rows deleted"))
    }

    fn connect(&mut self, req: &Request, env: &mut Environment) -> Result<Response, AppFailure> {
        // Each connection consumes a descriptor, then resolves the client.
        let fd = match env.fds.open(self.owner) {
            Ok(fd) => fd,
            Err(_) if self.bug("mysql-edn-01") => {
                return Err(AppFailure::Crash("accept failed: out of file descriptors".into()));
            }
            Err(_) => return Ok(Response::Denied("too many connections".into())),
        };
        let lookup = env.dns.resolve_reverse(&req.client, env.now());
        let _ = env.fds.close(fd);
        match lookup {
            Lookup::NoRecord if self.bug("mysql-edn-02") => Err(AppFailure::Crash(
                "null hostname from unconfigured reverse DNS dereferenced".into(),
            )),
            Lookup::NoRecord | Lookup::ServerError => {
                self.ok(format!("connected (unresolved {})", req.client))
            }
            Lookup::Resolved { .. } => self.ok(format!("connected {}", req.client)),
        }
    }

    fn race(
        &mut self,
        slug: &str,
        what: &str,
        env: &mut Environment,
    ) -> Result<Response, AppFailure> {
        if !self.bug(slug) {
            return self.ok(format!("{what} complete"));
        }
        match RaceGadget::default().run(env.current_interleaving()) {
            Ok(()) => self.ok(format!("{what} complete")),
            Err(reason) => Err(AppFailure::Crash(format!("{what}: {reason}"))),
        }
    }
}

/// Splits `"<name> [WHERE c = v] [ORDER BY c]"`.
fn split_select_tail(tail: &str) -> (String, Option<(String, i64)>, Option<String>) {
    let (rest, order) = match tail.split_once("ORDER BY") {
        Some((r, o)) => (r.trim(), Some(o.trim().to_owned())),
        None => (tail, None),
    };
    let (name, where_clause) = match rest.split_once("WHERE") {
        Some((n, w)) => (n.trim().to_owned(), parse_eq(w)),
        None => (rest.trim().to_owned(), None),
    };
    (name, where_clause, order)
}

/// Parses `"<col> = <int>"`.
fn parse_eq(s: &str) -> Option<(String, i64)> {
    let (c, v) = s.split_once('=')?;
    let col = c.trim();
    if col.is_empty() {
        return None;
    }
    Some((col.to_owned(), v.trim().parse().ok()?))
}

impl Application for MiniDb {
    fn kind(&self) -> AppKind {
        AppKind::Mysql
    }

    fn owner(&self) -> OwnerId {
        self.owner
    }

    fn handle(&mut self, req: &Request, env: &mut Environment) -> Result<Response, AppFailure> {
        let body = req.body.trim();
        // mysql-ei-18: the recursive-descent expression parser has a fixed
        // stack; the healthy build bounds the depth first.
        if exceeds_paren_depth(body, PAREN_DEPTH_LIMIT) {
            if self.bug("mysql-ei-18") {
                return Err(AppFailure::Crash(
                    "parser stack overrun on deeply nested parentheses".into(),
                ));
            }
            return Ok(Response::Denied("expression too deeply nested".into()));
        }
        if let Some(slug) = body.strip_prefix("PROBE ") {
            return if self.bug(slug) {
                Err(AppFailure::Crash(format!("deterministic defect {slug} triggered")))
            } else {
                self.ok("probe passed")
            };
        }
        if let Some(rest) = body.strip_prefix("CREATE TABLE ") {
            return self.create_table(rest, env);
        }
        if let Some(rest) = body.strip_prefix("INSERT ") {
            return self.insert(rest, env);
        }
        if let Some(rest) = body.strip_prefix("SELECT ") {
            return self.select(rest);
        }
        if let Some(rest) = body.strip_prefix("UPDATE ") {
            return self.update(rest);
        }
        if let Some(rest) = body.strip_prefix("DELETE ") {
            return self.delete(rest);
        }
        if let Some(rest) = body.strip_prefix("OPTIMIZE TABLE ") {
            let name = rest.trim();
            if !self.state.tables.contains_key(name) {
                return Ok(Response::Denied(format!("no such table {name}")));
            }
            if self.bug("mysql-ei-04") {
                return Err(AppFailure::Crash(
                    "OPTIMIZE TABLE: missing initialization in repair path".into(),
                ));
            }
            return self.ok(format!("optimized {name}"));
        }
        if let Some(rest) = body.strip_prefix("LOCK TABLES ") {
            let name = rest.trim().to_owned();
            if !self.state.tables.contains_key(&name) {
                return Ok(Response::Denied(format!("no such table {name}")));
            }
            self.state.locked.insert(name);
            return self.ok("locked");
        }
        match body {
            "UNLOCK TABLES" => {
                self.state.locked.clear();
                self.ok("unlocked")
            }
            "FLUSH TABLES" => {
                if !self.state.locked.is_empty() && self.bug("mysql-ei-05") {
                    return Err(AppFailure::Crash(
                        "FLUSH after LOCK frees the held lock list".into(),
                    ));
                }
                self.ok("flushed")
            }
            "CONNECT" => self.connect(req, env),
            "SHUTDOWN" => self.race("mysql-edt-01", "shutdown", env),
            "ADMIN KILL" => self.race("mysql-edt-02", "admin command", env),
            "PING" => self.ok("pong"),
            other => Ok(Response::Denied(format!("syntax error near: {other}"))),
        }
    }

    fn snapshot(&self) -> AppState {
        AppState::encode(&self.state)
    }

    fn restore(&mut self, state: &AppState) {
        self.state = state.decode();
    }

    fn inject(&mut self, slug: &str, env: &mut Environment) -> Result<(), InjectError> {
        fn fixture(state: &mut DbState, env: &mut Environment, name: &str, rows: Vec<Vec<i64>>) {
            let _ = env.fs.write(format!("minidb/{name}.dat"), ROW_BYTES * rows.len() as u64);
            state.tables.insert(
                name.to_owned(),
                Table { columns: vec!["k".into(), "v".into()], rows, indexed: Some(0) },
            );
        }
        match slug {
            "mysql-ei-01" => fixture(&mut self.state, env, "t", vec![vec![1, 10], vec![2, 20]]),
            "mysql-ei-02" | "mysql-ei-03" => fixture(&mut self.state, env, "empty", Vec::new()),
            "mysql-ei-04" => fixture(&mut self.state, env, "t", vec![vec![1, 10]]),
            "mysql-ei-05" => {
                fixture(&mut self.state, env, "t", vec![vec![1, 10]]);
                // The session had issued LOCK TABLES before the fatal FLUSH.
                self.state.locked.insert("t".to_owned());
            }
            s if s.starts_with("mysql-ei-") => {}
            "mysql-edn-01" => {
                // The co-hosted web server grabs every descriptor.
                let web = env.register_owner("cohosted-webserver");
                env.fds.exhaust_as(web);
            }
            "mysql-edn-02" => {} // the client simply has no PTR record
            "mysql-edn-03" => {
                fixture(&mut self.state, env, "t", vec![vec![1, 10]]);
                let max = env.fs.max_file_size();
                env.fs.write("minidb/t.dat", max).expect("data file can reach the limit");
            }
            "mysql-edn-04" => {
                fixture(&mut self.state, env, "t", vec![vec![1, 10]]);
                env.fs.fill_with_ballast();
            }
            "mysql-edt-01" | "mysql-edt-02" => {
                // Arm the race: the reported failure happened under an
                // interleaving inside the window, so the first execution
                // must observe one. Retries see fresh environment timing.
                env.force_interleave_seed(RaceGadget::default().crashing_seed());
            }
            _ => return Err(InjectError { slug: slug.to_owned() }),
        }
        self.state.enabled_bugs.insert(slug.to_owned());
        Ok(())
    }

    fn trigger_request(&self, slug: &str) -> Option<Request> {
        let req = match slug {
            "mysql-ei-01" => Request::new("UPDATE t SET k = 2 WHERE k = 1"),
            "mysql-ei-02" => Request::new("SELECT * FROM empty WHERE k = 7 ORDER BY v"),
            "mysql-ei-03" => Request::new("SELECT COUNT(*) FROM empty"),
            "mysql-ei-04" => Request::new("OPTIMIZE TABLE t"),
            "mysql-ei-05" => Request::new("FLUSH TABLES"),
            "mysql-ei-18" => {
                let depth = (PAREN_DEPTH_LIMIT + 1) as usize;
                Request::new(format!(
                    "SELECT * FROM t WHERE {}k = 1{}",
                    "(".repeat(depth),
                    ")".repeat(depth)
                ))
            }
            "mysql-ei-24" => {
                // 3001 columns make this by far the largest trigger; the
                // text is a pure function of the slug, so build it once.
                use std::sync::OnceLock;
                static WIDE: OnceLock<Request> = OnceLock::new();
                WIDE.get_or_init(|| {
                    use std::fmt::Write;
                    let mut sql = String::with_capacity(8 * (COLUMN_LIMIT + 2));
                    sql.push_str("CREATE TABLE wide (");
                    for i in 0..=COLUMN_LIMIT {
                        if i > 0 {
                            sql.push_str(", ");
                        }
                        let _ = write!(sql, "c{i}");
                    }
                    sql.push(')');
                    Request::new(sql)
                })
                .clone()
            }
            s if s.starts_with("mysql-ei-") => Request::new(format!("PROBE {s}")),
            "mysql-edn-01" => Request::new("CONNECT"),
            "mysql-edn-02" => Request::new("CONNECT").from_client("unregistered.host"),
            "mysql-edn-03" | "mysql-edn-04" => Request::new("INSERT INTO t VALUES (3, 30)"),
            "mysql-edt-01" => Request::new("SHUTDOWN"),
            "mysql-edt-02" => Request::new("ADMIN KILL"),
            _ => return None,
        };
        Some(req)
    }

    fn benign_request(&self) -> Request {
        Request::new("PING")
    }

    fn as_crash_only(&mut self) -> Option<&mut dyn CrashOnly> {
        Some(self)
    }

    fn check_oracle(&self, env: &Environment) -> Vec<String> {
        let mut violations = Vec::new();
        for (name, table) in &self.state.tables {
            // Durable-row invariant: every committed row was appended to the
            // table's data file before it entered memory, so the file must
            // hold at least ROW_BYTES per row. A lower bound, not equality:
            // injections legitimately grow the file (filled disk, size-limit
            // preconditions) without adding rows.
            let need = ROW_BYTES * table.rows.len() as u64;
            match env.fs.stat(&format!("minidb/{name}.dat")) {
                None => violations
                    .push(format!("table {name}: in-memory rows but the data file is gone")),
                Some(meta) if meta.size < need => violations.push(format!(
                    "table {name}: {} rows need {need} durable bytes, file has {}",
                    table.rows.len(),
                    meta.size
                )),
                Some(_) => {}
            }
            if table.rows.iter().any(|r| r.len() != table.columns.len()) {
                violations.push(format!(
                    "table {name}: row width disagrees with its {} columns",
                    table.columns.len()
                ));
            }
            if table.indexed.is_some_and(|ci| ci >= table.columns.len()) {
                violations.push(format!("table {name}: index points past the last column"));
            }
        }
        for name in &self.state.locked {
            if !self.state.tables.contains_key(name) {
                violations.push(format!("lock held on nonexistent table {name}"));
            }
        }
        violations
    }
}

/// Component indices of the database's crash-only partition.
const DB_EXECUTOR: usize = 0;
const DB_PARSER: usize = 1;
const DB_BUFFER_POOL: usize = 2;
const DB_WAL: usize = 3;

/// The database's component tree: the executor owns a connection parser, a
/// buffer pool, and the write-ahead log. Tables (in state and in their
/// `.dat` files) are durable ground truth no component crash may touch;
/// the lock table and open connections are exactly the state a crash
/// discards.
static DB_COMPONENTS: [ComponentDesc; 4] = [
    ComponentDesc {
        name: "db-executor",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(35),
        parent: None,
    },
    ComponentDesc {
        name: "db-parser",
        state_kind: StateKind::Volatile,
        boot_cost: Duration::from_millis(10),
        parent: Some(DB_EXECUTOR),
    },
    ComponentDesc {
        name: "db-buffer-pool",
        state_kind: StateKind::DurableSoft,
        boot_cost: Duration::from_millis(25),
        parent: Some(DB_EXECUTOR),
    },
    ComponentDesc {
        name: "db-wal",
        state_kind: StateKind::DurableHard,
        boot_cost: Duration::from_millis(60),
        parent: Some(DB_EXECUTOR),
    },
];

impl CrashOnly for MiniDb {
    fn components(&self) -> &'static [ComponentDesc] {
        &DB_COMPONENTS
    }

    fn route(&self, body: &str) -> usize {
        let body = body.trim();
        if body.starts_with("CONNECT") || body == "PING" {
            return DB_PARSER;
        }
        if body.starts_with("LOCK TABLES ") || body == "UNLOCK TABLES" {
            return DB_BUFFER_POOL;
        }
        if body == "FLUSH TABLES" {
            // Flushing persists table state: write-ahead-log territory.
            return DB_WAL;
        }
        // Statements (SELECT/INSERT/UPDATE/DELETE/CREATE/OPTIMIZE),
        // SHUTDOWN/ADMIN KILL races, PROBE, and anything unknown.
        DB_EXECUTOR
    }

    fn crash_component(&mut self, index: usize, env: &mut Environment) {
        match index {
            DB_EXECUTOR => {
                // In-flight statements die; their session locks die with
                // them. Committed tables are durable and untouched.
                self.state.locked.clear();
                env.procs.kill_all_of(self.owner);
            }
            DB_PARSER => {
                // Client connections (descriptors) die with the parser.
                env.fds.close_all_of(self.owner);
            }
            DB_BUFFER_POOL => {
                // Cached pages and the lock table are discarded; the `.dat`
                // files rebuild the pool on demand.
                self.state.locked.clear();
            }
            // Durable-hard: nothing may be discarded.
            _ => {}
        }
    }

    fn boot_component(&mut self, _index: usize, _env: &mut Environment) {
        // Tables reload lazily from their data files; defects and the
        // executed counter are durable and carry over.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultstudy_sim::time::Duration;

    fn reference_count(list: &str) -> usize {
        list.split(',').map(str::trim).filter(|c| !c.is_empty()).count()
    }

    #[test]
    fn list_counting_matches_the_segment_walk() {
        let cases = [
            "",
            "a",
            "a,b",
            "a, b, c",
            ",",
            ",,",
            "a,",
            ",a",
            " , ",
            "a, ,b",
            "a\t,b",
            "a,\u{a0},b",  // non-ASCII whitespace segment trims to empty
            "a,\u{a0}x,b", // non-ASCII whitespace inside a real segment
            "naïve,café",  // non-ASCII non-whitespace
            "a\u{b},b",    // vertical tab: char-whitespace, not u8-ascii-ws
            "x, y\r\n, z ",
            "c0, c1, c2, c3, c4, c5, c6, c7, c8, c9",
        ];
        for case in cases {
            assert_eq!(count_list_items(case), reference_count(case), "{case:?}");
        }
        // The hot shape: thousands of short items, digits before commas.
        let mut wide = String::new();
        for i in 0..=COLUMN_LIMIT {
            use std::fmt::Write as _;
            write!(wide, "c{i}, ").unwrap();
        }
        wide.truncate(wide.len() - 2);
        assert_eq!(count_list_items(&wide), COLUMN_LIMIT + 1);
    }

    #[test]
    fn list_counting_matches_on_randomized_inputs() {
        use faultstudy_sim::rng::{DetRng, Xoshiro256StarStar};
        let mut rng = Xoshiro256StarStar::seed_from(24);
        let alphabet = [',', ' ', '\t', '\n', '\u{b}', 'a', '7', '\u{a0}', 'é', '('];
        for _ in 0..2000 {
            let len = rng.below(40) as usize;
            let s: String =
                (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect();
            assert_eq!(count_list_items(&s), reference_count(&s), "{s:?}");
        }
    }

    #[test]
    fn byte_counting_matches_the_filter_walk() {
        use faultstudy_sim::rng::{DetRng, Xoshiro256StarStar};
        let mut rng = Xoshiro256StarStar::seed_from(7);
        for _ in 0..500 {
            let len = rng.below(70) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let needle = rng.below(256) as u8;
            assert_eq!(
                count_byte(&bytes, needle),
                bytes.iter().filter(|&&b| b == needle).count(),
                "{bytes:?} needle {needle}"
            );
        }
    }

    fn setup() -> (Environment, MiniDb) {
        let mut env = Environment::builder()
            .seed(9)
            .fd_limit(8)
            .fs_capacity(64 * 1024)
            .max_file_size(8 * 1024)
            .build();
        let db = MiniDb::new(&mut env);
        (env, db)
    }

    fn run(db: &mut MiniDb, env: &mut Environment, sql: &str) -> Result<Response, AppFailure> {
        db.handle(&Request::new(sql), env)
    }

    #[test]
    fn create_insert_select_round_trip() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        run(&mut db, &mut env, "INSERT INTO t VALUES (2, 20)").unwrap();
        run(&mut db, &mut env, "INSERT INTO t VALUES (1, 10)").unwrap();
        let resp = run(&mut db, &mut env, "SELECT * FROM t ORDER BY k").unwrap();
        assert_eq!(resp, Response::Ok("1,10;2,20".into()));
        let count = run(&mut db, &mut env, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(count, Response::Ok("2".into()));
    }

    #[test]
    fn where_filter_and_update_and_delete() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        for (k, v) in [(1, 10), (2, 20), (3, 30)] {
            run(&mut db, &mut env, &format!("INSERT INTO t VALUES ({k}, {v})")).unwrap();
        }
        let resp = run(&mut db, &mut env, "SELECT * FROM t WHERE k = 2").unwrap();
        assert_eq!(resp, Response::Ok("2,20".into()));
        run(&mut db, &mut env, "UPDATE t SET v = 99 WHERE k = 2").unwrap();
        let resp = run(&mut db, &mut env, "SELECT * FROM t WHERE k = 2").unwrap();
        assert_eq!(resp, Response::Ok("2,99".into()));
        run(&mut db, &mut env, "DELETE FROM t WHERE k = 1").unwrap();
        let count = run(&mut db, &mut env, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(count, Response::Ok("2".into()));
    }

    #[test]
    fn syntax_errors_are_graceful() {
        let (mut env, mut db) = setup();
        for sql in [
            "SELECT FROM",
            "CREATE TABLE",
            "INSERT INTO nowhere VALUES (1)",
            "UPDATE t SET",
            "GIBBERISH",
            "SELECT * FROM missing",
        ] {
            let resp = run(&mut db, &mut env, sql).expect("graceful");
            assert!(!resp.is_ok(), "{sql}");
        }
    }

    #[test]
    fn count_on_empty_table_crashes_only_with_bug() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE empty (k, v)").unwrap();
        assert!(run(&mut db, &mut env, "SELECT COUNT(*) FROM empty").unwrap().is_ok());
        db.inject("mysql-ei-03", &mut env).unwrap();
        let req = db.trigger_request("mysql-ei-03").unwrap();
        assert!(matches!(db.handle(&req, &mut env), Err(AppFailure::Crash(_))));
    }

    #[test]
    fn order_by_zero_records_crashes_only_with_bug() {
        let (mut env, mut db) = setup();
        db.inject("mysql-ei-02", &mut env).unwrap();
        let req = db.trigger_request("mysql-ei-02").unwrap();
        assert!(db.handle(&req, &mut env).is_err());
        // Non-empty result under the same bug is fine.
        run(&mut db, &mut env, "INSERT INTO empty VALUES (7, 70)").unwrap();
        assert!(run(&mut db, &mut env, "SELECT * FROM empty WHERE k = 7 ORDER BY v")
            .unwrap()
            .is_ok());
    }

    #[test]
    fn index_duplicate_update_crashes_and_fixed_order_is_fine() {
        let (mut env, mut db) = setup();
        db.inject("mysql-ei-01", &mut env).unwrap();
        let req = db.trigger_request("mysql-ei-01").unwrap();
        assert!(db.handle(&req, &mut env).is_err(), "k=1 -> 2 duplicates the later key");
        // Updating to a fresh value takes the same path without the crash.
        assert!(run(&mut db, &mut env, "UPDATE t SET k = 9 WHERE k = 1").unwrap().is_ok());
    }

    #[test]
    fn flush_after_lock_crashes_with_bug() {
        let (mut env, mut db) = setup();
        db.inject("mysql-ei-05", &mut env).unwrap();
        let req = db.trigger_request("mysql-ei-05").unwrap();
        assert!(db.handle(&req, &mut env).is_err());
        // And deterministically again after a state round-trip.
        let snap = db.snapshot();
        db.restore(&snap);
        assert!(db.handle(&req, &mut env).is_err());
    }

    #[test]
    fn optimize_crashes_with_bug_only() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        assert!(run(&mut db, &mut env, "OPTIMIZE TABLE t").unwrap().is_ok());
        db.inject("mysql-ei-04", &mut env).unwrap();
        let req = db.trigger_request("mysql-ei-04").unwrap();
        assert!(db.handle(&req, &mut env).is_err());
    }

    #[test]
    fn fd_competition_persists_across_generic_recovery() {
        let (mut env, mut db) = setup();
        db.inject("mysql-edn-01", &mut env).unwrap();
        let req = db.trigger_request("mysql-edn-01").unwrap();
        assert!(db.handle(&req, &mut env).is_err());
        env.on_generic_recovery(db.owner());
        assert!(db.handle(&req, &mut env).is_err(), "the web server still holds the descriptors");
    }

    #[test]
    fn reverse_dns_fault_is_per_client() {
        let (mut env, mut db) = setup();
        env.dns.configure_reverse("friendly.host");
        db.inject("mysql-edn-02", &mut env).unwrap();
        let bad = db.trigger_request("mysql-edn-02").unwrap();
        assert!(db.handle(&bad, &mut env).is_err());
        let good = Request::new("CONNECT").from_client("friendly.host");
        assert!(db.handle(&good, &mut env).unwrap().is_ok());
    }

    #[test]
    fn max_file_size_blocks_inserts_permanently() {
        let (mut env, mut db) = setup();
        db.inject("mysql-edn-03", &mut env).unwrap();
        let req = db.trigger_request("mysql-edn-03").unwrap();
        assert!(db.handle(&req, &mut env).is_err());
        env.on_generic_recovery(db.owner());
        env.advance(Duration::from_secs(300));
        assert!(db.handle(&req, &mut env).is_err());
    }

    #[test]
    fn full_filesystem_blocks_inserts() {
        let (mut env, mut db) = setup();
        db.inject("mysql-edn-04", &mut env).unwrap();
        let req = db.trigger_request("mysql-edn-04").unwrap();
        match db.handle(&req, &mut env) {
            Err(AppFailure::ErrorReturn(msg)) => assert!(msg.contains("full")),
            other => panic!("expected hard error, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_race_depends_on_interleaving_and_time_heals_it() {
        let (mut env, mut db) = setup();
        db.inject("mysql-edt-01", &mut env).unwrap();
        let req = db.trigger_request("mysql-edt-01").unwrap();
        // Deterministic for a fixed environment.
        let first = db.handle(&req, &mut env).is_err();
        let again = db.handle(&req, &mut env).is_err();
        assert_eq!(first, again, "same environment, same interleaving, same outcome");
        // Across environment changes some attempt eventually succeeds.
        let mut survived = false;
        for _ in 0..20 {
            env.advance(Duration::from_millis(100));
            if db.handle(&req, &mut env).is_ok() {
                survived = true;
                break;
            }
        }
        assert!(survived, "the race window is not total");
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        run(&mut db, &mut env, "INSERT INTO t VALUES (1, 10)").unwrap();
        let snap = db.snapshot();
        run(&mut db, &mut env, "INSERT INTO t VALUES (2, 20)").unwrap();
        db.restore(&snap);
        let count = run(&mut db, &mut env, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(count, Response::Ok("1".into()));
    }

    #[test]
    fn deep_parentheses_denied_when_healthy_crash_with_bug() {
        let (mut env, mut db) = setup();
        db.inject("mysql-ei-18", &mut env).unwrap();
        let deep = db.trigger_request("mysql-ei-18").unwrap();
        assert!(db.handle(&deep, &mut env).is_err());
        // Shallow nesting parses normally even with the bug present.
        run(&mut db, &mut env, "CREATE TABLE t2 (k, v)").unwrap();
        assert!(run(&mut db, &mut env, "SELECT * FROM t2 WHERE k = 1").unwrap().is_ok());
        // Healthy build: deep nesting is a graceful error.
        let mut env2 = Environment::builder().seed(1).build();
        let mut healthy = MiniDb::new(&mut env2);
        let resp = healthy.handle(&deep, &mut env2).unwrap();
        assert!(!resp.is_ok());
    }

    #[test]
    fn wide_create_table_denied_when_healthy_crash_with_bug() {
        let (mut env, mut db) = setup();
        let wide = MiniDb::new(&mut Environment::builder().seed(2).build())
            .trigger_request("mysql-ei-24")
            .unwrap();
        let resp = db.handle(&wide, &mut env).unwrap();
        assert!(!resp.is_ok(), "healthy: too many columns denied");
        db.inject("mysql-ei-24", &mut env).unwrap();
        assert!(db.handle(&wide, &mut env).is_err());
    }

    #[test]
    fn every_corpus_mysql_slug_has_a_trigger() {
        let (_, db) = setup();
        for f in faultstudy_corpus::corpus_for(faultstudy_core::taxonomy::AppKind::Mysql) {
            assert!(db.trigger_request(f.slug()).is_some(), "{}", f.slug());
        }
        assert!(db.trigger_request("apache-ei-01").is_none());
    }

    #[test]
    fn oracle_is_silent_on_consistent_state() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        run(&mut db, &mut env, "INSERT INTO t VALUES (1, 10)").unwrap();
        run(&mut db, &mut env, "LOCK TABLES t").unwrap();
        assert!(db.check_oracle(&env).is_empty());
    }

    #[test]
    fn oracle_catches_rows_without_durable_backing() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        run(&mut db, &mut env, "INSERT INTO t VALUES (1, 10)").unwrap();
        env.fs.remove("minidb/t.dat").unwrap();
        let violations = db.check_oracle(&env);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("data file is gone"), "{violations:?}");
    }

    #[test]
    fn oracle_catches_locks_on_dropped_tables() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        run(&mut db, &mut env, "LOCK TABLES t").unwrap();
        db.state.tables.remove("t");
        let violations = db.check_oracle(&env);
        assert!(violations.iter().any(|v| v.contains("nonexistent table")), "{violations:?}");
    }

    #[test]
    fn oracle_tolerates_injection_grown_files() {
        // mysql-edn-03 grows the data file to the per-file limit; a durable
        // surplus is not corruption, only a deficit is.
        let (mut env, mut db) = setup();
        db.inject("mysql-edn-03", &mut env).unwrap();
        assert!(db.check_oracle(&env).is_empty());
    }

    #[test]
    fn lock_unlock_flush_are_benign_without_bug() {
        let (mut env, mut db) = setup();
        run(&mut db, &mut env, "CREATE TABLE t (k, v)").unwrap();
        assert!(run(&mut db, &mut env, "LOCK TABLES t").unwrap().is_ok());
        assert!(run(&mut db, &mut env, "FLUSH TABLES").unwrap().is_ok());
        assert!(run(&mut db, &mut env, "UNLOCK TABLES").unwrap().is_ok());
    }
}
