//! A reusable use-after-free race gadget.
//!
//! Every race fault in the corpus has the same anatomy: two concurrent
//! activities share a resource, and one interleaving order frees (or
//! removes, or masks) the resource while the other still needs it. The
//! gadget realises that anatomy on the deterministic step scheduler: a
//! *user* task that initialises and then uses a shared slot, and a
//! *remover* task that waits a configurable number of steps and then frees
//! the slot. Whether the run crashes depends solely on the interleaving —
//! which the environment owns — so the same gadget run under
//! [`Environment::current_interleaving`](faultstudy_env::Environment::current_interleaving)
//! is deterministic for a fixed environment and variable across retries,
//! exactly the paper's definition of an environment-dependent-transient
//! fault.

use faultstudy_sim::sched::{Interleaver, StepOutcome, StepScheduler, Task};
use serde::{Deserialize, Serialize};

/// Shared state of the gadget.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    /// The resource, present until the remover frees it.
    resource: Option<u32>,
    /// Set once the user has safely finished.
    user_done: bool,
}

/// The user task: `prepare_steps` setup steps, then one use of the
/// resource. Using a freed resource crashes.
struct UserTask {
    prepare_left: u32,
}

impl Task<Slot> for UserTask {
    fn step(&mut self, shared: &mut Slot) -> StepOutcome {
        if self.prepare_left > 0 {
            self.prepare_left -= 1;
            return StepOutcome::Ready;
        }
        match shared.resource {
            Some(_) => {
                shared.user_done = true;
                StepOutcome::Done
            }
            None => StepOutcome::Failed("use after free: resource gone".to_owned()),
        }
    }

    fn label(&self) -> &str {
        "user"
    }
}

/// The remover task: `delay_steps` steps of unrelated work, then frees the
/// resource (gracefully if the user already finished).
struct RemoverTask {
    delay_left: u32,
}

impl Task<Slot> for RemoverTask {
    fn step(&mut self, shared: &mut Slot) -> StepOutcome {
        if self.delay_left > 0 {
            self.delay_left -= 1;
            return StepOutcome::Ready;
        }
        shared.resource = None;
        StepOutcome::Done
    }

    fn label(&self) -> &str {
        "remover"
    }
}

/// Configuration of one race execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceGadget {
    /// Setup steps the user performs before touching the resource. More
    /// setup widens the window in which the remover can win.
    pub user_prepare_steps: u32,
    /// Steps the remover works before freeing. More delay narrows the
    /// window.
    pub remover_delay_steps: u32,
}

impl Default for RaceGadget {
    fn default() -> Self {
        // A window in which roughly a third of random interleavings lose.
        RaceGadget { user_prepare_steps: 2, remover_delay_steps: 2 }
    }
}

impl RaceGadget {
    /// Runs the two tasks under `interleaver`.
    ///
    /// Returns `Ok(())` if the user used the resource before the remover
    /// freed it, or `Err(reason)` for the crashing interleavings.
    ///
    /// # Example
    ///
    /// ```
    /// use faultstudy_apps::race::RaceGadget;
    /// use faultstudy_sim::sched::Interleaver;
    ///
    /// let gadget = RaceGadget::default();
    /// // A scripted schedule that lets the remover win always crashes:
    /// let crashing = Interleaver::Fixed(vec![1, 1, 1, 0, 0, 0]);
    /// assert!(gadget.run(crashing).is_err());
    /// ```
    pub fn run(&self, interleaver: Interleaver) -> Result<(), String> {
        let mut sched =
            StepScheduler::new(Slot { resource: Some(7), user_done: false }, interleaver);
        sched.spawn(UserTask { prepare_left: self.user_prepare_steps });
        sched.spawn(RemoverTask { delay_left: self.remover_delay_steps });
        let (slot, report) = sched.run(10_000);
        match report.failure {
            Some((_, reason)) => Err(reason),
            None => {
                debug_assert!(slot.user_done);
                Ok(())
            }
        }
    }

    /// The smallest interleaver seed whose schedule crashes this gadget.
    ///
    /// Fault injection uses this to *arm* a race: the bug report being
    /// reproduced documents that the failure did occur, so the first
    /// execution must run under an interleaving inside the race window.
    /// Subsequent retries draw fresh interleavings from the environment.
    ///
    /// # Panics
    ///
    /// Panics if no seed below 4096 crashes — a sign the window is
    /// configured empty.
    pub fn crashing_seed(&self) -> u64 {
        (0..4096)
            .find(|s| self.run(Interleaver::Seeded(*s)).is_err())
            .expect("race window is non-empty")
    }

    /// Fraction of seeds in `0..samples` whose interleaving crashes; the
    /// gadget's empirical race window.
    pub fn crash_rate(&self, samples: u64) -> f64 {
        let crashes =
            (0..samples).filter(|seed| self.run(Interleaver::Seeded(*seed)).is_err()).count();
        crashes as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_schedule_reproduces_the_crash() {
        // Remover runs to completion first: user then sees a freed slot.
        let g = RaceGadget::default();
        let crash = g.run(Interleaver::Fixed(vec![1, 1, 1, 0, 0, 0]));
        assert!(crash.is_err());
        assert!(crash.unwrap_err().contains("use after free"));
    }

    #[test]
    fn fixed_schedule_also_reproduces_the_safe_order() {
        // User runs to completion first.
        let g = RaceGadget::default();
        assert!(g.run(Interleaver::Fixed(vec![0, 0, 0, 1, 1, 1])).is_ok());
    }

    #[test]
    fn same_seed_same_outcome() {
        let g = RaceGadget::default();
        for seed in 0..32 {
            assert_eq!(
                g.run(Interleaver::Seeded(seed)).is_ok(),
                g.run(Interleaver::Seeded(seed)).is_ok(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn window_is_neither_empty_nor_total() {
        let rate = RaceGadget::default().crash_rate(400);
        assert!(rate > 0.05, "some interleavings must crash, rate={rate}");
        assert!(rate < 0.95, "most retries should eventually succeed, rate={rate}");
    }

    #[test]
    fn wider_window_crashes_more() {
        let narrow = RaceGadget { user_prepare_steps: 1, remover_delay_steps: 6 }.crash_rate(400);
        let wide = RaceGadget { user_prepare_steps: 6, remover_delay_steps: 1 }.crash_rate(400);
        assert!(wide > narrow, "wide={wide} narrow={narrow}");
    }

    #[test]
    fn round_robin_is_deterministic_and_safe_for_default_window() {
        // Round-robin alternation lets the user reach the resource in time
        // for the default geometry; this anchors the "fixed environment =>
        // deterministic outcome" property.
        let g = RaceGadget::default();
        assert!(g.run(Interleaver::RoundRobin).is_ok());
    }
}
