//! The application abstraction shared by the three simulated programs.

use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::{Environment, OwnerId};
use faultstudy_micro::CrashOnly;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One workload request to an application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// The application-specific command, e.g. `"GET /index.html"` or
    /// `"SELECT COUNT(*) FROM t"`.
    pub body: String,
    /// The requesting client's host name (used by reverse-DNS paths).
    pub client: String,
    /// Whether the one-shot external timing event accompanying this
    /// request fires (a user pressing stop mid-download, an unexplained
    /// transient). The event belongs to the *operating environment's
    /// timing*, so a generic recovery's replay of the same request does
    /// not replay the event — the harness sets this only on the first
    /// attempt.
    pub timing_event: bool,
}

impl Request {
    /// A request with the given body from the default client.
    pub fn new(body: impl Into<String>) -> Request {
        Request { body: body.into(), client: "client0".to_owned(), timing_event: false }
    }

    /// Sets the client host.
    pub fn from_client(mut self, client: impl Into<String>) -> Request {
        self.client = client.into();
        self
    }

    /// Arms the one-shot timing event.
    pub fn with_timing_event(mut self) -> Request {
        self.timing_event = true;
        self
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (from {})", self.body, self.client)
    }
}

/// A successful (or gracefully failed) response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// The request was served; payload is application-specific.
    Ok(String),
    /// The application detected a problem and reported it without failing
    /// (e.g. an SQL syntax error). Not a fault manifestation.
    Denied(String),
}

impl Response {
    /// Whether the request was served.
    pub fn is_ok(&self) -> bool {
        matches!(self, Response::Ok(_))
    }
}

/// A high-impact failure: the manifestations the study selects for —
/// crashes, hangs, and hard error returns (§4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppFailure {
    /// The process died (segfault, abort, assertion).
    Crash(String),
    /// The process stopped responding.
    Hang(String),
    /// The operation failed hard with an error the application could not
    /// mask (e.g. every write failing on a full filesystem).
    ErrorReturn(String),
}

impl AppFailure {
    /// Short description of what went wrong.
    pub fn reason(&self) -> &str {
        match self {
            AppFailure::Crash(r) | AppFailure::Hang(r) | AppFailure::ErrorReturn(r) => r,
        }
    }
}

impl fmt::Display for AppFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppFailure::Crash(r) => write!(f, "crash: {r}"),
            AppFailure::Hang(r) => write!(f, "hang: {r}"),
            AppFailure::ErrorReturn(r) => write!(f, "error: {r}"),
        }
    }
}

impl std::error::Error for AppFailure {}

/// An opaque, serialized application checkpoint.
///
/// A *truly generic* recovery system "must preserve all application state
/// (e.g. by checkpointing or logging), because there is no application-
/// specific code to reconstruct missing state" (§2) — so the checkpoint is
/// a serialized value tree the recovery layer cannot interpret, only
/// restore. The tree is held in serialization form (`serde::Content`)
/// rather than rendered text: checkpoint strategies snapshot after *every*
/// served request, so the encode/decode pair is the hottest allocation
/// site in a campaign, and rendering JSON just to re-parse it on restore
/// would double the cost for nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppState(serde::Content);

impl AppState {
    /// Serializes a state value.
    pub fn encode<T: Serialize>(state: &T) -> AppState {
        AppState(state.to_content())
    }

    /// Deserializes back into a concrete state type.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not decode as `T` — restoring a
    /// checkpoint into the wrong application is a harness bug, not a
    /// recoverable condition.
    pub fn decode<T: for<'de> Deserialize<'de>>(&self) -> T {
        T::from_content(&self.0).expect("checkpoint decodes into its own state type")
    }

    /// Size of the serialized checkpoint in bytes (used by the recovery
    /// overhead benchmarks). Rendered on demand; campaigns never call this.
    pub fn size_bytes(&self) -> usize {
        serde_json::to_string(&self.0).expect("checkpoint renders").len()
    }
}

/// Error injecting a fault the application does not know.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectError {
    /// The slug that was not recognised.
    pub slug: String,
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown fault slug for this application: {}", self.slug)
    }
}

impl std::error::Error for InjectError {}

/// A simulated application: a checkpointable state machine over the
/// simulated operating environment.
pub trait Application {
    /// Which of the study's applications this simulates.
    fn kind(&self) -> AppKind;

    /// The application's resource-owner id in the environment.
    fn owner(&self) -> OwnerId;

    /// Handles one request against the environment.
    ///
    /// # Errors
    ///
    /// Returns an [`AppFailure`] when the request manifests a fault
    /// (injected or environmental).
    fn handle(&mut self, req: &Request, env: &mut Environment) -> Result<Response, AppFailure>;

    /// Takes a full checkpoint of application state.
    fn snapshot(&self) -> AppState;

    /// Restores a checkpoint taken by [`Application::snapshot`].
    fn restore(&mut self, state: &AppState);

    /// Enables the corpus fault `slug` in this application and sets up any
    /// environmental precondition the fault's trigger requires (fills the
    /// disk, exhausts descriptors, breaks DNS, …).
    ///
    /// # Errors
    ///
    /// [`InjectError`] if the slug does not belong to this application.
    fn inject(&mut self, slug: &str, env: &mut Environment) -> Result<(), InjectError>;

    /// Arms the corpus defect `slug` in this application *without* touching
    /// the environment. Where [`Application::inject`] also establishes the
    /// fault's environmental precondition (fills the disk, exhausts
    /// descriptors), `arm_defect` enables only the code defect — the
    /// environmental half is left to an external fault-injection plan that
    /// perturbs the environment on its own schedule. The default refuses
    /// every slug; applications that support plan-driven injection override
    /// it.
    ///
    /// # Errors
    ///
    /// [`InjectError`] if the slug does not belong to this application.
    fn arm_defect(&mut self, slug: &str) -> Result<(), InjectError> {
        Err(InjectError { slug: slug.to_owned() })
    }

    /// The request that triggers fault `slug` (the How-To-Repeat field), or
    /// `None` for unknown slugs.
    fn trigger_request(&self, slug: &str) -> Option<Request>;

    /// A benign request used as background load; must succeed on a healthy
    /// application.
    fn benign_request(&self) -> Request;

    /// The request that invokes the application's own rejuvenation code
    /// (§6.2's example: Apache's special signal), or `None` if the
    /// application has no such hook. Software rejuvenation \[Huang95\] "takes
    /// advantage of recovery code that is already present in the
    /// application", so this is inherently application-specific.
    fn rejuvenate_request(&self) -> Option<Request> {
        None
    }

    /// Application-specific cold start: re-initialize session state from
    /// the *current* environment using application knowledge — release the
    /// application's own leaked resources, rebind to the current hostname,
    /// reset internal counters — while preserving durable data and, of
    /// course, the code's defects. This is the "application-specific
    /// recovery" comparator of §2: exactly the state reconstruction a
    /// purely generic mechanism is not allowed to perform.
    fn cold_start(&mut self, env: &mut Environment) {
        env.fds.close_all_of(self.owner());
        env.procs.kill_all_of(self.owner());
    }

    /// The application's crash-only component view, if it is partitioned
    /// into microrebootable components (see [`faultstudy_micro`]). The
    /// default has no partition, under which a microrebooting supervisor
    /// degenerates to whole-process restart.
    fn as_crash_only(&mut self) -> Option<&mut dyn CrashOnly> {
        None
    }

    /// The application's correctness oracle: checks every application
    /// invariant that must hold *between* requests against the current
    /// state and environment, returning one description per violation (an
    /// empty vector means the state is consistent). The supervisor
    /// evaluates this after every recovery so a campaign can report the
    /// *silent-wrong-answer* cost of a strategy — an oblivious rescue that
    /// keeps serving from corrupt state shows up here, not in availability.
    ///
    /// The oracle must be read-only and must never consume simulated time;
    /// the default knows no invariants and reports none.
    fn check_oracle(&self, env: &Environment) -> Vec<String> {
        let _ = env;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder_chain() {
        let r = Request::new("GET /").from_client("host9").with_timing_event();
        assert_eq!(r.body, "GET /");
        assert_eq!(r.client, "host9");
        assert!(r.timing_event);
        assert_eq!(r.to_string(), "GET / (from host9)");
    }

    #[test]
    fn response_predicates() {
        assert!(Response::Ok("x".into()).is_ok());
        assert!(!Response::Denied("y".into()).is_ok());
    }

    #[test]
    fn failure_reason_and_display() {
        let f = AppFailure::Crash("segfault".into());
        assert_eq!(f.reason(), "segfault");
        assert_eq!(f.to_string(), "crash: segfault");
        assert_eq!(AppFailure::Hang("stuck".into()).to_string(), "hang: stuck");
        assert_eq!(AppFailure::ErrorReturn("enospc".into()).to_string(), "error: enospc");
    }

    #[test]
    fn app_state_round_trips() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct S {
            a: u32,
            b: Vec<String>,
        }
        let s = S { a: 7, b: vec!["x".into()] };
        let snap = AppState::encode(&s);
        assert!(snap.size_bytes() > 0);
        let back: S = snap.decode();
        assert_eq!(back, s);
    }

    #[test]
    fn inject_error_display() {
        let e = InjectError { slug: "nope".into() };
        assert!(e.to_string().contains("nope"));
    }
}
