//! Property tests for the simulated applications.

use faultstudy_apps::{spawn_app, Application, MiniDb, MiniWeb, Request, Response};
use faultstudy_core::taxonomy::AppKind;
use faultstudy_env::Environment;
use proptest::prelude::*;

fn app_strategy() -> impl Strategy<Value = AppKind> {
    prop::sample::select(AppKind::ALL.to_vec())
}

fn big_env(seed: u64) -> Environment {
    Environment::builder().seed(seed).fd_limit(64).proc_slots(32).fs_capacity(1 << 22).build()
}

proptest! {
    /// Applications never panic on arbitrary request bodies: unknown input
    /// is denied gracefully, not crashed on (C-VALIDATE).
    #[test]
    fn apps_are_total_over_arbitrary_requests(
        kind in app_strategy(),
        bodies in prop::collection::vec(".{0,60}", 1..30),
        seed in any::<u64>()
    ) {
        let mut env = big_env(seed);
        let mut app = spawn_app(kind, &mut env);
        for body in bodies {
            // A healthy app without injected faults must never return an
            // AppFailure, whatever the request text.
            let result = app.handle(&Request::new(body.clone()), &mut env);
            prop_assert!(result.is_ok(), "{kind}: {body:?} -> {result:?}");
        }
    }

    /// Snapshot/restore round-trips through arbitrary benign traffic.
    #[test]
    fn snapshot_restore_is_identity(
        kind in app_strategy(),
        before in 0usize..20,
        after in 1usize..20,
        seed in any::<u64>()
    ) {
        let mut env = big_env(seed);
        let mut app = spawn_app(kind, &mut env);
        let benign = app.benign_request();
        for _ in 0..before {
            app.handle(&benign, &mut env).expect("benign requests succeed");
        }
        let snapshot = app.snapshot();
        for _ in 0..after {
            app.handle(&benign, &mut env).expect("benign requests succeed");
        }
        app.restore(&snapshot);
        prop_assert_eq!(app.snapshot(), snapshot);
    }

    /// A healthy application under arbitrary benign traffic never violates
    /// its own correctness oracle: the oracle only fires on genuinely
    /// corrupted state, never on normal operation.
    #[test]
    fn healthy_apps_never_violate_their_oracle(
        kind in app_strategy(),
        n in 0usize..25,
        seed in any::<u64>()
    ) {
        let mut env = big_env(seed);
        let mut app = spawn_app(kind, &mut env);
        prop_assert!(app.check_oracle(&env).is_empty(), "{kind}: dirty at boot");
        let benign = app.benign_request();
        for _ in 0..n {
            app.handle(&benign, &mut env).expect("benign requests succeed");
            let violations = app.check_oracle(&env);
            prop_assert!(violations.is_empty(), "{kind}: {violations:?}");
        }
    }

    /// Injecting any corpus fault leaves the benign request path working:
    /// latent defects do not break unrelated traffic. (Faults whose
    /// environmental precondition affects shared resources — disk, fds —
    /// are exempt by nature; this checks the others.)
    #[test]
    fn latent_faults_do_not_disturb_benign_traffic(seed in any::<u64>()) {
        for fault in faultstudy_corpus::full_corpus() {
            // Skip faults whose precondition degrades shared state.
            let shared_precondition = matches!(
                fault.trigger(),
                Some(
                    faultstudy_env::ConditionKind::FileSystemFull
                        | faultstudy_env::ConditionKind::DiskCacheFull
                        | faultstudy_env::ConditionKind::FdExhaustion
                        | faultstudy_env::ConditionKind::MaxFileSize
                )
            );
            if shared_precondition {
                continue;
            }
            let mut env = big_env(seed);
            let mut app = spawn_app(fault.app(), &mut env);
            app.inject(fault.slug(), &mut env).expect("injectable");
            let benign = app.benign_request();
            let result = app.handle(&benign, &mut env);
            prop_assert!(result.is_ok(), "{}: benign failed {result:?}", fault.slug());
        }
    }

    /// MiniDb SELECT is read-only: any sequence of selects leaves the
    /// snapshot unchanged.
    #[test]
    fn selects_are_read_only(
        queries in prop::collection::vec(0u8..4, 1..15),
        seed in any::<u64>()
    ) {
        let mut env = big_env(seed);
        let mut db = MiniDb::new(&mut env);
        db.handle(&Request::new("CREATE TABLE t (k, v)"), &mut env).unwrap();
        db.handle(&Request::new("INSERT INTO t VALUES (1, 10)"), &mut env).unwrap();
        let snapshot = db.snapshot();
        for q in queries {
            let sql = match q {
                0 => "SELECT * FROM t",
                1 => "SELECT COUNT(*) FROM t",
                2 => "SELECT * FROM t WHERE k = 1",
                _ => "SELECT * FROM t ORDER BY v",
            };
            let resp = db.handle(&Request::new(sql), &mut env).unwrap();
            prop_assert!(resp.is_ok());
        }
        // The executed counter advanced, but data did not change.
        let now: String = format!("{:?}", db.snapshot());
        let was: String = format!("{:?}", snapshot);
        prop_assert_eq!(
            extract_tables_field(&now),
            extract_tables_field(&was),
            "table data mutated by SELECT"
        );
    }

    /// MiniWeb served counter grows monotonically with successful GETs.
    #[test]
    fn served_counter_is_monotone(paths in prop::collection::vec("[a-z]{1,8}", 1..20)) {
        let mut env = big_env(1);
        let mut web = MiniWeb::new(&mut env);
        let mut last = web.served();
        for p in paths {
            let resp = web.handle(&Request::new(format!("GET /{p}")), &mut env).unwrap();
            prop_assert!(matches!(resp, Response::Ok(_)));
            prop_assert!(web.served() > last);
            last = web.served();
        }
    }
}

/// Pulls the serialized "tables" portion out of a debug-printed AppState;
/// crude but sufficient to compare data while ignoring counters.
fn extract_tables_field(s: &str) -> String {
    let start = s.find("tables").unwrap_or(0);
    let end = s.find("locked").unwrap_or(s.len());
    s[start..end].to_owned()
}
