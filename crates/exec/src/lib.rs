//! Deterministic parallel work distribution.
//!
//! Campaigns and mining funnels are embarrassingly parallel: every sample or
//! archive report is an independent unit of work addressed by an integer
//! index. This crate provides the two primitives the hot paths share:
//!
//! - [`run_indexed`] — fans a pure `Fn(index) -> T` out over a fixed-size
//!   worker pool and returns the results **in index order**, regardless of
//!   thread count or scheduling.
//! - [`run_indexed_fold`] / [`run_chunk_fold`] — the streaming variant:
//!   each worker folds its indices into a constant-size partial aggregate
//!   and partials merge **in index order**, so memory is O(workers), not
//!   O(jobs). This is what makes 10–100M-sample campaigns possible: the
//!   materialize-then-fold path would hold every sample alive at once.
//!
//! Combined with per-index seed derivation
//! (`faultstudy_sim::rng::split_seed`), output is byte-identical whether
//! the work ran on 1, 2, or 8 threads, with any chunk size.
//!
//! Dispatch is a chunked work queue: the index space is cut into
//! contiguous chunks (size from [`ParallelSpec::chunk`], auto-sized by
//! default) and workers pull the next chunk from a shared atomic cursor.
//! Unlike the one-big-chunk-per-worker split this crate started with, an
//! oversubscribed pool (`threads > cores`) no longer serializes on its
//! slowest stripe — idle workers just stop pulling — so requesting more
//! threads than the host has costs nothing. Each finished chunk ships back
//! over a bounded channel tagged with its chunk number and the merge
//! consumes chunks strictly in chunk order, so there is no ordering logic
//! to get wrong and no shared mutable state at all.

use crossbeam::channel;
use std::collections::BTreeMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// How a parallel section should be executed.
///
/// `ParallelSpec` is intentionally *not* part of any serialized experiment
/// spec: thread count and chunk size are execution details, and results
/// are identical for every value of them. Keeping them out of
/// `CampaignSpec` preserves the byte layout of persisted reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelSpec {
    /// Requested worker count; `0` means "use available parallelism".
    threads: usize,
    /// Work-queue chunk size; `0` means "auto-size from the job count".
    chunk: usize,
}

impl ParallelSpec {
    /// Run on the current thread only.
    pub const SEQUENTIAL: ParallelSpec = ParallelSpec { threads: 1, chunk: 0 };

    /// Use the host's available parallelism, resolved at execution time.
    pub const AUTO: ParallelSpec = ParallelSpec { threads: 0, chunk: 0 };

    /// Requests exactly `threads` workers (`0` is equivalent to [`Self::AUTO`]).
    pub const fn threads(threads: usize) -> ParallelSpec {
        ParallelSpec { threads, chunk: 0 }
    }

    /// Sets an explicit work-queue chunk size (`0` restores auto-sizing).
    ///
    /// Results are byte-identical for every chunk size; the knob only
    /// trades dispatch overhead (small chunks) against tail latency (large
    /// chunks). Exists mostly so the determinism suites can sweep it.
    pub const fn with_chunk(mut self, chunk: usize) -> ParallelSpec {
        self.chunk = chunk;
        self
    }

    /// The worker count this spec resolves to for `jobs` units of work.
    ///
    /// Never exceeds `jobs` (an idle worker is pure overhead) and is always
    /// at least 1.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let requested = if self.threads == 0 {
            thread::available_parallelism().map_or(1, NonZeroUsize::get)
        } else {
            self.threads
        };
        requested.clamp(1, jobs.max(1))
    }

    /// The chunk size this spec resolves to for `jobs` units over
    /// `workers` threads: explicit if set, otherwise enough chunks for the
    /// queue to balance (8 per worker) without dispatch overhead drowning
    /// tiny jobs.
    pub fn effective_chunk(&self, jobs: usize, workers: usize) -> usize {
        if self.chunk > 0 {
            return self.chunk;
        }
        (jobs / (workers * 8).max(1)).clamp(1, 4096)
    }
}

impl Default for ParallelSpec {
    fn default() -> Self {
        ParallelSpec::AUTO
    }
}

/// Runs `chunk_fn` over contiguous index ranges covering `0..jobs` and
/// merges the per-chunk partial aggregates **in chunk order**.
///
/// This is the streaming primitive underneath [`run_indexed_fold`] and
/// [`run_indexed`], exposed because chunk-at-a-time callers (e.g. batched
/// per-sample RNG derivation) want the whole range, not one index at a
/// time. Workers pull chunk numbers from a shared atomic cursor, fold each
/// chunk into a fresh partial created by `init`, and ship `(chunk,
/// partial)` back over a bounded channel; the calling thread merges
/// partials strictly in chunk order, buffering at most the channel bound
/// of out-of-order arrivals. Peak memory is O(workers + buffered
/// partials), independent of `jobs`.
///
/// The result equals the sequential fold `init(); chunk_fn(0..jobs)`
/// whenever `merge(a, b)` is equivalent to folding `b`'s indices directly
/// into `a` — true for any per-index fold that only appends/accumulates,
/// which the differential suites assert for the campaign aggregates.
pub fn run_chunk_fold<A, I, C, M>(
    jobs: usize,
    spec: ParallelSpec,
    init: I,
    chunk_fn: C,
    mut merge: M,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    C: Fn(std::ops::Range<usize>, &mut A) + Sync,
    M: FnMut(&mut A, A),
{
    let workers = spec.effective_threads(jobs);
    if workers <= 1 || jobs <= 1 {
        let mut acc = init();
        chunk_fn(0..jobs, &mut acc);
        return acc;
    }

    let chunk_size = spec.effective_chunk(jobs, workers);
    let chunks = jobs.div_ceil(chunk_size);
    let cursor = AtomicUsize::new(0);
    let (init, chunk_fn) = (&init, &chunk_fn);
    let cursor = &cursor;

    let mut acc = init();
    thread::scope(|scope| {
        let (tx, rx) = channel::bounded::<(usize, A)>(workers * 2);
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= chunks {
                    return;
                }
                let start = chunk * chunk_size;
                let end = (start + chunk_size).min(jobs);
                let mut partial = init();
                chunk_fn(start..end, &mut partial);
                // The receiver outlives every sender inside the scope, so
                // a send failure is unreachable; drop the result to keep
                // the worker infallible.
                if tx.send((chunk, partial)).is_err() {
                    return;
                }
            });
        }
        drop(tx);

        // Merge strictly in chunk order; out-of-order arrivals wait in a
        // bounded buffer (the channel cap bounds how far ahead workers can
        // run, so the buffer cannot grow with the job count).
        let mut next = 0usize;
        let mut parked: BTreeMap<usize, A> = BTreeMap::new();
        for (chunk, partial) in rx.iter() {
            parked.insert(chunk, partial);
            while let Some(partial) = parked.remove(&next) {
                merge(&mut acc, partial);
                next += 1;
            }
        }
        debug_assert_eq!(next, chunks, "every chunk merged exactly once");
    });
    acc
}

/// Streams `work(0..jobs)` through per-worker folds and merges the partial
/// aggregates in index order: the constant-memory sibling of
/// [`run_indexed`].
///
/// Each worker folds its chunk of the index space into a fresh aggregate
/// from `fold_init` via `fold_step(acc, index, value)`; `merge` combines
/// finished partials in index order on the calling thread. The result is a
/// pure function of `(jobs, work, fold)` — thread count and chunk size
/// cannot be observed — provided `merge` distributes over `fold_step` the
/// way any append/accumulate fold does.
///
/// # Example
///
/// ```
/// use faultstudy_exec::{run_indexed_fold, ParallelSpec};
/// let sum = run_indexed_fold(
///     100,
///     ParallelSpec::threads(4),
///     |i| i as u64,
///     || 0u64,
///     |acc, _i, v| *acc += v,
///     |acc, partial| *acc += partial,
/// );
/// assert_eq!(sum, 4950);
/// ```
pub fn run_indexed_fold<A, T, W, I, S, M>(
    jobs: usize,
    spec: ParallelSpec,
    work: W,
    fold_init: I,
    fold_step: S,
    mut merge: M,
) -> A
where
    A: Send,
    T: Send,
    W: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    S: Fn(&mut A, usize, T) + Sync,
    M: FnMut(&mut A, A),
{
    run_chunk_fold(
        jobs,
        spec,
        &fold_init,
        |range, acc| {
            for index in range {
                fold_step(acc, index, work(index));
            }
        },
        |acc, partial| merge(acc, partial),
    )
}

/// Runs `work(0..jobs)` across a fixed-size worker pool and returns the
/// results in index order.
///
/// Dispatch is the shared chunked work queue (see the crate docs), so an
/// oversubscribed pool costs nothing; results are assembled in chunk order
/// into one contiguous `Vec`. Because `work` receives the *global* index,
/// any per-item randomness derived from it (e.g. via `split_seed`) is
/// independent of the partitioning, so the output is a pure function of
/// `(jobs, work)` — thread count cannot be observed in the result.
///
/// `work` must be `Sync` (shared by reference across workers) and is called
/// exactly once per index.
///
/// # Example
///
/// ```
/// use faultstudy_exec::{run_indexed, ParallelSpec};
/// let squares = run_indexed(5, ParallelSpec::threads(2), |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_indexed<T, F>(jobs: usize, spec: ParallelSpec, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = spec.effective_threads(jobs);
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(work).collect();
    }
    run_chunk_fold(
        jobs,
        spec,
        || Vec::new(),
        |range, acc: &mut Vec<T>| {
            acc.reserve(range.len());
            acc.extend(range.map(&work));
        },
        |all, mut chunk| {
            if all.is_empty() {
                all.reserve(jobs);
            }
            all.append(&mut chunk);
        },
    )
}

/// Keeps `items[i]` where `keep[i]` is true, preserving order.
///
/// The order-preserving merge half of a parallel filter: compute the keep
/// mask with [`run_indexed`], then apply it sequentially. Splitting the
/// predicate (parallel, expensive) from the retention (sequential, trivial)
/// keeps filtered output independent of thread count.
///
/// # Panics
///
/// Panics if the mask length differs from the item count.
pub fn retain_by_mask<T>(items: Vec<T>, keep: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), keep.len(), "mask must cover every item");
    items.into_iter().zip(keep).filter_map(|(item, &keep)| keep.then_some(item)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = run_indexed(97, ParallelSpec::threads(threads), |i| i * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn auto_matches_sequential() {
        let seq = run_indexed(40, ParallelSpec::SEQUENTIAL, |i| i as u64 * 7);
        let auto = run_indexed(40, ParallelSpec::AUTO, |i| i as u64 * 7);
        assert_eq!(seq, auto);
    }

    #[test]
    fn handles_edge_sizes() {
        assert_eq!(run_indexed(0, ParallelSpec::threads(4), |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, ParallelSpec::threads(4), |i| i), vec![0]);
        // More workers than jobs: clamped, still complete and ordered.
        assert_eq!(run_indexed(3, ParallelSpec::threads(16), |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn every_chunk_size_produces_identical_output() {
        let expected: Vec<usize> = (0..143).map(|i| i ^ 0x2A).collect();
        for chunk in [1, 2, 3, 7, 64, 143, 1000] {
            for threads in [2, 4, 9] {
                let spec = ParallelSpec::threads(threads).with_chunk(chunk);
                let got = run_indexed(143, spec, |i| i ^ 0x2A);
                assert_eq!(got, expected, "chunk={chunk} threads={threads}");
            }
        }
    }

    #[test]
    fn fold_matches_materialized_fold() {
        // The fold laws the campaign relies on: stream == materialize-then-
        // fold for an append/accumulate fold, at every (threads, chunk).
        let materialized: Vec<u64> =
            run_indexed(250, ParallelSpec::SEQUENTIAL, |i| (i as u64).wrapping_mul(0x9E37));
        let expected: (u64, Vec<u64>) =
            materialized.iter().fold((0, Vec::new()), |(mut sum, mut all), &v| {
                sum += v % 97;
                all.push(v);
                (sum, all)
            });
        for threads in [1, 2, 4, 8] {
            for chunk in [0, 1, 3, 17, 250, 999] {
                let spec = ParallelSpec::threads(threads).with_chunk(chunk);
                let got = run_indexed_fold(
                    250,
                    spec,
                    |i| (i as u64).wrapping_mul(0x9E37),
                    || (0u64, Vec::new()),
                    |acc, _i, v| {
                        acc.0 += v % 97;
                        acc.1.push(v);
                    },
                    |acc, mut partial| {
                        acc.0 += partial.0;
                        acc.1.append(&mut partial.1);
                    },
                );
                assert_eq!(got, expected, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunk_fold_sees_every_index_exactly_once() {
        for threads in [1, 3, 8] {
            for chunk in [0, 1, 5, 77] {
                let spec = ParallelSpec::threads(threads).with_chunk(chunk);
                let seen = run_chunk_fold(
                    123,
                    spec,
                    Vec::new,
                    |range, acc: &mut Vec<usize>| acc.extend(range),
                    |all, mut part| all.append(&mut part),
                );
                assert_eq!(seen, (0..123).collect::<Vec<_>>(), "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelSpec::threads(8).effective_threads(3), 3);
        assert_eq!(ParallelSpec::threads(2).effective_threads(100), 2);
        assert_eq!(ParallelSpec::threads(5).effective_threads(0), 1);
        assert!(ParallelSpec::AUTO.effective_threads(100) >= 1);
        assert_eq!(ParallelSpec::SEQUENTIAL.effective_threads(100), 1);
    }

    #[test]
    fn effective_chunk_resolves() {
        assert_eq!(ParallelSpec::threads(2).with_chunk(10).effective_chunk(1000, 2), 10);
        // Auto: bounded and at least 1, even for tiny jobs.
        assert_eq!(ParallelSpec::threads(4).effective_chunk(3, 4), 1);
        let auto = ParallelSpec::threads(2).effective_chunk(1_000_000, 2);
        assert!((1..=4096).contains(&auto), "auto chunk {auto}");
    }

    #[test]
    fn mask_retention_preserves_order() {
        let items = vec!["a", "b", "c", "d"];
        let keep = [true, false, true, false];
        assert_eq!(retain_by_mask(items, &keep), vec!["a", "c"]);
    }

    #[test]
    #[should_panic(expected = "mask must cover")]
    fn mask_length_mismatch_panics() {
        retain_by_mask(vec![1, 2, 3], &[true]);
    }
}
