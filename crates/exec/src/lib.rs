//! Deterministic parallel work distribution.
//!
//! Campaigns and mining funnels are embarrassingly parallel: every sample or
//! archive report is an independent unit of work addressed by an integer
//! index. This crate provides the one primitive both hot paths share —
//! [`run_indexed`] — which fans a pure `Fn(index) -> T` out over a
//! fixed-size worker pool and returns the results **in index order**,
//! regardless of thread count or scheduling. Combined with per-index seed
//! derivation (`faultstudy_sim::rng::split_seed`), output is byte-identical
//! whether the work ran on 1, 2, or 8 threads.
//!
//! The design deliberately avoids work stealing: each worker owns one
//! contiguous chunk of the index space, computes its results into a private
//! buffer, and ships the finished chunk back over a channel tagged with its
//! chunk number. The merge is a plain in-order concatenation, so there is no
//! ordering logic to get wrong and no shared mutable state at all.

use crossbeam::channel;
use std::num::NonZeroUsize;
use std::thread;

/// How a parallel section should be executed.
///
/// `ParallelSpec` is intentionally *not* part of any serialized experiment
/// spec: thread count is an execution detail, and results are identical for
/// every value of it. Keeping it out of `CampaignSpec` preserves the byte
/// layout of persisted reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelSpec {
    /// Requested worker count; `0` means "use available parallelism".
    threads: usize,
}

impl ParallelSpec {
    /// Run on the current thread only.
    pub const SEQUENTIAL: ParallelSpec = ParallelSpec { threads: 1 };

    /// Use the host's available parallelism, resolved at execution time.
    pub const AUTO: ParallelSpec = ParallelSpec { threads: 0 };

    /// Requests exactly `threads` workers (`0` is equivalent to [`Self::AUTO`]).
    pub const fn threads(threads: usize) -> ParallelSpec {
        ParallelSpec { threads }
    }

    /// The worker count this spec resolves to for `jobs` units of work.
    ///
    /// Never exceeds `jobs` (an idle worker is pure overhead) and is always
    /// at least 1.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let requested = if self.threads == 0 {
            thread::available_parallelism().map_or(1, NonZeroUsize::get)
        } else {
            self.threads
        };
        requested.clamp(1, jobs.max(1))
    }
}

impl Default for ParallelSpec {
    fn default() -> Self {
        ParallelSpec::AUTO
    }
}

/// Runs `work(0..jobs)` across a fixed-size worker pool and returns the
/// results in index order.
///
/// The index space is partitioned into one contiguous chunk per worker
/// (first `jobs % workers` chunks get one extra item), each worker computes
/// its chunk into a private `Vec`, and chunks are concatenated in chunk
/// order. Because `work` receives the *global* index, any per-item
/// randomness derived from it (e.g. via `split_seed`) is independent of the
/// partitioning, so the output is a pure function of `(jobs, work)` —
/// thread count cannot be observed in the result.
///
/// `work` must be `Sync` (shared by reference across workers) and is called
/// exactly once per index.
///
/// # Example
///
/// ```
/// use faultstudy_exec::{run_indexed, ParallelSpec};
/// let squares = run_indexed(5, ParallelSpec::threads(2), |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_indexed<T, F>(jobs: usize, spec: ParallelSpec, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = spec.effective_threads(jobs);
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(work).collect();
    }

    let base = jobs / workers;
    let extra = jobs % workers;
    let work = &work;

    let mut merged: Vec<Option<Vec<T>>> = Vec::new();
    merged.resize_with(workers, || None);

    thread::scope(|scope| {
        let (tx, rx) = channel::bounded::<(usize, Vec<T>)>(workers);
        let mut start = 0usize;
        for chunk in 0..workers {
            let len = base + usize::from(chunk < extra);
            let range = start..start + len;
            start += len;
            let tx = tx.clone();
            scope.spawn(move || {
                let results: Vec<T> = range.map(work).collect();
                // The receiver outlives every sender inside the scope, so
                // a send failure is unreachable; drop the result to keep
                // the worker infallible.
                let _ = tx.send((chunk, results));
            });
        }
        drop(tx);
        for (chunk, results) in rx.iter() {
            merged[chunk] = Some(results);
        }
    });

    merged.into_iter().map(|chunk| chunk.expect("every worker reports exactly one chunk")).fold(
        Vec::with_capacity(jobs),
        |mut all, mut chunk| {
            all.append(&mut chunk);
            all
        },
    )
}

/// Keeps `items[i]` where `keep[i]` is true, preserving order.
///
/// The order-preserving merge half of a parallel filter: compute the keep
/// mask with [`run_indexed`], then apply it sequentially. Splitting the
/// predicate (parallel, expensive) from the retention (sequential, trivial)
/// keeps filtered output independent of thread count.
///
/// # Panics
///
/// Panics if the mask length differs from the item count.
pub fn retain_by_mask<T>(items: Vec<T>, keep: &[bool]) -> Vec<T> {
    assert_eq!(items.len(), keep.len(), "mask must cover every item");
    items.into_iter().zip(keep).filter_map(|(item, &keep)| keep.then_some(item)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_and_parallel_agree() {
        let expected: Vec<usize> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = run_indexed(97, ParallelSpec::threads(threads), |i| i * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn auto_matches_sequential() {
        let seq = run_indexed(40, ParallelSpec::SEQUENTIAL, |i| i as u64 * 7);
        let auto = run_indexed(40, ParallelSpec::AUTO, |i| i as u64 * 7);
        assert_eq!(seq, auto);
    }

    #[test]
    fn handles_edge_sizes() {
        assert_eq!(run_indexed(0, ParallelSpec::threads(4), |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, ParallelSpec::threads(4), |i| i), vec![0]);
        // More workers than jobs: clamped, still complete and ordered.
        assert_eq!(run_indexed(3, ParallelSpec::threads(16), |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelSpec::threads(8).effective_threads(3), 3);
        assert_eq!(ParallelSpec::threads(2).effective_threads(100), 2);
        assert_eq!(ParallelSpec::threads(5).effective_threads(0), 1);
        assert!(ParallelSpec::AUTO.effective_threads(100) >= 1);
        assert_eq!(ParallelSpec::SEQUENTIAL.effective_threads(100), 1);
    }

    #[test]
    fn mask_retention_preserves_order() {
        let items = vec!["a", "b", "c", "d"];
        let keep = [true, false, true, false];
        assert_eq!(retain_by_mask(items, &keep), vec!["a", "c"]);
    }

    #[test]
    #[should_panic(expected = "mask must cover")]
    fn mask_length_mismatch_panics() {
        retain_by_mask(vec![1, 2, 3], &[true]);
    }
}
