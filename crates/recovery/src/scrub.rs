//! State scrubbing: drop volatile component state in place, without a
//! reboot.
//!
//! PR 4's [`Environment::scrub`] clears non-transient conditions in the
//! *operating environment*; this generalizes the move to *application
//! state* using the crash-only taxonomy: every
//! [`StateKind::Volatile`](faultstudy_micro::StateKind::Volatile)
//! component is crashed and booted in place — state that is legitimate to
//! discard by construction — while durable components are never touched.
//! No checkpoint is restored and no process is killed, so a scrub is
//! cheaper than any restart and clears exactly the poisoned volatile
//! state (leaked allocations, stale session counters) that a
//! checkpoint-restoring recovery faithfully preserves.

use crate::strategy::RecoveryStrategy;
use faultstudy_apps::{AppState, Application, Request};
use faultstudy_env::Environment;
use faultstudy_micro::StateKind;
use faultstudy_sim::time::Duration;

/// Crashes and boots every volatile component of `app` in place, charging
/// the boot costs to the simulated clock. Returns `false` without doing
/// anything when the application has no crash-only partition — callers
/// fall back to generic restart.
pub fn scrub_volatile_state(app: &mut dyn Application, env: &mut Environment) -> bool {
    let Some(co) = app.as_crash_only() else {
        return false;
    };
    let descs = co.components();
    let mut cost = Duration::ZERO;
    for (index, desc) in descs.iter().enumerate() {
        if desc.state_kind == StateKind::Volatile {
            co.crash_component(index, env);
            co.boot_component(index, env);
            cost = cost + desc.boot_cost;
        }
    }
    env.advance(cost);
    true
}

/// Restart-retry whose recovery step scrubs volatile application state in
/// place instead of restoring a checkpoint.
///
/// # Example
///
/// ```
/// use faultstudy_recovery::{RecoveryStrategy, StateScrub};
///
/// let s = StateScrub::new(3).with_scrub();
/// assert_eq!(s.name(), "statescrub");
/// assert!(!s.is_generic());
/// ```
#[derive(Debug)]
pub struct StateScrub {
    retries: u32,
    scrub: bool,
    checkpoint: Option<AppState>,
}

impl StateScrub {
    /// A strategy with a retry budget of `retries` and scrubbing
    /// disabled — identical to [`RestartRetry::new`](crate::RestartRetry::new).
    pub fn new(retries: u32) -> StateScrub {
        StateScrub { retries, scrub: false, checkpoint: None }
    }

    /// Enables the in-place volatile scrub as the recovery action.
    #[must_use]
    pub fn with_scrub(mut self) -> StateScrub {
        self.scrub = true;
        self
    }
}

impl RecoveryStrategy for StateScrub {
    fn name(&self) -> &'static str {
        "statescrub"
    }

    fn is_generic(&self) -> bool {
        // Knowing *which* state is volatile is the application's crash-only
        // partition — application knowledge in the paper's sense.
        false
    }

    fn on_start(&mut self, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_success(&mut self, _req: &Request, app: &mut dyn Application, _env: &mut Environment) {
        self.checkpoint = Some(app.snapshot());
    }

    fn on_failure(
        &mut self,
        app: &mut dyn Application,
        env: &mut Environment,
        attempt: u32,
    ) -> bool {
        if attempt > self.retries {
            return false;
        }
        if self.scrub && scrub_volatile_state(app, env) {
            return true;
        }
        env.on_generic_recovery(app.owner());
        if let Some(cp) = &self.checkpoint {
            app.restore(cp);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::run_workload;
    use crate::RestartRetry;
    use faultstudy_apps::MiniWeb;

    fn leak_scenario(strategy: &mut dyn RecoveryStrategy) -> (crate::WorkloadRun, Environment) {
        let mut env = Environment::builder().seed(7).proc_slots(6).build();
        let mut app = MiniWeb::new(&mut env);
        app.arm_defect("apache-edn-01").unwrap();
        let burst = app.trigger_request("apache-edn-01").unwrap();
        let workload: Vec<Request> = (0..6).map(|_| burst.clone()).collect();
        let run = run_workload(&mut app, &mut env, &workload, strategy);
        (run, env)
    }

    #[test]
    fn scrub_clears_the_leak_a_checkpoint_preserves() {
        let (restart, _) = leak_scenario(&mut RestartRetry::new(3));
        assert!(!restart.survived, "the restored checkpoint restores the leak too");
        let (scrubbed, _) = leak_scenario(&mut StateScrub::new(3).with_scrub());
        assert!(scrubbed.survived, "dropping volatile state drops the leaked units");
        assert_eq!(scrubbed.completed, 6);
    }

    #[test]
    fn scrub_does_not_clear_deterministic_code_defects() {
        let mut env = Environment::builder().seed(7).proc_slots(6).build();
        let mut app = MiniWeb::new(&mut env);
        app.inject("apache-ei-01", &mut env).unwrap();
        let workload = vec![app.trigger_request("apache-ei-01").unwrap()];
        let run = run_workload(&mut app, &mut env, &workload, &mut StateScrub::new(3).with_scrub());
        assert!(!run.survived, "an EI fault is in the code, not in volatile state");
    }

    #[test]
    fn scrub_never_touches_durable_state() {
        let mut env = Environment::builder().seed(3).build();
        let mut app = MiniWeb::new(&mut env);
        app.handle(&Request::new("GET /index.html"), &mut env).unwrap();
        let before: faultstudy_apps::AppState = app.snapshot();
        assert!(scrub_volatile_state(&mut app, &mut env));
        // served (durable progress) survives; the volatile counters were
        // already zero, so the state is unchanged byte for byte.
        assert_eq!(app.snapshot(), before);
    }

    #[test]
    fn disabled_scrub_degenerates_into_restart_retry() {
        let baseline = leak_scenario(&mut RestartRetry::new(3));
        let scrub_off = leak_scenario(&mut StateScrub::new(3));
        assert_eq!(scrub_off.0, baseline.0);
        assert_eq!(scrub_off.1.now(), baseline.1.now());
    }
}
